"""Mote battery/energy model and the Fig. 5 lifetime tradeoff.

A duty-cycled mote spends its battery on two things: the ultra-low sleep
current, and the active windows in which it samples ``K`` points at the
configured sampling frequency and ships them to the base station.  Because
the sample count per measurement is fixed, a *lower* sampling frequency
means a *longer* active sensing window (1024 samples at 150 Hz take 6.8 s;
at 22 kHz they take 46 ms) and therefore **more** energy per measurement —
which is why Fig. 5's report-period lower bound grows as the sampling
frequency decreases.

Given a target node lifetime, the minimum report period is the one at
which measurement energy exactly consumes whatever battery power budget is
left after sleeping:

``T_report_min = E_meas(fs) / (C / T_target - P_sleep)``

Calibration: the default constants (≈360 mAh lithium cell, 20 µW sleep,
66 mW active, 5 s radio window) reproduce the paper's two anchor points —
about 10.2 h at 150 Hz for a 3-year target and about 5.2 h for a 2-year
target (equivalently, 2,576 and 3,650 measurements over the node's life).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

SECONDS_PER_YEAR = 365.0 * 24.0 * 3600.0


@dataclass(frozen=True)
class EnergyConfig:
    """Battery and power-draw constants of one mote.

    Attributes:
        battery_joules: usable battery energy (default ≈358 mAh at 3 V).
        sleep_power_w: sleep-mode draw (RTC + leakage).
        active_power_w: active-mode draw with sensor, MCU and radio on.
        radio_window_s: fixed radio time per measurement (Flush transfer
            of the 120 packets, heartbeat, scheduling chatter).
        samples_per_measurement: block length ``K``.
    """

    battery_joules: float = 3864.0
    sleep_power_w: float = 19.6e-6
    active_power_w: float = 66e-3
    radio_window_s: float = 5.0
    samples_per_measurement: int = 1024

    def __post_init__(self) -> None:
        if self.battery_joules <= 0:
            raise ValueError("battery_joules must be positive")
        if self.sleep_power_w < 0 or self.active_power_w <= 0:
            raise ValueError("power draws must be positive")
        if self.radio_window_s < 0:
            raise ValueError("radio_window_s must be non-negative")
        if self.samples_per_measurement < 1:
            raise ValueError("samples_per_measurement must be positive")


class EnergyModel:
    """Energy accounting and the sampling/report/lifetime tradeoff."""

    def __init__(self, config: EnergyConfig | None = None):
        self.config = config or EnergyConfig()

    def sensing_window_s(self, sampling_rate_hz: float) -> float:
        """Active sensing time to collect one ``K``-sample block."""
        if sampling_rate_hz <= 0:
            raise ValueError("sampling_rate_hz must be positive")
        return self.config.samples_per_measurement / sampling_rate_hz

    def measurement_energy_j(self, sampling_rate_hz: float) -> float:
        """Energy of one measurement: sensing window plus radio window."""
        active_time = self.sensing_window_s(sampling_rate_hz) + self.config.radio_window_s
        return self.config.active_power_w * active_time

    def report_period_lower_bound_s(
        self, sampling_rate_hz: float, target_lifetime_years: float
    ) -> float:
        """Fig. 5: minimum report period to survive the target lifetime.

        Returns ``inf`` when sleeping alone already exceeds the battery
        budget for the target lifetime (no report period can save it).
        """
        if target_lifetime_years <= 0:
            raise ValueError("target_lifetime_years must be positive")
        cfg = self.config
        power_budget = cfg.battery_joules / (target_lifetime_years * SECONDS_PER_YEAR)
        headroom = power_budget - cfg.sleep_power_w
        if headroom <= 0:
            return float("inf")
        return self.measurement_energy_j(sampling_rate_hz) / headroom

    def measurements_in_lifetime(
        self, sampling_rate_hz: float, target_lifetime_years: float
    ) -> float:
        """How many measurements the node can afford over its lifetime.

        The "data is expensive" quantity of Sec. II: e.g. ~2,576
        measurements for a 3-year target at 150 Hz.
        """
        period = self.report_period_lower_bound_s(sampling_rate_hz, target_lifetime_years)
        if not np.isfinite(period) or period <= 0:
            return 0.0
        return target_lifetime_years * SECONDS_PER_YEAR / period

    def lifetime_years(self, sampling_rate_hz: float, report_period_s: float) -> float:
        """Node lifetime achieved at a given report period (inverse of Fig. 5)."""
        if report_period_s <= 0:
            raise ValueError("report_period_s must be positive")
        cfg = self.config
        avg_power = cfg.sleep_power_w + self.measurement_energy_j(sampling_rate_hz) / report_period_s
        return cfg.battery_joules / avg_power / SECONDS_PER_YEAR

    def tradeoff_curve(
        self,
        sampling_rates_hz: np.ndarray,
        target_lifetime_years: float,
    ) -> np.ndarray:
        """Report-period lower bounds (hours) across sampling rates."""
        rates = np.asarray(sampling_rates_hz, dtype=np.float64)
        bounds = np.asarray(
            [
                self.report_period_lower_bound_s(fs, target_lifetime_years)
                for fs in rates
            ]
        )
        return bounds / 3600.0


class BatteryTracker:
    """Running battery state of one simulated mote."""

    def __init__(self, config: EnergyConfig | None = None):
        self.config = config or EnergyConfig()
        self.remaining_j = self.config.battery_joules
        self.sleep_seconds = 0.0
        self.measurements = 0

    @property
    def depleted(self) -> bool:
        return self.remaining_j <= 0

    def sleep(self, seconds: float) -> None:
        """Account a sleep interval."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        self.sleep_seconds += seconds
        self.remaining_j -= self.config.sleep_power_w * seconds

    def measure(self, sampling_rate_hz: float) -> None:
        """Account one measurement's active window."""
        model = EnergyModel(self.config)
        self.remaining_j -= model.measurement_energy_j(sampling_rate_hz)
        self.measurements += 1

    def fraction_remaining(self) -> float:
        return max(self.remaining_j, 0.0) / self.config.battery_joules
