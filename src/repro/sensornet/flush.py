"""Flush: reliable bulk transport with NACK-based recovery (Kim et al. [8]).

The paper guarantees delivery of every 120-packet measurement by running
Flush between the mote and the base station.  The protocol's reliability
semantics are what matter to the data pipeline, and they are modelled
faithfully:

1. the sender streams the full packet sequence over the lossy link;
2. the receiver replies with a NACK listing the missing sequence numbers
   (the NACK itself can be lost — a lost NACK triggers a full-status
   retransmission round);
3. the sender retransmits exactly the NACK'd fragments;
4. rounds repeat until the receiver holds the complete set or the round
   budget is exhausted (a dead link must not wedge the mote's schedule).

A best-effort sender (no recovery) is provided for the ablation benchmark
comparing measurement recovery rates under loss.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sensornet.packets import DataPacket
from repro.sensornet.radio import LossyLink


@dataclass
class FlushStats:
    """Accounting of one bulk transfer.

    Attributes:
        success: True when the receiver holds every fragment.
        rounds: number of send/NACK rounds used.
        data_transmissions: data-packet transmissions (including
            retransmissions).
        nack_transmissions: NACK control messages sent by the receiver.
        delivered: fragments the receiver ended up holding.
    """

    success: bool
    rounds: int
    data_transmissions: int
    nack_transmissions: int
    delivered: int


class FlushReceiver:
    """Base-station side: collects fragments and issues NACKs."""

    def __init__(self, total: int):
        if total < 1:
            raise ValueError("total must be positive")
        self.total = total
        self.received: dict[int, DataPacket] = {}

    def accept(self, packet: DataPacket) -> None:
        self.received[packet.seq] = packet

    @property
    def complete(self) -> bool:
        return len(self.received) == self.total

    def missing(self) -> list[int]:
        """Sequence numbers still missing (the NACK payload)."""
        return [seq for seq in range(self.total) if seq not in self.received]

    def packets(self) -> list[DataPacket]:
        return [self.received[seq] for seq in sorted(self.received)]


class FlushSender:
    """Mote side: streams fragments and serves NACK retransmissions."""

    def __init__(self, packets: list[DataPacket], link: LossyLink):
        if not packets:
            raise ValueError("nothing to send")
        self.packets = list(packets)
        self.link = link
        self.data_transmissions = 0

    def send(self, seqs: list[int], receiver: FlushReceiver) -> None:
        """Transmit the given fragments over the lossy link."""
        by_seq = {p.seq: p for p in self.packets}
        for seq in seqs:
            self.data_transmissions += 1
            if self.link.transmit():
                receiver.accept(by_seq[seq])


def flush_transfer(
    packets: list[DataPacket],
    link: LossyLink,
    max_rounds: int = 20,
    nack_link: LossyLink | None = None,
) -> tuple[FlushStats, list[DataPacket]]:
    """Run one Flush bulk transfer of a fragmented measurement.

    Args:
        packets: the full fragment set of one measurement.
        link: mote→base-station data link.
        max_rounds: round budget before the transfer is abandoned.
        nack_link: base-station→mote control link; defaults to the data
            link's loss characteristics (NACKs can be lost too — a lost
            NACK simply causes the next round to retransmit everything
            still missing, so correctness is unaffected).

    Returns:
        ``(stats, received_packets)``; the packet list is complete only
        when ``stats.success``.
    """
    if max_rounds < 1:
        raise ValueError("max_rounds must be positive")
    if not packets:
        raise ValueError("nothing to send")
    receiver = FlushReceiver(total=packets[0].total)
    sender = FlushSender(packets, link)
    control = nack_link if nack_link is not None else link

    nack_transmissions = 0
    rounds = 0
    outstanding = [p.seq for p in packets]
    while rounds < max_rounds:
        rounds += 1
        sender.send(outstanding, receiver)
        if receiver.complete:
            break
        # Receiver sends a NACK; if it is lost the sender retransmits the
        # last outstanding set again next round (it learned nothing new).
        nack_transmissions += 1
        if control.transmit():
            outstanding = receiver.missing()
        # A NACK that arrives empty cannot happen here (complete breaks
        # above), so outstanding is always non-empty at this point.

    stats = FlushStats(
        success=receiver.complete,
        rounds=rounds,
        data_transmissions=sender.data_transmissions,
        nack_transmissions=nack_transmissions,
        delivered=len(receiver.received),
    )
    return stats, receiver.packets()


def best_effort_transfer(
    packets: list[DataPacket],
    link: LossyLink,
) -> tuple[FlushStats, list[DataPacket]]:
    """Single-pass transfer with no recovery (ablation baseline).

    A measurement survives only when *all* fragments make it through in
    one pass, so the measurement recovery rate collapses to
    ``(1 - loss)^120`` — the paper's motivation for using Flush.
    """
    receiver = FlushReceiver(total=packets[0].total)
    sender = FlushSender(packets, link)
    sender.send([p.seq for p in packets], receiver)
    stats = FlushStats(
        success=receiver.complete,
        rounds=1,
        data_transmissions=sender.data_transmissions,
        nack_transmissions=0,
        delivered=len(receiver.received),
    )
    return stats, receiver.packets()
