"""Flush: reliable bulk transport with NACK-based recovery (Kim et al. [8]).

The paper guarantees delivery of every 120-packet measurement by running
Flush between the mote and the base station.  The protocol's reliability
semantics are what matter to the data pipeline, and they are modelled
faithfully:

1. the sender streams the full packet sequence over the lossy link;
2. the receiver replies with a NACK listing the missing sequence numbers
   (the NACK itself can be lost — a lost NACK triggers a full-status
   retransmission round);
3. the sender retransmits exactly the NACK'd fragments;
4. rounds repeat until the receiver holds the complete set or the round
   budget is exhausted (a dead link must not wedge the mote's schedule).

On top of the protocol, :func:`flush_transfer` supports the robustness
layer of the chaos harness:

* an optional duck-typed fault ``injector`` (see
  :mod:`repro.chaos.inject`) faults data packets at the ``flush.data``
  point and NACKs at ``flush.nack``;
* an optional ``retry`` session (see :mod:`repro.chaos.retry`) turns the
  old give-up-after-the-round-budget behaviour into bounded
  exponential-backoff re-attempts on the fragments still missing, with a
  per-transfer deadline.

A best-effort sender (no recovery) is provided for the ablation benchmark
comparing measurement recovery rates under loss.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sensornet.packets import DataPacket
from repro.sensornet.radio import LossyLink

#: Injection point names (duck-typed contract with repro.chaos.inject;
#: spelled out here so this module never imports the chaos package).
FLUSH_DATA_POINT = "flush.data"
FLUSH_NACK_POINT = "flush.nack"


@dataclass
class FlushStats:
    """Accounting of one bulk transfer.

    Attributes:
        success: True when the receiver holds every fragment.
        rounds: number of send/NACK rounds used (across all attempts).
        data_transmissions: data-packet transmissions (including
            retransmissions).
        nack_transmissions: NACK control messages sent by the receiver.
        delivered: fragments the receiver ended up holding.
        retransmissions: data-packet transmissions beyond each
            fragment's first (the protocol's recovery overhead).
        duplicates: fragments that arrived at the receiver more than
            once (late or injected duplicates; first arrival wins).
        out_of_order: fragments that arrived below the highest sequence
            number already held (reordering observed by the receiver).
        attempts: transfer attempts, 1 plus any retry-policy re-runs.
    """

    success: bool
    rounds: int
    data_transmissions: int
    nack_transmissions: int
    delivered: int
    retransmissions: int = 0
    duplicates: int = 0
    out_of_order: int = 0
    attempts: int = 1


class FlushReceiver:
    """Base-station side: collects fragments and issues NACKs.

    Duplicate fragments are counted and ignored (first arrival wins):
    a retransmitted fragment that raced a NACK must not overwrite data
    the receiver already committed, and the duplicate count is the
    operational signal of a lossy NACK channel.  Arrivals below the
    highest held sequence number are counted as out-of-order.
    """

    def __init__(self, total: int):
        if total < 1:
            raise ValueError("total must be positive")
        self.total = total
        self.received: dict[int, DataPacket] = {}
        self.duplicates = 0
        self.out_of_order = 0
        self._highest_seq = -1

    def accept(self, packet: DataPacket) -> None:
        if packet.seq in self.received:
            self.duplicates += 1
            return
        if packet.seq < self._highest_seq:
            self.out_of_order += 1
        else:
            self._highest_seq = packet.seq
        self.received[packet.seq] = packet

    @property
    def complete(self) -> bool:
        return len(self.received) == self.total

    def missing(self) -> list[int]:
        """Sequence numbers still missing (the NACK payload)."""
        return [seq for seq in range(self.total) if seq not in self.received]

    def packets(self) -> list[DataPacket]:
        return [self.received[seq] for seq in sorted(self.received)]


class FlushSender:
    """Mote side: streams fragments and serves NACK retransmissions."""

    def __init__(self, packets: list[DataPacket], link: LossyLink, injector=None):
        if not packets:
            raise ValueError("nothing to send")
        self.packets = list(packets)
        self.link = link
        self.injector = injector
        self.data_transmissions = 0
        self.retransmissions = 0
        self._by_seq = {p.seq: p for p in self.packets}
        self._send_counts: dict[int, int] = {}

    def send(self, seqs: list[int], receiver: FlushReceiver) -> None:
        """Transmit the given fragments over the lossy link."""
        for seq in seqs:
            self.data_transmissions += 1
            sent_before = self._send_counts.get(seq, 0)
            if sent_before:
                self.retransmissions += 1
            self._send_counts[seq] = sent_before + 1
            if not self.link.transmit():
                continue
            packet = self._by_seq[seq]
            if self.injector is None:
                receiver.accept(packet)
                continue
            for delivered in self.injector.deliver_packet(FLUSH_DATA_POINT, packet):
                receiver.accept(delivered)


def flush_transfer(
    packets: list[DataPacket],
    link: LossyLink,
    max_rounds: int = 20,
    nack_link: LossyLink | None = None,
    injector=None,
    retry=None,
) -> tuple[FlushStats, list[DataPacket]]:
    """Run one Flush bulk transfer of a fragmented measurement.

    Args:
        packets: the full fragment set of one measurement.
        link: mote→base-station data link.
        max_rounds: round budget before one attempt is abandoned.
        nack_link: base-station→mote control link; defaults to the data
            link's loss characteristics (NACKs can be lost too — a lost
            NACK simply causes the next round to retransmit everything
            still missing, so correctness is unaffected).
        injector: optional chaos fault injector; faults data packets at
            ``flush.data`` and NACK deliveries at ``flush.nack``.
        retry: optional retry session (duck-typed
            :class:`repro.chaos.retry.RetrySession`); when an attempt
            exhausts its round budget, ``retry.backoff()`` decides
            whether to re-attempt the still-missing fragments after a
            backoff, bounding both attempts and total elapsed time
            instead of the old single-shot give-up.

    Returns:
        ``(stats, received_packets)``; the packet list is complete only
        when ``stats.success``.
    """
    if max_rounds < 1:
        raise ValueError("max_rounds must be positive")
    if not packets:
        raise ValueError("nothing to send")
    receiver = FlushReceiver(total=packets[0].total)
    sender = FlushSender(packets, link, injector=injector)
    control = nack_link if nack_link is not None else link

    nack_transmissions = 0
    rounds = 0
    attempts = 0
    outstanding = [p.seq for p in packets]
    while True:
        attempts += 1
        attempt_rounds = 0
        while attempt_rounds < max_rounds:
            attempt_rounds += 1
            rounds += 1
            sender.send(outstanding, receiver)
            if receiver.complete:
                break
            # Receiver sends a NACK; if it is lost the sender retransmits
            # the last outstanding set again next round (it learned
            # nothing new).
            nack_transmissions += 1
            nack_delivered = control.transmit()
            if nack_delivered and injector is not None:
                nack_delivered = not injector.drops(FLUSH_NACK_POINT)
            if nack_delivered:
                outstanding = receiver.missing()
            # A NACK that arrives empty cannot happen here (complete
            # breaks above), so outstanding is always non-empty.
        if receiver.complete or retry is None:
            break
        if not retry.backoff():
            break
        # Fresh attempt on whatever is still missing.
        outstanding = receiver.missing()

    stats = FlushStats(
        success=receiver.complete,
        rounds=rounds,
        data_transmissions=sender.data_transmissions,
        nack_transmissions=nack_transmissions,
        delivered=len(receiver.received),
        retransmissions=sender.retransmissions,
        duplicates=receiver.duplicates,
        out_of_order=receiver.out_of_order,
        attempts=attempts,
    )
    return stats, receiver.packets()


def best_effort_transfer(
    packets: list[DataPacket],
    link: LossyLink,
    injector=None,
) -> tuple[FlushStats, list[DataPacket]]:
    """Single-pass transfer with no recovery (ablation baseline).

    A measurement survives only when *all* fragments make it through in
    one pass, so the measurement recovery rate collapses to
    ``(1 - loss)^120`` — the paper's motivation for using Flush.
    """
    receiver = FlushReceiver(total=packets[0].total)
    sender = FlushSender(packets, link, injector=injector)
    sender.send([p.seq for p in packets], receiver)
    stats = FlushStats(
        success=receiver.complete,
        rounds=1,
        data_transmissions=sender.data_transmissions,
        nack_transmissions=0,
        delivered=len(receiver.received),
        retransmissions=sender.retransmissions,
        duplicates=receiver.duplicates,
        out_of_order=receiver.out_of_order,
    )
    return stats, receiver.packets()
