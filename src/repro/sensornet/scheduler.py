"""Central wakeup-slot scheduler and liveness tracking (Fig. 4).

The sensor management server assigns each mote a wakeup slot inside the
report period — staggered so transfers do not collide at the base station —
and tracks liveness through the heartbeat each mote sends in its slot.  A
mote whose heartbeat has been missing longer than the timeout is marked
dead.

The paper's future-work idea of *dynamic sampling* is provided as an
extension hook: :class:`AdaptiveSamplingPolicy` lowers the sampling rate
for equipments whose degradation feature is flat and raises it as the
feature accelerates, saving energy where nothing is happening.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ScheduleEntry:
    """One mote's slot assignment.

    Attributes:
        sensor_id: the mote.
        offset_s: slot start offset from the beginning of each round.
        report_period_s: period between two wakeups of this mote.
    """

    sensor_id: int
    offset_s: float
    report_period_s: float

    def wakeup_time(self, round_index: int) -> float:
        """Absolute wakeup time of the given round."""
        if round_index < 0:
            raise ValueError("round_index must be non-negative")
        return round_index * self.report_period_s + self.offset_s


class WakeupScheduler:
    """Slot assignment plus heartbeat-based liveness."""

    def __init__(
        self,
        report_period_s: float,
        slot_width_s: float = 30.0,
        heartbeat_timeout_periods: float = 2.5,
    ):
        """Create a scheduler.

        Args:
            report_period_s: the fleet-wide report period.
            slot_width_s: stagger between consecutive motes' slots.
            heartbeat_timeout_periods: how many report periods a
                heartbeat may be missing before the mote is declared
                dead.
        """
        if report_period_s <= 0:
            raise ValueError("report_period_s must be positive")
        if slot_width_s <= 0:
            raise ValueError("slot_width_s must be positive")
        if heartbeat_timeout_periods <= 0:
            raise ValueError("heartbeat_timeout_periods must be positive")
        self.report_period_s = report_period_s
        self.slot_width_s = slot_width_s
        self.heartbeat_timeout_s = heartbeat_timeout_periods * report_period_s
        self._entries: dict[int, ScheduleEntry] = {}
        self._last_heartbeat: dict[int, float] = {}

    def register(self, sensor_id: int, boot_time_s: float = 0.0) -> ScheduleEntry:
        """Handle a boot-up notification: assign a wakeup slot.

        Slots are packed consecutively, wrapping within the report period
        so arbitrarily many motes share it.
        """
        if sensor_id in self._entries:
            return self._entries[sensor_id]
        index = len(self._entries)
        offset = (index * self.slot_width_s) % self.report_period_s
        entry = ScheduleEntry(
            sensor_id=sensor_id, offset_s=offset, report_period_s=self.report_period_s
        )
        self._entries[sensor_id] = entry
        self._last_heartbeat[sensor_id] = boot_time_s
        return entry

    def entry(self, sensor_id: int) -> ScheduleEntry:
        return self._entries[sensor_id]

    def record_heartbeat(self, sensor_id: int, now_s: float) -> None:
        """A heartbeat arrived from the mote."""
        if sensor_id not in self._entries:
            raise KeyError(f"unregistered sensor {sensor_id}")
        self._last_heartbeat[sensor_id] = now_s

    def is_alive(self, sensor_id: int, now_s: float) -> bool:
        """Liveness verdict: heartbeat seen within the timeout window."""
        last = self._last_heartbeat.get(sensor_id)
        if last is None:
            return False
        return (now_s - last) <= self.heartbeat_timeout_s

    def dead_sensors(self, now_s: float) -> list[int]:
        """All registered motes currently considered dead."""
        return [sid for sid in self._entries if not self.is_alive(sid, now_s)]


class AdaptiveSamplingPolicy:
    """Dynamic sampling-rate policy (the paper's future-work extension).

    The policy inspects the recent trend of a scalar degradation feature
    (e.g. ``D_a``) and interpolates the sampling rate between a low rate
    for flat trends and a high rate for steep ones, on a log scale.
    """

    def __init__(
        self,
        min_rate_hz: float = 500.0,
        max_rate_hz: float = 8000.0,
        slope_scale: float = 0.002,
    ):
        """Create a policy.

        Args:
            min_rate_hz: rate used when the feature is flat.
            max_rate_hz: rate used when the feature rises at or above
                ``slope_scale`` per day.
            slope_scale: feature slope (per day) mapped to the max rate.
        """
        if not 0 < min_rate_hz <= max_rate_hz:
            raise ValueError("need 0 < min_rate_hz <= max_rate_hz")
        if slope_scale <= 0:
            raise ValueError("slope_scale must be positive")
        self.min_rate_hz = min_rate_hz
        self.max_rate_hz = max_rate_hz
        self.slope_scale = slope_scale

    def suggest_rate(self, days: np.ndarray, feature: np.ndarray) -> float:
        """Sampling rate suggested by the recent feature trend."""
        xs = np.asarray(days, dtype=np.float64).ravel()
        zs = np.asarray(feature, dtype=np.float64).ravel()
        if xs.size != zs.size:
            raise ValueError("days and feature must have equal length")
        if xs.size < 2 or np.ptp(xs) == 0:
            return self.min_rate_hz
        slope = float(np.polyfit(xs, zs, 1)[0])
        severity = np.clip(slope / self.slope_scale, 0.0, 1.0)
        log_rate = (1 - severity) * np.log(self.min_rate_hz) + severity * np.log(
            self.max_rate_hz
        )
        return float(np.exp(log_rate))
