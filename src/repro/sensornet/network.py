"""End-to-end sensor-network collection simulation.

Wires motes, the lossy radio, Flush and the wakeup scheduler into one
collection run: every report period each registered mote wakes in its
slot, attempts a measurement transfer, and the base station reassembles
whatever arrives complete.  The output is the stream of recovered count
blocks plus collection statistics — the input boundary of the analytical
engine, and the mechanism by which "asynchronous and incomplete
observations" (Sec. I) arise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sensornet.mote import Mote, MoteState
from repro.sensornet.packets import reassemble_measurement
from repro.sensornet.scheduler import WakeupScheduler


@dataclass
class CollectionStats:
    """Aggregate statistics of one collection run.

    Attributes:
        attempted: measurement transfers attempted across all motes.
        delivered: measurements fully recovered at the base station.
        failed: transfers abandoned after the Flush round budget.
        data_transmissions: total data-packet transmissions.
        nack_transmissions: total NACK control messages.
        dead_motes: motes that ran out of battery during the run.
        missed_heartbeats: heartbeat packets lost in the air.
        retransmissions: data packets sent beyond each fragment's first
            transmission (the recovery overhead of the deployment).
        duplicates: fragments received more than once at the base
            station.
        skipped_open_circuit: wakeup slots skipped because the mote's
            circuit breaker was open.
    """

    attempted: int = 0
    delivered: int = 0
    failed: int = 0
    data_transmissions: int = 0
    nack_transmissions: int = 0
    dead_motes: int = 0
    missed_heartbeats: int = 0
    retransmissions: int = 0
    duplicates: int = 0
    skipped_open_circuit: int = 0

    @property
    def recovery_rate(self) -> float:
        """Fraction of attempted measurements fully recovered."""
        if self.attempted == 0:
            return 0.0
        return self.delivered / self.attempted


@dataclass(frozen=True)
class DeliveredMeasurement:
    """One measurement recovered at the base station."""

    sensor_id: int
    measurement_id: int
    wakeup_time_s: float
    counts: np.ndarray


class SensorNetworkSimulator:
    """Runs a fleet of motes against one base station.

    When the report period cannot hold every mote's slot (the scheduler
    wraps offsets), motes sharing a slot *contend* at the base station:
    their links suffer an extra loss penalty for that round.  Flush still
    recovers the data — at a transmission-overhead cost, which is exactly
    the operational signal an overloaded deployment shows first.
    """

    def __init__(
        self,
        scheduler: WakeupScheduler,
        contention_loss: float = 0.25,
        breaker=None,
    ):
        """Create a simulator.

        Args:
            scheduler: the slot scheduler motes register with.
            contention_loss: extra per-packet loss probability applied to
                every mote sharing its wakeup slot with at least one
                other mote.
            breaker: optional circuit breaker (duck-typed
                :class:`repro.chaos.retry.CircuitBreaker`) keyed by
                sensor id; motes whose circuit is open skip their slot
                instead of burning battery on a dead link.
        """
        if not 0.0 <= contention_loss < 1.0:
            raise ValueError("contention_loss must be in [0, 1)")
        self.scheduler = scheduler
        self.contention_loss = contention_loss
        self.breaker = breaker
        self._motes: dict[int, Mote] = {}

    def _contended_sensors(self) -> set[int]:
        """Sensors whose slot offset collides with another registered mote."""
        by_offset: dict[float, list[int]] = {}
        for sensor_id in self._motes:
            offset = self.scheduler.entry(sensor_id).offset_s
            by_offset.setdefault(offset, []).append(sensor_id)
        return {
            sid for group in by_offset.values() if len(group) > 1 for sid in group
        }

    def add_mote(self, mote: Mote, boot_time_s: float = 0.0) -> None:
        """Boot a mote and register it with the management server."""
        sensor_id = mote.boot()
        self.scheduler.register(sensor_id, boot_time_s)
        self._motes[sensor_id] = mote

    def run(self, num_rounds: int) -> tuple[list[DeliveredMeasurement], CollectionStats]:
        """Simulate ``num_rounds`` report periods.

        Returns:
            The recovered measurements (in wakeup order) and aggregate
            statistics.  Motes that die mid-run simply stop producing
            data; the scheduler's heartbeat tracking reflects their
            status.
        """
        if num_rounds < 1:
            raise ValueError("num_rounds must be positive")
        stats = CollectionStats()
        delivered: list[DeliveredMeasurement] = []
        period = self.scheduler.report_period_s
        contended = self._contended_sensors()

        for round_index in range(num_rounds):
            for sensor_id in sorted(self._motes):
                mote = self._motes[sensor_id]
                if mote.state is MoteState.DEAD:
                    continue
                if self.breaker is not None and not self.breaker.allow(sensor_id):
                    stats.skipped_open_circuit += 1
                    continue
                entry = self.scheduler.entry(sensor_id)
                now = entry.wakeup_time(round_index)
                base_loss = mote.link.loss_probability
                if sensor_id in contended:
                    mote.link.loss_probability = min(
                        base_loss + self.contention_loss, 0.99
                    )
                try:
                    outcome = mote.execute_slot(sleep_seconds_since_last=period)
                finally:
                    mote.link.loss_probability = base_loss
                if outcome is None:
                    continue
                stats.attempted += 1
                stats.data_transmissions += outcome.flush.data_transmissions
                stats.nack_transmissions += outcome.flush.nack_transmissions
                stats.retransmissions += outcome.flush.retransmissions
                stats.duplicates += outcome.flush.duplicates
                if self.breaker is not None:
                    if outcome.flush.success:
                        self.breaker.record_success(sensor_id)
                    else:
                        self.breaker.record_failure(sensor_id)
                if outcome.flush.success:
                    counts = reassemble_measurement(outcome.packets)
                    delivered.append(
                        DeliveredMeasurement(
                            sensor_id=sensor_id,
                            measurement_id=outcome.measurement_id,
                            wakeup_time_s=now,
                            counts=counts,
                        )
                    )
                    stats.delivered += 1
                else:
                    stats.failed += 1
                if outcome.heartbeat_delivered:
                    self.scheduler.record_heartbeat(sensor_id, now)
                else:
                    stats.missed_heartbeats += 1
        stats.dead_motes = sum(
            1 for m in self._motes.values() if m.state is MoteState.DEAD
        )
        return delivered, stats
