"""Multihop Flush: reliable bulk transport over a chain of lossy links.

Flush (Kim et al. [8]) was designed for *multihop* wireless networks: a
mote several hops from the base station forwards its bulk data through
intermediate motes, with end-to-end NACK recovery and hop-by-hop loss.
The single-hop model in :mod:`repro.sensornet.flush` covers the paper's
deployment (sensors one hop from a gateway); this module generalizes it
so deeper fab topologies can be simulated.

The model: a packet must traverse every hop of the path to arrive; a
loss at any hop loses the packet for this attempt (intermediate caching
is deliberately not modelled — it only changes constants, not the
end-to-end reliability semantics).  NACKs travel the reverse path with
the same per-hop loss.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sensornet.flush import FlushReceiver, FlushStats
from repro.sensornet.packets import DataPacket
from repro.sensornet.radio import LossyLink


class MultihopPath:
    """An ordered chain of links from a mote to the base station."""

    def __init__(self, links: list[LossyLink]):
        if not links:
            raise ValueError("a path needs at least one link")
        self.links = list(links)

    @property
    def hop_count(self) -> int:
        return len(self.links)

    def transmit_forward(self) -> bool:
        """Send one packet along the path; True when it arrives."""
        return all(link.transmit() for link in self.links)

    def transmit_reverse(self) -> bool:
        """Send one control packet back along the path."""
        return all(link.transmit() for link in reversed(self.links))

    @property
    def end_to_end_delivery_probability(self) -> float:
        """Analytic per-packet delivery probability (Bernoulli links)."""
        p = 1.0
        for link in self.links:
            p *= 1.0 - link.loss_probability
        return p

    @staticmethod
    def uniform(hop_count: int, loss_probability: float, seed: int = 0) -> "MultihopPath":
        """A path of ``hop_count`` identical independent links."""
        if hop_count < 1:
            raise ValueError("hop_count must be positive")
        return MultihopPath(
            [
                LossyLink(loss_probability, seed=seed * 1000 + i)
                for i in range(hop_count)
            ]
        )


@dataclass
class MultihopStats(FlushStats):
    """Flush statistics extended with per-hop accounting.

    Attributes:
        hop_count: path length in links.
        link_transmissions: total per-link transmission attempts (each
            end-to-end send costs up to ``hop_count`` of these).
    """

    hop_count: int = 1
    link_transmissions: int = 0


def multihop_flush_transfer(
    packets: list[DataPacket],
    path: MultihopPath,
    max_rounds: int = 40,
) -> tuple[MultihopStats, list[DataPacket]]:
    """Run Flush end-to-end over a multihop path.

    Same round structure as the single-hop transfer: stream the
    outstanding set, receive a NACK over the reverse path (a lost NACK
    means the sender re-streams the same set), repeat until complete or
    the round budget runs out.
    """
    if not packets:
        raise ValueError("nothing to send")
    if max_rounds < 1:
        raise ValueError("max_rounds must be positive")

    receiver = FlushReceiver(total=packets[0].total)
    by_seq = {p.seq: p for p in packets}
    outstanding = [p.seq for p in packets]
    data_transmissions = 0
    nack_transmissions = 0
    rounds = 0

    while rounds < max_rounds:
        rounds += 1
        for seq in outstanding:
            data_transmissions += 1
            if path.transmit_forward():
                receiver.accept(by_seq[seq])
        if receiver.complete:
            break
        nack_transmissions += 1
        if path.transmit_reverse():
            outstanding = receiver.missing()

    link_tx = sum(link.transmissions for link in path.links)
    stats = MultihopStats(
        success=receiver.complete,
        rounds=rounds,
        data_transmissions=data_transmissions,
        nack_transmissions=nack_transmissions,
        delivered=len(receiver.received),
        hop_count=path.hop_count,
        link_transmissions=link_tx,
    )
    return stats, receiver.packets()
