"""Measurement fragmentation into low-power radio packets.

One measurement is 1024 samples × 3 axes × 2 bytes = 6 KB, which exceeds
the maximum packet size of a low-power radio by two orders of magnitude;
the paper ships it as 120 packets (≈51 payload bytes each) and relies on
the Flush protocol to deliver all of them, because losing any packet makes
the whole 1024-sample block unrecoverable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

SAMPLES_PER_MEASUREMENT = 1024
BYTES_PER_SAMPLE = 2 * 3  # 2-byte reading per axis, three axes.
MEASUREMENT_BYTES = SAMPLES_PER_MEASUREMENT * BYTES_PER_SAMPLE  # 6144 = 6 KB
PACKETS_PER_MEASUREMENT = 120
PACKET_PAYLOAD_BYTES = MEASUREMENT_BYTES / PACKETS_PER_MEASUREMENT  # 51.2 B average


@dataclass(frozen=True)
class DataPacket:
    """One radio packet of a fragmented measurement.

    Attributes:
        sensor_id: originating mote.
        measurement_id: measurement the fragment belongs to.
        seq: fragment sequence number in ``[0, total)``.
        total: number of fragments of the measurement.
        payload: raw fragment bytes.
    """

    sensor_id: int
    measurement_id: int
    seq: int
    total: int
    payload: bytes

    def __post_init__(self) -> None:
        if not 0 <= self.seq < self.total:
            raise ValueError(f"seq {self.seq} out of range for total {self.total}")


def encode_counts(counts: np.ndarray) -> bytes:
    """Serialize an int16 ``(K, 3)`` count block to little-endian bytes."""
    arr = np.asarray(counts)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise ValueError(f"counts must have shape (K, 3), got {arr.shape}")
    return np.ascontiguousarray(arr, dtype="<i2").tobytes()


def decode_counts(blob: bytes) -> np.ndarray:
    """Inverse of :func:`encode_counts`."""
    if len(blob) % BYTES_PER_SAMPLE:
        raise ValueError("blob length is not a whole number of samples")
    flat = np.frombuffer(blob, dtype="<i2")
    return flat.reshape(-1, 3).copy()


def fragment_measurement(
    sensor_id: int,
    measurement_id: int,
    counts: np.ndarray,
    payload_bytes: float = PACKET_PAYLOAD_BYTES,
) -> list[DataPacket]:
    """Fragment a count block into radio packets.

    The block is split into ``ceil(len / payload_bytes)`` near-equal
    fragments.  The default average payload of 51.2 bytes reproduces the
    paper's framing exactly: a 6 KB measurement (K = 1024) becomes 120
    packets.

    Args:
        sensor_id: originating mote id.
        measurement_id: measurement sequence number.
        counts: int16 sample block ``(K, 3)``.
        payload_bytes: average fragment payload size in bytes.
    """
    if payload_bytes <= 0:
        raise ValueError("payload_bytes must be positive")
    blob = encode_counts(counts)
    total = max(1, int(np.ceil(len(blob) / payload_bytes)))
    # Near-equal split: cut points on a uniform byte grid.
    cuts = [round(i * len(blob) / total) for i in range(total + 1)]
    return [
        DataPacket(
            sensor_id=sensor_id,
            measurement_id=measurement_id,
            seq=i,
            total=total,
            payload=blob[cuts[i] : cuts[i + 1]],
        )
        for i in range(total)
    ]


def reassemble_measurement(packets: list[DataPacket]) -> np.ndarray:
    """Reassemble a complete fragment set back into a count block.

    Raises:
        ValueError: when fragments are missing, duplicated inconsistently,
            or mix different measurements.
    """
    if not packets:
        raise ValueError("no packets to reassemble")
    total = packets[0].total
    key = (packets[0].sensor_id, packets[0].measurement_id)
    by_seq: dict[int, bytes] = {}
    for pkt in packets:
        if (pkt.sensor_id, pkt.measurement_id) != key or pkt.total != total:
            raise ValueError("packets mix different measurements")
        existing = by_seq.get(pkt.seq)
        if existing is not None and existing != pkt.payload:
            raise ValueError(f"conflicting duplicates for fragment {pkt.seq}")
        by_seq[pkt.seq] = pkt.payload
    missing = [seq for seq in range(total) if seq not in by_seq]
    if missing:
        raise ValueError(f"missing fragments: {missing[:8]}{'...' if len(missing) > 8 else ''}")
    blob = b"".join(by_seq[seq] for seq in range(total))
    return decode_counts(blob)
