"""Gateway bridge: from recovered radio measurements to database records.

Fig. 1's gateway component sits between the sensor network and the
analysis tier: it reassembles the mote's raw 2-byte count blocks, converts
them to physical units (the "unitless raw data → g" step of the data
transformation layer) and lands them in the sensor database together with
the bookkeeping the analytics needs (timestamps, service time).

:class:`GatewayBridge` performs exactly that translation for the output
of :class:`~repro.sensornet.network.SensorNetworkSimulator`, completing
the end-to-end loop: physical vibration → mote → Flush → gateway →
database → analysis engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sensornet.network import DeliveredMeasurement
from repro.storage.database import VibrationDatabase
from repro.storage.records import Measurement

SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class SensorCalibration:
    """Per-sensor conversion and deployment metadata.

    Attributes:
        pump_id: equipment the sensor is mounted on.
        scale_g_per_count: ADC count → g conversion factor.
        sampling_rate_hz: sampling rate of the blocks.
        install_day: absolute day the pump (not the sensor) entered
            service; service time is derived from it.
    """

    pump_id: int
    scale_g_per_count: float
    sampling_rate_hz: float = 4000.0
    install_day: float = 0.0

    def __post_init__(self) -> None:
        if self.scale_g_per_count <= 0:
            raise ValueError("scale_g_per_count must be positive")
        if self.sampling_rate_hz <= 0:
            raise ValueError("sampling_rate_hz must be positive")


class GatewayBridge:
    """Converts delivered count blocks into stored Measurement records."""

    def __init__(self, calibrations: dict[int, SensorCalibration]):
        """Create a bridge.

        Args:
            calibrations: sensor id → calibration; measurements from
                unknown sensors are rejected (a mis-provisioned mote must
                be noticed, not silently stored with wrong units).
        """
        if not calibrations:
            raise ValueError("at least one sensor calibration is required")
        self.calibrations = dict(calibrations)

    def to_measurement(self, delivered: DeliveredMeasurement) -> Measurement:
        """Convert one recovered radio measurement to a database record."""
        calibration = self.calibrations.get(delivered.sensor_id)
        if calibration is None:
            raise KeyError(f"no calibration for sensor {delivered.sensor_id}")
        block_g = delivered.counts.astype(np.float64) * calibration.scale_g_per_count
        timestamp_day = delivered.wakeup_time_s / SECONDS_PER_DAY
        return Measurement(
            pump_id=calibration.pump_id,
            measurement_id=delivered.measurement_id,
            timestamp_day=timestamp_day,
            service_day=max(timestamp_day - calibration.install_day, 0.0),
            samples=block_g,
            sampling_rate_hz=calibration.sampling_rate_hz,
        )

    def ingest(
        self,
        delivered: list[DeliveredMeasurement],
        database: VibrationDatabase,
    ) -> int:
        """Convert and store a batch; returns the number stored.

        Raises:
            KeyError: when any measurement comes from an uncalibrated
                sensor (the whole batch is rejected so the store never
                holds partially-converted data).
        """
        records = [self.to_measurement(d) for d in delivered]
        database.measurements.add_many(records)
        return len(records)
