"""Gateway bridge: from recovered radio measurements to database records.

Fig. 1's gateway component sits between the sensor network and the
analysis tier: it reassembles the mote's raw 2-byte count blocks, converts
them to physical units (the "unitless raw data → g" step of the data
transformation layer) and lands them in the sensor database together with
the bookkeeping the analytics needs (timestamps, service time).

:class:`GatewayBridge` performs exactly that translation for the output
of :class:`~repro.sensornet.network.SensorNetworkSimulator`, completing
the end-to-end loop: physical vibration → mote → Flush → gateway →
database → analysis engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sensornet.network import DeliveredMeasurement
from repro.storage.database import VibrationDatabase
from repro.storage.records import Measurement

SECONDS_PER_DAY = 86_400.0

#: Injection point names (duck-typed contract with repro.chaos.inject).
GATEWAY_CONVERT_POINT = "gateway.convert"
STORAGE_WRITE_POINT = "storage.write"


@dataclass(frozen=True)
class SensorCalibration:
    """Per-sensor conversion and deployment metadata.

    Attributes:
        pump_id: equipment the sensor is mounted on.
        scale_g_per_count: ADC count → g conversion factor.
        sampling_rate_hz: sampling rate of the blocks.
        install_day: absolute day the pump (not the sensor) entered
            service; service time is derived from it.
    """

    pump_id: int
    scale_g_per_count: float
    sampling_rate_hz: float = 4000.0
    install_day: float = 0.0

    def __post_init__(self) -> None:
        if self.scale_g_per_count <= 0:
            raise ValueError("scale_g_per_count must be positive")
        if self.sampling_rate_hz <= 0:
            raise ValueError("sampling_rate_hz must be positive")


class GatewayBridge:
    """Converts delivered count blocks into stored Measurement records."""

    def __init__(self, calibrations: dict[int, SensorCalibration]):
        """Create a bridge.

        Args:
            calibrations: sensor id → calibration; measurements from
                unknown sensors are rejected (a mis-provisioned mote must
                be noticed, not silently stored with wrong units).
        """
        if not calibrations:
            raise ValueError("at least one sensor calibration is required")
        self.calibrations = dict(calibrations)

    def to_measurement(self, delivered: DeliveredMeasurement) -> Measurement:
        """Convert one recovered radio measurement to a database record."""
        calibration = self.calibrations.get(delivered.sensor_id)
        if calibration is None:
            raise KeyError(f"no calibration for sensor {delivered.sensor_id}")
        block_g = delivered.counts.astype(np.float64) * calibration.scale_g_per_count
        timestamp_day = delivered.wakeup_time_s / SECONDS_PER_DAY
        return Measurement(
            pump_id=calibration.pump_id,
            measurement_id=delivered.measurement_id,
            timestamp_day=timestamp_day,
            service_day=max(timestamp_day - calibration.install_day, 0.0),
            samples=block_g,
            sampling_rate_hz=calibration.sampling_rate_hz,
        )

    def ingest(
        self,
        delivered: list[DeliveredMeasurement],
        database: VibrationDatabase,
        *,
        injector=None,
        dead_letters=None,
        retry=None,
        retry_clock=None,
    ) -> int:
        """Convert and store a batch; returns the number stored.

        With ``dead_letters`` set (a duck-typed
        :class:`~repro.storage.deadletter.DeadLetterQueue`), measurements
        that fail conversion — unknown sensor, structurally broken count
        block — are quarantined there and the rest of the batch is
        stored, instead of the strict all-or-nothing rejection.  With a
        ``retry`` policy, the database write is retried under bounded
        backoff when it raises a transient error.

        Args:
            delivered: recovered radio measurements.
            database: destination sensor database.
            injector: optional chaos fault injector; faults deliveries
                at ``gateway.convert`` and the write at
                ``storage.write``.
            dead_letters: optional quarantine queue; ``None`` keeps the
                strict behaviour (any conversion error raises and the
                whole batch is rejected, so the store never holds
                partially-converted data).
            retry: optional retry policy (duck-typed
                :class:`repro.chaos.retry.RetryPolicy`) for the write.
            retry_clock: clock for the retry policy's backoff (tests use
                a simulated clock).

        Raises:
            KeyError: conversion of an uncalibrated sensor's measurement
                when no dead-letter queue was provided.
        """
        records = []
        for item in delivered:
            if injector is not None:
                item = injector.mutate_delivery(GATEWAY_CONVERT_POINT, item)
                if item is None:
                    continue
            try:
                records.append(self.to_measurement(item))
            except (KeyError, ValueError) as exc:
                if dead_letters is None:
                    raise
                dead_letters.add(
                    stage="gateway",
                    pump_id=item.sensor_id,
                    measurement_id=item.measurement_id,
                    reason="conversion-failed",
                    detail=str(exc),
                    timestamp_day=item.wakeup_time_s / SECONDS_PER_DAY,
                )

        def write() -> None:
            if injector is not None:
                injector.maybe_fail(STORAGE_WRITE_POINT)
            database.measurements.add_many(records)

        if retry is not None:
            retry.run(write, clock=retry_clock)
        else:
            write()
        return len(records)
