"""Wireless sensor network substrate.

Models the data-collection tier of Fig. 1: duty-cycled sensor motes, a
lossy low-power radio, the Flush reliable bulk-transport protocol
(Kim et al., SenSys 2007) used to ship each 6 KB measurement as 120 packets
with NACK-based recovery, the central wakeup-slot scheduler with heartbeat
liveness tracking, and the battery energy model behind the Fig. 5 tradeoff
between sampling frequency, report period and target node lifetime.
"""

from repro.sensornet.packets import (
    MEASUREMENT_BYTES,
    PACKET_PAYLOAD_BYTES,
    PACKETS_PER_MEASUREMENT,
    DataPacket,
    fragment_measurement,
    reassemble_measurement,
)
from repro.sensornet.radio import LossyLink
from repro.sensornet.flush import FlushReceiver, FlushSender, FlushStats, flush_transfer
from repro.sensornet.energy import EnergyConfig, EnergyModel
from repro.sensornet.mote import Mote, MoteState
from repro.sensornet.scheduler import ScheduleEntry, WakeupScheduler
from repro.sensornet.network import CollectionStats, SensorNetworkSimulator
from repro.sensornet.multihop import (
    MultihopPath,
    MultihopStats,
    multihop_flush_transfer,
)
from repro.sensornet.gateway import GatewayBridge, SensorCalibration

__all__ = [
    "DataPacket",
    "MEASUREMENT_BYTES",
    "PACKET_PAYLOAD_BYTES",
    "PACKETS_PER_MEASUREMENT",
    "fragment_measurement",
    "reassemble_measurement",
    "LossyLink",
    "flush_transfer",
    "FlushSender",
    "FlushReceiver",
    "FlushStats",
    "EnergyConfig",
    "EnergyModel",
    "Mote",
    "MoteState",
    "WakeupScheduler",
    "ScheduleEntry",
    "SensorNetworkSimulator",
    "CollectionStats",
    "MultihopPath",
    "MultihopStats",
    "multihop_flush_transfer",
    "GatewayBridge",
    "SensorCalibration",
]
