"""Sensor mote state machine (Figs. 3-4 of the paper).

A mote alternates between an ultra-low-power sleep state and short active
windows.  Each active window (its *wakeup slot*) has two phases: the
*round period*, in which the mote samples a 1024-point block and ships it
to the base station with Flush, and the *heartbeat period*, in which it
updates its liveness with the sensor management server.  The server marks
a mote dead when its heartbeat goes missing.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable

import numpy as np

from repro.sensornet.energy import BatteryTracker, EnergyConfig
from repro.sensornet.flush import FlushStats, flush_transfer
from repro.sensornet.packets import DataPacket, fragment_measurement
from repro.sensornet.radio import LossyLink


class MoteState(Enum):
    """Operational state of a mote."""

    SLEEP = "sleep"
    ACTIVE = "active"
    DEAD = "dead"


@dataclass
class RoundOutcome:
    """What happened during one wakeup slot.

    Attributes:
        measurement_id: sequence number of the attempted measurement.
        flush: bulk-transfer statistics.
        packets: fragments the base station received (complete only when
            ``flush.success``).
        heartbeat_delivered: whether the liveness update got through.
        battery_fraction: battery remaining after the slot.
    """

    measurement_id: int
    flush: FlushStats
    packets: list[DataPacket]
    heartbeat_delivered: bool
    battery_fraction: float


class Mote:
    """One duty-cycled vibration sensor mote."""

    def __init__(
        self,
        sensor_id: int,
        link: LossyLink,
        measurement_source: Callable[[int], np.ndarray],
        sampling_rate_hz: float = 4000.0,
        energy: EnergyConfig | None = None,
        max_flush_rounds: int = 20,
        injector=None,
        retry_policy=None,
    ):
        """Create a mote.

        Args:
            sensor_id: unique mote identifier.
            link: radio link to the base station.
            measurement_source: callable producing the int16 count block
                ``(K, 3)`` for a given measurement id (the attached
                MEMS sensor).
            sampling_rate_hz: configured sampling rate.
            energy: battery model configuration.
            max_flush_rounds: Flush round budget per transfer.
            injector: optional chaos fault injector passed through to
                every Flush transfer.
            retry_policy: optional retry policy (duck-typed
                :class:`repro.chaos.retry.RetryPolicy`); each transfer
                gets a fresh session seeded by its measurement id.
        """
        if sampling_rate_hz <= 0:
            raise ValueError("sampling_rate_hz must be positive")
        self.sensor_id = sensor_id
        self.link = link
        self.measurement_source = measurement_source
        self.sampling_rate_hz = sampling_rate_hz
        self.battery = BatteryTracker(energy)
        self.max_flush_rounds = max_flush_rounds
        self.injector = injector
        self.retry_policy = retry_policy
        self.state = MoteState.SLEEP
        self.next_measurement_id = 0
        self.booted = False

    def boot(self) -> int:
        """Boot-up notification; returns the sensor id it registers with."""
        if self.state is MoteState.DEAD:
            raise RuntimeError("dead motes cannot boot")
        self.booted = True
        return self.sensor_id

    def execute_slot(self, sleep_seconds_since_last: float = 0.0) -> RoundOutcome | None:
        """Run one wakeup slot: measure, Flush-transfer, heartbeat, sleep.

        Args:
            sleep_seconds_since_last: how long the mote slept before this
                slot, for battery accounting.

        Returns:
            RoundOutcome, or None when the battery was already depleted
            (the mote transitions to DEAD and stays silent — the server
            notices the missing heartbeat).
        """
        if not self.booted:
            raise RuntimeError("mote must boot before executing slots")
        if self.state is MoteState.DEAD:
            return None
        self.battery.sleep(sleep_seconds_since_last)
        if self.battery.depleted:
            self.state = MoteState.DEAD
            return None

        self.state = MoteState.ACTIVE
        measurement_id = self.next_measurement_id
        self.next_measurement_id += 1

        # Round period: sample and bulk-transfer.
        counts = self.measurement_source(measurement_id)
        self.battery.measure(self.sampling_rate_hz)
        packets = fragment_measurement(self.sensor_id, measurement_id, counts)
        retry = (
            self.retry_policy.session(seed=measurement_id)
            if self.retry_policy is not None
            else None
        )
        stats, received = flush_transfer(
            packets,
            self.link,
            max_rounds=self.max_flush_rounds,
            injector=self.injector,
            retry=retry,
        )

        # Heartbeat period: one control packet to the management server.
        heartbeat_delivered = self.link.transmit()

        self.state = MoteState.SLEEP
        if self.battery.depleted:
            self.state = MoteState.DEAD
        return RoundOutcome(
            measurement_id=measurement_id,
            flush=stats,
            packets=received,
            heartbeat_delivered=heartbeat_delivered,
            battery_fraction=self.battery.fraction_remaining(),
        )
