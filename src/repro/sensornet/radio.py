"""Lossy low-power radio link model.

A single-hop Bernoulli-loss link with optional burst (Gilbert-Elliott)
behaviour: low-power 802.15.4 links lose packets in bursts when interference
or multipath fading sets in, which is precisely the regime NACK-based bulk
transport has to survive.
"""

from __future__ import annotations

import numpy as np


class LossyLink:
    """Packet-erasure link.

    In the default (Bernoulli) mode every transmission is lost i.i.d. with
    ``loss_probability``.  When ``burst_loss_probability`` is set the link
    follows a two-state Gilbert-Elliott chain: a *good* state with the
    base loss rate and a *bad* state with the burst loss rate, switching
    with the configured transition probabilities per transmission.
    """

    GOOD = "good"
    BAD = "bad"

    def __init__(
        self,
        loss_probability: float = 0.05,
        burst_loss_probability: float | None = None,
        p_good_to_bad: float = 0.02,
        p_bad_to_good: float = 0.2,
        seed: int | np.random.Generator | None = 0,
    ):
        """Create a link.

        Args:
            loss_probability: loss rate in the good state.
            burst_loss_probability: loss rate in the bad state; None
                disables burst behaviour.
            p_good_to_bad: per-transmission probability of entering a
                burst.
            p_bad_to_good: per-transmission probability of leaving it.
            seed: RNG seed or generator.
        """
        for name, p in (
            ("loss_probability", loss_probability),
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if burst_loss_probability is not None and not 0.0 <= burst_loss_probability <= 1.0:
            raise ValueError("burst_loss_probability must be in [0, 1]")
        self.loss_probability = loss_probability
        self.burst_loss_probability = burst_loss_probability
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good
        self._rng = np.random.default_rng(seed)
        self._state = self.GOOD
        self.transmissions = 0
        self.losses = 0

    def _advance_state(self) -> None:
        if self.burst_loss_probability is None:
            return
        if self._state == self.GOOD:
            if self._rng.random() < self.p_good_to_bad:
                self._state = self.BAD
        elif self._rng.random() < self.p_bad_to_good:
            self._state = self.GOOD

    def transmit(self) -> bool:
        """Attempt one transmission; True when the packet gets through."""
        self._advance_state()
        if self._state == self.BAD and self.burst_loss_probability is not None:
            p_loss = self.burst_loss_probability
        else:
            p_loss = self.loss_probability
        self.transmissions += 1
        lost = self._rng.random() < p_loss
        if lost:
            self.losses += 1
        return not lost

    @property
    def observed_loss_rate(self) -> float:
        """Empirical loss rate over the link's lifetime."""
        if self.transmissions == 0:
            return 0.0
        return self.losses / self.transmissions
