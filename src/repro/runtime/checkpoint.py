"""Journaled transform checkpoints: crash-safe, resumable batch runs.

A long fleet-scale run spends most of its wall-clock in the transform
layer, chunk by chunk.  :class:`CheckpointManager` journals each
completed chunk to disk — a content-addressed ``.npz`` payload plus an
entry in a JSON *run manifest* — so a run interrupted by a crash,
``SIGTERM`` or ``SIGINT`` resumes from the last completed chunk instead
of restarting from scratch.  Resume is *idempotent and bit-identical*:

* chunks are addressed by their input digest
  (:func:`~repro.runtime.cache.array_digest` over the raw measurement
  bytes), so a resumed run only reuses a payload when the input bytes
  are exactly the ones that produced it;
* payloads carry an output digest that is re-verified on load, so a
  torn or bit-rotted payload is recomputed instead of trusted;
* every write is atomic (write to a temp file, ``fsync``, then
  ``os.replace``), so the manifest never references a half-written
  payload and a crash mid-write leaves the previous state intact.

The manifest also keeps a *superseded* set: when a chunk slot is
re-recorded with different input bytes, the old input digest is added to
it.  :meth:`CheckpointManager.is_current` lets the
:class:`~repro.runtime.cache.TransformCache` revalidate warm hits after
an interrupted run, so a stale in-memory entry can never resurrect a
superseded chunk (see ``BatchPipeline.transform``).

Format (``manifest.json``, version 1)::

    {
      "version": 1,
      "run_key": "transform-v1",
      "chunks": {
        "0": {"lo": 0, "hi": 8192,
               "input_digest": "<sha1 hex of raw chunk bytes>",
               "payload": "chunk-00000.npz",
               "output_digest": "<sha1 hex over offsets|rms|psd>"},
        ...
      },
      "superseded": ["<sha1 hex>", ...]
    }

A checkpoint directory belongs to one logical run configuration; the
``run_key`` pins it (a manifest written under a different key is ignored
and overwritten on the first record).  See ``docs/RELIABILITY.md`` for
the recovery runbook.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import zipfile
from pathlib import Path

import numpy as np

from repro.runtime.cache import array_digest

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via temp file + fsync + rename.

    After ``os.replace`` the file is either fully the old content or
    fully the new content; the directory entry is fsynced best-effort so
    the rename itself survives power loss on journaling filesystems.
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    try:
        dir_fd = os.open(str(path.parent), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(dir_fd)
    except OSError:  # pragma: no cover - fsync on dirs unsupported
        pass
    finally:
        os.close(dir_fd)


class CheckpointManager:
    """Journaled manifest of completed transform chunks for one run.

    Attributes:
        directory: checkpoint directory (created on first use).
        run_key: configuration fingerprint; a manifest recorded under a
            different key is ignored (fresh start) rather than trusted.
        hits / misses: chunk-level recall counters for profiling.
    """

    def __init__(self, directory: str | os.PathLike, run_key: str = "transform-v1"):
        self.directory = Path(directory)
        self.run_key = str(run_key)
        self.hits = 0
        self.misses = 0
        self._manifest = self._load_manifest()

    # ------------------------------------------------------------------
    # Manifest I/O.
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def _fresh_manifest(self) -> dict:
        return {
            "version": MANIFEST_VERSION,
            "run_key": self.run_key,
            "chunks": {},
            "superseded": [],
        }

    def _load_manifest(self) -> dict:
        try:
            data = json.loads(self.manifest_path.read_text())
        except (OSError, ValueError):
            return self._fresh_manifest()
        if (
            not isinstance(data, dict)
            or data.get("version") != MANIFEST_VERSION
            or data.get("run_key") != self.run_key
            or not isinstance(data.get("chunks"), dict)
            or not isinstance(data.get("superseded"), list)
        ):
            return self._fresh_manifest()
        return data

    def _write_manifest(self) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(self._manifest, indent=1, sort_keys=True).encode()
        _atomic_write_bytes(self.manifest_path, payload)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def chunk_count(self) -> int:
        """Completed chunks currently journaled."""
        return len(self._manifest["chunks"])

    def is_current(self, input_digest: bytes) -> bool:
        """False when a chunk with these input bytes has been superseded.

        The transform cache calls this on every warm hit while a
        checkpoint is armed: a digest that some later run overwrote must
        not be served from memory.
        """
        return input_digest.hex() not in self._manifest["superseded"]

    @staticmethod
    def _output_digest(
        offsets: np.ndarray, rms: np.ndarray, psd: np.ndarray
    ) -> str:
        digest = hashlib.sha1(array_digest(offsets))
        digest.update(array_digest(rms))
        digest.update(array_digest(psd))
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # Chunk recall / journal.
    # ------------------------------------------------------------------
    def load_chunk(
        self, index: int, input_digest: bytes
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Journaled ``(offsets, rms, psd)`` for a chunk, or ``None``.

        Returns ``None`` (self-healing: the caller recomputes) when the
        slot is empty, was recorded for different input bytes, or its
        payload is missing, torn, or fails output-digest verification.
        """
        entry = self._manifest["chunks"].get(str(index))
        if entry is None or entry.get("input_digest") != input_digest.hex():
            self.misses += 1
            return None
        path = self.directory / entry["payload"]
        try:
            with np.load(path) as archive:
                offsets = archive["offsets"]
                rms = archive["rms"]
                psd = archive["psd"]
        except (OSError, ValueError, KeyError, zipfile.BadZipFile):
            self.misses += 1
            return None
        if self._output_digest(offsets, rms, psd) != entry.get("output_digest"):
            self.misses += 1
            return None
        self.hits += 1
        return offsets, rms, psd

    def record_chunk(
        self,
        index: int,
        lo: int,
        hi: int,
        input_digest: bytes,
        offsets: np.ndarray,
        rms: np.ndarray,
        psd: np.ndarray,
    ) -> None:
        """Journal one completed chunk (payload first, then manifest).

        Ordering matters for crash-safety: the payload reaches disk
        before the manifest references it, so the manifest never points
        at a file that may not exist.
        """
        hexdigest = input_digest.hex()
        chunks = self._manifest["chunks"]
        old = chunks.get(str(index))
        if old is not None and old.get("input_digest") != hexdigest:
            superseded = set(self._manifest["superseded"])
            superseded.add(old["input_digest"])
            superseded.discard(hexdigest)
            self._manifest["superseded"] = sorted(superseded)
        elif hexdigest in self._manifest["superseded"]:
            self._manifest["superseded"] = sorted(
                set(self._manifest["superseded"]) - {hexdigest}
            )
        payload_name = f"chunk-{index:05d}.npz"
        buffer = io.BytesIO()
        np.savez(
            buffer,
            offsets=np.ascontiguousarray(offsets),
            rms=np.ascontiguousarray(rms),
            psd=np.ascontiguousarray(psd),
        )
        self.directory.mkdir(parents=True, exist_ok=True)
        _atomic_write_bytes(self.directory / payload_name, buffer.getvalue())
        chunks[str(index)] = {
            "lo": int(lo),
            "hi": int(hi),
            "input_digest": hexdigest,
            "payload": payload_name,
            "output_digest": self._output_digest(offsets, rms, psd),
        }
        self._write_manifest()

    def describe(self) -> str:
        """One-line summary for CLI / log output."""
        return (
            f"checkpoint {self.directory}: {self.chunk_count} chunk(s) journaled, "
            f"{len(self._manifest['superseded'])} superseded digest(s)"
        )
