"""Batched, instrumented execution layer for the analysis workflow.

The scalar :class:`~repro.core.pipeline.AnalysisPipeline` pushes one
measurement at a time through transform → preprocess → features →
RUL; correct, but every stage pays per-measurement Python and FFT-call
overhead.  This package is the production runtime on top of the same
analytical code:

* :class:`~repro.runtime.batch.BatchPipeline` — the whole measurement
  matrix through vectorized kernels (single 2-D DCT, one-shot Hann
  smoothing, vectorized local-maxima scan), bit-identical to the scalar
  reference (the parity tests enforce it);
* :class:`~repro.runtime.fleet.FleetExecutor` — per-pump RUL and
  diagnosis chains fanned across worker threads or processes with
  chunked scheduling and deterministic result ordering (the process
  backend ships large matrices through shared memory, see
  :mod:`repro.runtime.shm`);
* :class:`~repro.runtime.incremental.IncrementalPipelineSession` —
  rolling-window analysis that transforms only never-seen measurement
  rows, recalling the overlap from a content-addressed per-row store;
* :class:`~repro.runtime.cache.PeakFeatureCache` — memoized exemplar
  peaks / per-row peak features / peak distances keyed by config hash
  and data digest, so repeated scoring of the same rows (classifier
  training + full-fleet scoring, repeated engine runs) is paid once;
* :class:`~repro.runtime.profile.RuntimeProfile` — per-stage wall-clock
  timers and counters behind the ``repro analyze --profile`` flag, the
  measurement surface for future benchmark entries.
"""

from repro.runtime.batch import BatchPeakHarmonicFeature, BatchPipeline
from repro.runtime.cache import (
    ModelFitCache,
    PeakFeatureCache,
    TransformCache,
    default_model_fit_cache,
    default_peak_cache,
)
from repro.runtime.checkpoint import CheckpointManager
from repro.runtime.fleet import (
    ABANDONED,
    FleetExecutor,
    SupervisionExhaustedError,
    SupervisionPolicy,
    SupervisionReport,
    WorkerKilledError,
)
from repro.runtime.incremental import IncrementalPipelineSession
from repro.runtime.profile import RuntimeProfile, StageStats
from repro.runtime.shm import SharedArray, SharedArraySpec, attached_view

__all__ = [
    "ABANDONED",
    "BatchPeakHarmonicFeature",
    "BatchPipeline",
    "CheckpointManager",
    "FleetExecutor",
    "IncrementalPipelineSession",
    "ModelFitCache",
    "PeakFeatureCache",
    "RuntimeProfile",
    "SharedArray",
    "SharedArraySpec",
    "StageStats",
    "SupervisionExhaustedError",
    "SupervisionPolicy",
    "SupervisionReport",
    "TransformCache",
    "WorkerKilledError",
    "attached_view",
    "default_model_fit_cache",
    "default_peak_cache",
]
