"""Parallel per-pump execution with deterministic result ordering.

The RUL layer and the spectral diagnoser both run an independent chain of
work per pump (model selection, anchoring, crossing-time projection /
peak extraction over recent PSDs).  :class:`FleetExecutor` fans those
chains across a ``concurrent.futures`` thread pool — the chains are
numpy-bound, so workers spend most of their time outside the GIL — while
guaranteeing that results are assembled in submission order regardless of
worker scheduling.  Determinism rules:

* work items are split into fixed, index-contiguous chunks up front
  (no work stealing), so the partition never depends on thread timing;
* chunk results are reassembled by chunk index, so output order equals
  input order bit-for-bit;
* no RNG is shared across workers — per-pump chains are pure functions
  of their inputs (the RANSAC model discovery, the only seeded stage,
  runs once on the pooled fleet *before* the fan-out).

``max_workers=0`` or a single-item workload degrades to a plain in-line
loop, which is also the reference behaviour the determinism tests
compare against.

Supervision
-----------
Passing a :class:`SupervisionPolicy` arms the self-healing execution
path: each chunk runs under a deadline budget, dead workers (a raised
:class:`WorkerKilledError` on the thread backend, a broken pool on the
process backend) trigger a bounded restart with exponential backoff, and
chunks that exhaust their restart budget are either salvaged (their items
come back as the :data:`ABANDONED` sentinel and ``map_pumps`` drops the
pump) or raise :class:`SupervisionExhaustedError`.  All activity is
tallied in a :class:`SupervisionReport` on the executor.  Because chunk
boundaries and result assembly are unchanged, a supervised run that
needed zero interventions is bit-identical to an unsupervised one.
"""

from __future__ import annotations

import os
import pickle
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

DEFAULT_MAX_WORKERS = 4

#: Supported execution backends.
BACKENDS = ("thread", "process")


class WorkerKilledError(RuntimeError):
    """A fleet worker died mid-chunk (injected or real)."""


class SupervisionExhaustedError(RuntimeError):
    """A chunk burned through its restart budget with ``salvage=False``."""


class _Abandoned:
    """Sentinel for items whose chunk exhausted its restart budget."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "<ABANDONED>"


ABANDONED = _Abandoned()


@dataclass(frozen=True)
class SupervisionPolicy:
    """How the fleet executor supervises its workers.

    Attributes:
        chunk_deadline_s: wall-clock budget per chunk attempt before it is
            declared hung and restarted; ``None`` disables the deadline.
            Enforced only on pooled backends — a serial run has no second
            worker to take over a hung chunk.
        max_restarts: restart budget per chunk (beyond the first attempt).
        backoff_base_s: initial restart backoff; doubles per attempt.
        backoff_max_s: backoff ceiling.
        salvage: when a chunk exhausts its budget, return
            :data:`ABANDONED` for its items (True) instead of raising
            :class:`SupervisionExhaustedError` (False).
        poll_interval_s: supervisor wake-up interval while enforcing a
            deadline.
    """

    chunk_deadline_s: float | None = 30.0
    max_restarts: int = 5
    backoff_base_s: float = 0.01
    backoff_max_s: float = 1.0
    salvage: bool = True
    poll_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.chunk_deadline_s is not None and self.chunk_deadline_s <= 0:
            raise ValueError("chunk_deadline_s must be positive or None")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be non-negative")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff must be non-negative")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")

    def backoff_s(self, attempt: int) -> float:
        """Backoff before restart number ``attempt + 1`` (0-based)."""
        return min(self.backoff_max_s, self.backoff_base_s * (2.0**attempt))


@dataclass
class SupervisionReport:
    """Tally of supervision activity, cumulative over an executor's life."""

    chunks: int = 0
    restarts: int = 0
    worker_deaths: int = 0
    hung_chunks: int = 0
    salvaged_chunks: int = 0
    abandoned_chunks: int = 0
    abandoned_items: int = 0

    @property
    def has_activity(self) -> bool:
        """True when supervision actually intervened at least once."""
        return bool(
            self.restarts
            or self.worker_deaths
            or self.hung_chunks
            or self.abandoned_chunks
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "chunks": self.chunks,
            "restarts": self.restarts,
            "worker_deaths": self.worker_deaths,
            "hung_chunks": self.hung_chunks,
            "salvaged_chunks": self.salvaged_chunks,
            "abandoned_chunks": self.abandoned_chunks,
            "abandoned_items": self.abandoned_items,
        }


def _run_chunk_in_process(payload: tuple) -> list:
    """Top-level chunk runner for the process pool (must be picklable)."""
    fn, chunk_items = payload
    return [fn(item) for item in chunk_items]


def _run_supervised_chunk_in_process(payload: tuple) -> list:
    """Supervised chunk runner: honours parent-drawn kill/hang faults.

    A ``kill`` is a hard ``os._exit`` — the pool genuinely loses the
    worker, exactly like an OOM kill or segfault, so the parent-side
    recovery path (rebuild pool, requeue in-flight chunks) is exercised
    for real rather than simulated.
    """
    fn, chunk_items, kill, hang_s = payload
    if hang_s > 0:
        time.sleep(hang_s)
    if kill:
        os._exit(3)
    return [fn(item) for item in chunk_items]


class _StarApply:
    """Picklable adapter turning ``fn(args_tuple)`` into ``fn(*args)``.

    Replaces the lambda the pump fan-out used to build, so per-pump work
    can cross a process boundary whenever ``fn`` itself pickles.
    """

    def __init__(self, fn: Callable[..., R]):
        self.fn = fn

    def __call__(self, args: tuple) -> R:
        return self.fn(*args)

#: Injection point names (duck-typed contract with repro.chaos.inject).
FLEET_TASK_POINT = "fleet.task"
FLEET_KILL_POINT = "fleet.worker_kill"
FLEET_HANG_POINT = "fleet.worker_hang"

#: Cap on injected per-task delay so chaos suites stay fast.
MAX_INJECTED_DELAY_S = 0.1

#: Cap on injected worker hangs — long enough to trip a test deadline,
#: short enough that zombie workers drain quickly.
MAX_INJECTED_HANG_S = 2.0


def resolve_workers(max_workers: int | None) -> int:
    """Worker count for a requested setting (None = auto).

    Auto picks ``min(DEFAULT_MAX_WORKERS, cpu_count)`` — per-pump chains
    are short, so a small pool amortizes thread start-up without
    oversubscribing small containers.
    """
    if max_workers is None:
        return max(1, min(DEFAULT_MAX_WORKERS, os.cpu_count() or 1))
    if max_workers < 0:
        raise ValueError("max_workers must be non-negative")
    return max_workers


class FleetExecutor:
    """Chunked, order-preserving parallel map over per-pump work items."""

    def __init__(
        self,
        max_workers: int | None = None,
        chunk_size: int | None = None,
        injector=None,
        task_retry=None,
        backend: str = "thread",
        supervision: SupervisionPolicy | None = None,
    ):
        """Create an executor.

        Args:
            max_workers: worker-pool size; ``None`` auto-sizes, ``0`` or
                ``1`` forces serial in-line execution.
            chunk_size: work items per scheduled chunk; ``None`` derives
                ``ceil(n / (4 * workers))`` per call so every worker gets
                a few chunks to smooth uneven per-pump costs.
            injector: optional chaos fault injector; every task is
                faulted at ``fleet.task`` (injected delays and transient
                errors), in serial and pooled mode alike so the fault
                stream is identical for both.  Under supervision, chunk
                submissions additionally draw ``fleet.worker_kill`` and
                ``fleet.worker_hang`` faults.
            task_retry: optional retry policy (duck-typed
                :class:`repro.chaos.retry.RetryPolicy`) wrapping each
                task; transient errors are retried in place, preserving
                result ordering.
            backend: ``"thread"`` (default) or ``"process"``.  The
                process pool sidesteps the GIL for Python-heavy per-pump
                chains, but requires picklable work; calls that cannot
                cross a process boundary (unpicklable ``fn``/items, a
                retry policy, or an injector with ``fleet.task`` specs —
                whose counters live in this process) silently fall back
                to threads, preserving the exact same chunking and
                result order.
            supervision: optional :class:`SupervisionPolicy` arming the
                self-healing execution path; activity is tallied in
                :attr:`supervision_report`.
        """
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.max_workers = resolve_workers(max_workers)
        self.chunk_size = chunk_size
        self.injector = injector
        self.task_retry = task_retry
        self.backend = backend
        self.supervision = supervision
        #: Cumulative supervision tally (None when unsupervised).
        self.supervision_report: SupervisionReport | None = (
            SupervisionReport() if supervision is not None else None
        )
        #: Backend the most recent map actually used ("serial" /
        #: "thread" / "process") — observability for tests and profiles.
        self.last_backend: str | None = None

    def _call(self, fn: Callable[[T], R], item: T) -> R:
        """Run one task through the fault / retry envelope."""
        if self.injector is None and self.task_retry is None:
            return fn(item)

        def attempt() -> R:
            if self.injector is not None:
                delay = self.injector.delay_s(FLEET_TASK_POINT)
                if delay > 0:
                    time.sleep(min(delay, MAX_INJECTED_DELAY_S))
                self.injector.maybe_fail(FLEET_TASK_POINT)
            return fn(item)

        if self.task_retry is not None:
            return self.task_retry.run(attempt)
        return attempt()

    def _chunks(self, n: int) -> list[range]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-n // (4 * max(1, self.max_workers))))
        return [range(lo, min(lo + size, n)) for lo in range(0, n, size)]

    # ------------------------------------------------------------------
    # Supervision internals.
    # ------------------------------------------------------------------
    def _draw_worker_faults(self) -> tuple[bool, float]:
        """Parent-side kill/hang draws for one chunk attempt.

        Drawn in the supervisor (never in workers) so the fault stream is
        a deterministic function of the submission sequence and works
        identically for the thread and process backends — the injector's
        lock does not need to cross a process boundary.
        """
        inj = self.injector
        if inj is None:
            return False, 0.0
        kills = getattr(inj, "kills", None)
        kill = bool(kills(FLEET_KILL_POINT)) if kills is not None else False
        hang = min(inj.delay_s(FLEET_HANG_POINT), MAX_INJECTED_HANG_S)
        return kill, hang

    def _exhaust_chunk(
        self, results: dict[int, list], chunks: list[range], ci: int, attempt: int
    ) -> None:
        """A chunk burned its restart budget: salvage or raise."""
        policy = self.supervision
        report = self.supervision_report
        if not policy.salvage:
            raise SupervisionExhaustedError(
                f"chunk {ci} failed after {attempt + 1} attempts "
                f"(max_restarts={policy.max_restarts})"
            )
        report.abandoned_chunks += 1
        report.abandoned_items += len(chunks[ci])
        results[ci] = [ABANDONED] * len(chunks[ci])

    def _map_supervised_serial(
        self, fn: Callable[[T], R], items: Sequence[T], chunks: list[range]
    ) -> list:
        policy = self.supervision
        report = self.supervision_report
        self.last_backend = "serial"
        results: dict[int, list] = {}
        for ci, chunk in enumerate(chunks):
            attempt = 0
            while True:
                kill, hang_s = self._draw_worker_faults()
                if hang_s > 0:
                    time.sleep(hang_s)
                if not kill:
                    results[ci] = [self._call(fn, items[i]) for i in chunk]
                    report.chunks += 1
                    break
                report.worker_deaths += 1
                if attempt >= policy.max_restarts:
                    self._exhaust_chunk(results, chunks, ci, attempt)
                    break
                time.sleep(policy.backoff_s(attempt))
                attempt += 1
                report.restarts += 1
        self._tally_salvage(results, len(chunks))
        out: list = []
        for ci in range(len(chunks)):
            out.extend(results[ci])
        return out

    def _run_chunk_with_faults(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        chunk: range,
        kill: bool,
        hang_s: float,
    ) -> list:
        """Thread-backend chunk body honouring parent-drawn faults."""
        if hang_s > 0:
            time.sleep(hang_s)
        if kill:
            raise WorkerKilledError("injected worker death")
        return [self._call(fn, items[i]) for i in chunk]

    def _map_supervised_pooled(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        chunks: list[range],
        use_processes: bool,
    ) -> list:
        policy = self.supervision
        report = self.supervision_report
        self.last_backend = "process" if use_processes else "thread"
        n_chunks = len(chunks)
        results: dict[int, list] = {}
        #: (chunk_index, attempt) queue; attempts beyond 0 are restarts.
        pending: deque[tuple[int, int]] = deque((ci, 0) for ci in range(n_chunks))
        #: future -> (chunk_index, attempt, submitted_at, kill_flagged)
        inflight: dict = {}

        def new_pool():
            if use_processes:
                return ProcessPoolExecutor(max_workers=self.max_workers)
            return ThreadPoolExecutor(max_workers=self.max_workers)

        def submit(pool, ci: int, attempt: int) -> None:
            kill, hang_s = self._draw_worker_faults()
            if use_processes:
                payload = (fn, [items[i] for i in chunks[ci]], kill, hang_s)
                fut = pool.submit(_run_supervised_chunk_in_process, payload)
            else:
                fut = pool.submit(
                    self._run_chunk_with_faults, fn, items, chunks[ci], kill, hang_s
                )
            inflight[fut] = (ci, attempt, time.monotonic(), kill)

        def requeue(ci: int, attempt: int) -> None:
            """Restart a failed chunk attempt (or give up on it)."""
            if attempt >= policy.max_restarts:
                self._exhaust_chunk(results, chunks, ci, attempt)
                return
            time.sleep(policy.backoff_s(attempt))
            report.restarts += 1
            pending.append((ci, attempt + 1))

        pool = new_pool()
        try:
            while len(results) < n_chunks:
                while pending and len(inflight) < self.max_workers:
                    ci, attempt = pending.popleft()
                    submit(pool, ci, attempt)
                if not inflight:
                    # Everything left was abandoned via salvage.
                    break
                timeout = (
                    policy.poll_interval_s
                    if policy.chunk_deadline_s is not None
                    else None
                )
                done, _ = wait(
                    list(inflight), timeout=timeout, return_when=FIRST_COMPLETED
                )
                pool_broken = False
                for fut in done:
                    if fut not in inflight:
                        continue
                    ci, attempt, _, kill_flagged = inflight.pop(fut)
                    try:
                        results[ci] = fut.result()
                        report.chunks += 1
                    except WorkerKilledError:
                        report.worker_deaths += 1
                        requeue(ci, attempt)
                    except BrokenProcessPool:
                        # The worker running this chunk died and took the
                        # whole pool with it.  Rebuild, requeue the
                        # culprit with its attempt spent, and requeue
                        # collateral in-flight chunks for free — their
                        # failure was not their own.
                        report.worker_deaths += 1
                        requeue(ci, attempt)
                        flagged_any = kill_flagged
                        for other in list(inflight):
                            oci, oattempt, _, okill = inflight.pop(other)
                            if okill and not flagged_any:
                                report.worker_deaths += 1
                                requeue(oci, oattempt)
                                flagged_any = True
                            else:
                                pending.append((oci, oattempt))
                        pool.shutdown(wait=False)
                        pool = new_pool()
                        pool_broken = True
                        break
                if pool_broken:
                    continue
                if policy.chunk_deadline_s is not None:
                    now = time.monotonic()
                    for fut in list(inflight):
                        ci, attempt, t0, _ = inflight[fut]
                        if now - t0 > policy.chunk_deadline_s:
                            # Can't preempt the worker — drop the future
                            # (its late result is ignored) and restart
                            # the chunk elsewhere.
                            fut.cancel()
                            del inflight[fut]
                            report.hung_chunks += 1
                            report.worker_deaths += 1
                            requeue(ci, attempt)
        finally:
            pool.shutdown(wait=True, cancel_futures=True)
        self._tally_salvage(results, n_chunks)
        out: list = []
        for ci in range(n_chunks):
            out.extend(results[ci])
        return out

    def _tally_salvage(self, results: dict[int, list], n_chunks: int) -> None:
        """Count chunks whose results survived a map with abandonment."""
        abandoned_here = sum(
            1
            for ci in range(n_chunks)
            if results[ci] and results[ci][0] is ABANDONED
        )
        if abandoned_here:
            self.supervision_report.salvaged_chunks += n_chunks - abandoned_here

    def map_ordered(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every item; results in input order.

        Exceptions raised by ``fn`` propagate to the caller (the first
        one in chunk order), matching the serial loop's behaviour.  Under
        supervision, items of chunks that exhausted their restart budget
        come back as :data:`ABANDONED` (with ``salvage=True``).
        """
        items = list(items)
        n = len(items)
        if n == 0:
            return []
        if self.max_workers <= 1 or n == 1:
            if self.supervision is not None:
                return self._map_supervised_serial(fn, items, self._chunks(n))
            self.last_backend = "serial"
            return [self._call(fn, item) for item in items]

        chunks = self._chunks(n)
        use_processes = self._processes_usable(fn, items)
        if self.supervision is not None:
            return self._map_supervised_pooled(fn, items, chunks, use_processes)
        if use_processes:
            payloads = [(fn, [items[i] for i in chunk]) for chunk in chunks]
            self.last_backend = "process"
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                chunk_results = list(pool.map(_run_chunk_in_process, payloads))
        else:

            def run_chunk(chunk: range) -> list[R]:
                return [self._call(fn, items[i]) for i in chunk]

            self.last_backend = "thread"
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                chunk_results = list(pool.map(run_chunk, chunks))
        out: list[R] = []
        for partial in chunk_results:
            out.extend(partial)
        return out

    def _processes_usable(self, fn: Callable[[T], R], items: Sequence[T]) -> bool:
        """Whether this map can actually run on the process pool.

        A retry policy disqualifies it outright — its counters are
        in-process state that must observe every task.  An injector
        disqualifies it only when its plan carries ``fleet.task`` specs
        (per-task hooks can't cross the boundary); worker kill/hang and
        storage faults are drawn parent-side, so plans limited to those
        points keep the process pool.  Otherwise a one-item pickle probe
        decides: if ``fn`` and a work item round-trip, so will the rest.
        """
        if self.backend != "process":
            return False
        if self.task_retry is not None:
            return False
        if self.injector is not None:
            plan = getattr(self.injector, "plan", None)
            for_point = getattr(plan, "for_point", None)
            if for_point is None or for_point(FLEET_TASK_POINT):
                return False
        try:
            pickle.dumps((fn, items[0]))
        except Exception:
            return False
        return True

    def map_pumps(
        self,
        fn: Callable[..., R],
        pump_items: Iterable[tuple],
    ) -> dict:
        """Run ``fn(*args)`` per ``(pump_id, *args)`` item, keyed results.

        The returned dict preserves the iteration order of ``pump_items``
        (Python dicts are insertion-ordered), so callers that iterate
        pumps in sorted order get a byte-stable report regardless of the
        worker count.  Pumps whose chunk was abandoned under supervision
        salvage are absent from the dict.
        """
        entries = list(pump_items)
        results = self.map_ordered(
            _StarApply(fn), [tuple(entry[1:]) for entry in entries]
        )
        return {
            entry[0]: result
            for entry, result in zip(entries, results)
            if result is not ABANDONED
        }
