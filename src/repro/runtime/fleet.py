"""Parallel per-pump execution with deterministic result ordering.

The RUL layer and the spectral diagnoser both run an independent chain of
work per pump (model selection, anchoring, crossing-time projection /
peak extraction over recent PSDs).  :class:`FleetExecutor` fans those
chains across a ``concurrent.futures`` thread pool — the chains are
numpy-bound, so workers spend most of their time outside the GIL — while
guaranteeing that results are assembled in submission order regardless of
worker scheduling.  Determinism rules:

* work items are split into fixed, index-contiguous chunks up front
  (no work stealing), so the partition never depends on thread timing;
* chunk results are reassembled by chunk index, so output order equals
  input order bit-for-bit;
* no RNG is shared across workers — per-pump chains are pure functions
  of their inputs (the RANSAC model discovery, the only seeded stage,
  runs once on the pooled fleet *before* the fan-out).

``max_workers=0`` or a single-item workload degrades to a plain in-line
loop, which is also the reference behaviour the determinism tests
compare against.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

DEFAULT_MAX_WORKERS = 4

#: Supported execution backends.
BACKENDS = ("thread", "process")


def _run_chunk_in_process(payload: tuple) -> list:
    """Top-level chunk runner for the process pool (must be picklable)."""
    fn, chunk_items = payload
    return [fn(item) for item in chunk_items]


class _StarApply:
    """Picklable adapter turning ``fn(args_tuple)`` into ``fn(*args)``.

    Replaces the lambda the pump fan-out used to build, so per-pump work
    can cross a process boundary whenever ``fn`` itself pickles.
    """

    def __init__(self, fn: Callable[..., R]):
        self.fn = fn

    def __call__(self, args: tuple) -> R:
        return self.fn(*args)

#: Injection point name (duck-typed contract with repro.chaos.inject).
FLEET_TASK_POINT = "fleet.task"

#: Cap on injected per-task delay so chaos suites stay fast.
MAX_INJECTED_DELAY_S = 0.1


def resolve_workers(max_workers: int | None) -> int:
    """Worker count for a requested setting (None = auto).

    Auto picks ``min(DEFAULT_MAX_WORKERS, cpu_count)`` — per-pump chains
    are short, so a small pool amortizes thread start-up without
    oversubscribing small containers.
    """
    if max_workers is None:
        return max(1, min(DEFAULT_MAX_WORKERS, os.cpu_count() or 1))
    if max_workers < 0:
        raise ValueError("max_workers must be non-negative")
    return max_workers


class FleetExecutor:
    """Chunked, order-preserving parallel map over per-pump work items."""

    def __init__(
        self,
        max_workers: int | None = None,
        chunk_size: int | None = None,
        injector=None,
        task_retry=None,
        backend: str = "thread",
    ):
        """Create an executor.

        Args:
            max_workers: worker-pool size; ``None`` auto-sizes, ``0`` or
                ``1`` forces serial in-line execution.
            chunk_size: work items per scheduled chunk; ``None`` derives
                ``ceil(n / (4 * workers))`` per call so every worker gets
                a few chunks to smooth uneven per-pump costs.
            injector: optional chaos fault injector; every task is
                faulted at ``fleet.task`` (injected delays and transient
                errors), in serial and pooled mode alike so the fault
                stream is identical for both.
            task_retry: optional retry policy (duck-typed
                :class:`repro.chaos.retry.RetryPolicy`) wrapping each
                task; transient errors are retried in place, preserving
                result ordering.
            backend: ``"thread"`` (default) or ``"process"``.  The
                process pool sidesteps the GIL for Python-heavy per-pump
                chains, but requires picklable work; calls that cannot
                cross a process boundary (unpicklable ``fn``/items, or a
                configured injector/retry whose counters live in this
                process) silently fall back to threads, preserving the
                exact same chunking and result order.
        """
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.max_workers = resolve_workers(max_workers)
        self.chunk_size = chunk_size
        self.injector = injector
        self.task_retry = task_retry
        self.backend = backend
        #: Backend the most recent map actually used ("serial" /
        #: "thread" / "process") — observability for tests and profiles.
        self.last_backend: str | None = None

    def _call(self, fn: Callable[[T], R], item: T) -> R:
        """Run one task through the fault / retry envelope."""
        if self.injector is None and self.task_retry is None:
            return fn(item)

        def attempt() -> R:
            if self.injector is not None:
                delay = self.injector.delay_s(FLEET_TASK_POINT)
                if delay > 0:
                    time.sleep(min(delay, MAX_INJECTED_DELAY_S))
                self.injector.maybe_fail(FLEET_TASK_POINT)
            return fn(item)

        if self.task_retry is not None:
            return self.task_retry.run(attempt)
        return attempt()

    def _chunks(self, n: int) -> list[range]:
        size = self.chunk_size
        if size is None:
            size = max(1, -(-n // (4 * self.max_workers)))
        return [range(lo, min(lo + size, n)) for lo in range(0, n, size)]

    def map_ordered(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Apply ``fn`` to every item; results in input order.

        Exceptions raised by ``fn`` propagate to the caller (the first
        one in chunk order), matching the serial loop's behaviour.
        """
        items = list(items)
        n = len(items)
        if n == 0:
            return []
        if self.max_workers <= 1 or n == 1:
            self.last_backend = "serial"
            return [self._call(fn, item) for item in items]

        chunks = self._chunks(n)
        if self._processes_usable(fn, items):
            payloads = [(fn, [items[i] for i in chunk]) for chunk in chunks]
            self.last_backend = "process"
            with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
                chunk_results = list(pool.map(_run_chunk_in_process, payloads))
        else:

            def run_chunk(chunk: range) -> list[R]:
                return [self._call(fn, items[i]) for i in chunk]

            self.last_backend = "thread"
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                chunk_results = list(pool.map(run_chunk, chunks))
        out: list[R] = []
        for partial in chunk_results:
            out.extend(partial)
        return out

    def _processes_usable(self, fn: Callable[[T], R], items: Sequence[T]) -> bool:
        """Whether this map can actually run on the process pool.

        Chaos hooks disqualify it outright — the injector's deterministic
        RNG streams and the retry policy's counters are in-process state
        that must observe every task.  Otherwise a one-item pickle probe
        decides: if ``fn`` and a work item round-trip, so will the rest.
        """
        if self.backend != "process":
            return False
        if self.injector is not None or self.task_retry is not None:
            return False
        try:
            pickle.dumps((fn, items[0]))
        except Exception:
            return False
        return True

    def map_pumps(
        self,
        fn: Callable[..., R],
        pump_items: Iterable[tuple],
    ) -> dict:
        """Run ``fn(*args)`` per ``(pump_id, *args)`` item, keyed results.

        The returned dict preserves the iteration order of ``pump_items``
        (Python dicts are insertion-ordered), so callers that iterate
        pumps in sorted order get a byte-stable report regardless of the
        worker count.
        """
        entries = list(pump_items)
        results = self.map_ordered(
            _StarApply(fn), [tuple(entry[1:]) for entry in entries]
        )
        return {entry[0]: result for entry, result in zip(entries, results)}
