"""Shared-memory transport for large arrays across worker processes.

The process-pool fleet backend must not pickle fleet-scale measurement
matrices into every worker: a paper-scale ``(N, K, 3)`` float64 matrix is
hundreds of MiB, and ``ProcessPoolExecutor`` would serialize it once per
task.  :class:`SharedArray` places the matrix in POSIX shared memory
once; workers attach by name and map the same physical pages read-only.

The helpers are deliberately minimal — create, attach, view, close — and
ownership is explicit: exactly one side (the creator) unlinks.  Workers
must drop their numpy views before closing, which :func:`attached_view`
handles by scoping the view to a context manager.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable handle a worker needs to attach to a shared array."""

    name: str
    shape: tuple[int, ...]
    dtype: str


class SharedArray:
    """Owner side of a numpy array living in POSIX shared memory."""

    def __init__(self, array: np.ndarray):
        """Copy ``array`` into a freshly created shared-memory segment."""
        arr = np.ascontiguousarray(array)
        self._shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
        self._view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=self._shm.buf)
        self._view[...] = arr
        self.spec = SharedArraySpec(self._shm.name, arr.shape, arr.dtype.str)

    @property
    def view(self) -> np.ndarray:
        """The owner's view over the shared pages."""
        return self._view

    def close(self, unlink: bool = True) -> None:
        """Release the owner's mapping (and the segment when ``unlink``)."""
        # The numpy view must die before the mapping can be closed.
        self._view = None
        self._shm.close()
        if unlink:
            self._shm.unlink()

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@contextmanager
def attached_view(spec: SharedArraySpec, writable: bool = False):
    """Worker-side context manager yielding an attached numpy view.

    Read-only by default; ``writable=True`` is for output buffers the
    worker fills (each worker must write only its own row slice).
    """
    shm = shared_memory.SharedMemory(name=spec.name)
    try:
        view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
        if not writable:
            view.flags.writeable = False
        yield view
        del view
    finally:
        shm.close()
