"""Incremental rolling-window analysis: recompute only the delta.

The paper's engine re-analyzes a growing window every refresh interval
(``Te_j = Te_{j-1} + delta``): each new run sees every measurement it
already transformed last time, plus a small tail of new arrivals.  The
chunk-level :class:`~repro.runtime.cache.TransformCache` only helps when
chunk boundaries line up between runs — appending rows shifts every
chunk, so a grown window misses the whole cache.

:class:`IncrementalPipelineSession` memoizes the transform triple
``(offsets, rms, psd)`` *per measurement row*, keyed by the row's
content digest.  Advancing the window then transforms only the rows it
has never seen; the overlap is recalled and merged, and everything
downstream runs through the shared
:meth:`~repro.core.pipeline.AnalysisPipeline.run_from_features`
orchestration.  Per-row transform outputs are pure functions of the row
bytes and every transform op is row-independent, so the merged features
— and therefore the whole report — are bit-identical to a cold run.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.core.pipeline import PipelineResult
from repro.runtime.batch import BatchPipeline
from repro.runtime.cache import array_digest
from repro.runtime.profile import RuntimeProfile

#: Default bound on memoized rows.  A row entry holds ``K + 4`` float64s
#: (~8 KiB at K=1024), so 100k rows caps the session near 800 MiB —
#: comfortably above paper-scale windows, bounded against unbounded ones.
DEFAULT_MAX_ROWS = 100_000


class IncrementalPipelineSession:
    """Rolling-window wrapper over a :class:`BatchPipeline`.

    Not thread-safe: one session per engine, invoked serially per
    refresh, matching the paper's periodic re-analysis loop.
    """

    def __init__(self, pipeline: BatchPipeline, max_rows: int = DEFAULT_MAX_ROWS):
        if max_rows < 1:
            raise ValueError("max_rows must be positive")
        self.pipeline = pipeline
        self.max_rows = max_rows
        self._rows: OrderedDict[bytes, tuple[np.ndarray, float, np.ndarray]] = (
            OrderedDict()
        )
        self.row_hits = 0
        self.row_misses = 0

    def __len__(self) -> int:
        return len(self._rows)

    def clear(self) -> None:
        self._rows.clear()
        self.row_hits = 0
        self.row_misses = 0

    def run(
        self,
        pump_ids: np.ndarray,
        service_days: np.ndarray,
        samples: np.ndarray,
        train_labels: dict[int, str],
        profile: RuntimeProfile | None = None,
    ) -> PipelineResult:
        """Analyze a window, transforming only rows not seen before.

        Same signature and bit-identical output as
        :meth:`BatchPipeline.run`; the difference is purely which rows
        pay for the transform stage.
        """
        blocks = np.asarray(samples, dtype=np.float64)
        if blocks.ndim != 3 or blocks.shape[2] != 3:
            raise ValueError(f"samples must have shape (n, K, 3), got {blocks.shape}")
        n, k = blocks.shape[0], blocks.shape[1]
        if n and k < 2:
            raise ValueError("measurement must contain at least 2 samples")

        digests = [array_digest(blocks[i]) for i in range(n)]
        miss_idx = [i for i, d in enumerate(digests) if d not in self._rows]
        hits = n - len(miss_idx)
        self.row_hits += hits
        self.row_misses += len(miss_idx)

        with self.pipeline._profiled(profile):
            with self.pipeline._stage("transform", len(miss_idx)):
                offsets = np.empty((n, 3))
                rms = np.empty(n)
                psd = np.empty((n, k))
                # Recall hits first: remembering the misses below may
                # evict old entries once the store is full.
                miss_set = set(miss_idx)
                for i, digest in enumerate(digests):
                    if i in miss_set:
                        continue
                    row_off, row_rms, row_psd = self._rows[digest]
                    offsets[i] = row_off
                    rms[i] = row_rms
                    psd[i] = row_psd
                if miss_idx:
                    m_off, m_rms, m_psd = self.pipeline.transform(blocks[miss_idx])
                    offsets[miss_idx] = m_off
                    rms[miss_idx] = m_rms
                    psd[miss_idx] = m_psd
                    for j, i in enumerate(miss_idx):
                        self._remember(
                            digests[i], m_off[j].copy(), float(m_rms[j]), m_psd[j].copy()
                        )
            result = self.pipeline.run_from_features(
                np.asarray(pump_ids),
                np.asarray(service_days, dtype=np.float64),
                offsets,
                rms,
                psd,
                train_labels,
            )
        if profile is not None:
            profile.count("incremental_row_hits", hits)
            profile.count("incremental_row_misses", len(miss_idx))
        return result

    def _remember(
        self, digest: bytes, offsets: np.ndarray, rms: float, psd: np.ndarray
    ) -> None:
        self._rows[digest] = (offsets, rms, psd)
        while len(self._rows) > self.max_rows:
            self._rows.popitem(last=False)
