"""Memoization for harmonic-peak features and peak distances.

The analysis workflow extracts the same harmonic peak features several
times per run: classifier training scores the labelled rows, full-fleet
scoring then rescores every valid row (labelled ones included), and a
dashboard or scheduler invocation repeats the whole thing on identical
data.  Peak extraction and the exemplar build are pure functions of
``(PSD bytes, frequency bytes, peak parameters)``, so a digest-keyed
cache makes the repeats free without any risk of staleness.

Keys are SHA-1 digests of the raw float64 bytes plus the parameter
tuple — content-addressed, so two configs that hash equal *are* equal
work.  The cache is bounded FIFO: entries beyond ``max_entries`` evict
the oldest, which matches the streaming access pattern (old measurement
rows age out of the analysis period and never return).
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from repro.core.distance import pack_peaks, packed_harmonic_distances, peak_harmonic_distance
from repro.core.peaks import HarmonicPeaks


def array_digest(arr: np.ndarray) -> bytes:
    """Content digest of an array's float64 bytes (shape included)."""
    data = np.ascontiguousarray(arr, dtype=np.float64)
    digest = hashlib.sha1(repr(data.shape).encode())
    # memoryview feeds the hash without materializing a bytes copy.
    digest.update(data.data)
    return digest.digest()


class PeakFeatureCache:
    """Bounded, thread-safe memo for peak features and peak distances.

    Three content-addressed namespaces share one eviction budget:

    * ``peaks``: per-row harmonic peak features keyed by
      ``(psd digest, freqs digest, peak params)``;
    * ``exemplar``: Zone A baseline features keyed the same way (the
      exemplar is just the peak feature of the mean reference PSD);
    * ``distance``: scalar ``D_a`` values keyed by the two peak-feature
      digests and the match tolerance.
    """

    def __init__(self, max_entries: int = 200_000):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._store: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self.hits = 0
            self.misses = 0

    def _get(self, key: tuple):
        with self._lock:
            if key in self._store:
                self.hits += 1
                return self._store[key]
            self.misses += 1
            return None

    def _put(self, key: tuple, value) -> None:
        with self._lock:
            self._store[key] = value
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)

    def _get_many(self, keys: list[tuple]) -> list:
        """Batch :meth:`_get` under one lock acquisition.

        Fleet-scale calls probe tens of thousands of keys per stage; a
        single critical section replaces as many lock round-trips while
        keeping the same hit/miss accounting.
        """
        with self._lock:
            store = self._store
            out = [store.get(key) for key in keys]
            found = sum(value is not None for value in out)
            self.hits += found
            self.misses += len(keys) - found
        return out

    def _put_many(self, pairs: list[tuple[tuple, object]]) -> None:
        """Batch :meth:`_put` under one lock acquisition."""
        with self._lock:
            self._store.update(pairs)
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)

    # ------------------------------------------------------------------
    # Peak features.
    # ------------------------------------------------------------------
    @staticmethod
    def peak_params_key(
        num_peaks: int,
        window_size: int,
        skip_dc_bins: int,
        min_significance: float,
    ) -> tuple:
        return (int(num_peaks), int(window_size), int(skip_dc_bins), float(min_significance))

    def peaks_for_rows(
        self,
        psds: np.ndarray,
        frequencies: np.ndarray,
        params_key: tuple,
        compute_batch,
    ) -> list[HarmonicPeaks]:
        """Peak features for every PSD row, batch-computing only misses.

        Args:
            psds: ``(n, K)`` PSD matrix.
            frequencies: ``(K,)`` bin frequencies.
            params_key: :meth:`peak_params_key` of the extraction config.
            compute_batch: callable ``(rows) -> list[HarmonicPeaks]``
                invoked once over the stacked miss rows.

        Returns:
            One feature per row, cache-backed, in row order.
        """
        rows = np.atleast_2d(np.asarray(psds, dtype=np.float64))
        freq_digest = array_digest(frequencies)
        keys = [
            ("peaks", array_digest(row), freq_digest, params_key) for row in rows
        ]
        out: list[HarmonicPeaks | None] = [self._get(key) for key in keys]
        miss_idx = [i for i, value in enumerate(out) if value is None]
        if miss_idx:
            computed = compute_batch(rows[miss_idx])
            for i, peaks in zip(miss_idx, computed):
                self._put(keys[i], peaks)
                out[i] = peaks
        return out  # type: ignore[return-value]

    def exemplar(
        self,
        reference_mean_psd: np.ndarray,
        frequencies: np.ndarray,
        params_key: tuple,
        compute,
    ) -> HarmonicPeaks:
        """Memoized Zone A exemplar feature for a mean reference PSD."""
        key = (
            "exemplar",
            array_digest(reference_mean_psd),
            array_digest(frequencies),
            params_key,
        )
        cached = self._get(key)
        if cached is None:
            cached = compute()
            self._put(key, cached)
        return cached

    # ------------------------------------------------------------------
    # Distances.
    # ------------------------------------------------------------------
    def distance(
        self,
        peaks: HarmonicPeaks,
        reference: HarmonicPeaks,
        match_tolerance_hz: float,
    ) -> float:
        """Memoized peak harmonic distance between two features."""
        key = (
            "distance",
            self._peaks_digest(peaks),
            self._peaks_digest(reference),
            float(match_tolerance_hz),
        )
        cached = self._get(key)
        if cached is None:
            cached = peak_harmonic_distance(
                peaks, reference, match_tolerance_hz=match_tolerance_hz
            )
            self._put(key, cached)
        return cached  # type: ignore[return-value]

    def distances(
        self,
        peaks_list: list[HarmonicPeaks],
        reference: HarmonicPeaks,
        match_tolerance_hz: float,
    ) -> np.ndarray:
        """Memoized ``D_a`` for many features against one reference.

        Misses are packed and resolved through the batched Algorithm 1
        kernel in a single vectorized call (bit-identical to the scalar
        :meth:`distance` per row); hits come straight from the store.
        Repeated features within one call compute once.

        Args:
            peaks_list: per-measurement peak features, row order.
            reference: the shared exemplar feature.
            match_tolerance_hz: maximum physical frequency gap for a match.

        Returns:
            ``(len(peaks_list),)`` float64 distances, cache-backed.
        """
        ref_digest = self._peaks_digest(reference)
        tol = float(match_tolerance_hz)
        keys = [
            ("distance", self._peaks_digest(peaks), ref_digest, tol)
            for peaks in peaks_list
        ]
        out = np.empty(len(peaks_list))
        miss_idx: list[int] = []
        first_for_key: dict[tuple, int] = {}
        for i, key in enumerate(keys):
            cached = self._get(key)
            if cached is not None:
                out[i] = cached
            else:
                # Duplicate misses within one call compute once below.
                first_for_key.setdefault(key, i)
                miss_idx.append(i)
        if first_for_key:
            unique_idx = list(first_for_key.values())
            computed = packed_harmonic_distances(
                pack_peaks([peaks_list[i] for i in unique_idx]),
                reference,
                match_tolerance_hz=tol,
            )
            values = {}
            for i, value in zip(unique_idx, computed):
                values[keys[i]] = float(value)
                self._put(keys[i], float(value))
            for i in miss_idx:
                out[i] = values[keys[i]]
        return out

    # ------------------------------------------------------------------
    # Fused per-row scoring.
    # ------------------------------------------------------------------
    def scores_for_rows(
        self,
        psds: np.ndarray,
        frequencies: np.ndarray,
        params_key: tuple,
        reference: HarmonicPeaks,
        match_tolerance_hz: float,
        compute_peaks_batch,
    ) -> np.ndarray:
        """``D_a`` per PSD row with a single digest pass over the rows.

        The two-step path (:meth:`peaks_for_rows` then :meth:`distances`)
        hashes every row for the peaks lookup and then every peak feature
        for the distance lookup — two Python-level passes over the fleet
        even when everything hits.  Here each PSD row is digested once
        and that digest keys *both* namespaces: a warm row resolves its
        distance directly (``("distance", row, freqs, params, ref, tol)``)
        without ever materializing the peak feature, and a cold row fills
        the ``peaks`` entry and the row-keyed distance entry from one
        batched extraction + one batched Algorithm 1 call.

        Args:
            psds: ``(n, K)`` PSD matrix.
            frequencies: ``(K,)`` bin frequencies.
            params_key: :meth:`peak_params_key` of the extraction config.
            reference: the shared exemplar feature.
            match_tolerance_hz: maximum physical frequency gap for a match.
            compute_peaks_batch: callable ``(rows) -> list[HarmonicPeaks]``
                invoked once over the stacked peak-miss rows.

        Returns:
            ``(n,)`` float64 distances, bit-identical to the two-step path.
        """
        rows = np.atleast_2d(np.asarray(psds, dtype=np.float64))
        freq_digest = array_digest(frequencies)
        ref_digest = self._peaks_digest(reference)
        tol = float(match_tolerance_hz)
        row_digests = [array_digest(row) for row in rows]
        dist_keys = [
            ("distance", digest, freq_digest, params_key, ref_digest, tol)
            for digest in row_digests
        ]
        out = np.empty(rows.shape[0])
        cached_dists = self._get_many(dist_keys)
        miss_idx: list[int] = []
        first_for_key: dict[tuple, int] = {}
        for i, cached in enumerate(cached_dists):
            if cached is not None:
                out[i] = cached
            else:
                # Duplicate rows within one call compute once below.
                first_for_key.setdefault(dist_keys[i], i)
                miss_idx.append(i)
        if first_for_key:
            unique_idx = list(first_for_key.values())
            peak_keys = [
                ("peaks", row_digests[i], freq_digest, params_key) for i in unique_idx
            ]
            cached_peaks = self._get_many(peak_keys)
            peaks_by_row: dict[int, HarmonicPeaks] = {
                i: peaks
                for i, peaks in zip(unique_idx, cached_peaks)
                if peaks is not None
            }
            peaks_miss = [i for i, p in zip(unique_idx, cached_peaks) if p is None]
            if peaks_miss:
                computed = compute_peaks_batch(rows[peaks_miss])
                self._put_many(
                    [
                        (("peaks", row_digests[i], freq_digest, params_key), peaks)
                        for i, peaks in zip(peaks_miss, computed)
                    ]
                )
                peaks_by_row.update(zip(peaks_miss, computed))
            distances = packed_harmonic_distances(
                pack_peaks([peaks_by_row[i] for i in unique_idx]),
                reference,
                match_tolerance_hz=tol,
            )
            values: dict[tuple, float] = {
                dist_keys[i]: float(value) for i, value in zip(unique_idx, distances)
            }
            self._put_many(list(values.items()))
            for i in miss_idx:
                out[i] = values[dist_keys[i]]
        return out

    @staticmethod
    def _peaks_digest(peaks: HarmonicPeaks) -> bytes:
        freqs = np.ascontiguousarray(peaks.frequencies, dtype=np.float64)
        vals = np.ascontiguousarray(peaks.values, dtype=np.float64)
        digest = hashlib.sha1(repr(freqs.shape).encode())
        digest.update(freqs.data)
        digest.update(vals.data)
        return digest.digest()


class TransformCache:
    """Small content-addressed memo for transform-layer outputs.

    Measurement blocks are immutable sensor data, so the transform layer
    is a pure function of the raw byte content — and the operational loop
    (``analyze`` → ``schedule`` → ``dashboard``, periodic re-analysis of
    a mostly-unchanged window) recomputes it on identical inputs.  One
    SHA-1 pass over the raw chunk (~5× cheaper than the batched DCT
    pipeline itself) retrieves the ``(offsets, rms, psd)`` triple.

    Entries hold full PSD matrices, so the store is kept *small* (a few
    chunks, FIFO-evicted) rather than sharing the peak cache's large
    entry budget.  Cached arrays are treated as immutable; hits return
    copies so callers can never corrupt the store.
    """

    def __init__(self, max_entries: int = 4):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._store: OrderedDict[bytes, tuple[np.ndarray, np.ndarray, np.ndarray]] = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self.hits = 0
            self.misses = 0

    def invalidate(self, key: bytes) -> None:
        """Drop one entry (no-op when absent).

        The batch pipeline calls this when a checkpoint manifest marks a
        chunk digest as superseded — a stale warm entry must never
        resurrect a chunk that a later run overwrote.
        """
        with self._lock:
            self._store.pop(key, None)

    def get(self, key: bytes) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """Cached ``(offsets, rms, psd)`` for a raw-chunk digest, or None."""
        with self._lock:
            entry = self._store.get(key)
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            offsets, rms, psd = entry
        return offsets.copy(), rms.copy(), psd.copy()

    def put(
        self,
        key: bytes,
        offsets: np.ndarray,
        rms: np.ndarray,
        psd: np.ndarray,
    ) -> None:
        # Store private copies: callers typically pass views into their
        # own (mutable, possibly short-lived) result buffers.
        entry = (offsets.copy(), rms.copy(), psd.copy())
        with self._lock:
            self._store[key] = entry
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)

    def put_owned(
        self,
        key: bytes,
        offsets: np.ndarray,
        rms: np.ndarray,
        psd: np.ndarray,
    ) -> None:
        """Store arrays the caller hands over, without defensive copies.

        Contract: the caller transfers ownership and must have frozen
        every base buffer (``setflags(write=False)``) so no alias can
        mutate the stored entry afterwards.  The batch pipeline uses
        this on the cold path, where copying fleet-scale PSD chunks
        would cost more than the transform cache saves.

        Raises:
            ValueError: if any array (or its base buffer) is writable.
        """
        for arr in (offsets, rms, psd):
            base = arr.base if arr.base is not None else arr
            if arr.flags.writeable or getattr(base, "flags", base).writeable:
                raise ValueError("put_owned requires frozen (read-only) arrays")
        entry = (offsets, rms, psd)
        with self._lock:
            self._store[key] = entry
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)


class ModelFitCache:
    """Bounded, thread-safe memo for lifetime-model fits.

    A recursive-RANSAC fit is a pure function of ``(engine config +
    initial RNG state, fit data)`` — :meth:`RecursiveRANSAC.config_key
    <repro.core.ransac.RecursiveRANSAC.config_key>` captures the former
    and a content digest of the ``(x, z)`` arrays the latter.  The
    walk-forward backtest exploits this: consecutive refresh days whose
    prefix windows contain the same valid points (no new measurements
    landed in between) hash equal and reuse the fitted models outright.

    Values are lists of frozen :class:`~repro.core.ransac.LineModel`
    instances; callers must treat them (and their index arrays) as
    immutable.  Eviction is FIFO like the other runtime caches.
    """

    def __init__(self, max_entries: int = 512):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._store: OrderedDict[tuple, list] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        with self._lock:
            self._store.clear()
            self.hits = 0
            self.misses = 0

    @staticmethod
    def fit_key(config_key: tuple, x: np.ndarray, z: np.ndarray) -> tuple:
        """Content-addressed key for a fit: engine config + data digests."""
        return ("model-fit", config_key, array_digest(x), array_digest(z))

    def models(self, key: tuple, compute) -> list:
        """Cached model list for ``key``; ``compute()`` fills a miss."""
        with self._lock:
            if key in self._store:
                self.hits += 1
                return self._store[key]
            self.misses += 1
        models = compute()
        with self._lock:
            self._store[key] = models
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
        return models


_DEFAULT_CACHE = PeakFeatureCache()

_DEFAULT_MODEL_FIT_CACHE = ModelFitCache()


def default_peak_cache() -> PeakFeatureCache:
    """The process-wide cache shared by batch pipelines by default."""
    return _DEFAULT_CACHE


def default_model_fit_cache() -> ModelFitCache:
    """The process-wide lifetime-model fit memo (backtests share it)."""
    return _DEFAULT_MODEL_FIT_CACHE
