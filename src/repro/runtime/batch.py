"""Batched, bit-identical execution of the Fig. 7 analytical workflow.

:class:`BatchPipeline` subclasses the scalar
:class:`~repro.core.pipeline.AnalysisPipeline` and replaces its
per-measurement loops with whole-matrix kernels:

* **transform** — one batched DCT-II over ``(n, K, 3)`` plus broadcast
  mean-offset calibration and a vectorized RMS reduction, instead of
  ``n`` separate FFT calls;
* **feature extraction** — :class:`BatchPeakHarmonicFeature` smooths and
  scans every PSD row at once (``smooth_hann_batch`` + the vectorized
  local-maxima mask) and memoizes exemplar peaks / per-row peak features
  / peak distances in a :class:`~repro.runtime.cache.PeakFeatureCache`;
* **RUL predictions** — the per-pump prediction chains fan out across a
  :class:`~repro.runtime.fleet.FleetExecutor`.

The contract with the scalar path is *bit-identity*, not mere numerical
closeness: the batched kernels are constructed so that every float sees
the same operations in the same order as the scalar reference (the
parity tests in ``tests/runtime/`` enforce element-wise equality and the
determinism tests enforce byte-identical reports).  The scalar pipeline
stays the reference implementation of record; this module is the
production runtime on top of it.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager, nullcontext

import numpy as np
from scipy.fft import dct

from repro.core.classify import PeakHarmonicFeature, ZoneClassifier
from repro.core.peaks import (
    DEFAULT_MIN_SIGNIFICANCE,
    DEFAULT_NUM_PEAKS,
    DEFAULT_WINDOW_SIZE,
    extract_harmonic_peaks,
    extract_harmonic_peaks_batch,
)
from repro.core.pipeline import AnalysisPipeline, PipelineConfig, PipelineResult
from repro.core.rul import RULEstimator, RULPrediction
from repro.runtime.cache import (
    PeakFeatureCache,
    TransformCache,
    array_digest,
    default_peak_cache,
)
from repro.runtime.fleet import FleetExecutor
from repro.runtime.profile import RuntimeProfile
from repro.runtime.shm import SharedArray, SharedArraySpec, attached_view

#: Rows per transform chunk.  8192 blocks of (1024, 3) float64 is ~192 MiB
#: of input per chunk — enough to amortize the DCT call, small enough to
#: keep peak memory bounded on fleet-scale matrices.
DEFAULT_CHUNK_ROWS = 8192

#: Rows per transform compute tile *within* a chunk.  The chunk is the
#: content-addressed cache unit; the tile is the unit of actual compute.
#: Small tiles keep the working set (normalized block, transposed DCT
#: scratch) inside a few MiB that the two preallocated buffers recycle,
#: instead of faulting in hundreds of MiB of fresh temporaries per
#: chunk — measured ~4x faster on the 8,640-row fleet matrix with
#: bit-identical output (the DCT and every reduction are row-local, so
#: tile boundaries cannot change a single float).
TRANSFORM_TILE_ROWS = 256


def _transform_tiled(
    blocks: np.ndarray,
    lo: int,
    hi: int,
    offsets: np.ndarray,
    rms: np.ndarray,
    psd: np.ndarray,
) -> None:
    """Compute transform outputs for rows ``[lo, hi)`` tile by tile.

    Writes the mean offsets, RMS and PSD rows in place.  Both the
    in-process chunk loop and the shared-memory worker run this exact
    function, so outputs are bit-identical regardless of which backend
    (or which chunking) executed a row.

    Raises:
        ValueError: if any sample in ``[lo, hi)`` is non-finite.
    """
    k = blocks.shape[1]
    tile = TRANSFORM_TILE_ROWS
    norm = np.empty((min(tile, max(hi - lo, 1)), k, 3))
    work = np.empty((norm.shape[0], 3, k))
    for tlo in range(lo, hi, tile):
        thi = min(tlo + tile, hi)
        m = thi - tlo
        chunk = blocks[tlo:thi]
        if not np.all(np.isfinite(chunk)):
            raise ValueError("measurement contains non-finite samples")
        means = chunk.mean(axis=1)
        normalized = norm[:m]
        np.subtract(chunk, means[:, None, :], out=normalized)
        per_axis_sq = np.square(normalized).sum(axis=1)
        per_axis_sq /= k
        # The DCT and the PSD reduction both run along the K samples, so
        # the (m, 3, K) contiguous scratch keeps every hot inner loop on
        # unit stride; the DCT output is bit-identical across layouts
        # and may destroy the scratch in place.
        transposed = work[:m]
        transposed[...] = normalized.transpose(0, 2, 1)
        coeffs = dct(transposed, type=2, norm="ortho", axis=2, overwrite_x=True)
        offsets[tlo:thi] = means
        rms[tlo:thi] = np.sqrt(per_axis_sq.sum(axis=1))
        # Square and scale in place (coeffs is ours), then reduce the
        # axis dimension; elementwise identical to (coeffs**2 / k).
        np.square(coeffs, out=coeffs)
        coeffs /= k
        psd[tlo:thi] = coeffs.sum(axis=1)


def _transform_chunk_in_process(
    payload: tuple[SharedArraySpec, SharedArraySpec, SharedArraySpec, SharedArraySpec, int, int],
) -> None:
    """Worker body of the process-parallel transform.

    Attaches to the shared input matrix and the three shared output
    buffers, computes one row chunk with the exact op sequence of the
    in-process chunk loop (so outputs are bit-identical regardless of
    which process ran the chunk), and writes only its ``[lo, hi)`` slice.
    """
    in_spec, off_spec, rms_spec, psd_spec, lo, hi = payload
    with attached_view(in_spec) as blocks, attached_view(
        off_spec, writable=True
    ) as offsets, attached_view(rms_spec, writable=True) as rms, attached_view(
        psd_spec, writable=True
    ) as psd:
        _transform_tiled(blocks, lo, hi, offsets, rms, psd)


def finite_block_mask(blocks: np.ndarray) -> np.ndarray:
    """Boolean mask of measurement blocks that are entirely finite.

    The transform stage refuses non-finite input (a NaN row would poison
    the vectorized DCT), so the engine quarantines offending rows up
    front using this mask instead of failing the whole fleet run.

    Args:
        blocks: stacked measurement matrix, shape ``(N, K, 3)`` (or any
            ``(N, ...)`` array — all trailing axes are reduced).

    Returns:
        Shape ``(N,)`` boolean array; ``True`` where every sample of the
        block is finite.
    """
    arr = np.asarray(blocks, dtype=np.float64)
    if arr.ndim < 2:
        return np.isfinite(arr)
    axes = tuple(range(1, arr.ndim))
    return np.isfinite(arr).all(axis=axes)


class BatchPeakHarmonicFeature(PeakHarmonicFeature):
    """Cache-backed, batch-extracting variant of the ``D_a`` feature.

    Produces bit-identical scores to the scalar
    :class:`~repro.core.classify.PeakHarmonicFeature`: smoothing runs
    through the flattened single-convolution kernel and peak selection
    shares the scalar selection code, so only the *batching* differs.
    """

    def __init__(
        self,
        num_peaks: int = DEFAULT_NUM_PEAKS,
        window_size: int = DEFAULT_WINDOW_SIZE,
        cache: PeakFeatureCache | None = None,
    ):
        super().__init__(num_peaks=num_peaks, window_size=window_size)
        self.cache = cache if cache is not None else default_peak_cache()

    def _params_key(self) -> tuple:
        # extract_harmonic_peaks defaults, spelled out so the cache key
        # pins every parameter that shapes the output.
        return PeakFeatureCache.peak_params_key(
            self.num_peaks, self.window_size, 2, DEFAULT_MIN_SIGNIFICANCE
        )

    def fit(
        self, reference_psds: np.ndarray, frequencies: np.ndarray
    ) -> "BatchPeakHarmonicFeature":
        """Build (or recall) the Zone A exemplar from reference PSD rows."""
        ref = np.atleast_2d(np.asarray(reference_psds, dtype=np.float64))
        if ref.shape[0] == 0:
            raise ValueError("at least one reference PSD is required")
        mean_psd = ref.mean(axis=0)
        freqs = np.asarray(frequencies, dtype=np.float64)
        self.baseline_ = self.cache.exemplar(
            mean_psd,
            freqs,
            self._params_key(),
            lambda: extract_harmonic_peaks(
                mean_psd,
                freqs,
                num_peaks=self.num_peaks,
                window_size=self.window_size,
            ),
        )
        return self

    def score_many(self, psds: np.ndarray, frequencies: np.ndarray) -> np.ndarray:
        """``D_a`` per PSD row, batch-extracting only the cache misses.

        Runs through the cache's fused :meth:`~PeakFeatureCache.scores_for_rows`
        so each PSD row is digested exactly once: a warm row resolves its
        distance directly, a cold row fills the peaks entry and the
        row-keyed distance entry from one batched extraction plus one
        batched Algorithm 1 call.
        """
        if self.baseline_ is None:
            raise RuntimeError("feature is not fitted")
        rows = np.atleast_2d(np.asarray(psds, dtype=np.float64))
        freqs = np.asarray(frequencies, dtype=np.float64)
        return self.cache.scores_for_rows(
            rows,
            freqs,
            self._params_key(),
            self.baseline_,
            float(DEFAULT_WINDOW_SIZE),
            lambda miss_rows: extract_harmonic_peaks_batch(
                miss_rows,
                freqs,
                num_peaks=self.num_peaks,
                window_size=self.window_size,
            ),
        )


class BatchPipeline(AnalysisPipeline):
    """Vectorized analysis pipeline with parallel per-pump RUL fan-out.

    Same inputs, same outputs, same exceptions as the scalar
    :class:`~repro.core.pipeline.AnalysisPipeline` — the overridden
    stages swap loops for batched kernels without changing a single
    float.  :meth:`run` additionally accepts a
    :class:`~repro.runtime.profile.RuntimeProfile` to collect per-stage
    wall-clock timings and cache/executor counters.
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        executor: FleetExecutor | None = None,
        cache: PeakFeatureCache | None = None,
        transform_cache: TransformCache | None = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
        checkpoint=None,
    ):
        super().__init__(config)
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be positive")
        self.executor = executor if executor is not None else FleetExecutor()
        self.cache = cache if cache is not None else default_peak_cache()
        self.transform_cache = (
            transform_cache if transform_cache is not None else TransformCache()
        )
        self.chunk_rows = chunk_rows
        #: Optional :class:`~repro.runtime.checkpoint.CheckpointManager`;
        #: when armed, every completed transform chunk is journaled and
        #: recalled on resume, and warm transform-cache hits are
        #: revalidated against the manifest's superseded set.
        self.checkpoint = checkpoint
        self._profile: RuntimeProfile | None = None

    # ------------------------------------------------------------------
    # Instrumentation plumbing.
    # ------------------------------------------------------------------
    def _stage(self, name: str, items: int = 0):
        if self._profile is None:
            return nullcontext()
        return self._profile.stage(name, items)

    # ------------------------------------------------------------------
    # Vectorized stages.
    # ------------------------------------------------------------------
    def transform(self, samples: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Data transformation layer over the whole measurement matrix.

        One batched orthonormal DCT-II per chunk replaces the scalar
        path's per-measurement calls; offsets and RMS come from the same
        broadcast reductions the scalar helpers apply per row, so all
        three outputs are bit-identical to
        :meth:`AnalysisPipeline.transform`.
        """
        blocks = np.asarray(samples, dtype=np.float64)
        if blocks.ndim != 3 or blocks.shape[2] != 3:
            raise ValueError(f"samples must have shape (n, K, 3), got {blocks.shape}")
        n, k = blocks.shape[0], blocks.shape[1]
        if n and k < 2:
            raise ValueError("measurement must contain at least 2 samples")
        offsets = np.empty((n, 3))
        rms = np.empty(n)
        psd = np.empty((n, k))
        ckpt = self.checkpoint
        missed: list[tuple[int, int, int, bytes]] = []
        resumed: list[tuple[int, int, int, bytes]] = []
        for index, lo in enumerate(range(0, n, self.chunk_rows)):
            hi = min(lo + self.chunk_rows, n)
            # Content-addressed transform memo: measurement blocks are
            # immutable, so one digest pass (~5x cheaper than the DCT
            # pipeline) recalls the whole chunk on re-analysis.
            chunk_key = array_digest(blocks[lo:hi])
            cached = self.transform_cache.get(chunk_key)
            if cached is not None and ckpt is not None and not ckpt.is_current(
                chunk_key
            ):
                # A later run overwrote this chunk slot: the warm entry
                # must not resurrect superseded output.  Recompute.
                self.transform_cache.invalidate(chunk_key)
                cached = None
            if cached is not None:
                offsets[lo:hi], rms[lo:hi], psd[lo:hi] = cached
                continue
            if ckpt is not None:
                journaled = ckpt.load_chunk(index, chunk_key)
                if journaled is not None:
                    offsets[lo:hi], rms[lo:hi], psd[lo:hi] = journaled
                    resumed.append((index, lo, hi, chunk_key))
                    continue
            missed.append((index, lo, hi, chunk_key))
        if self._use_process_transform(missed):
            self._transform_chunks_in_processes(blocks, missed, offsets, rms, psd)
            if ckpt is not None:
                for index, lo, hi, chunk_key in missed:
                    ckpt.record_chunk(
                        index, lo, hi, chunk_key,
                        offsets[lo:hi], rms[lo:hi], psd[lo:hi],
                    )
        else:
            for index, lo, hi, chunk_key in missed:
                _transform_tiled(blocks, lo, hi, offsets, rms, psd)
                # Journal each chunk the moment it completes, so a crash
                # mid-run resumes from here rather than from scratch.
                if ckpt is not None:
                    ckpt.record_chunk(
                        index, lo, hi, chunk_key,
                        offsets[lo:hi], rms[lo:hi], psd[lo:hi],
                    )
        if missed or resumed:
            # Ownership transfer: freeze the result buffers and store the
            # missed chunks as views instead of copies — copying
            # fleet-scale PSD chunks costs more than the cache recall
            # saves.  Cold-path callers therefore receive read-only
            # arrays; every downstream stage treats them as immutable.
            offsets.setflags(write=False)
            rms.setflags(write=False)
            psd.setflags(write=False)
            for _, lo, hi, chunk_key in missed + resumed:
                self.transform_cache.put_owned(
                    chunk_key, offsets[lo:hi], rms[lo:hi], psd[lo:hi]
                )
        return offsets, rms, psd

    def _use_process_transform(self, missed: list[tuple[int, int, int, bytes]]) -> bool:
        """Process-parallel transform only when it can actually pay off.

        Requires the executor's process backend (opt-in), more than one
        missed chunk to spread across workers, and a pool bigger than
        one — otherwise the in-process chunk loop is strictly cheaper.
        """
        return (
            self.executor.backend == "process"
            and self.executor.max_workers > 1
            and len(missed) > 1
        )

    def _transform_chunks_in_processes(
        self,
        blocks: np.ndarray,
        missed: list[tuple[int, int, int, bytes]],
        offsets: np.ndarray,
        rms: np.ndarray,
        psd: np.ndarray,
    ) -> None:
        """Fan missed transform chunks across a process pool via shm.

        The measurement matrix is placed in shared memory once (workers
        attach read-only; nothing is pickled per task) and each worker
        writes its chunk's rows into shared output buffers.  Chunk
        boundaries and per-chunk op order match the in-process loop, so
        outputs are bit-identical.  A failing chunk (non-finite samples)
        raises the same ValueError, earliest chunk first.
        """
        with SharedArray(blocks) as shm_in, SharedArray(offsets) as shm_off, SharedArray(
            rms
        ) as shm_rms, SharedArray(psd) as shm_psd:
            payloads = [
                (shm_in.spec, shm_off.spec, shm_rms.spec, shm_psd.spec, lo, hi)
                for _, lo, hi, _key in missed
            ]
            workers = min(self.executor.max_workers, len(missed))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                list(pool.map(_transform_chunk_in_process, payloads))
            for _, lo, hi, _key in missed:
                offsets[lo:hi] = shm_off.view[lo:hi]
                rms[lo:hi] = shm_rms.view[lo:hi]
                psd[lo:hi] = shm_psd.view[lo:hi]

    def _make_classifier(self) -> ZoneClassifier:
        """Zone classifier wired to the batch feature and shared cache."""
        return ZoneClassifier(
            feature=BatchPeakHarmonicFeature(
                num_peaks=self.config.num_peaks,
                window_size=self.config.peak_window_size,
                cache=self.cache,
            )
        )

    def _predict_rul(
        self,
        estimator: RULEstimator,
        ids: np.ndarray,
        days: np.ndarray,
        da: np.ndarray,
        valid: np.ndarray,
    ) -> dict[object, RULPrediction]:
        """Per-pump RUL chains fanned across the fleet executor.

        Work items are built in ``np.unique(ids)`` order and
        :meth:`FleetExecutor.map_pumps` preserves submission order, so
        the resulting dict iterates identically to the scalar loop's.
        """
        if not estimator.n_models:
            return {}
        items = []
        for pump in np.unique(ids):
            member = np.nonzero((ids == pump) & valid)[0]
            if member.size:
                items.append((pump, days[member], da[member]))
        return self.executor.map_pumps(estimator.predict, items)

    # ------------------------------------------------------------------
    # Instrumented end-to-end runs.
    # ------------------------------------------------------------------
    def run(
        self,
        pump_ids: np.ndarray,
        service_days: np.ndarray,
        samples: np.ndarray,
        train_labels: dict[int, str],
        profile: RuntimeProfile | None = None,
    ) -> PipelineResult:
        """Execute the full workflow through the batched kernels.

        The orchestration is the shared
        :meth:`AnalysisPipeline.run` / :meth:`run_from_features` sequence;
        this wrapper only arms the profiler so every ``_stage`` context
        collects wall-clock timings and cache/executor counters.

        Args:
            pump_ids: pump identifier per measurement, shape ``(n,)``.
            service_days: pump service time (days) per measurement.
            samples: raw blocks ``(n, K, 3)`` in g.
            train_labels: measurement index → expert zone label.
            profile: optional per-stage wall-clock collector; stage
                timings and cache/executor counters accumulate into it.

        Returns:
            PipelineResult bit-identical to the scalar pipeline's.
        """
        with self._profiled(profile):
            return super().run(pump_ids, service_days, samples, train_labels)

    def run_from_features(
        self,
        pump_ids: np.ndarray,
        service_days: np.ndarray,
        offsets: np.ndarray,
        rms: np.ndarray,
        psd: np.ndarray,
        train_labels: dict[int, str],
        profile: RuntimeProfile | None = None,
    ) -> PipelineResult:
        """Post-transform workflow with optional profiling (see base)."""
        if profile is None and self._profile is not None:
            # Nested inside an armed run(): keep the active profile.
            return super().run_from_features(
                pump_ids, service_days, offsets, rms, psd, train_labels
            )
        with self._profiled(profile):
            return super().run_from_features(
                pump_ids, service_days, offsets, rms, psd, train_labels
            )

    def _profiled(self, profile: RuntimeProfile | None):
        """Arm ``profile`` for the duration of a run, settling counters."""

        @contextmanager
        def armed():
            self._profile = profile
            hits0, misses0 = self.cache.hits, self.cache.misses
            t_hits0, t_misses0 = self.transform_cache.hits, self.transform_cache.misses
            ckpt = self.checkpoint
            c_hits0, c_misses0 = (
                (ckpt.hits, ckpt.misses) if ckpt is not None else (0, 0)
            )
            sup = self.executor.supervision_report
            sup0 = sup.as_dict() if sup is not None else None
            try:
                yield
                if profile is not None:
                    profile.count("peak_cache_hits", self.cache.hits - hits0)
                    profile.count("peak_cache_misses", self.cache.misses - misses0)
                    profile.count(
                        "transform_cache_hits", self.transform_cache.hits - t_hits0
                    )
                    profile.count(
                        "transform_cache_misses", self.transform_cache.misses - t_misses0
                    )
                    profile.count("fleet_workers", self.executor.max_workers)
                    if ckpt is not None:
                        profile.count("checkpoint_hits", ckpt.hits - c_hits0)
                        profile.count("checkpoint_misses", ckpt.misses - c_misses0)
                    if sup0 is not None:
                        now = self.executor.supervision_report.as_dict()
                        profile.add_supervision(
                            {key: now[key] - sup0[key] for key in now}
                        )
            finally:
                self._profile = None

        return armed()
