"""Batched, bit-identical execution of the Fig. 7 analytical workflow.

:class:`BatchPipeline` subclasses the scalar
:class:`~repro.core.pipeline.AnalysisPipeline` and replaces its
per-measurement loops with whole-matrix kernels:

* **transform** — one batched DCT-II over ``(n, K, 3)`` plus broadcast
  mean-offset calibration and a vectorized RMS reduction, instead of
  ``n`` separate FFT calls;
* **feature extraction** — :class:`BatchPeakHarmonicFeature` smooths and
  scans every PSD row at once (``smooth_hann_batch`` + the vectorized
  local-maxima mask) and memoizes exemplar peaks / per-row peak features
  / peak distances in a :class:`~repro.runtime.cache.PeakFeatureCache`;
* **RUL predictions** — the per-pump prediction chains fan out across a
  :class:`~repro.runtime.fleet.FleetExecutor`.

The contract with the scalar path is *bit-identity*, not mere numerical
closeness: the batched kernels are constructed so that every float sees
the same operations in the same order as the scalar reference (the
parity tests in ``tests/runtime/`` enforce element-wise equality and the
determinism tests enforce byte-identical reports).  The scalar pipeline
stays the reference implementation of record; this module is the
production runtime on top of it.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np
from scipy.fft import dct

from repro.core.classify import PeakHarmonicFeature, ZoneClassifier
from repro.core.peaks import (
    DEFAULT_MIN_SIGNIFICANCE,
    DEFAULT_NUM_PEAKS,
    DEFAULT_WINDOW_SIZE,
    extract_harmonic_peaks,
    extract_harmonic_peaks_batch,
)
from repro.core.pipeline import AnalysisPipeline, PipelineConfig, PipelineResult
from repro.core.rul import RULEstimator, RULPrediction
from repro.runtime.cache import (
    PeakFeatureCache,
    TransformCache,
    array_digest,
    default_peak_cache,
)
from repro.runtime.fleet import FleetExecutor
from repro.runtime.profile import RuntimeProfile

#: Rows per transform chunk.  8192 blocks of (1024, 3) float64 is ~192 MiB
#: of input per chunk — enough to amortize the DCT call, small enough to
#: keep peak memory bounded on fleet-scale matrices.
DEFAULT_CHUNK_ROWS = 8192


def finite_block_mask(blocks: np.ndarray) -> np.ndarray:
    """Boolean mask of measurement blocks that are entirely finite.

    The transform stage refuses non-finite input (a NaN row would poison
    the vectorized DCT), so the engine quarantines offending rows up
    front using this mask instead of failing the whole fleet run.

    Args:
        blocks: stacked measurement matrix, shape ``(N, K, 3)`` (or any
            ``(N, ...)`` array — all trailing axes are reduced).

    Returns:
        Shape ``(N,)`` boolean array; ``True`` where every sample of the
        block is finite.
    """
    arr = np.asarray(blocks, dtype=np.float64)
    if arr.ndim < 2:
        return np.isfinite(arr)
    axes = tuple(range(1, arr.ndim))
    return np.isfinite(arr).all(axis=axes)


class BatchPeakHarmonicFeature(PeakHarmonicFeature):
    """Cache-backed, batch-extracting variant of the ``D_a`` feature.

    Produces bit-identical scores to the scalar
    :class:`~repro.core.classify.PeakHarmonicFeature`: smoothing runs
    through the flattened single-convolution kernel and peak selection
    shares the scalar selection code, so only the *batching* differs.
    """

    def __init__(
        self,
        num_peaks: int = DEFAULT_NUM_PEAKS,
        window_size: int = DEFAULT_WINDOW_SIZE,
        cache: PeakFeatureCache | None = None,
    ):
        super().__init__(num_peaks=num_peaks, window_size=window_size)
        self.cache = cache if cache is not None else default_peak_cache()

    def _params_key(self) -> tuple:
        # extract_harmonic_peaks defaults, spelled out so the cache key
        # pins every parameter that shapes the output.
        return PeakFeatureCache.peak_params_key(
            self.num_peaks, self.window_size, 2, DEFAULT_MIN_SIGNIFICANCE
        )

    def fit(
        self, reference_psds: np.ndarray, frequencies: np.ndarray
    ) -> "BatchPeakHarmonicFeature":
        """Build (or recall) the Zone A exemplar from reference PSD rows."""
        ref = np.atleast_2d(np.asarray(reference_psds, dtype=np.float64))
        if ref.shape[0] == 0:
            raise ValueError("at least one reference PSD is required")
        mean_psd = ref.mean(axis=0)
        freqs = np.asarray(frequencies, dtype=np.float64)
        self.baseline_ = self.cache.exemplar(
            mean_psd,
            freqs,
            self._params_key(),
            lambda: extract_harmonic_peaks(
                mean_psd,
                freqs,
                num_peaks=self.num_peaks,
                window_size=self.window_size,
            ),
        )
        return self

    def score_many(self, psds: np.ndarray, frequencies: np.ndarray) -> np.ndarray:
        """``D_a`` per PSD row, batch-extracting only the cache misses."""
        if self.baseline_ is None:
            raise RuntimeError("feature is not fitted")
        rows = np.atleast_2d(np.asarray(psds, dtype=np.float64))
        freqs = np.asarray(frequencies, dtype=np.float64)
        peaks_list = self.cache.peaks_for_rows(
            rows,
            freqs,
            self._params_key(),
            lambda miss_rows: extract_harmonic_peaks_batch(
                miss_rows,
                freqs,
                num_peaks=self.num_peaks,
                window_size=self.window_size,
            ),
        )
        return np.asarray(
            [
                self.cache.distance(
                    peaks, self.baseline_, float(DEFAULT_WINDOW_SIZE)
                )
                for peaks in peaks_list
            ]
        )


class BatchPipeline(AnalysisPipeline):
    """Vectorized analysis pipeline with parallel per-pump RUL fan-out.

    Same inputs, same outputs, same exceptions as the scalar
    :class:`~repro.core.pipeline.AnalysisPipeline` — the overridden
    stages swap loops for batched kernels without changing a single
    float.  :meth:`run` additionally accepts a
    :class:`~repro.runtime.profile.RuntimeProfile` to collect per-stage
    wall-clock timings and cache/executor counters.
    """

    def __init__(
        self,
        config: PipelineConfig | None = None,
        executor: FleetExecutor | None = None,
        cache: PeakFeatureCache | None = None,
        transform_cache: TransformCache | None = None,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ):
        super().__init__(config)
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be positive")
        self.executor = executor if executor is not None else FleetExecutor()
        self.cache = cache if cache is not None else default_peak_cache()
        self.transform_cache = (
            transform_cache if transform_cache is not None else TransformCache()
        )
        self.chunk_rows = chunk_rows
        self._profile: RuntimeProfile | None = None

    # ------------------------------------------------------------------
    # Instrumentation plumbing.
    # ------------------------------------------------------------------
    def _stage(self, name: str, items: int = 0):
        if self._profile is None:
            return nullcontext()
        return self._profile.stage(name, items)

    # ------------------------------------------------------------------
    # Vectorized stages.
    # ------------------------------------------------------------------
    def transform(self, samples: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Data transformation layer over the whole measurement matrix.

        One batched orthonormal DCT-II per chunk replaces the scalar
        path's per-measurement calls; offsets and RMS come from the same
        broadcast reductions the scalar helpers apply per row, so all
        three outputs are bit-identical to
        :meth:`AnalysisPipeline.transform`.
        """
        blocks = np.asarray(samples, dtype=np.float64)
        if blocks.ndim != 3 or blocks.shape[2] != 3:
            raise ValueError(f"samples must have shape (n, K, 3), got {blocks.shape}")
        n, k = blocks.shape[0], blocks.shape[1]
        if n and k < 2:
            raise ValueError("measurement must contain at least 2 samples")
        offsets = np.empty((n, 3))
        rms = np.empty(n)
        psd = np.empty((n, k))
        for lo in range(0, n, self.chunk_rows):
            hi = min(lo + self.chunk_rows, n)
            chunk = blocks[lo:hi]
            # Content-addressed transform memo: measurement blocks are
            # immutable, so one digest pass (~5x cheaper than the DCT
            # pipeline) recalls the whole chunk on re-analysis.
            chunk_key = array_digest(chunk)
            cached = self.transform_cache.get(chunk_key)
            if cached is not None:
                offsets[lo:hi], rms[lo:hi], psd[lo:hi] = cached
                continue
            if not np.all(np.isfinite(chunk)):
                raise ValueError("measurement contains non-finite samples")
            means = chunk.mean(axis=1)
            normalized = chunk - means[:, None, :]
            per_axis_sq = np.square(normalized).sum(axis=1)
            per_axis_sq /= k
            # `normalized` is scratch from here on, so the DCT may
            # destroy it instead of allocating a fresh output.
            coeffs = dct(normalized, type=2, norm="ortho", axis=1, overwrite_x=True)
            offsets[lo:hi] = means
            rms[lo:hi] = np.sqrt(per_axis_sq.sum(axis=1))
            # Square and scale in place (coeffs is ours), then reduce the
            # axis dimension; elementwise identical to (coeffs**2 / k).
            np.square(coeffs, out=coeffs)
            coeffs /= k
            psd[lo:hi] = coeffs.sum(axis=2)
            self.transform_cache.put(chunk_key, offsets[lo:hi], rms[lo:hi], psd[lo:hi])
        return offsets, rms, psd

    def _make_classifier(self) -> ZoneClassifier:
        """Zone classifier wired to the batch feature and shared cache."""
        return ZoneClassifier(
            feature=BatchPeakHarmonicFeature(
                num_peaks=self.config.num_peaks,
                window_size=self.config.peak_window_size,
                cache=self.cache,
            )
        )

    def _predict_rul(
        self,
        estimator: RULEstimator,
        ids: np.ndarray,
        days: np.ndarray,
        da: np.ndarray,
        valid: np.ndarray,
    ) -> dict[object, RULPrediction]:
        """Per-pump RUL chains fanned across the fleet executor.

        Work items are built in ``np.unique(ids)`` order and
        :meth:`FleetExecutor.map_pumps` preserves submission order, so
        the resulting dict iterates identically to the scalar loop's.
        """
        if not estimator.n_models:
            return {}
        items = []
        for pump in np.unique(ids):
            member = np.nonzero((ids == pump) & valid)[0]
            if member.size:
                items.append((pump, days[member], da[member]))
        return self.executor.map_pumps(estimator.predict, items)

    # ------------------------------------------------------------------
    # Instrumented end-to-end run.
    # ------------------------------------------------------------------
    def run(
        self,
        pump_ids: np.ndarray,
        service_days: np.ndarray,
        samples: np.ndarray,
        train_labels: dict[int, str],
        profile: RuntimeProfile | None = None,
    ) -> PipelineResult:
        """Execute the full workflow through the batched kernels.

        Args:
            pump_ids: pump identifier per measurement, shape ``(n,)``.
            service_days: pump service time (days) per measurement.
            samples: raw blocks ``(n, K, 3)`` in g.
            train_labels: measurement index → expert zone label.
            profile: optional per-stage wall-clock collector; stage
                timings and cache/executor counters accumulate into it.

        Returns:
            PipelineResult bit-identical to the scalar pipeline's.
        """
        self._profile = profile
        hits0, misses0 = self.cache.hits, self.cache.misses
        t_hits0, t_misses0 = self.transform_cache.hits, self.transform_cache.misses
        try:
            ids = np.asarray(pump_ids)
            days = np.asarray(service_days, dtype=np.float64)
            blocks = np.asarray(samples, dtype=np.float64)
            self._validate_inputs(ids, days, blocks, train_labels)
            n = ids.shape[0]

            with self._stage("transform", n):
                offsets, rms, psd = self.transform(blocks)
            with self._stage("preprocess", n):
                valid = self.preprocess(ids, offsets, days)
            freqs = self.frequencies(psd.shape[1])

            with self._stage("fit_classifier", len(train_labels)):
                classifier, train_idx, labels = self._fit_classifier(
                    psd, valid, train_labels, freqs
                )
            valid_idx = np.nonzero(valid)[0]
            with self._stage("score_da", int(valid_idx.size)):
                da = self._score_da(classifier, psd, valid, ids, days, freqs)
            with self._stage("classify_zones", int(valid_idx.size)):
                zones = np.full(n, "", dtype=object)
                zones[valid_idx] = classifier.classifier.predict(da[valid_idx])
            with self._stage("fit_rul"):
                zone_d_threshold, estimator = self._fit_rul(
                    da[train_idx], labels, days, da, valid
                )
            with self._stage("predict_rul", int(np.unique(ids).size)):
                rul = self._predict_rul(estimator, ids, days, da, valid)

            if profile is not None:
                profile.count("peak_cache_hits", self.cache.hits - hits0)
                profile.count("peak_cache_misses", self.cache.misses - misses0)
                profile.count("transform_cache_hits", self.transform_cache.hits - t_hits0)
                profile.count(
                    "transform_cache_misses", self.transform_cache.misses - t_misses0
                )
                profile.count("fleet_workers", self.executor.max_workers)

            thresholds = classifier.thresholds_
            return PipelineResult(
                valid_mask=valid,
                offsets=offsets,
                rms=rms,
                psd=psd,
                da=da,
                zones=zones,
                zone_thresholds=thresholds if thresholds is not None else np.empty(0),
                zone_d_threshold=zone_d_threshold,
                lifetime_models=estimator.models_,
                rul=rul,
            )
        finally:
            self._profile = None
