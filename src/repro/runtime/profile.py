"""Per-stage wall-clock instrumentation for the analysis runtime.

A :class:`RuntimeProfile` collects named stage timings (with item counts)
and scalar counters while an engine run executes, then renders them as an
aligned text report — the measurement surface behind ``repro analyze
--profile``.  Recording is cheap (one ``perf_counter`` pair per stage
entry) and thread-safe, so :class:`~repro.runtime.fleet.FleetExecutor`
workers can report into the same profile.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class StageStats:
    """Accumulated timing of one named stage.

    Attributes:
        name: stage identifier, e.g. ``"transform"``.
        calls: number of times the stage ran.
        seconds: total wall-clock time across calls.
        items: total work items processed (0 when the stage has no
            natural unit).
    """

    name: str
    calls: int = 0
    seconds: float = 0.0
    items: int = 0

    @property
    def ms_per_item(self) -> float:
        """Mean milliseconds per item (0.0 when no items were counted)."""
        if self.items <= 0:
            return 0.0
        return self.seconds * 1000.0 / self.items

    @property
    def items_per_second(self) -> float:
        """Throughput in items/s (0.0 without items or elapsed time)."""
        if self.items <= 0 or self.seconds <= 0:
            return 0.0
        return self.items / self.seconds


@dataclass
class RuntimeProfile:
    """Mutable collection of stage timings and counters for one run."""

    stages: dict[str, StageStats] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @contextmanager
    def stage(self, name: str, items: int = 0):
        """Context manager timing one stage execution.

        Args:
            name: stage identifier; repeated entries accumulate.
            items: number of work items this execution processed.
        """
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add(name, time.perf_counter() - start, items)

    def add(self, name: str, seconds: float, items: int = 0) -> None:
        """Record ``seconds`` of wall-clock (and ``items`` processed)."""
        if seconds < 0:
            raise ValueError("seconds must be non-negative")
        with self._lock:
            stats = self.stages.get(name)
            if stats is None:
                stats = self.stages[name] = StageStats(name)
            stats.calls += 1
            stats.seconds += seconds
            stats.items += items

    def count(self, name: str, n: int = 1) -> None:
        """Increment a scalar counter (cache hits, worker chunks, ...)."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def add_supervision(self, delta: dict[str, int]) -> None:
        """Fold a fleet supervision tally into the counters.

        ``delta`` is a :meth:`SupervisionReport.as_dict`-shaped mapping
        (typically the difference over one run); each field lands as a
        ``supervision_*`` counter so the profile report and JSON export
        surface restart/salvage activity alongside cache statistics.
        """
        for key in (
            "restarts",
            "worker_deaths",
            "hung_chunks",
            "salvaged_chunks",
            "abandoned_chunks",
        ):
            self.count(f"supervision_{key}", int(delta.get(key, 0)))

    @property
    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.stages.values())

    def as_dict(self) -> dict:
        """Plain-dict snapshot (for JSON export and tests)."""
        with self._lock:
            return {
                "stages": {
                    name: {
                        "calls": s.calls,
                        "seconds": s.seconds,
                        "items": s.items,
                        "items_per_second": s.items_per_second,
                    }
                    for name, s in self.stages.items()
                },
                "counters": dict(self.counters),
            }

    def report(self) -> str:
        """Aligned text table of stages (insertion order) and counters."""
        lines = ["RUNTIME PROFILE:"]
        total = self.total_seconds
        header = (
            f"  {'stage':<22} {'calls':>6} {'items':>9} "
            f"{'seconds':>9} {'ms/item':>9} {'items/s':>10} {'share':>7}"
        )
        lines.append(header)
        for stats in self.stages.values():
            share = stats.seconds / total if total > 0 else 0.0
            per_item = f"{stats.ms_per_item:9.3f}" if stats.items else f"{'-':>9}"
            throughput = (
                f"{stats.items_per_second:10.1f}"
                if stats.items_per_second > 0
                else f"{'-':>10}"
            )
            lines.append(
                f"  {stats.name:<22} {stats.calls:>6} {stats.items:>9} "
                f"{stats.seconds:>9.3f} {per_item} {throughput} {share:>6.1%}"
            )
        lines.append(f"  {'total':<22} {'':>6} {'':>9} {total:>9.3f}")
        if self.counters:
            lines.append("  counters: " + "  ".join(
                f"{name}={value}" for name, value in sorted(self.counters.items())
            ))
        return "\n".join(lines)
