"""Seedable fault injector: turns a :class:`~repro.chaos.plan.FaultPlan`
into concrete packet/measurement/record mutations at named hooks.

The injector is the only object the core pipeline modules ever see, and
they see it *duck-typed*: ``flush_transfer``, the gateway, the retrieval
API and the fleet executor each accept an optional ``injector`` and call
the narrow method their injection point needs (:meth:`deliver_packet`,
:meth:`drops`, :meth:`mutate_delivery`, :meth:`mutate_measurements`,
:meth:`maybe_fail`, :meth:`delay_s`).  No core module imports the chaos
package — passing ``None`` (the default everywhere) compiles the hooks
away entirely.

Determinism: each injection point owns an independent RNG stream derived
from ``(plan.seed, point)``, and every hook call consumes a fixed number
of draws per spec.  Replaying the same plan over the same pipeline
therefore fires the same faults in the same places, which is what makes
a chaos run a reproducible experiment (and lets the parity tests assert
byte-identical output under the zero-fault plan).
"""

from __future__ import annotations

import hashlib
import threading
from collections import Counter
from dataclasses import dataclass, replace

import numpy as np

from repro.chaos.plan import FaultPlan, FaultSpec
from repro.chaos.retry import TransientError


class ChaosError(TransientError):
    """A transient, injector-raised failure (retryable by policy)."""


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault, for the experiment log."""

    point: str
    kind: str
    detail: str = ""


def _point_seed(seed: int, point: str) -> int:
    digest = hashlib.sha256(f"{seed}:{point}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


class FaultInjector:
    """Applies a fault plan at the pipeline's injection points.

    Thread-safe: the fleet executor calls :meth:`delay_s` and
    :meth:`maybe_fail` from worker threads, so all RNG draws and event
    bookkeeping happen under one lock.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rngs: dict[str, np.random.Generator] = {}
        self._lock = threading.Lock()
        self.events: list[FaultEvent] = []
        self.counts: Counter[tuple[str, str]] = Counter()

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------
    def _rng(self, point: str) -> np.random.Generator:
        rng = self._rngs.get(point)
        if rng is None:
            rng = np.random.default_rng(_point_seed(self.plan.seed, point))
            self._rngs[point] = rng
        return rng

    def _fired(self, point: str, kinds: tuple[str, ...]) -> list[FaultSpec]:
        """Specs at ``point`` (restricted to ``kinds``) that fire now."""
        specs = [s for s in self.plan.for_point(point) if s.kind in kinds]
        if not specs:
            return []
        with self._lock:
            rng = self._rng(point)
            fired = [s for s in specs if rng.random() < s.probability]
            for spec in fired:
                self.counts[(point, spec.kind)] += 1
        return fired

    def _record(self, point: str, kind: str, detail: str = "") -> None:
        with self._lock:
            self.events.append(FaultEvent(point, kind, detail))

    def fired_count(self, point: str, kind: str | None = None) -> int:
        """How many faults fired at a point (optionally one kind)."""
        with self._lock:
            if kind is not None:
                return self.counts[(point, kind)]
            return sum(n for (p, _), n in self.counts.items() if p == point)

    @property
    def total_fired(self) -> int:
        with self._lock:
            return sum(self.counts.values())

    # ------------------------------------------------------------------
    # Packet-level hooks (flush.data / flush.nack).
    # ------------------------------------------------------------------
    def deliver_packet(self, point: str, packet) -> list:
        """What the receiver sees for one physically delivered packet.

        Returns zero (dropped), one (possibly corrupted/truncated) or
        several (duplicated) packets.
        """
        out = [packet]
        for spec in self._fired(point, ("drop", "corrupt", "truncate", "duplicate")):
            if spec.kind == "drop":
                out = []
            elif spec.kind == "corrupt":
                out = [self._corrupt_packet(point, p) for p in out]
            elif spec.kind == "truncate":
                out = [self._truncate_packet(p, spec) for p in out]
            elif spec.kind == "duplicate":
                out = out + [replace(p) for p in out]
            self._record(point, spec.kind, f"seq={getattr(packet, 'seq', '?')}")
        return out

    def _corrupt_packet(self, point: str, packet):
        payload = packet.payload
        if not payload:
            return packet
        with self._lock:
            idx = int(self._rng(point).integers(len(payload)))
        flipped = bytes(
            b ^ 0xFF if i == idx else b for i, b in enumerate(payload)
        )
        return replace(packet, payload=flipped)

    @staticmethod
    def _truncate_packet(packet, spec: FaultSpec):
        payload = packet.payload
        keep = int(len(payload) * (1.0 - min(spec.magnitude, 1.0)))
        return replace(packet, payload=payload[:keep])

    def drops(self, point: str) -> bool:
        """True when a ``drop`` fault fires at a control-message point."""
        fired = self._fired(point, ("drop",))
        if fired:
            self._record(point, "drop")
        return bool(fired)

    # ------------------------------------------------------------------
    # Gateway hook (gateway.convert).
    # ------------------------------------------------------------------
    def mutate_delivery(self, point: str, delivered):
        """Fault one delivered measurement before conversion.

        Returns ``None`` when the measurement is dropped, otherwise a
        (possibly structurally broken) replacement — a corrupted delivery
        has a flattened count block, which the gateway's shape validation
        rejects into the dead-letter queue.
        """
        for spec in self._fired(point, ("drop", "corrupt", "truncate")):
            self._record(
                point, spec.kind, f"measurement={getattr(delivered, 'measurement_id', '?')}"
            )
            if spec.kind == "drop":
                return None
            if spec.kind == "corrupt":
                delivered = replace(
                    delivered, counts=np.asarray(delivered.counts).reshape(-1)
                )
            elif spec.kind == "truncate":
                counts = np.asarray(delivered.counts)
                keep = max(1, int(counts.shape[0] * (1.0 - min(spec.magnitude, 1.0))))
                delivered = replace(delivered, counts=counts[:keep])
        return delivered

    # ------------------------------------------------------------------
    # Storage read hook (storage.read).
    # ------------------------------------------------------------------
    def mutate_measurements(self, point: str, records: list) -> list:
        """Fault a retrieved record batch: drop, duplicate, NaN-poison,
        or truncate individual records."""
        out = []
        for record in records:
            kept = [record]
            for spec in self._fired(point, ("drop", "corrupt", "truncate", "duplicate")):
                self._record(point, spec.kind, f"measurement={record.measurement_id}")
                if spec.kind == "drop":
                    kept = []
                elif spec.kind == "corrupt":
                    kept = [self._poison_record(point, r) for r in kept]
                elif spec.kind == "truncate":
                    kept = [self._truncate_record(r, spec) for r in kept]
                elif spec.kind == "duplicate":
                    kept = kept + list(kept)
            out.extend(kept)
        return out

    def _poison_record(self, point: str, record):
        samples = np.array(record.samples, dtype=np.float64)
        with self._lock:
            row = int(self._rng(point).integers(samples.shape[0]))
        samples[row, :] = np.nan
        return replace(record, samples=samples)

    @staticmethod
    def _truncate_record(record, spec: FaultSpec):
        samples = np.asarray(record.samples)
        keep = max(2, int(samples.shape[0] * (1.0 - min(spec.magnitude, 1.0))))
        return replace(record, samples=samples[:keep])

    # ------------------------------------------------------------------
    # Failure / stall hooks (storage.write, storage.read, fleet.task).
    # ------------------------------------------------------------------
    def maybe_fail(self, point: str) -> None:
        """Raise :class:`ChaosError` when an ``error`` fault fires."""
        if self._fired(point, ("error",)):
            self._record(point, "error")
            raise ChaosError(f"injected transient failure at {point}")

    def delay_s(self, point: str) -> float:
        """Seconds of injected stall at a point (0.0 when none fires)."""
        total = 0.0
        for spec in self._fired(point, ("delay",)):
            self._record(point, "delay", f"{spec.magnitude:.4f}s")
            total += spec.magnitude
        return total

    # ------------------------------------------------------------------
    # Worker-death hook (fleet.worker_kill).
    # ------------------------------------------------------------------
    def kills(self, point: str) -> bool:
        """True when a ``kill`` fault fires: the supervised fleet executor
        treats this as the death of the worker running the current chunk."""
        fired = self._fired(point, ("kill",))
        if fired:
            self._record(point, "kill")
        return bool(fired)

    # ------------------------------------------------------------------
    # At-rest corruption hooks (storage.blob_corrupt).
    # ------------------------------------------------------------------
    def corrupts(self, point: str) -> bool:
        """True when a ``corrupt`` fault fires against a stored BLOB."""
        fired = self._fired(point, ("corrupt",))
        if fired:
            self._record(point, "corrupt")
        return bool(fired)

    def corrupt_index(self, point: str, n: int) -> int:
        """Deterministic byte offset to damage within an ``n``-byte BLOB."""
        with self._lock:
            return int(self._rng(point).integers(max(1, n)))
