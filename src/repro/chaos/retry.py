"""Retry policy: bounded exponential backoff, deadlines, circuit breaking.

The sensor network and storage layers previously had exactly two failure
modes: raise (poisoning a whole fleet run) or silently give up (a Flush
transfer that exhausts its round budget).  This module supplies the
middle ground every layer now shares:

* :class:`RetryPolicy` — immutable description of a retry discipline:
  bounded attempts, exponential backoff with deterministic jitter, and
  an optional per-operation deadline;
* :class:`RetrySession` — one operation's live retry state (attempt
  counter, RNG, clock), created via :meth:`RetryPolicy.session`;
* :class:`CircuitBreaker` — per-key (per-mote) failure tracking that
  stops hammering an endpoint which has failed repeatedly, with a
  half-open probe after a recovery window;
* :class:`SimulatedClock` — a manual clock so tests (and the chaos
  harness) exercise real backoff schedules without real sleeping.

Core modules receive these objects duck-typed (``retry=None`` defaults
everywhere), so nothing outside the chaos package imports it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np


class TransientError(RuntimeError):
    """Base class for failures a retry policy should absorb."""


class RetryExhaustedError(RuntimeError):
    """An operation failed through every allowed attempt.

    Attributes:
        attempts: how many attempts were made.
        last_error: the final underlying exception (None when the
            operation signalled failure without raising).
    """

    def __init__(self, message: str, attempts: int, last_error: BaseException | None = None):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class MonotonicClock:
    """Wall-clock implementation (the production default)."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class SimulatedClock:
    """Manual clock: ``sleep`` advances ``now`` without blocking."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self.slept = 0.0

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self._now += seconds
        self.slept += seconds

    def advance(self, seconds: float) -> None:
        """Let simulated time pass without counting it as backoff sleep."""
        if seconds < 0:
            raise ValueError("cannot advance backwards")
        self._now += seconds


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    Attributes:
        max_attempts: total attempts allowed (1 = no retries).
        base_delay_s: backoff before the first retry.
        multiplier: backoff growth factor per retry.
        max_delay_s: backoff ceiling.
        jitter: symmetric jitter fraction applied to each delay (0.1 ⇒
            ±10%); drawn from a seeded RNG so schedules are replayable.
        timeout_s: optional per-operation deadline measured on the
            session's clock; a retry whose backoff would cross the
            deadline is not attempted.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.1
    timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive")

    def delay_for(self, attempt: int, rng: np.random.Generator | None = None) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt must be positive")
        delay = min(self.base_delay_s * self.multiplier ** (attempt - 1), self.max_delay_s)
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * float(rng.uniform(-1.0, 1.0))
        return max(delay, 0.0)

    def session(self, seed: int = 0, clock=None) -> "RetrySession":
        """A fresh per-operation retry session."""
        return RetrySession(self, seed=seed, clock=clock)

    def run(self, fn, *, retry_on: tuple = (TransientError,), seed: int = 0, clock=None):
        """Call ``fn`` under this policy, retrying designated failures.

        Raises:
            RetryExhaustedError: when every allowed attempt failed (the
                final underlying exception is chained and attached).
        """
        session = self.session(seed=seed, clock=clock)
        while True:
            try:
                return fn()
            except retry_on as exc:
                if not session.backoff():
                    raise RetryExhaustedError(
                        f"gave up after {session.attempts} attempts: {exc}",
                        attempts=session.attempts,
                        last_error=exc,
                    ) from exc


class RetrySession:
    """Live retry state for one operation.

    Attributes:
        attempts: attempts made so far (starts at 1 — the caller is
            assumed to be inside its first attempt).
    """

    def __init__(self, policy: RetryPolicy, seed: int = 0, clock=None):
        self.policy = policy
        self.clock = clock if clock is not None else MonotonicClock()
        self._rng = np.random.default_rng(seed)
        self._started = self.clock.now()
        self.attempts = 1

    def backoff(self) -> bool:
        """Sleep the next backoff and allow another attempt.

        Returns False (without sleeping) when the attempt budget or the
        deadline is exhausted — the caller must give up.
        """
        if self.attempts >= self.policy.max_attempts:
            return False
        delay = self.policy.delay_for(self.attempts, self._rng)
        if self.policy.timeout_s is not None:
            elapsed = self.clock.now() - self._started
            if elapsed + delay > self.policy.timeout_s:
                return False
        self.clock.sleep(delay)
        self.attempts += 1
        return True


class CircuitBreaker:
    """Per-key failure tracker with open/half-open/closed states.

    After ``failure_threshold`` consecutive failures a key's circuit
    opens: :meth:`allow` answers False until ``recovery_time_s`` has
    passed, after which exactly one probe is allowed (half-open).  A
    success closes the circuit; another failure re-opens it for a fresh
    recovery window.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        failure_threshold: int = 3,
        recovery_time_s: float = 600.0,
        clock=None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be positive")
        if recovery_time_s <= 0:
            raise ValueError("recovery_time_s must be positive")
        self.failure_threshold = failure_threshold
        self.recovery_time_s = recovery_time_s
        self.clock = clock if clock is not None else MonotonicClock()
        self._failures: dict[object, int] = {}
        self._opened_at: dict[object, float] = {}
        self._probing: set[object] = set()

    def state(self, key) -> str:
        if key not in self._opened_at:
            return self.CLOSED
        if self.clock.now() - self._opened_at[key] >= self.recovery_time_s:
            return self.HALF_OPEN
        return self.OPEN

    def allow(self, key) -> bool:
        """May the caller attempt this key right now?"""
        state = self.state(key)
        if state == self.CLOSED:
            return True
        if state == self.HALF_OPEN and key not in self._probing:
            self._probing.add(key)
            return True
        return False

    def record_success(self, key) -> None:
        self._failures.pop(key, None)
        self._opened_at.pop(key, None)
        self._probing.discard(key)

    def record_failure(self, key) -> None:
        self._failures[key] = self._failures.get(key, 0) + 1
        self._probing.discard(key)
        if self._failures[key] >= self.failure_threshold:
            self._opened_at[key] = self.clock.now()

    def open_keys(self) -> list:
        """Keys whose circuit is currently open or half-open."""
        return sorted(self._opened_at, key=repr)
