"""Chaos engineering harness: deterministic fault injection + robustness.

Public surface:

* :mod:`repro.chaos.plan` — :class:`FaultPlan` / :class:`FaultSpec`
  descriptions of chaos experiments, plus the built-in plan catalog;
* :mod:`repro.chaos.inject` — the seedable :class:`FaultInjector` the
  core pipeline hooks call (duck-typed; core modules never import this
  package);
* :mod:`repro.chaos.retry` — retry policies, circuit breaker and the
  simulated clock shared by the robustness layer;
* :mod:`repro.chaos.runner` — the end-to-end scenario runner the chaos
  test suite drives.
"""

from repro.chaos.inject import ChaosError, FaultEvent, FaultInjector
from repro.chaos.plan import (
    BUILTIN_PLANS,
    FAULT_KINDS,
    INJECTION_POINTS,
    ZERO_FAULTS,
    FaultPlan,
    FaultSpec,
)
from repro.chaos.retry import (
    CircuitBreaker,
    MonotonicClock,
    RetryExhaustedError,
    RetryPolicy,
    RetrySession,
    SimulatedClock,
    TransientError,
)
from repro.chaos.runner import (
    ChaosResult,
    ChaosScenario,
    run_chaos_scenario,
    simulate_fleet,
)

__all__ = [
    "BUILTIN_PLANS",
    "FAULT_KINDS",
    "INJECTION_POINTS",
    "ZERO_FAULTS",
    "ChaosError",
    "ChaosResult",
    "ChaosScenario",
    "CircuitBreaker",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "MonotonicClock",
    "RetryExhaustedError",
    "RetryPolicy",
    "RetrySession",
    "SimulatedClock",
    "TransientError",
    "run_chaos_scenario",
    "simulate_fleet",
]
