"""End-to-end chaos scenario runner: mote → Flush → gateway → storage → engine.

Drives the whole reproduction pipeline — fleet simulation, per-measurement
radio transport, gateway ingestion, database storage, analysis engine,
operator report — under a :class:`~repro.chaos.plan.FaultPlan`, with the
full robustness stack wired in: fault injector, retry policies on a
simulated clock, a per-mote circuit breaker and a dead-letter queue.

``plan=None`` runs the *same scenario with no chaos machinery at all*
(no injector, no retries, no breaker, no dead-letter queue) — the
reference the parity tests compare against: a zero-fault plan must
produce a byte-identical operator report, because instrumentation that
changes the answer is not instrumentation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.engine import EngineConfig, VibrationAnalysisEngine
from repro.analysis.reporting import render_report
from repro.chaos.inject import FaultInjector
from repro.chaos.plan import (
    FLEET_TASK,
    FLEET_WORKER_HANG,
    FLEET_WORKER_KILL,
    STORAGE_BLOB_CORRUPT,
    FaultPlan,
)
from repro.chaos.retry import (
    CircuitBreaker,
    RetryExhaustedError,
    RetryPolicy,
    SimulatedClock,
)
from repro.core.pipeline import PipelineConfig
from repro.runtime.fleet import FleetExecutor, SupervisionPolicy
from repro.sensornet.flush import flush_transfer
from repro.sensornet.gateway import GatewayBridge, SensorCalibration
from repro.sensornet.network import CollectionStats, DeliveredMeasurement
from repro.sensornet.packets import fragment_measurement, reassemble_measurement
from repro.sensornet.radio import LossyLink
from repro.simulation.fleet import FleetConfig, FleetDataset, FleetSimulator
from repro.storage.api import AnalysisPeriod, DataRetrievalAPI
from repro.storage.database import VibrationDatabase
from repro.storage.deadletter import DeadLetterQueue

SECONDS_PER_DAY = 86_400.0

#: int16 quantization range of the simulated MEMS ADC.
_COUNT_MIN, _COUNT_MAX = -32768, 32767


def _label_counts_default() -> dict[str, int]:
    return {"A": 10, "BC": 10, "D": 8}


@dataclass(frozen=True)
class ChaosScenario:
    """A small but complete fleet deployment for chaos experiments.

    Sized so one scenario (simulation → transport → analysis) runs in a
    couple of seconds: 8 pumps over 100 days at a 2-day report period is
    400 measurements of 128 samples each, enough for the RANSAC model
    discovery to converge and for every zone to hold enough labelable
    measurements, while every built-in plan still finishes fast.

    Attributes:
        num_pumps: fleet size.
        duration_days: simulated analysis window length.
        report_interval_days: measurement period per pump.
        samples_per_measurement: block length ``K``.
        label_counts: expert-label mix fed to the simulator.
        loss_probability: base radio loss rate (chaos faults stack on
            top of this honest channel loss).
        scale_g_per_count: ADC conversion factor for the simulated
            sensors.
        ransac_min_inliers: pipeline RANSAC support threshold, lowered
            to match the small fleet.
        max_workers: fleet-executor thread count (0 = serial, the
            deterministic reference).
        backend: fleet-executor backend (``"thread"`` or ``"process"``).
        supervision: explicit fleet supervision policy; ``None`` lets
            the runner auto-arm a fast policy whenever the plan carries
            worker kill/hang faults (and run unsupervised otherwise).
        seed: fleet-simulation master seed (the fault plan carries its
            own, independent seed).
    """

    num_pumps: int = 8
    duration_days: float = 100.0
    report_interval_days: float = 2.0
    samples_per_measurement: int = 128
    label_counts: dict[str, int] = field(default_factory=_label_counts_default)
    loss_probability: float = 0.05
    scale_g_per_count: float = 1.0 / 1024.0
    ransac_min_inliers: int = 12
    max_workers: int = 0
    backend: str = "thread"
    supervision: SupervisionPolicy | None = None
    seed: int = 11


@dataclass
class ChaosResult:
    """Everything one chaos run produced.

    Attributes:
        plan: the fault plan driving the run (None = no chaos machinery).
        report: the engine's analysis report; None when analysis could
            not run (graceful failure, see ``failure``).
        text: rendered operator report; None when ``report`` is None.
        transport: aggregate radio-transport statistics.
        stored: measurement records the gateway landed in the database.
        dead_letters: quarantine records accumulated across all stages.
        injector: the fault injector (None without a plan); its
            ``counts`` say which faults actually fired.
        supervision: the fleet executor's cumulative
            :class:`~repro.runtime.fleet.SupervisionReport` (None when
            the run was unsupervised).
        corrupted: ``(pump_id, measurement_id)`` pairs whose stored
            BLOBs were damaged at rest by ``storage.blob_corrupt``.
        failure: short description of why analysis was skipped (e.g. no
            data survived transport), or None on success.  A populated
            ``failure`` is a *handled* outcome, not a crash.
    """

    plan: FaultPlan | None
    report: object | None
    text: str | None
    transport: CollectionStats
    stored: int
    dead_letters: list
    injector: FaultInjector | None
    supervision: object | None = None
    corrupted: list = field(default_factory=list)
    failure: str | None = None


def _link_seed(seed: int, pump_id: int, measurement_id: int) -> int:
    """Independent per-measurement radio seed (stable across plans)."""
    digest = hashlib.sha256(f"{seed}:{pump_id}:{measurement_id}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def _quantize(samples: np.ndarray, scale_g_per_count: float) -> np.ndarray:
    """The mote ADC: physical g readings → int16 counts."""
    counts = np.round(np.asarray(samples, dtype=np.float64) / scale_g_per_count)
    return np.clip(counts, _COUNT_MIN, _COUNT_MAX).astype(np.int16)


def simulate_fleet(scenario: ChaosScenario) -> FleetDataset:
    """Generate the scenario's ground-truth fleet dataset."""
    config = FleetConfig(
        num_pumps=scenario.num_pumps,
        duration_days=scenario.duration_days,
        report_interval_days=scenario.report_interval_days,
        samples_per_measurement=scenario.samples_per_measurement,
        seed=scenario.seed,
    )
    return FleetSimulator(config).run()


def run_chaos_scenario(
    plan: FaultPlan | None,
    scenario: ChaosScenario | None = None,
    dataset: FleetDataset | None = None,
) -> ChaosResult:
    """Run one scenario end to end under a fault plan.

    Args:
        plan: the chaos experiment; ``None`` disables the chaos
            machinery entirely (the parity reference).
        scenario: deployment parameters (defaults apply when None).
        dataset: pre-simulated fleet (pass one to amortize simulation
            across many plans — the chaos test suite does); must have
            been produced by :func:`simulate_fleet` on the same
            scenario.

    Returns:
        A :class:`ChaosResult`.  The function never lets a fault escape:
        injected failures end up retried, dead-lettered, or summarized
        in ``failure`` — an unhandled exception here is a robustness
        bug by definition.
    """
    scenario = scenario if scenario is not None else ChaosScenario()
    if dataset is None:
        dataset = simulate_fleet(scenario)

    chaos = plan is not None
    injector = FaultInjector(plan) if chaos else None
    dead = DeadLetterQueue() if chaos else None
    clock = SimulatedClock() if chaos else None
    transfer_policy = (
        RetryPolicy(max_attempts=3, base_delay_s=0.01, max_delay_s=0.05)
        if chaos
        else None
    )
    io_policy = (
        RetryPolicy(max_attempts=5, base_delay_s=0.01, max_delay_s=0.05)
        if chaos
        else None
    )
    breaker = (
        CircuitBreaker(failure_threshold=3, recovery_time_s=30.0, clock=clock)
        if chaos
        else None
    )

    database = VibrationDatabase()
    for meta in dataset.sensors:
        database.sensors.add(meta)

    # ------------------------------------------------------------------
    # Transport: every measurement rides mote → Flush → base station.
    # ------------------------------------------------------------------
    transport = CollectionStats()
    delivered: list[DeliveredMeasurement] = []
    for m in dataset.measurements:
        if breaker is not None and not breaker.allow(m.pump_id):
            transport.skipped_open_circuit += 1
            dead.add(
                stage="transport",
                pump_id=m.pump_id,
                measurement_id=m.measurement_id,
                reason="circuit-open",
                timestamp_day=m.timestamp_day,
            )
            continue
        counts = _quantize(m.samples, scenario.scale_g_per_count)
        packets = fragment_measurement(m.pump_id, m.measurement_id, counts)
        link = LossyLink(
            loss_probability=scenario.loss_probability,
            seed=_link_seed(scenario.seed, m.pump_id, m.measurement_id),
        )
        retry = (
            transfer_policy.session(seed=m.measurement_id, clock=clock)
            if chaos
            else None
        )
        stats, received = flush_transfer(
            packets, link, injector=injector, retry=retry
        )
        transport.attempted += 1
        transport.data_transmissions += stats.data_transmissions
        transport.nack_transmissions += stats.nack_transmissions
        transport.retransmissions += stats.retransmissions
        transport.duplicates += stats.duplicates
        if breaker is not None:
            if stats.success:
                breaker.record_success(m.pump_id)
            else:
                breaker.record_failure(m.pump_id)
        if not stats.success:
            transport.failed += 1
            if dead is not None:
                dead.add(
                    stage="transport",
                    pump_id=m.pump_id,
                    measurement_id=m.measurement_id,
                    reason="transfer-failed",
                    detail=f"{stats.delivered}/{len(packets)} fragments "
                    f"after {stats.attempts} attempts",
                    timestamp_day=m.timestamp_day,
                )
            continue
        try:
            recovered = reassemble_measurement(received)
        except ValueError as exc:
            transport.failed += 1
            if dead is None:
                raise
            dead.add(
                stage="transport",
                pump_id=m.pump_id,
                measurement_id=m.measurement_id,
                reason="reassembly-failed",
                detail=str(exc),
                timestamp_day=m.timestamp_day,
            )
            continue
        transport.delivered += 1
        delivered.append(
            DeliveredMeasurement(
                sensor_id=m.pump_id,
                measurement_id=m.measurement_id,
                wakeup_time_s=m.timestamp_day * SECONDS_PER_DAY,
                counts=recovered,
            )
        )

    # ------------------------------------------------------------------
    # Gateway: calibrate from the fleet's ground truth, ingest per pump.
    # ------------------------------------------------------------------
    calibrations: dict[int, SensorCalibration] = {}
    for m in dataset.measurements:
        if m.pump_id not in calibrations:
            calibrations[m.pump_id] = SensorCalibration(
                pump_id=m.pump_id,
                scale_g_per_count=scenario.scale_g_per_count,
                sampling_rate_hz=m.sampling_rate_hz,
                install_day=m.timestamp_day - m.service_day,
            )
    bridge = GatewayBridge(calibrations)
    stored = 0
    by_pump: dict[int, list[DeliveredMeasurement]] = {}
    for item in delivered:
        by_pump.setdefault(item.sensor_id, []).append(item)
    for pump_id in sorted(by_pump):
        batch = by_pump[pump_id]
        try:
            stored += bridge.ingest(
                batch,
                database,
                injector=injector,
                dead_letters=dead,
                retry=io_policy,
                retry_clock=clock,
            )
        except RetryExhaustedError as exc:
            for item in batch:
                dead.add(
                    stage="gateway",
                    pump_id=item.sensor_id,
                    measurement_id=item.measurement_id,
                    reason="write-failed",
                    detail=str(exc),
                    timestamp_day=item.wakeup_time_s / SECONDS_PER_DAY,
                )

    labels, _ = dataset.expert_labels(dict(scenario.label_counts))
    database.labels.add_many(labels)
    database.events.add_many(dataset.events)
    database.temperature.add_many(dataset.temperature)
    if dead is not None and len(dead):
        database.dead_letters.add_many(dead.records)

    # ------------------------------------------------------------------
    # Bit rot at rest: flip bytes inside stored BLOBs *after* ingest so
    # the only defense left is the store's checksum verification.
    # ------------------------------------------------------------------
    corrupted: list[tuple[int, int]] = []
    if injector is not None and plan.for_point(STORAGE_BLOB_CORRUPT):
        corrupted = database.measurements.fault_blobs(injector, STORAGE_BLOB_CORRUPT)

    # ------------------------------------------------------------------
    # Analysis: graceful degradation instead of raising.
    # ------------------------------------------------------------------
    period = AnalysisPeriod(0.0, scenario.duration_days + 1.0)
    api = DataRetrievalAPI(
        database, period, injector=injector, retry=io_policy, clock=clock
    )
    engine_config = EngineConfig(
        pipeline=PipelineConfig(
            ransac_min_inliers=scenario.ransac_min_inliers,
        ),
        max_workers=scenario.max_workers,
    )
    # A retry policy on the executor forces the thread backend and is
    # only useful against per-task faults, so it rides along only when
    # the plan actually carries ``fleet.task`` specs.  Worker kill/hang
    # faults are the supervisor's job: auto-arm a fast policy (tight
    # backoff, generous restart budget) unless the scenario pinned one.
    task_faults = bool(chaos and plan.for_point(FLEET_TASK))
    worker_faults = bool(
        chaos
        and (plan.for_point(FLEET_WORKER_KILL) or plan.for_point(FLEET_WORKER_HANG))
    )
    supervision = scenario.supervision
    if supervision is None and worker_faults:
        supervision = SupervisionPolicy(
            chunk_deadline_s=None if scenario.max_workers <= 1 else 5.0,
            max_restarts=10,
            backoff_base_s=0.001,
            backoff_max_s=0.01,
        )
    executor = FleetExecutor(
        max_workers=scenario.max_workers,
        injector=injector,
        task_retry=io_policy if task_faults else None,
        backend=scenario.backend,
        supervision=supervision,
    )
    engine = VibrationAnalysisEngine(api, engine_config, executor=executor)

    report = None
    text = None
    failure = None
    try:
        report = engine.run()
    except (ValueError, RetryExhaustedError) as exc:
        # InsufficientDataError (a ValueError) when too little survived;
        # RetryExhaustedError when storage reads stayed down.  Both are
        # degraded-but-handled outcomes the result records.
        failure = f"{type(exc).__name__}: {exc}"

    # Checksum mismatches are quarantined *inside* the store during the
    # engine's reads; merge its dead-letter rows with the transport- and
    # gateway-stage queue so one list accounts for every lost record.
    storage_dead = database.dead_letters.query(stage="storage") if chaos else []
    all_dead = (list(dead.records) if dead is not None else []) + storage_dead

    if report is not None:
        if report.data_health is not None and dead is not None:
            report.data_health.dead_letters = len(all_dead)
        text = render_report(report)

    return ChaosResult(
        plan=plan,
        report=report,
        text=text,
        transport=transport,
        stored=stored,
        dead_letters=all_dead,
        injector=injector,
        supervision=getattr(executor, "supervision_report", None),
        corrupted=corrupted,
        failure=failure,
    )
