"""Deterministic fault plans: *what* can go wrong, *where*, *how often*.

A :class:`FaultPlan` is a pure-data description of a chaos experiment: a
set of :class:`FaultSpec` entries, each binding a fault *kind* (drop,
corrupt, truncate, duplicate, delay, error) to a named *injection point*
in the pipeline, with a per-event probability and a kind-specific
magnitude.  Plans carry their own seed, so the same plan replayed over
the same pipeline produces the same faults — chaos runs are experiments,
not dice rolls.

Injection points (see :mod:`repro.chaos.inject` for the hook contract):

=======================  ===============================================
``flush.data``           data-packet delivery inside a Flush transfer
``flush.nack``           NACK control messages (base station → mote)
``gateway.convert``      count-block → Measurement conversion at the gateway
``storage.write``        gateway batch insert into the sensor database
``storage.read``         analysis-period retrieval in the data API
``storage.blob_corrupt`` at-rest bit rot of stored measurement BLOBs
``fleet.task``           per-pump work items inside the fleet executor
``fleet.worker_kill``    death of the worker running a fleet chunk
``fleet.worker_hang``    stall of the worker running a fleet chunk
=======================  ===============================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Fault kinds a spec may request.  Not every kind is meaningful at every
#: point (e.g. ``delay`` at ``flush.data`` is a no-op); injectors apply
#: only the kinds their point supports.  ``kill`` is the worker-death
#: kind: only the supervised fleet executor observes it.
FAULT_KINDS = ("drop", "corrupt", "truncate", "duplicate", "delay", "error", "kill")

# Canonical injection point names.  Core modules reference these as plain
# strings so they never need to import the chaos package.
FLUSH_DATA = "flush.data"
FLUSH_NACK = "flush.nack"
GATEWAY_CONVERT = "gateway.convert"
STORAGE_WRITE = "storage.write"
STORAGE_READ = "storage.read"
STORAGE_BLOB_CORRUPT = "storage.blob_corrupt"
FLEET_TASK = "fleet.task"
FLEET_WORKER_KILL = "fleet.worker_kill"
FLEET_WORKER_HANG = "fleet.worker_hang"

INJECTION_POINTS = (
    FLUSH_DATA,
    FLUSH_NACK,
    GATEWAY_CONVERT,
    STORAGE_WRITE,
    STORAGE_READ,
    STORAGE_BLOB_CORRUPT,
    FLEET_TASK,
    FLEET_WORKER_KILL,
    FLEET_WORKER_HANG,
)


@dataclass(frozen=True)
class FaultSpec:
    """One fault channel of a plan.

    Attributes:
        point: injection point name (one of :data:`INJECTION_POINTS`).
        kind: fault kind (one of :data:`FAULT_KINDS`).
        probability: per-event firing probability in ``[0, 1]``.
        magnitude: kind-specific size — fraction of bytes/rows removed
            for ``truncate``, seconds for ``delay``; ignored by ``drop``,
            ``duplicate`` and ``error``.
    """

    point: str
    kind: str
    probability: float
    magnitude: float = 0.5

    def __post_init__(self) -> None:
        if self.point not in INJECTION_POINTS:
            raise ValueError(f"unknown injection point {self.point!r}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.magnitude < 0:
            raise ValueError("magnitude must be non-negative")


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded set of fault specs.

    Attributes:
        name: human-readable experiment name.
        seed: master seed; every injection point derives its own RNG
            stream from ``(seed, point)``, so adding a spec at one point
            never perturbs the fault sequence at another.
        specs: the fault channels.
    """

    name: str
    seed: int
    specs: tuple[FaultSpec, ...] = ()

    def for_point(self, point: str) -> tuple[FaultSpec, ...]:
        """Specs bound to one injection point, in declaration order."""
        return tuple(s for s in self.specs if s.point == point)

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same experiment under a different master seed."""
        return replace(self, seed=int(seed))

    @property
    def points(self) -> tuple[str, ...]:
        """Injection points this plan touches, in declaration order."""
        seen: list[str] = []
        for spec in self.specs:
            if spec.point not in seen:
                seen.append(spec.point)
        return tuple(seen)


ZERO_FAULTS = FaultPlan("zero-faults", seed=0, specs=())
"""The control experiment: full chaos machinery, no faults fired."""


def _plan(name: str, *specs: tuple) -> FaultPlan:
    return FaultPlan(name, seed=0, specs=tuple(FaultSpec(*s) for s in specs))


BUILTIN_PLANS: dict[str, FaultPlan] = {
    "zero-faults": ZERO_FAULTS,
    # Heavy but recoverable packet loss: Flush's NACK recovery plus the
    # transfer retry policy should still deliver every measurement.
    "packet-storm": _plan(
        "packet-storm",
        (FLUSH_DATA, "drop", 0.35),
        (FLUSH_NACK, "drop", 0.5),
    ),
    # A near-dead radio: transfers exhaust their round and retry budgets,
    # the circuit breaker opens, and dead letters record the losses.
    "mote-blackout": _plan(
        "mote-blackout",
        (FLUSH_DATA, "drop", 0.97),
    ),
    # Silent payload damage: bit flips survive transport (garbage data),
    # length truncation breaks reassembly (dead-lettered).
    "bit-rot": _plan(
        "bit-rot",
        (FLUSH_DATA, "corrupt", 0.02),
        (FLUSH_DATA, "truncate", 0.01, 0.5),
        (FLUSH_DATA, "duplicate", 0.05),
    ),
    # Gateway-side trouble: conversions fail or vanish, and the database
    # write path throws transient errors the retry policy must absorb.
    "gateway-flap": _plan(
        "gateway-flap",
        (GATEWAY_CONVERT, "drop", 0.08),
        (GATEWAY_CONVERT, "corrupt", 0.05),
        (GATEWAY_CONVERT, "truncate", 0.05, 0.5),
        (STORAGE_WRITE, "error", 0.4),
    ),
    # Retrieval-side trouble: transient read errors (retried), NaN-
    # poisoned rows (quarantined by the engine), duplicated / truncated /
    # vanished records (absorbed by the preprocessing layer).
    "flaky-storage": _plan(
        "flaky-storage",
        (STORAGE_READ, "error", 0.45),
        (STORAGE_READ, "corrupt", 0.08),
        (STORAGE_READ, "duplicate", 0.05),
        (STORAGE_READ, "truncate", 0.05, 0.5),
        (STORAGE_READ, "drop", 0.05),
    ),
    # Slow, flaky workers inside the analysis fan-out: results must stay
    # deterministic and ordered despite stalls and transient task errors.
    "stalled-fleet": _plan(
        "stalled-fleet",
        (FLEET_TASK, "delay", 0.3, 0.002),
        (FLEET_TASK, "error", 0.2),
    ),
    # Workers die and stall mid-chunk: the supervised fleet executor must
    # restart them with backoff and still produce ordered, bit-identical
    # results.  Hangs are short so the sweep stays fast.
    "worker-carnage": _plan(
        "worker-carnage",
        (FLEET_WORKER_KILL, "kill", 0.25),
        (FLEET_WORKER_HANG, "delay", 0.2, 0.02),
    ),
    # At-rest bit rot: stored BLOBs flip bytes after ingest.  Checksum
    # verification must quarantine the damaged rows to the dead-letter
    # table instead of poisoning downstream PSD/RUL results.
    "bit-rot-at-rest": _plan(
        "bit-rot-at-rest",
        (STORAGE_BLOB_CORRUPT, "corrupt", 0.08),
    ),
    # The ISSUE 4 acceptance scenario: worker kills plus stored-BLOB
    # corruption.  The run must complete, restart workers, quarantine
    # corrupt rows, and keep surviving outputs bit-identical.
    "crash-recovery": _plan(
        "crash-recovery",
        (FLEET_WORKER_KILL, "kill", 0.2),
        (STORAGE_BLOB_CORRUPT, "corrupt", 0.05),
    ),
    # Everything at once, mildly: the whole stack degrades gracefully.
    "kitchen-sink": _plan(
        "kitchen-sink",
        (FLUSH_DATA, "drop", 0.15),
        (FLUSH_DATA, "corrupt", 0.01),
        (FLUSH_NACK, "drop", 0.2),
        (GATEWAY_CONVERT, "drop", 0.03),
        (GATEWAY_CONVERT, "corrupt", 0.02),
        (STORAGE_WRITE, "error", 0.2),
        (STORAGE_READ, "error", 0.2),
        (STORAGE_READ, "corrupt", 0.04),
        (FLEET_TASK, "delay", 0.2, 0.001),
        (FLEET_TASK, "error", 0.1),
    ),
}
"""Named chaos experiments the test suite runs end to end."""
