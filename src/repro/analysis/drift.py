"""Model drift monitoring: when to retrain the zone thresholds.

The paper's engine refreshes its analysis periodically, but its learned
artifacts (the Zone A exemplar, the D_a thresholds, the lifetime models)
implicitly assume the *feature distribution* stays the one they were
trained on.  Sensor replacements, firmware changes, and new equipment
models all shift it — silently degrading classification until someone
notices bad predictions.

This module watches for that: it compares the recent D_a distribution
against a stored training-time reference with a two-sample
Kolmogorov–Smirnov test and a population-stability index (PSI), the two
standard drift alarms, and recommends retraining when either trips.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import ks_2samp


@dataclass(frozen=True)
class DriftVerdict:
    """Outcome of one drift evaluation.

    Attributes:
        ks_statistic: two-sample KS distance in [0, 1].
        ks_pvalue: p-value of the KS test.
        psi: population stability index (0 stable; >0.25 major shift by
            the usual rule of thumb).
        drifted: the combined recommendation to retrain.
    """

    ks_statistic: float
    ks_pvalue: float
    psi: float
    drifted: bool


def population_stability_index(
    reference: np.ndarray,
    current: np.ndarray,
    bins: int = 10,
) -> float:
    """PSI between a reference and a current sample.

    Bins are deciles of the *reference* distribution; empty proportions
    are floored to avoid infinities (the standard practice).

    Args:
        reference: training-time feature sample.
        current: recent feature sample.
        bins: number of quantile bins.

    Returns:
        Non-negative PSI; ~0 identical, >0.25 conventionally "major".
    """
    ref = np.asarray(reference, dtype=np.float64).ravel()
    cur = np.asarray(current, dtype=np.float64).ravel()
    if ref.size < bins or cur.size < 1:
        raise ValueError("need at least `bins` reference and 1 current samples")
    edges = np.quantile(ref, np.linspace(0, 1, bins + 1))
    edges[0], edges[-1] = -np.inf, np.inf
    # Collapse duplicate edges (heavy ties in the reference).
    edges = np.unique(edges)
    ref_counts, _ = np.histogram(ref, bins=edges)
    cur_counts, _ = np.histogram(cur, bins=edges)
    ref_prop = np.maximum(ref_counts / ref.size, 1e-4)
    cur_prop = np.maximum(cur_counts / cur.size, 1e-4)
    return float(((cur_prop - ref_prop) * np.log(cur_prop / ref_prop)).sum())


class DriftMonitor:
    """Stores the training-time reference and evaluates recent windows."""

    def __init__(
        self,
        reference: np.ndarray,
        ks_alpha: float = 0.01,
        psi_threshold: float = 0.25,
        min_window: int = 30,
    ):
        """Create a monitor.

        Args:
            reference: feature values (e.g. ``D_a``) observed when the
                current models were trained.
            ks_alpha: KS-test significance level for the drift alarm.
            psi_threshold: PSI above which drift is declared.
            min_window: smallest recent-window size the monitor will
                evaluate (tiny windows make both tests meaningless).
        """
        ref = np.asarray(reference, dtype=np.float64).ravel()
        ref = ref[np.isfinite(ref)]
        if ref.size < 10:
            raise ValueError("need at least 10 finite reference samples")
        if not 0 < ks_alpha < 1:
            raise ValueError("ks_alpha must be in (0, 1)")
        if psi_threshold <= 0:
            raise ValueError("psi_threshold must be positive")
        if min_window < 2:
            raise ValueError("min_window must be at least 2")
        self.reference = ref
        self.ks_alpha = ks_alpha
        self.psi_threshold = psi_threshold
        self.min_window = min_window

    def evaluate(self, recent: np.ndarray) -> DriftVerdict:
        """Evaluate a recent feature window against the reference.

        Raises:
            ValueError: when the window is too small after dropping
                non-finite values.
        """
        window = np.asarray(recent, dtype=np.float64).ravel()
        window = window[np.isfinite(window)]
        if window.size < self.min_window:
            raise ValueError(
                f"need at least {self.min_window} finite samples, got {window.size}"
            )
        ks = ks_2samp(self.reference, window)
        psi = population_stability_index(self.reference, window)
        drifted = bool(ks.pvalue < self.ks_alpha and psi > self.psi_threshold)
        return DriftVerdict(
            ks_statistic=float(ks.statistic),
            ks_pvalue=float(ks.pvalue),
            psi=psi,
            drifted=drifted,
        )
