"""End-to-end analytics: engine orchestration, metrics and cost model."""

from repro.analysis.metrics import ClassificationReport, confusion_matrix, evaluate_labels
from repro.analysis.cost import CostModel, CostSummary, ReplacementOutcome
from repro.analysis.engine import AnalysisReport, EngineConfig, VibrationAnalysisEngine
from repro.analysis.reporting import (
    Alert,
    build_alerts,
    fleet_health_summary,
    render_report,
)
from repro.analysis.scheduling import (
    MaintenancePlan,
    MaintenanceScheduler,
    ScheduledReplacement,
)
from repro.analysis.online import OnlinePumpTracker, TrackerUpdate
from repro.analysis.drift import DriftMonitor, DriftVerdict, population_stability_index
from repro.analysis.backtest import (
    BacktestPoint,
    BacktestResult,
    backtest_rul,
    backtest_rul_reference,
)

__all__ = [
    "confusion_matrix",
    "evaluate_labels",
    "ClassificationReport",
    "CostModel",
    "CostSummary",
    "ReplacementOutcome",
    "VibrationAnalysisEngine",
    "EngineConfig",
    "AnalysisReport",
    "Alert",
    "build_alerts",
    "fleet_health_summary",
    "render_report",
    "MaintenanceScheduler",
    "MaintenancePlan",
    "ScheduledReplacement",
    "OnlinePumpTracker",
    "TrackerUpdate",
    "DriftMonitor",
    "DriftVerdict",
    "population_stability_index",
    "backtest_rul",
    "backtest_rul_reference",
    "BacktestResult",
    "BacktestPoint",
]
