"""Replacement-cost economics (Table IV and the headline savings claims).

The paper prices wasted remaining-useful-lifetime at US$100 per day (daily
value depreciation of a US$55,000 pump) and reports that RUL-driven
replacement saves 22% of operation cost on the long-life population
(Model I) and 7.4% on the short-life one (Model II), prolonging average
pump lifetime by about 1.2×.

Two views are provided:

* :meth:`CostModel.wasted_rul_value` — the Table IV accounting: each PM
  event wastes its remaining useful days, each BM event wastes the days
  the pump was operated in hazard condition (negative RUL);
* :meth:`CostModel.compare_policies` — a policy simulation that runs the
  conservative fixed-period strategy and the predictive strategy over the
  same pump lifetimes and reports cost-per-operating-day savings and the
  lifetime-prolongation factor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.storage.records import BM, PM, MaintenanceEvent


@dataclass(frozen=True)
class ReplacementOutcome:
    """Result of operating one pump instance under a policy.

    Attributes:
        achieved_life_days: days the pump actually ran before replacement
            or failure.
        broke_down: True when the pump failed in service (BM).
        wasted_rul_days: useful days thrown away (PM) — 0 on breakdown.
        cost_usd: pump price plus any breakdown penalty.
    """

    achieved_life_days: float
    broke_down: bool
    wasted_rul_days: float
    cost_usd: float


@dataclass(frozen=True)
class CostSummary:
    """Comparison of the conservative and predictive policies.

    Attributes:
        baseline_cost_per_day: fleet cost per operating day, fixed-period
            policy.
        predictive_cost_per_day: same under RUL-driven replacement.
        savings_fraction: relative cost reduction (0.22 ⇒ 22%).
        lifetime_factor: mean achieved life, predictive / baseline.
        baseline_breakdown_rate: fraction of pump instances that failed
            in service under the baseline.
        predictive_breakdown_rate: same under the predictive policy.
    """

    baseline_cost_per_day: float
    predictive_cost_per_day: float
    savings_fraction: float
    lifetime_factor: float
    baseline_breakdown_rate: float
    predictive_breakdown_rate: float


class CostModel:
    """Economic constants and policy evaluation."""

    def __init__(
        self,
        pump_price_usd: float = 55_000.0,
        daily_value_usd: float = 100.0,
        breakdown_penalty_usd: float = 30_000.0,
    ):
        """Create a model.

        Args:
            pump_price_usd: purchase price of one pump (paper: $55k).
            daily_value_usd: value of one day of pump RUL (paper: $100).
            breakdown_penalty_usd: extra cost of an in-service failure
                (defected wafers, pipeline stoppage); the paper's
                motivation for the conservative baseline.
        """
        if pump_price_usd <= 0 or daily_value_usd <= 0:
            raise ValueError("prices must be positive")
        if breakdown_penalty_usd < 0:
            raise ValueError("breakdown_penalty_usd must be non-negative")
        self.pump_price_usd = pump_price_usd
        self.daily_value_usd = daily_value_usd
        self.breakdown_penalty_usd = breakdown_penalty_usd

    # ------------------------------------------------------------------
    # Table IV accounting over recorded maintenance events.
    # ------------------------------------------------------------------
    def wasted_rul_value(self, events: list[MaintenanceEvent]) -> dict:
        """Dollar value of RUL wasted by the recorded events.

        PM events waste their positive remaining useful days; BM events
        carry negative "wasted RUL" (days operated past the hazard
        boundary) which is charged the breakdown penalty instead of the
        daily rate.

        Returns:
            dict with ``pm_wasted_days``, ``pm_wasted_usd``,
            ``bm_overrun_days``, ``bm_penalty_usd`` and ``total_usd``.
        """
        pm_days = 0.0
        bm_overrun = 0.0
        n_bm = 0
        for event in events:
            if event.kind == PM and np.isfinite(event.true_rul_days):
                pm_days += max(event.true_rul_days, 0.0)
            elif event.kind == BM:
                n_bm += 1
                if np.isfinite(event.true_rul_days):
                    bm_overrun += max(-event.true_rul_days, 0.0)
        pm_usd = pm_days * self.daily_value_usd
        bm_usd = n_bm * self.breakdown_penalty_usd
        return {
            "pm_wasted_days": pm_days,
            "pm_wasted_usd": pm_usd,
            "bm_overrun_days": bm_overrun,
            "bm_penalty_usd": bm_usd,
            "total_usd": pm_usd + bm_usd,
        }

    # ------------------------------------------------------------------
    # Policy simulation.
    # ------------------------------------------------------------------
    def run_fixed_period_policy(
        self, life_days: np.ndarray, pm_interval_days: float
    ) -> list[ReplacementOutcome]:
        """The conservative baseline: replace at a fixed service age.

        A pump that survives to the interval is replaced there (wasting
        its remaining life); a pump whose true life is shorter breaks
        down first.
        """
        if pm_interval_days <= 0:
            raise ValueError("pm_interval_days must be positive")
        outcomes = []
        for life in np.asarray(life_days, dtype=np.float64).ravel():
            if life <= pm_interval_days:
                outcomes.append(
                    ReplacementOutcome(
                        achieved_life_days=float(life),
                        broke_down=True,
                        wasted_rul_days=0.0,
                        cost_usd=self.pump_price_usd + self.breakdown_penalty_usd,
                    )
                )
            else:
                outcomes.append(
                    ReplacementOutcome(
                        achieved_life_days=pm_interval_days,
                        broke_down=False,
                        wasted_rul_days=float(life - pm_interval_days),
                        cost_usd=self.pump_price_usd,
                    )
                )
        return outcomes

    def run_predictive_policy(
        self,
        life_days: np.ndarray,
        predicted_life_days: np.ndarray,
        safety_margin_days: float = 14.0,
        hazard_alert_fraction: float | None = None,
        alert_delay_days: float = 7.0,
    ) -> list[ReplacementOutcome]:
        """RUL-driven replacement: replace a margin before predicted failure.

        A pump is replaced at ``predicted_life - safety_margin``; when the
        prediction overshoots the true life, the pump breaks down first —
        unless the zone-alert fallback is enabled.

        Args:
            life_days: true pump lifetimes.
            predicted_life_days: the RUL system's predicted lifetimes.
            safety_margin_days: replacement lead before the predicted
                failure.
            hazard_alert_fraction: when set (e.g. 0.85, the simulator's
                Zone D wear boundary), the continuously-monitoring
                classifier raises a hazard alert at this fraction of the
                true life and the pump is replaced ``alert_delay_days``
                later at the latest — the paper's Zone D alarm, which
                catches pumps whose long-range prediction overshot.
            alert_delay_days: detection-plus-reaction latency of the
                hazard alert.
        """
        if safety_margin_days < 0:
            raise ValueError("safety_margin_days must be non-negative")
        if hazard_alert_fraction is not None and not 0 < hazard_alert_fraction < 1:
            raise ValueError("hazard_alert_fraction must be in (0, 1)")
        if alert_delay_days < 0:
            raise ValueError("alert_delay_days must be non-negative")
        lives = np.asarray(life_days, dtype=np.float64).ravel()
        predictions = np.asarray(predicted_life_days, dtype=np.float64).ravel()
        if lives.shape != predictions.shape:
            raise ValueError("life_days and predicted_life_days must align")
        outcomes = []
        for life, predicted in zip(lives, predictions):
            replace_at = max(predicted - safety_margin_days, 1.0)
            if hazard_alert_fraction is not None:
                alert_at = hazard_alert_fraction * life + alert_delay_days
                replace_at = min(replace_at, alert_at)
            if replace_at >= life:
                outcomes.append(
                    ReplacementOutcome(
                        achieved_life_days=float(life),
                        broke_down=True,
                        wasted_rul_days=0.0,
                        cost_usd=self.pump_price_usd + self.breakdown_penalty_usd,
                    )
                )
            else:
                outcomes.append(
                    ReplacementOutcome(
                        achieved_life_days=float(replace_at),
                        broke_down=False,
                        wasted_rul_days=float(life - replace_at),
                        cost_usd=self.pump_price_usd,
                    )
                )
        return outcomes

    @staticmethod
    def _cost_per_day(outcomes: list[ReplacementOutcome]) -> float:
        total_cost = sum(o.cost_usd for o in outcomes)
        total_days = sum(o.achieved_life_days for o in outcomes)
        if total_days <= 0:
            raise ValueError("policy achieved no operating days")
        return total_cost / total_days

    def compare_policies(
        self,
        life_days: np.ndarray,
        predicted_life_days: np.ndarray,
        pm_interval_days: float,
        safety_margin_days: float = 14.0,
        hazard_alert_fraction: float | None = None,
        alert_delay_days: float = 7.0,
    ) -> CostSummary:
        """Head-to-head comparison over the same pump lifetimes."""
        baseline = self.run_fixed_period_policy(life_days, pm_interval_days)
        predictive = self.run_predictive_policy(
            life_days,
            predicted_life_days,
            safety_margin_days,
            hazard_alert_fraction=hazard_alert_fraction,
            alert_delay_days=alert_delay_days,
        )
        base_cost = self._cost_per_day(baseline)
        pred_cost = self._cost_per_day(predictive)
        base_life = float(np.mean([o.achieved_life_days for o in baseline]))
        pred_life = float(np.mean([o.achieved_life_days for o in predictive]))
        return CostSummary(
            baseline_cost_per_day=base_cost,
            predictive_cost_per_day=pred_cost,
            savings_fraction=1.0 - pred_cost / base_cost,
            lifetime_factor=pred_life / base_life,
            baseline_breakdown_rate=float(np.mean([o.broke_down for o in baseline])),
            predictive_breakdown_rate=float(np.mean([o.broke_down for o in predictive])),
        )
