"""The end-to-end vibration analysis engine.

Binds the database-backed retrieval API (Fig. 7's bottom layer) to the
pure-array :class:`~repro.core.pipeline.AnalysisPipeline` and packages the
results — per-measurement zones, lifetime models, per-pump RUL and the
cost accounting — into a single report, the artifact the paper's GUI would
render for the fab manager.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.cost import CostModel
from repro.core.classify import ZONE_A
from repro.core.diagnosis import Diagnosis, SpectralDiagnoser
from repro.core.peaks import extract_harmonic_peaks
from repro.core.pipeline import AnalysisPipeline, PipelineConfig, PipelineResult
from repro.core.ransac import LineModel
from repro.core.rul import RULPrediction
from repro.runtime.batch import DEFAULT_CHUNK_ROWS, BatchPipeline, finite_block_mask
from repro.runtime.checkpoint import CheckpointManager
from repro.runtime.fleet import FleetExecutor, SupervisionPolicy, SupervisionReport
from repro.runtime.incremental import IncrementalPipelineSession
from repro.runtime.profile import RuntimeProfile
from repro.storage.api import DataRetrievalAPI
from repro.storage.records import MaintenanceEvent


class InsufficientDataError(ValueError):
    """The analysis period holds too little usable data to analyze.

    Raised instead of a bare :class:`ValueError` so callers practicing
    graceful degradation (the chaos runner, a report scheduler) can tell
    "nothing to analyze yet" apart from genuine programming errors while
    existing ``except ValueError`` callers keep working.
    """


@dataclass(frozen=True)
class EngineConfig:
    """Engine-level configuration.

    Attributes:
        pipeline: analytical-pipeline parameters.
        cost: economic constants for the report's cost section.
        rotation_hz: nominal machine rotation frequency; when set, the
            engine also runs the spectral fault diagnoser per pump (None
            disables diagnosis).
        diagnosis_window: number of most recent valid measurements whose
            mean PSD feeds each pump's diagnosis.
        use_batch_runtime: route the analysis through the batched
            :class:`~repro.runtime.batch.BatchPipeline` (bit-identical
            to the scalar path; the default).  False selects the scalar
            reference pipeline.
        max_workers: fleet-executor worker count for the per-pump RUL
            and diagnosis fan-out; None auto-sizes, 0/1 forces serial.
        executor_backend: ``"thread"`` (default) or ``"process"`` for
            the fleet executor and the transform fan-out.  A process
            request is honoured only for file-backed databases — worker
            processes cannot see an in-memory SQLite, so in-memory
            engines silently fall back to threads (results are
            bit-identical either way).
        incremental: reuse cached per-row transform features across
            rolling-window advances — each engine run transforms only
            measurements it has never seen.  Bit-identical to a cold
            run; requires the batch runtime.
        supervision: optional
            :class:`~repro.runtime.fleet.SupervisionPolicy` arming the
            fleet executor's self-healing path (deadlines, bounded
            restarts, salvage).  Ignored when a pre-built executor is
            injected — the executor's own policy wins.
        checkpoint_dir: optional directory for the transform checkpoint
            journal; when set, batch-runtime runs record every completed
            transform chunk and resume bit-identically after a crash.
    """

    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    cost: CostModel = field(default_factory=CostModel)
    rotation_hz: float | None = None
    diagnosis_window: int = 10
    use_batch_runtime: bool = True
    max_workers: int | None = None
    executor_backend: str = "thread"
    incremental: bool = False
    supervision: SupervisionPolicy | None = None
    checkpoint_dir: str | None = None

    def __post_init__(self) -> None:
        if self.rotation_hz is not None and self.rotation_hz <= 0:
            raise ValueError("rotation_hz must be positive")
        if self.diagnosis_window < 1:
            raise ValueError("diagnosis_window must be positive")
        if self.executor_backend not in ("thread", "process"):
            raise ValueError(
                f"executor_backend must be 'thread' or 'process',"
                f" got {self.executor_backend!r}"
            )


@dataclass
class DataHealth:
    """Accounting of measurements the engine could not analyze.

    Attributes:
        total_retrieved: measurements the retrieval API returned for the
            period (after majority-``K`` stacking but before the
            finite-value quarantine).
        analyzed: measurements that actually entered the pipeline.
        quarantined_nonfinite: pump id → measurements quarantined for
            containing NaN/Inf samples.
        dropped_incomplete: pump id → measurements dropped for not
            matching the majority block length ``K``.
        dead_letters: upstream dead-letter records associated with this
            run (transport/gateway quarantine; filled in by the caller
            that owns the dead-letter queue).
        corrupt_blobs: pump id → stored rows quarantined for a BLOB
            checksum mismatch (at-rest corruption caught on decode).
    """

    total_retrieved: int
    analyzed: int
    quarantined_nonfinite: dict[int, int] = field(default_factory=dict)
    dropped_incomplete: dict[int, int] = field(default_factory=dict)
    dead_letters: int = 0
    corrupt_blobs: dict[int, int] = field(default_factory=dict)

    @property
    def n_quarantined(self) -> int:
        return sum(self.quarantined_nonfinite.values())

    @property
    def n_dropped(self) -> int:
        return sum(self.dropped_incomplete.values())

    @property
    def n_corrupt(self) -> int:
        return sum(self.corrupt_blobs.values())

    @property
    def has_issues(self) -> bool:
        return bool(
            self.n_quarantined or self.n_dropped or self.dead_letters or self.n_corrupt
        )


@dataclass
class AnalysisReport:
    """Everything one engine run produced.

    Attributes:
        pump_ids: pump id per analyzed measurement.
        measurement_ids: measurement id per analyzed measurement.
        service_days: service time per measurement.
        pipeline: full pipeline artifacts (features, zones, models, RUL).
        events: maintenance events inside the analysis period.
        wasted_rul: Table IV-style accounting of the recorded events.
        n_labels_used: how many valid expert labels trained the models.
        diagnoses: per-pump spectral fault diagnosis (empty when the
            engine was configured without a rotation frequency).
        data_health: quarantine / drop accounting for the run; ``None``
            only for reports built by legacy callers.
        supervision: fleet-supervision activity during this run (the
            per-run delta of the executor's cumulative tally); ``None``
            when the executor ran unsupervised.
    """

    pump_ids: np.ndarray
    measurement_ids: np.ndarray
    service_days: np.ndarray
    pipeline: PipelineResult
    events: list[MaintenanceEvent]
    wasted_rul: dict
    n_labels_used: int
    diagnoses: dict[int, Diagnosis] = field(default_factory=dict)
    data_health: DataHealth | None = None
    supervision: SupervisionReport | None = None

    @property
    def lifetime_models(self) -> list[LineModel]:
        return self.pipeline.lifetime_models

    @property
    def rul(self) -> dict[object, RULPrediction]:
        return self.pipeline.rul

    def zone_of(self, pump_id: int) -> str:
        """Latest predicted zone of one pump (``""`` when unknown)."""
        member = np.nonzero(self.pump_ids == pump_id)[0]
        if member.size == 0:
            return ""
        latest = member[np.argmax(self.service_days[member])]
        return str(self.pipeline.zones[latest])

    def summary_lines(self) -> list[str]:
        """Human-readable per-pump summary (the GUI's table view)."""
        lines = ["pump  zone  model  RUL(days)"]
        for pump in sorted(set(int(p) for p in self.pump_ids)):
            zone = self.zone_of(pump) or "?"
            prediction = self.rul.get(pump)
            if prediction is None:
                lines.append(f"{pump:>4}  {zone:>4}  {'-':>5}  {'-':>9}")
            else:
                lines.append(
                    f"{pump:>4}  {zone:>4}  {prediction.model_index + 1:>5}  "
                    f"{prediction.rul_days:>9.0f}"
                )
        return lines


class _DiagnosePump:
    """Picklable per-pump diagnosis task (a closure could not cross the
    process boundary, silently forcing the diagnosis fan-out onto the
    thread pool even under ``executor_backend="process"``)."""

    def __init__(self, diagnoser: SpectralDiagnoser, freqs: np.ndarray):
        self.diagnoser = diagnoser
        self.freqs = freqs

    def __call__(self, mean_psd: np.ndarray) -> Diagnosis:
        return self.diagnoser.diagnose(extract_harmonic_peaks(mean_psd, self.freqs))


class VibrationAnalysisEngine:
    """Orchestrates retrieval → pipeline → report for one analysis period."""

    def __init__(
        self,
        api: DataRetrievalAPI,
        config: EngineConfig | None = None,
        executor: FleetExecutor | None = None,
    ):
        """Create an engine.

        Args:
            api: period-scoped retrieval facade.
            config: engine configuration (defaults apply when None).
            executor: optional pre-built fleet executor for the batch
                runtime — the chaos runner passes one carrying its fault
                injector; None builds a plain executor from
                ``config.max_workers``.
        """
        self.api = api
        self.config = config or EngineConfig()
        self.executor = executor
        self._pipeline: AnalysisPipeline | None = None
        self._session: IncrementalPipelineSession | None = None

    def _resolve_backend(self) -> str:
        """Honour a process-backend request only for file-backed DBs.

        Worker processes cannot reach an in-memory SQLite, so engines
        over in-memory databases keep the thread pool (the two backends
        produce bit-identical results — only throughput differs).
        """
        backend = self.config.executor_backend
        if backend == "process":
            database = getattr(self.api, "database", None)
            if database is not None and getattr(database, "in_memory", False):
                return "thread"
        return backend

    def _make_pipeline(self) -> AnalysisPipeline:
        """Pipeline instance per the configured runtime path.

        Built once and reused across runs so content-addressed caches —
        and the incremental session's per-row features — survive
        rolling-window advances of the same engine.
        """
        if self._pipeline is not None:
            return self._pipeline
        if self.config.use_batch_runtime:
            executor = self.executor or FleetExecutor(
                max_workers=self.config.max_workers,
                backend=self._resolve_backend(),
                supervision=self.config.supervision,
            )
            checkpoint = None
            if self.config.checkpoint_dir is not None:
                checkpoint = CheckpointManager(
                    self.config.checkpoint_dir,
                    run_key=f"transform-v1:chunk_rows={DEFAULT_CHUNK_ROWS}",
                )
            pipeline = BatchPipeline(
                self.config.pipeline, executor=executor, checkpoint=checkpoint
            )
            if self.config.incremental:
                self._session = IncrementalPipelineSession(pipeline)
        else:
            pipeline = AnalysisPipeline(self.config.pipeline)
        self._pipeline = pipeline
        return pipeline

    def run(self, profile: RuntimeProfile | None = None) -> AnalysisReport:
        """Analyze everything inside the API's current analysis period.

        Args:
            profile: optional :class:`~repro.runtime.profile.RuntimeProfile`
                collecting per-stage wall-clock timings (the ``--profile``
                CLI surface).  The batch runtime reports every pipeline
                stage; the scalar reference reports one aggregate stage.

        Raises:
            InsufficientDataError: when the period holds no (finite)
                measurements or no valid labels survive into it (the
                pipeline needs labelled examples to learn its
                thresholds).  A :class:`ValueError` subclass, so legacy
                callers keep working.
        """
        matrices = self.api.measurement_matrices_with_health()
        pumps, mids, service, samples, dropped_incomplete, corrupt_blobs = matrices
        total_retrieved = int(pumps.size)
        if pumps.size == 0:
            raise InsufficientDataError("analysis period contains no measurements")

        # Quarantine non-finite blocks (corrupted uploads, poisoned
        # storage reads) instead of letting them fail the whole run.
        finite = finite_block_mask(samples)
        quarantined_nonfinite: dict[int, int] = {}
        if not finite.all():
            for pump in pumps[~finite]:
                pump = int(pump)
                quarantined_nonfinite[pump] = quarantined_nonfinite.get(pump, 0) + 1
            pumps = pumps[finite]
            mids = mids[finite]
            service = service[finite]
            samples = samples[finite]
        if pumps.size == 0:
            raise InsufficientDataError(
                "analysis period contains no finite measurements"
            )
        health = DataHealth(
            total_retrieved=total_retrieved,
            analyzed=int(pumps.size),
            quarantined_nonfinite=quarantined_nonfinite,
            dropped_incomplete=dropped_incomplete,
            corrupt_blobs=corrupt_blobs,
        )

        # Map stored labels onto the retrieved measurement ordering
        # (after the quarantine, so indices address surviving rows).
        position = {
            (int(p), int(m)): idx for idx, (p, m) in enumerate(zip(pumps, mids))
        }
        train_labels: dict[int, str] = {}
        for record in self.api.get_labels():
            idx = position.get((record.pump_id, record.measurement_id))
            if idx is not None:
                train_labels[idx] = record.zone
        if not train_labels:
            raise InsufficientDataError(
                "no valid labels fall inside the analysis period"
            )

        pipeline = self._make_pipeline()
        sup_tally = getattr(
            getattr(pipeline, "executor", None), "supervision_report", None
        )
        sup_before = sup_tally.as_dict() if sup_tally is not None else None
        if self._session is not None:
            result = self._session.run(
                pumps, service, samples, train_labels, profile=profile
            )
        elif isinstance(pipeline, BatchPipeline):
            result = pipeline.run(pumps, service, samples, train_labels, profile=profile)
        elif profile is not None:
            with profile.stage("pipeline(scalar)", int(pumps.size)):
                result = pipeline.run(pumps, service, samples, train_labels)
        else:
            result = pipeline.run(pumps, service, samples, train_labels)

        events = self.api.get_events()
        wasted = self.config.cost.wasted_rul_value(events)
        if profile is not None:
            with profile.stage("diagnose"):
                diagnoses = self._diagnose(pumps, service, result, pipeline)
        else:
            diagnoses = self._diagnose(pumps, service, result, pipeline)
        supervision = None
        if sup_tally is not None:
            sup_after = sup_tally.as_dict()
            supervision = SupervisionReport(
                **{key: sup_after[key] - sup_before[key] for key in sup_after}
            )
        return AnalysisReport(
            pump_ids=pumps,
            measurement_ids=mids,
            service_days=service,
            pipeline=result,
            events=events,
            wasted_rul=wasted,
            n_labels_used=len(train_labels),
            diagnoses=diagnoses,
            data_health=health,
            supervision=supervision,
        )

    def _diagnose(
        self,
        pumps: np.ndarray,
        service: np.ndarray,
        result: PipelineResult,
        pipeline: AnalysisPipeline,
    ) -> dict[int, Diagnosis]:
        """Per-pump spectral diagnosis from recent valid measurements."""
        if self.config.rotation_hz is None:
            return {}
        freqs = pipeline.frequencies(result.psd.shape[1])
        # Baseline from the measurements the classifier called Zone A.
        healthy = result.valid_mask & (result.zones == ZONE_A)
        if not healthy.any():
            return {}
        healthy_psd = result.psd[healthy].mean(axis=0)
        diagnoser = SpectralDiagnoser(self.config.rotation_hz)
        diagnoser.fit_baseline(extract_harmonic_peaks(healthy_psd, freqs))

        window = max(1, self.config.diagnosis_window)
        diagnose_pump = _DiagnosePump(diagnoser, freqs)

        items: list[tuple[int, np.ndarray]] = []
        for pump in np.unique(pumps):
            member = np.nonzero((pumps == pump) & result.valid_mask)[0]
            if member.size == 0:
                continue
            recent = member[np.argsort(service[member])][-window:]
            items.append((int(pump), result.psd[recent].mean(axis=0)))

        if isinstance(pipeline, BatchPipeline):
            # Fan the per-pump chains across the runtime's executor;
            # map_pumps preserves the sorted submission order, so the
            # report iterates pumps identically to the serial loop.
            return pipeline.executor.map_pumps(diagnose_pump, items)
        return {pump: diagnose_pump(mean_psd) for pump, mean_psd in items}
