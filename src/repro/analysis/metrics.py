"""Classification evaluation: confusion matrices, precision, recall, accuracy.

Implements exactly the quantities reported by the paper's Figs. 12–14 and
Table III: per-zone precision and recall, their macro average, and overall
accuracy, plus the zone-by-zone confusion table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.classify import ZONES


def confusion_matrix(
    true_labels: np.ndarray,
    predicted_labels: np.ndarray,
    classes: tuple[str, ...] = ZONES,
) -> np.ndarray:
    """Confusion counts ``C[i, j]`` = truth ``classes[i]`` predicted ``classes[j]``."""
    truth = np.asarray(true_labels)
    pred = np.asarray(predicted_labels)
    if truth.shape != pred.shape:
        raise ValueError("true and predicted labels must align")
    index = {cls: i for i, cls in enumerate(classes)}
    matrix = np.zeros((len(classes), len(classes)), dtype=np.int64)
    for t, p in zip(truth, pred):
        if t not in index:
            raise ValueError(f"unknown true label {t!r}")
        if p not in index:
            raise ValueError(f"unknown predicted label {p!r}")
        matrix[index[t], index[p]] += 1
    return matrix


@dataclass(frozen=True)
class ClassificationReport:
    """Per-class and aggregate classification quality.

    Attributes:
        classes: class order of the per-class arrays.
        matrix: confusion matrix in that order.
        precision: per-class precision (NaN-free: 0 when undefined).
        recall: per-class recall.
        accuracy: overall fraction correct.
    """

    classes: tuple[str, ...]
    matrix: np.ndarray
    precision: np.ndarray
    recall: np.ndarray
    accuracy: float

    @property
    def macro_precision(self) -> float:
        return float(self.precision.mean())

    @property
    def macro_recall(self) -> float:
        return float(self.recall.mean())

    def per_class(self, cls: str) -> tuple[float, float]:
        """``(precision, recall)`` of one class."""
        idx = self.classes.index(cls)
        return float(self.precision[idx]), float(self.recall[idx])


def evaluate_labels(
    true_labels: np.ndarray,
    predicted_labels: np.ndarray,
    classes: tuple[str, ...] = ZONES,
) -> ClassificationReport:
    """Build a full report from aligned truth/prediction arrays."""
    matrix = confusion_matrix(true_labels, predicted_labels, classes)
    col_sums = matrix.sum(axis=0).astype(np.float64)
    row_sums = matrix.sum(axis=1).astype(np.float64)
    diag = np.diag(matrix).astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        precision = np.where(col_sums > 0, diag / col_sums, 0.0)
        recall = np.where(row_sums > 0, diag / row_sums, 0.0)
    total = matrix.sum()
    accuracy = float(diag.sum() / total) if total else 0.0
    return ClassificationReport(
        classes=tuple(classes),
        matrix=matrix,
        precision=precision,
        recall=recall,
        accuracy=accuracy,
    )
