"""Walk-forward backtesting of RUL predictions.

A single end-of-experiment comparison (Fig. 16) says how good the final
predictions were; a deployment also needs to know how prediction quality
evolves with *lead time* — how early can the system be trusted?  The
backtester replays history: at each refresh day it fits the lifetime
models on only the data available *then*, predicts every pump's RUL, and
scores the prediction against the eventual ground truth.

The feature series (``D_a``) is computed once up front — features depend
only on each measurement, not on the analysis date — so the walk-forward
loop re-fits only the RUL layer.  :func:`backtest_rul` makes that loop
incremental:

* valid measurements are sorted by timestamp once, so every as-of day is
  a *prefix* of one array (found by ``searchsorted``) instead of a fresh
  full-fleet boolean scan;
* per-pump member positions are grouped once, so a pump's history at any
  as-of day is a prefix of its group (again ``searchsorted``) instead of
  a per-day ``pumps == pump`` sweep;
* each day's model fit is memoized in a content-addressed
  :class:`~repro.runtime.cache.ModelFitCache` keyed by the engine's
  :meth:`~repro.core.ransac.RecursiveRANSAC.config_key` plus incremental
  SHA-1 digests of the prefix window — refresh days that saw no new data
  reuse the previous fit outright; and
* independent as-of days can be fanned across a
  :class:`~repro.runtime.fleet.FleetExecutor` (thread backend), since
  every day clones its engine from pristine RNG state.

:func:`backtest_rul_reference` keeps the straightforward per-day rescan
loop over the same time-sorted data; the parity tests assert the fast
path reproduces it bit for bit.
"""

from __future__ import annotations

import hashlib
from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.ransac import RecursiveRANSAC
from repro.core.rul import RULEstimator
from repro.runtime.cache import ModelFitCache, default_model_fit_cache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.fleet import FleetExecutor
    from repro.runtime.profile import RuntimeProfile


@dataclass(frozen=True)
class BacktestPoint:
    """One (pump, as-of day) prediction scored against ground truth.

    Attributes:
        pump_id: equipment.
        asof_day: analysis day (absolute, deployment epoch).
        lead_time_days: ground-truth days from ``asof_day`` to failure.
        predicted_rul_days: prediction made with data up to ``asof_day``.
        true_rul_days: ground-truth remaining life at ``asof_day``.
    """

    pump_id: int
    asof_day: float
    lead_time_days: float
    predicted_rul_days: float
    true_rul_days: float

    @property
    def error_days(self) -> float:
        return self.predicted_rul_days - self.true_rul_days


@dataclass
class BacktestResult:
    """All walk-forward points plus aggregate error views."""

    points: list[BacktestPoint]

    def errors(self) -> np.ndarray:
        return np.asarray([p.error_days for p in self.points])

    def mae(self) -> float:
        """Mean absolute error across all points (NaN when empty)."""
        errs = self.errors()
        return float(np.abs(errs).mean()) if errs.size else float("nan")

    def mae_by_lead_time(self, edges: tuple[float, ...]) -> dict[str, float]:
        """MAE bucketed by lead time (``edges`` ascending, in days)."""
        if len(edges) < 2 or not all(a < b for a, b in zip(edges, edges[1:])):
            raise ValueError("edges must be at least 2 ascending values")
        out: dict[str, float] = {}
        leads = np.asarray([p.lead_time_days for p in self.points])
        errs = self.errors()
        for lo, hi in zip(edges[:-1], edges[1:]):
            mask = (leads >= lo) & (leads < hi)
            key = f"{lo:.0f}-{hi:.0f}d"
            out[key] = float(np.abs(errs[mask]).mean()) if mask.any() else float("nan")
        return out


@dataclass(frozen=True)
class _BacktestPlan:
    """Shared precomputation for the fast and reference walk loops.

    Valid measurements, time-sorted; every as-of day maps to a prefix
    length of these arrays.
    """

    service: np.ndarray  # valid measurements' service days, time order
    features: np.ndarray  # valid measurements' D_a, time order
    pumps: np.ndarray  # valid measurements' pump ids, time order
    unique_pumps: np.ndarray  # all pump ids in the input, sorted unique
    asof_days: list[float]
    prefix_counts: np.ndarray  # valid points available per as-of day


def _plan_backtest(
    pump_ids: np.ndarray,
    timestamp_days: np.ndarray,
    service_days: np.ndarray,
    da: np.ndarray,
    refresh_every_days: float,
) -> _BacktestPlan:
    pumps = np.asarray(pump_ids)
    times = np.asarray(timestamp_days, dtype=np.float64)
    service = np.asarray(service_days, dtype=np.float64)
    features = np.asarray(da, dtype=np.float64)
    if not (pumps.shape == times.shape == service.shape == features.shape):
        raise ValueError("all measurement arrays must align")
    if refresh_every_days <= 0:
        raise ValueError("refresh_every_days must be positive")

    valid_idx = np.nonzero(np.isfinite(features))[0]
    valid_times = times[valid_idx]
    # Stable sort: simultaneous measurements keep input order, so the
    # fit arrays are reproducible for any input permutation of ties.
    order = np.argsort(valid_times, kind="stable")
    valid_idx = valid_idx[order]
    valid_times = valid_times[order]

    first_refresh = float(valid_times.min()) + refresh_every_days
    last_day = float(valid_times.max())
    asof_days: list[float] = []
    asof = first_refresh
    while asof <= last_day + 1e-9:
        asof_days.append(float(asof))
        asof += refresh_every_days
    prefix_counts = np.searchsorted(valid_times, np.asarray(asof_days), side="right")

    return _BacktestPlan(
        service=service[valid_idx],
        features=features[valid_idx],
        pumps=pumps[valid_idx],
        unique_pumps=np.unique(pumps),
        asof_days=asof_days,
        prefix_counts=prefix_counts,
    )


def _day_engine(
    ransac: RecursiveRANSAC | None, window_points: int
) -> RecursiveRANSAC:
    """The model-discovery engine for one as-of day.

    A caller-supplied engine is *cloned* so each day fits from pristine
    RNG state — a shared engine with advancing state would make every
    day's fit depend on how many days ran before it.
    """
    if ransac is not None:
        return ransac.clone()
    return RecursiveRANSAC(
        residual_threshold=0.05,
        min_inliers=max(30, window_points // 20),
        seed=0,
    )


def _predict_day(
    plan: _BacktestPlan,
    estimator: RULEstimator,
    asof: float,
    prefix: int,
    member_positions,
    min_history_per_pump: int,
    true_life_days: dict[int, float],
) -> list[BacktestPoint]:
    """Score every sufficiently-observed pump at one as-of day.

    ``member_positions(pump, prefix)`` returns the pump's positions into
    the plan's valid-sorted arrays among the first ``prefix`` points —
    the fast path resolves it from precomputed group indices, the
    reference path by scanning.
    """
    points: list[BacktestPoint] = []
    for pump in plan.unique_pumps:
        member = member_positions(pump, prefix)
        if member.size < min_history_per_pump:
            continue
        life = true_life_days.get(int(pump))
        if life is None:
            continue
        xs = plan.service[member]
        zs = plan.features[member]
        order = np.argsort(xs)
        prediction = estimator.predict(xs[order], zs[order])
        true_rul = life - float(xs.max())
        points.append(
            BacktestPoint(
                pump_id=int(pump),
                asof_day=float(asof),
                lead_time_days=float(true_rul),
                predicted_rul_days=float(prediction.rul_days),
                true_rul_days=float(true_rul),
            )
        )
    return points


def backtest_rul(
    pump_ids: np.ndarray,
    timestamp_days: np.ndarray,
    service_days: np.ndarray,
    da: np.ndarray,
    true_life_days: dict[int, float],
    zone_d_threshold: float,
    refresh_every_days: float = 10.0,
    min_history_per_pump: int = 10,
    min_fleet_points: int = 100,
    ransac: RecursiveRANSAC | None = None,
    *,
    fit_cache: ModelFitCache | None = None,
    executor: "FleetExecutor | None" = None,
    profile: "RuntimeProfile | None" = None,
) -> BacktestResult:
    """Walk-forward RUL evaluation over a fleet's feature history.

    Args:
        pump_ids: pump per measurement.
        timestamp_days: absolute measurement times.
        service_days: pump service times, aligned.
        da: degradation feature per measurement (NaN = invalid, skipped).
        true_life_days: ground-truth total life per pump (simulation
            truth, or post-hoc diagnosis for real data).
        zone_d_threshold: hazard boundary used for the projection.
        refresh_every_days: walk-forward step.
        min_history_per_pump: a pump is predicted only once it has this
            many valid measurements before the as-of day.
        min_fleet_points: lifetime models are fitted only once the fleet
            has this many valid measurements before the as-of day.
        ransac: model-discovery engine; cloned (pristine RNG) per as-of
            day so every day's fit is independently reproducible.  A
            sensible per-day default is built when omitted.
        fit_cache: memo for per-day model fits, keyed by engine config +
            window content digest; the process-wide default when None.
        executor: optional :class:`~repro.runtime.fleet.FleetExecutor`
            (thread backend) to fan independent as-of days across
            workers; results are ordering-independent because each day's
            fit starts from pristine engine state.
        profile: optional :class:`~repro.runtime.profile.RuntimeProfile`
            receiving ``backtest.fit_models`` / ``backtest.predict``
            stages and fit-cache hit/miss counters.

    Returns:
        BacktestResult over every (refresh, pump) with enough history.
    """
    plan = _plan_backtest(
        pump_ids, timestamp_days, service_days, da, refresh_every_days
    )
    if fit_cache is None:
        fit_cache = default_model_fit_cache()

    # Per-pump positions into the valid-sorted arrays, ascending; a
    # pump's members below any prefix are a searchsorted cut of its
    # group (kills the per-day fleet-wide ``pumps == pump`` scan).
    group_order = np.argsort(plan.pumps, kind="stable")
    group_vals = plan.pumps[group_order]
    uniq_vals, group_starts = np.unique(group_vals, return_index=True)
    group_bounds = np.append(group_starts, group_vals.size)
    groups: dict[int, np.ndarray] = {
        int(p): group_order[s:e]
        for p, s, e in zip(uniq_vals, group_bounds[:-1], group_bounds[1:])
    }
    empty = np.empty(0, dtype=np.intp)

    def member_positions(pump, prefix: int) -> np.ndarray:
        positions = groups.get(int(pump))
        if positions is None:
            return empty
        return positions[: np.searchsorted(positions, prefix, side="left")]

    # Incremental content digests of every needed prefix window: one
    # rolling SHA-1 per array, snapshotted (hash .copy()) at each prefix
    # length, so digesting all windows costs one pass over the data.
    x_bytes = np.ascontiguousarray(plan.service).data
    z_bytes = np.ascontiguousarray(plan.features).data
    hasher_x = hashlib.sha1()
    hasher_z = hashlib.sha1()
    window_digests: dict[int, tuple[bytes, bytes]] = {}
    pos = 0
    for prefix in sorted(set(int(c) for c in plan.prefix_counts)):
        hasher_x.update(x_bytes[pos:prefix])
        hasher_z.update(z_bytes[pos:prefix])
        pos = prefix
        window_digests[prefix] = (
            hasher_x.copy().digest(),
            hasher_z.copy().digest(),
        )

    def _stage(name: str, items: int = 0):
        return profile.stage(name, items) if profile is not None else nullcontext()

    def run_day(spec: tuple[float, int]) -> list[BacktestPoint]:
        asof, prefix = spec
        if prefix < min_fleet_points:
            return []
        engine = _day_engine(ransac, prefix)
        digest_x, digest_z = window_digests[prefix]
        key = ("model-fit", engine.config_key(), prefix, digest_x, digest_z)
        with _stage("backtest.fit_models", items=prefix):
            models = fit_cache.models(
                key, lambda: engine.fit(plan.service[:prefix], plan.features[:prefix])
            )
        if not models:
            return []
        estimator = RULEstimator(zone_d_threshold)
        estimator.models_ = models
        with _stage("backtest.predict"):
            day_points = _predict_day(
                plan,
                estimator,
                asof,
                prefix,
                member_positions,
                min_history_per_pump,
                true_life_days,
            )
        return day_points

    hits0, misses0 = fit_cache.hits, fit_cache.misses
    day_specs = [
        (asof, int(prefix))
        for asof, prefix in zip(plan.asof_days, plan.prefix_counts)
    ]
    if executor is not None:
        per_day = executor.map_ordered(run_day, day_specs)
    else:
        per_day = [run_day(spec) for spec in day_specs]
    points = [point for day_points in per_day for point in day_points]
    if profile is not None:
        profile.count("backtest.days", len(day_specs))
        profile.count("backtest.predictions", len(points))
        profile.count("backtest.fit_cache_hits", fit_cache.hits - hits0)
        profile.count("backtest.fit_cache_misses", fit_cache.misses - misses0)
    return BacktestResult(points=points)


def backtest_rul_reference(
    pump_ids: np.ndarray,
    timestamp_days: np.ndarray,
    service_days: np.ndarray,
    da: np.ndarray,
    true_life_days: dict[int, float],
    zone_d_threshold: float,
    refresh_every_days: float = 10.0,
    min_history_per_pump: int = 10,
    min_fleet_points: int = 100,
    ransac: RecursiveRANSAC | None = None,
) -> BacktestResult:
    """Straightforward per-day rescan loop — the parity reference.

    Same semantics as :func:`backtest_rul` (time-sorted prefix windows,
    engine cloned per day) but every day re-fits from scratch and
    re-derives pump membership by scanning, with no memoization, group
    indices, or worker fan-out.  The parity suite asserts the fast path
    reproduces this output bit for bit.
    """
    plan = _plan_backtest(
        pump_ids, timestamp_days, service_days, da, refresh_every_days
    )

    def member_positions(pump, prefix: int) -> np.ndarray:
        return np.nonzero(plan.pumps[:prefix] == pump)[0]

    points: list[BacktestPoint] = []
    for asof, prefix in zip(plan.asof_days, plan.prefix_counts):
        prefix = int(prefix)
        if prefix < min_fleet_points:
            continue
        engine = _day_engine(ransac, prefix)
        estimator = RULEstimator(zone_d_threshold, engine)
        estimator.fit(plan.service[:prefix], plan.features[:prefix])
        if not estimator.n_models:
            continue
        points.extend(
            _predict_day(
                plan,
                estimator,
                asof,
                prefix,
                member_positions,
                min_history_per_pump,
                true_life_days,
            )
        )
    return BacktestResult(points=points)
