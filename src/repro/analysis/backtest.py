"""Walk-forward backtesting of RUL predictions.

A single end-of-experiment comparison (Fig. 16) says how good the final
predictions were; a deployment also needs to know how prediction quality
evolves with *lead time* — how early can the system be trusted?  The
backtester replays history: at each refresh day it fits the lifetime
models on only the data available *then*, predicts every pump's RUL, and
scores the prediction against the eventual ground truth.

The feature series (``D_a``) is computed once up front — features depend
only on each measurement, not on the analysis date — so the walk-forward
loop re-fits only the RUL layer, keeping a full-fleet backtest cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.ransac import RecursiveRANSAC
from repro.core.rul import RULEstimator


@dataclass(frozen=True)
class BacktestPoint:
    """One (pump, as-of day) prediction scored against ground truth.

    Attributes:
        pump_id: equipment.
        asof_day: analysis day (absolute, deployment epoch).
        lead_time_days: ground-truth days from ``asof_day`` to failure.
        predicted_rul_days: prediction made with data up to ``asof_day``.
        true_rul_days: ground-truth remaining life at ``asof_day``.
    """

    pump_id: int
    asof_day: float
    lead_time_days: float
    predicted_rul_days: float
    true_rul_days: float

    @property
    def error_days(self) -> float:
        return self.predicted_rul_days - self.true_rul_days


@dataclass
class BacktestResult:
    """All walk-forward points plus aggregate error views."""

    points: list[BacktestPoint]

    def errors(self) -> np.ndarray:
        return np.asarray([p.error_days for p in self.points])

    def mae(self) -> float:
        """Mean absolute error across all points (NaN when empty)."""
        errs = self.errors()
        return float(np.abs(errs).mean()) if errs.size else float("nan")

    def mae_by_lead_time(self, edges: tuple[float, ...]) -> dict[str, float]:
        """MAE bucketed by lead time (``edges`` ascending, in days)."""
        if len(edges) < 2 or not all(a < b for a, b in zip(edges, edges[1:])):
            raise ValueError("edges must be at least 2 ascending values")
        out: dict[str, float] = {}
        leads = np.asarray([p.lead_time_days for p in self.points])
        errs = self.errors()
        for lo, hi in zip(edges[:-1], edges[1:]):
            mask = (leads >= lo) & (leads < hi)
            key = f"{lo:.0f}-{hi:.0f}d"
            out[key] = float(np.abs(errs[mask]).mean()) if mask.any() else float("nan")
        return out


def backtest_rul(
    pump_ids: np.ndarray,
    timestamp_days: np.ndarray,
    service_days: np.ndarray,
    da: np.ndarray,
    true_life_days: dict[int, float],
    zone_d_threshold: float,
    refresh_every_days: float = 10.0,
    min_history_per_pump: int = 10,
    min_fleet_points: int = 100,
    ransac: RecursiveRANSAC | None = None,
) -> BacktestResult:
    """Walk-forward RUL evaluation over a fleet's feature history.

    Args:
        pump_ids: pump per measurement.
        timestamp_days: absolute measurement times.
        service_days: pump service times, aligned.
        da: degradation feature per measurement (NaN = invalid, skipped).
        true_life_days: ground-truth total life per pump (simulation
            truth, or post-hoc diagnosis for real data).
        zone_d_threshold: hazard boundary used for the projection.
        refresh_every_days: walk-forward step.
        min_history_per_pump: a pump is predicted only once it has this
            many valid measurements before the as-of day.
        min_fleet_points: lifetime models are fitted only once the fleet
            has this many valid measurements before the as-of day.
        ransac: model-discovery engine; sensible default when omitted.

    Returns:
        BacktestResult over every (refresh, pump) with enough history.
    """
    pumps = np.asarray(pump_ids)
    times = np.asarray(timestamp_days, dtype=np.float64)
    service = np.asarray(service_days, dtype=np.float64)
    features = np.asarray(da, dtype=np.float64)
    if not (pumps.shape == times.shape == service.shape == features.shape):
        raise ValueError("all measurement arrays must align")
    if refresh_every_days <= 0:
        raise ValueError("refresh_every_days must be positive")

    valid = np.isfinite(features)
    points: list[BacktestPoint] = []
    first_refresh = float(times[valid].min()) + refresh_every_days
    last_day = float(times[valid].max())
    asof = first_refresh
    while asof <= last_day + 1e-9:
        window = valid & (times <= asof)
        if window.sum() >= min_fleet_points:
            engine = RULEstimator(
                zone_d_threshold,
                ransac
                or RecursiveRANSAC(
                    residual_threshold=0.05,
                    min_inliers=max(30, int(window.sum()) // 20),
                    seed=0,
                ),
            )
            engine.fit(service[window], features[window])
            if engine.n_models:
                for pump in np.unique(pumps):
                    member = np.nonzero(window & (pumps == pump))[0]
                    if member.size < min_history_per_pump:
                        continue
                    life = true_life_days.get(int(pump))
                    if life is None:
                        continue
                    order = member[np.argsort(service[member])]
                    prediction = engine.predict(service[order], features[order])
                    latest_service = float(service[order].max())
                    true_rul = life - latest_service
                    points.append(
                        BacktestPoint(
                            pump_id=int(pump),
                            asof_day=float(asof),
                            lead_time_days=float(true_rul),
                            predicted_rul_days=float(prediction.rul_days),
                            true_rul_days=float(true_rul),
                        )
                    )
        asof += refresh_every_days
    return BacktestResult(points=points)
