"""Maintenance schedule optimization from RUL predictions.

The paper's ultimate objective: "to optimize the replacement scheduling
over the equipments under monitoring".  Given per-pump RUL predictions,
a maintenance crew capacity (replacements per period) and the cost model,
this module plans *when to replace which pump* so that expected cost —
wasted RUL on early replacements plus breakdown risk on late ones — is
minimized, under the capacity constraint.

The planner is a greedy urgency scheduler: pumps are replaced in the
period just before their (safety-margin-adjusted) predicted failure; when
a period overflows the crew capacity, the most urgent pumps keep their
slot and the rest are pulled *earlier* (never later — lateness risks a
breakdown, which dominates all other costs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.cost import CostModel
from repro.core.rul import RULPrediction


@dataclass(frozen=True)
class ScheduledReplacement:
    """One planned replacement.

    Attributes:
        pump_id: equipment to replace.
        period: planning period index (0 = immediately).
        predicted_rul_days: the prediction that drove the slot.
        expected_wasted_days: useful days given up by replacing in this
            period instead of at predicted failure.
    """

    pump_id: int
    period: int
    predicted_rul_days: float
    expected_wasted_days: float


@dataclass
class MaintenancePlan:
    """A full schedule plus its expected cost."""

    replacements: list[ScheduledReplacement]
    period_days: float
    expected_wasted_days: float
    expected_wasted_usd: float

    def by_period(self) -> dict[int, list[ScheduledReplacement]]:
        out: dict[int, list[ScheduledReplacement]] = {}
        for item in self.replacements:
            out.setdefault(item.period, []).append(item)
        return out

    def period_of(self, pump_id: int) -> int | None:
        for item in self.replacements:
            if item.pump_id == pump_id:
                return item.period
        return None


class MaintenanceScheduler:
    """Capacity-constrained greedy replacement planner."""

    def __init__(
        self,
        cost_model: CostModel | None = None,
        period_days: float = 7.0,
        capacity_per_period: int = 2,
        safety_margin_days: float = 14.0,
    ):
        """Create a scheduler.

        Args:
            cost_model: economics used to price the plan.
            period_days: planning granularity (default weekly).
            capacity_per_period: replacements the crew can do per period.
            safety_margin_days: lead before predicted failure at which a
                pump *should* be replaced.
        """
        if period_days <= 0:
            raise ValueError("period_days must be positive")
        if capacity_per_period < 1:
            raise ValueError("capacity_per_period must be positive")
        if safety_margin_days < 0:
            raise ValueError("safety_margin_days must be non-negative")
        self.cost_model = cost_model or CostModel()
        self.period_days = period_days
        self.capacity_per_period = capacity_per_period
        self.safety_margin_days = safety_margin_days

    def _target_period(self, rul_days: float) -> int:
        """Latest admissible period for a pump with the given RUL."""
        slack = rul_days - self.safety_margin_days
        if slack <= 0:
            return 0
        return int(slack // self.period_days)

    def plan(
        self,
        predictions: dict[int, RULPrediction],
        horizon_periods: int = 26,
    ) -> MaintenancePlan:
        """Build a schedule for every pump due within the horizon.

        Pumps whose adjusted RUL falls beyond ``horizon_periods`` are not
        scheduled (they will enter a later plan).  Within the horizon,
        every pump gets a period no later than its target; overflowing
        periods push the *least urgent* overflow pumps earlier.

        Args:
            predictions: per-pump RUL predictions.
            horizon_periods: planning horizon length.

        Returns:
            MaintenancePlan (possibly empty).
        """
        if horizon_periods < 1:
            raise ValueError("horizon_periods must be positive")

        due = [
            (pump_id, prediction)
            for pump_id, prediction in predictions.items()
            if np.isfinite(prediction.rul_days)
            and self._target_period(prediction.rul_days) < horizon_periods
        ]
        # Most urgent first so they claim their (latest admissible) slots
        # before less urgent pumps are pulled earlier around them.
        due.sort(key=lambda item: item[1].rul_days)

        load: dict[int, int] = {}
        scheduled: list[ScheduledReplacement] = []
        unplaceable: list[tuple[int, RULPrediction]] = []
        for pump_id, prediction in due:
            target = self._target_period(prediction.rul_days)
            period = target
            while period >= 0 and load.get(period, 0) >= self.capacity_per_period:
                period -= 1  # earlier, never later
            if period < 0:
                unplaceable.append((pump_id, prediction))
                continue
            load[period] = load.get(period, 0) + 1
            wasted = max(
                prediction.rul_days - period * self.period_days, 0.0
            )
            scheduled.append(
                ScheduledReplacement(
                    pump_id=int(pump_id),
                    period=period,
                    predicted_rul_days=float(prediction.rul_days),
                    expected_wasted_days=float(wasted),
                )
            )
        # Capacity exhausted even at period 0: those pumps go first-come
        # into period 0 anyway — overload is an operational escalation,
        # not a reason to risk running to failure.
        for pump_id, prediction in unplaceable:
            load[0] = load.get(0, 0) + 1
            scheduled.append(
                ScheduledReplacement(
                    pump_id=int(pump_id),
                    period=0,
                    predicted_rul_days=float(prediction.rul_days),
                    expected_wasted_days=float(max(prediction.rul_days, 0.0)),
                )
            )

        scheduled.sort(key=lambda s: (s.period, s.pump_id))
        total_wasted = float(sum(s.expected_wasted_days for s in scheduled))
        return MaintenancePlan(
            replacements=scheduled,
            period_days=self.period_days,
            expected_wasted_days=total_wasted,
            expected_wasted_usd=total_wasted * self.cost_model.daily_value_usd,
        )
