"""Operator report rendering — the textual stand-in for the paper's GUI.

The analysis component of Fig. 1 ends in "a GUI for the end user"; the
fab manager's actionable view is: which pumps are in hazard *now*, which
will reach hazard within the planning horizon, what the fleet's health
mix looks like, and what the recorded maintenance has cost.  This module
renders exactly that from an :class:`~repro.analysis.engine.AnalysisReport`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.engine import AnalysisReport
from repro.core.classify import ZONE_A, ZONE_BC, ZONE_D


@dataclass(frozen=True)
class Alert:
    """One actionable maintenance alert.

    Attributes:
        pump_id: affected equipment.
        severity: ``"hazard"`` (in Zone D / negative RUL) or
            ``"upcoming"`` (crosses within the horizon).
        rul_days: predicted remaining days (may be negative).
        message: operator-facing explanation.
    """

    pump_id: int
    severity: str
    rul_days: float
    message: str


def build_alerts(report: AnalysisReport, horizon_days: float = 30.0) -> list[Alert]:
    """Derive maintenance alerts from an analysis report.

    Args:
        report: engine output.
        horizon_days: planning window for "upcoming" alerts.

    Returns:
        Alerts sorted most-urgent first (ascending RUL).
    """
    if horizon_days <= 0:
        raise ValueError("horizon_days must be positive")
    alerts = []
    for pump in sorted(set(int(p) for p in report.pump_ids)):
        zone = report.zone_of(pump)
        prediction = report.rul.get(pump)
        rul = prediction.rul_days if prediction else np.nan
        if zone == ZONE_D or (prediction and prediction.rul_days <= 0):
            alerts.append(
                Alert(
                    pump_id=pump,
                    severity="hazard",
                    rul_days=float(rul),
                    message=(
                        f"pump {pump} is in hazard condition "
                        f"(zone {zone or '?'}, RUL "
                        f"{'n/a' if np.isnan(rul) else f'{rul:.0f} d'}); "
                        "replace immediately"
                    ),
                )
            )
        elif prediction and prediction.rul_days <= horizon_days:
            alerts.append(
                Alert(
                    pump_id=pump,
                    severity="upcoming",
                    rul_days=float(rul),
                    message=(
                        f"pump {pump} reaches hazard in ~{rul:.0f} days; "
                        "schedule replacement"
                    ),
                )
            )
    alerts.sort(key=lambda a: (a.severity != "hazard", a.rul_days))
    return alerts


def fleet_health_summary(report: AnalysisReport) -> dict[str, int]:
    """Count of pumps per latest predicted zone (``"?"`` for unknown)."""
    counts = {ZONE_A: 0, ZONE_BC: 0, ZONE_D: 0, "?": 0}
    for pump in set(int(p) for p in report.pump_ids):
        zone = report.zone_of(pump)
        counts[zone if zone in counts else "?"] += 1
    return counts


def render_report(report: AnalysisReport, horizon_days: float = 30.0) -> str:
    """Render the complete operator report as text.

    Sections: fleet health mix, alerts, per-pump table, lifetime models,
    and the maintenance cost accounting of the analysis window.
    """
    lines: list[str] = []
    lines.append("=" * 60)
    lines.append("VIBRATION ANALYTICS — FLEET REPORT")
    lines.append("=" * 60)

    health = fleet_health_summary(report)
    lines.append("")
    lines.append(
        "Fleet health: "
        + "  ".join(f"zone {z}: {n}" for z, n in health.items() if n)
    )
    lines.append(f"Measurements analyzed: {report.pump_ids.shape[0]} "
                 f"({int(report.pipeline.valid_mask.sum())} valid)")
    lines.append(f"Expert labels used: {report.n_labels_used}")

    alerts = build_alerts(report, horizon_days)
    lines.append("")
    lines.append(f"ALERTS ({len(alerts)}):")
    if alerts:
        for alert in alerts:
            flag = "!!" if alert.severity == "hazard" else " !"
            lines.append(f"  {flag} {alert.message}")
    else:
        lines.append("  none — no pump reaches hazard within "
                     f"{horizon_days:.0f} days")

    lines.append("")
    lines.append("PER-PUMP STATUS:")
    lines.extend("  " + line for line in report.summary_lines())

    lines.append("")
    lines.append(f"LIFETIME MODELS ({len(report.lifetime_models)}):")
    for i, model in enumerate(report.lifetime_models):
        crossing = model.crossing_time(report.pipeline.zone_d_threshold)
        lines.append(
            f"  model {i + 1}: rate {model.slope:.2e}/day, "
            f"hazard at ~{crossing:.0f} days of service "
            f"({model.n_inliers} supporting measurements)"
        )

    if report.diagnoses:
        lines.append("")
        lines.append("SPECTRAL DIAGNOSIS:")
        for pump in sorted(report.diagnoses):
            diagnosis = report.diagnoses[pump]
            lines.append(f"  pump {pump}: {diagnosis.label}")

    data_health = report.data_health
    if data_health is not None and data_health.has_issues:
        lines.append("")
        lines.append("DATA HEALTH:")
        summary = (
            f"  analyzed {data_health.analyzed} of "
            f"{data_health.total_retrieved} retrieved measurements; "
            f"{data_health.n_quarantined} quarantined (non-finite), "
            f"{data_health.n_dropped} dropped (incomplete), "
            f"{data_health.dead_letters} dead-lettered upstream"
        )
        if data_health.n_corrupt:
            summary += f", {data_health.n_corrupt} corrupt at rest"
        lines.append(summary)
        affected = sorted(
            set(data_health.quarantined_nonfinite)
            | set(data_health.dropped_incomplete)
            | set(data_health.corrupt_blobs)
        )
        for pump in affected:
            quarantined = data_health.quarantined_nonfinite.get(pump, 0)
            dropped = data_health.dropped_incomplete.get(pump, 0)
            pump_line = f"  pump {pump}: {quarantined} quarantined, {dropped} dropped"
            corrupt = data_health.corrupt_blobs.get(pump, 0)
            if corrupt:
                pump_line += f", {corrupt} corrupt"
            lines.append(pump_line)

    supervision = report.supervision
    if supervision is not None and supervision.has_activity:
        lines.append("")
        lines.append("SUPERVISION:")
        lines.append(
            f"  {supervision.restarts} worker restart(s) "
            f"({supervision.worker_deaths} death(s), "
            f"{supervision.hung_chunks} hung chunk(s)); "
            f"{supervision.abandoned_chunks} chunk(s) abandoned"
            + (
                f", {supervision.salvaged_chunks} salvaged"
                if supervision.abandoned_chunks
                else ""
            )
        )

    wasted = report.wasted_rul
    lines.append("")
    lines.append("MAINTENANCE COST (analysis window):")
    lines.append(f"  planned replacements wasted {wasted['pm_wasted_days']:.0f} "
                 f"useful days = ${wasted['pm_wasted_usd']:,.0f}")
    lines.append(f"  breakdowns ran {wasted['bm_overrun_days']:.0f} days in hazard, "
                 f"penalties ${wasted['bm_penalty_usd']:,.0f}")
    lines.append(f"  total: ${wasted['total_usd']:,.0f}")
    return "\n".join(lines)
