"""Online (streaming) per-pump tracking.

The batch engine recomputes everything per analysis-period refresh; a
deployment also wants a cheap *incremental* path that updates a pump's
state the moment its measurement lands — the "real-time optimal response"
the paper's introduction promises.  :class:`OnlinePumpTracker` maintains,
per measurement, in O(1):

* the smoothed degradation feature (trailing window, matching the batch
  preprocessing);
* the current zone against pre-learned thresholds;
* a Holt level/trend state for per-pump crossing forecasts; and
* a hysteresis-debounced alert flag (a single noisy measurement must not
  page the fab crew at 3 a.m.; zone alerts require ``debounce``
  consecutive hazard readings, matching how operators treat alarms).

It consumes pre-learned artifacts (Zone A exemplar + thresholds) from a
batch run, which mirrors the paper's split between model *training*
(periodic) and model *application* (per measurement).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.classify import ZONE_D, ZONES, PeakHarmonicFeature
from repro.core.forecast import HoltLinearForecaster


@dataclass(frozen=True)
class TrackerUpdate:
    """State snapshot after consuming one measurement.

    Attributes:
        da: smoothed degradation feature after this measurement.
        zone: current zone classification.
        alert: True while the debounced hazard alert is active.
        rul_days: Holt-forecast days to the hazard threshold (``inf``
            when the trend never crosses, 0 when already over).
    """

    da: float
    zone: str
    alert: bool
    rul_days: float


class OnlinePumpTracker:
    """Incremental per-pump health state."""

    def __init__(
        self,
        feature: PeakHarmonicFeature,
        zone_thresholds: np.ndarray,
        measurement_interval_days: float,
        smoothing_window: int = 8,
        debounce: int = 3,
        forecast_horizon: int = 5000,
    ):
        """Create a tracker.

        Args:
            feature: *fitted* Zone A exemplar feature from a batch run.
            zone_thresholds: ordered boundaries between the zones
                (length ``len(ZONES) - 1``).
            measurement_interval_days: time between measurements, used to
                convert forecast steps into days.
            smoothing_window: trailing D_a window (matches the batch
                moving average).
            debounce: consecutive hazard classifications required to
                raise (and clear) the alert.
            forecast_horizon: Holt forecast look-ahead in steps.
        """
        if feature.baseline_ is None:
            raise ValueError("feature must be fitted before streaming")
        thresholds = np.asarray(zone_thresholds, dtype=np.float64)
        if thresholds.size != len(ZONES) - 1:
            raise ValueError(f"expected {len(ZONES) - 1} thresholds")
        if not np.all(np.diff(thresholds) > 0) and thresholds.size > 1:
            raise ValueError("thresholds must be increasing")
        if measurement_interval_days <= 0:
            raise ValueError("measurement_interval_days must be positive")
        if smoothing_window < 1:
            raise ValueError("smoothing_window must be positive")
        if debounce < 1:
            raise ValueError("debounce must be positive")
        self.feature = feature
        self.thresholds = thresholds
        self.interval_days = measurement_interval_days
        self.debounce = debounce
        self.forecast_horizon = forecast_horizon
        self._window: deque[float] = deque(maxlen=smoothing_window)
        self._forecaster = HoltLinearForecaster()
        self._hazard_streak = 0
        self._clear_streak = 0
        self._alert = False
        self.n_measurements = 0

    @property
    def alert_active(self) -> bool:
        return self._alert

    def _classify(self, da: float) -> str:
        idx = int(np.searchsorted(self.thresholds, da, side="left"))
        return ZONES[idx]

    def _update_alert(self, zone: str) -> None:
        if zone == ZONE_D:
            self._hazard_streak += 1
            self._clear_streak = 0
            if self._hazard_streak >= self.debounce:
                self._alert = True
        else:
            self._clear_streak += 1
            self._hazard_streak = 0
            if self._clear_streak >= self.debounce:
                self._alert = False

    def _forecast_rul_days(self, smoothed: float) -> float:
        hazard = float(self.thresholds[-1])
        if smoothed >= hazard:
            return 0.0
        if self.n_measurements < 3:
            return np.inf
        # O(log horizon) bisection over the monotone damped-trend
        # trajectory — the per-measurement cost no longer scales with
        # forecast_horizon (5000 steps by default).
        step = self._forecaster.crossing_step(hazard, self.forecast_horizon)
        if step is None:
            return np.inf
        return float(step) * self.interval_days

    def consume(self, psd: np.ndarray, frequencies: np.ndarray) -> TrackerUpdate:
        """Process one measurement's PSD; returns the new state."""
        da = self.feature.score(psd, frequencies)
        self._window.append(float(da))
        smoothed = float(np.mean(self._window))
        self._forecaster.update(smoothed)
        self.n_measurements += 1

        zone = self._classify(smoothed)
        self._update_alert(zone)
        return TrackerUpdate(
            da=smoothed,
            zone=zone,
            alert=self._alert,
            rul_days=self._forecast_rul_days(smoothed),
        )
