"""In-memory dead-letter queue for quarantined measurements.

The transport, gateway and engine layers push
:class:`~repro.storage.records.DeadLetterRecord` entries here instead of
raising (or silently dropping); the chaos runner flushes the queue into
the database's ``dead_letters`` table and the operator report renders
the per-pump counts in its data-health section.
"""

from __future__ import annotations

from collections import Counter

from repro.storage.records import DeadLetterRecord


class DeadLetterQueue:
    """Append-only quarantine for measurements the pipeline rejected."""

    def __init__(self) -> None:
        self.records: list[DeadLetterRecord] = []

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def add(
        self,
        stage: str,
        pump_id: int,
        measurement_id: int,
        reason: str,
        detail: str = "",
        timestamp_day: float = float("nan"),
    ) -> DeadLetterRecord:
        record = DeadLetterRecord(
            stage=stage,
            pump_id=int(pump_id),
            measurement_id=int(measurement_id),
            reason=reason,
            detail=detail,
            timestamp_day=timestamp_day,
        )
        self.records.append(record)
        return record

    def put(self, record: DeadLetterRecord) -> None:
        self.records.append(record)

    def counts_by_pump(self) -> dict[int, int]:
        """Quarantined-measurement count per pump."""
        return dict(Counter(r.pump_id for r in self.records))

    def counts_by_reason(self) -> dict[str, int]:
        return dict(Counter(r.reason for r in self.records))

    def for_stage(self, stage: str) -> list[DeadLetterRecord]:
        return [r for r in self.records if r.stage == stage]
