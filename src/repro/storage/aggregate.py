"""Long-horizon storage: daily aggregation and raw-block retention.

The paper stresses that in an IoT setting "data is expensive and valuable"
— but raw 6 KB blocks still accumulate: a 12-pump fleet at a 10-minute
period writes ~36 MB/day of samples.  The standard telemetry answer,
implemented here, is tiered retention:

* recent raw blocks are kept for drill-down analysis;
* older measurements are *aggregated* into per-pump daily summaries
  (count, RMS statistics, offsets) that preserve everything the
  long-horizon analytics (trend lines, zone history) consumes; and
* raw blocks older than the retention window are deleted.

Aggregation is pure-Python over the stores so it works on both in-memory
and file-backed databases.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.features import measurement_offsets, rms_feature
from repro.storage.database import VibrationDatabase


@dataclass(frozen=True)
class DailySummary:
    """Aggregated statistics of one pump's measurements on one day.

    Attributes:
        pump_id: equipment identifier.
        day: integral day index (floor of the timestamps).
        n_measurements: measurements aggregated.
        rms_mean: mean RMS over the day.
        rms_std: RMS standard deviation over the day.
        rms_max: worst RMS of the day.
        service_day_last: pump service time at the day's last measurement.
        offset_mean: mean acceleration average (3-vector) — the quantity
            the Fig. 8 stability check trends.
    """

    pump_id: int
    day: int
    n_measurements: int
    rms_mean: float
    rms_std: float
    rms_max: float
    service_day_last: float
    offset_mean: tuple[float, float, float]


_SUMMARY_SCHEMA = """
CREATE TABLE IF NOT EXISTS daily_summaries (
    pump_id INTEGER NOT NULL,
    day INTEGER NOT NULL,
    n_measurements INTEGER NOT NULL,
    rms_mean REAL NOT NULL,
    rms_std REAL NOT NULL,
    rms_max REAL NOT NULL,
    service_day_last REAL NOT NULL,
    offset_x REAL NOT NULL,
    offset_y REAL NOT NULL,
    offset_z REAL NOT NULL,
    PRIMARY KEY (pump_id, day)
);
"""


class RetentionManager:
    """Tiered retention over a :class:`VibrationDatabase`."""

    def __init__(self, database: VibrationDatabase):
        self._db = database
        self._conn = database._conn  # same connection; summaries live beside
        self._conn.executescript(_SUMMARY_SCHEMA)

    # ------------------------------------------------------------------
    # Aggregation.
    # ------------------------------------------------------------------
    def summarize_day(self, pump_id: int, day: int) -> DailySummary | None:
        """Aggregate one pump-day from raw measurements (None when empty)."""
        records = self._db.measurements.query(float(day), float(day + 1), [pump_id])
        if not records:
            return None
        rms_values = np.asarray([rms_feature(r.samples) for r in records])
        offsets = np.stack([measurement_offsets(r.samples) for r in records])
        last = max(records, key=lambda r: r.timestamp_day)
        return DailySummary(
            pump_id=pump_id,
            day=day,
            n_measurements=len(records),
            rms_mean=float(rms_values.mean()),
            rms_std=float(rms_values.std()),
            rms_max=float(rms_values.max()),
            service_day_last=float(last.service_day),
            offset_mean=tuple(float(v) for v in offsets.mean(axis=0)),
        )

    def store_summary(self, summary: DailySummary) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO daily_summaries VALUES (?,?,?,?,?,?,?,?,?,?)",
            (
                summary.pump_id,
                summary.day,
                summary.n_measurements,
                summary.rms_mean,
                summary.rms_std,
                summary.rms_max,
                summary.service_day_last,
                *summary.offset_mean,
            ),
        )
        self._conn.commit()

    def summaries(self, pump_id: int | None = None) -> list[DailySummary]:
        """Stored summaries, oldest first."""
        sql = (
            "SELECT pump_id, day, n_measurements, rms_mean, rms_std, rms_max,"
            " service_day_last, offset_x, offset_y, offset_z FROM daily_summaries"
        )
        params: list[object] = []
        if pump_id is not None:
            sql += " WHERE pump_id = ?"
            params.append(int(pump_id))
        sql += " ORDER BY day, pump_id"
        return [
            DailySummary(
                pump_id=row[0],
                day=row[1],
                n_measurements=row[2],
                rms_mean=row[3],
                rms_std=row[4],
                rms_max=row[5],
                service_day_last=row[6],
                offset_mean=(row[7], row[8], row[9]),
            )
            for row in self._conn.execute(sql, params)
        ]

    # ------------------------------------------------------------------
    # Compaction.
    # ------------------------------------------------------------------
    def compact(self, keep_raw_days: float, now_day: float) -> dict:
        """Aggregate-then-delete raw blocks older than the retention window.

        Args:
            keep_raw_days: raw blocks younger than ``now_day -
                keep_raw_days`` are untouched.
            now_day: current time in deployment days.

        Returns:
            dict with ``summaries_written`` and ``raw_deleted`` counts.
        """
        if keep_raw_days < 0:
            raise ValueError("keep_raw_days must be non-negative")
        cutoff_day = int(np.floor(now_day - keep_raw_days))
        old = self._db.measurements.query(end_day=float(cutoff_day))
        pump_days = sorted({(r.pump_id, int(np.floor(r.timestamp_day))) for r in old})

        written = 0
        for pump_id, day in pump_days:
            summary = self.summarize_day(pump_id, day)
            if summary is not None:
                self.store_summary(summary)
                written += 1
        cursor = self._conn.execute(
            "DELETE FROM measurements WHERE timestamp_day < ?", (float(cutoff_day),)
        )
        self._conn.commit()
        return {"summaries_written": written, "raw_deleted": cursor.rowcount}
