"""Trace import/export: move measurement corpora in and out of the system.

Two interchange paths a downstream adopter needs:

* **NPZ corpus** — lossless bulk export/import of a whole measurement set
  (samples + metadata) for sharing synthetic corpora or checkpointing a
  deployment's data;
* **CSV import** — the lowest-common-denominator path for real
  accelerometer logs: one file per measurement with ``x,y,z`` columns in
  g, plus the metadata supplied alongside.  This is how a user feeds
  *their own* sensor data to the analysis pipeline.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.storage.records import Measurement


def export_npz(measurements: list[Measurement], path: str | Path) -> Path:
    """Write a measurement corpus to one ``.npz`` file.

    Blocks of differing lengths are allowed; they are stored padded with
    NaN and unpadded on import.

    Args:
        measurements: records to export.
        path: destination file (parents created).

    Returns:
        The resolved path written.
    """
    if not measurements:
        raise ValueError("nothing to export")
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)

    max_k = max(m.num_samples for m in measurements)
    n = len(measurements)
    samples = np.full((n, max_k, 3), np.nan, dtype=np.float32)
    lengths = np.empty(n, dtype=np.int64)
    for i, m in enumerate(measurements):
        samples[i, : m.num_samples] = m.samples
        lengths[i] = m.num_samples
    np.savez_compressed(
        target,
        samples=samples,
        lengths=lengths,
        pump_ids=np.asarray([m.pump_id for m in measurements], dtype=np.int64),
        measurement_ids=np.asarray(
            [m.measurement_id for m in measurements], dtype=np.int64
        ),
        timestamp_days=np.asarray([m.timestamp_day for m in measurements]),
        service_days=np.asarray([m.service_day for m in measurements]),
        sampling_rates=np.asarray([m.sampling_rate_hz for m in measurements]),
    )
    return target


def import_npz(path: str | Path) -> list[Measurement]:
    """Read a corpus written by :func:`export_npz`.

    Raises:
        ValueError: when the file misses any expected array.
    """
    with np.load(Path(path)) as data:
        required = {
            "samples",
            "lengths",
            "pump_ids",
            "measurement_ids",
            "timestamp_days",
            "service_days",
            "sampling_rates",
        }
        missing = required - set(data.files)
        if missing:
            raise ValueError(f"corpus is missing arrays: {sorted(missing)}")
        out = []
        for i in range(data["pump_ids"].shape[0]):
            k = int(data["lengths"][i])
            out.append(
                Measurement(
                    pump_id=int(data["pump_ids"][i]),
                    measurement_id=int(data["measurement_ids"][i]),
                    timestamp_day=float(data["timestamp_days"][i]),
                    service_day=float(data["service_days"][i]),
                    samples=np.asarray(data["samples"][i, :k], dtype=np.float64),
                    sampling_rate_hz=float(data["sampling_rates"][i]),
                )
            )
    return out


def import_csv_measurement(
    path: str | Path,
    pump_id: int,
    measurement_id: int,
    timestamp_day: float,
    service_day: float,
    sampling_rate_hz: float = 4000.0,
) -> Measurement:
    """Read one measurement from a ``x,y,z`` CSV of acceleration in g.

    The file may carry a header row (any line whose first field is not a
    number is skipped).

    Args:
        path: CSV file with three numeric columns.
        pump_id: equipment the block belongs to.
        measurement_id: sequence number to assign.
        timestamp_day: absolute measurement time in days.
        service_day: pump service time in days.
        sampling_rate_hz: block sampling rate.

    Raises:
        ValueError: on malformed rows or fewer than 2 samples.
    """
    rows: list[tuple[float, float, float]] = []
    with open(Path(path), newline="") as handle:
        for line_no, row in enumerate(csv.reader(handle), start=1):
            if not row:
                continue
            try:
                x = float(row[0])
            except (ValueError, IndexError):
                if line_no == 1:
                    continue  # header
                raise ValueError(f"malformed row {line_no}: {row!r}")
            if len(row) < 3:
                raise ValueError(f"row {line_no} has fewer than 3 columns")
            rows.append((x, float(row[1]), float(row[2])))
    if len(rows) < 2:
        raise ValueError("measurement needs at least 2 samples")
    return Measurement(
        pump_id=pump_id,
        measurement_id=measurement_id,
        timestamp_day=timestamp_day,
        service_day=service_day,
        samples=np.asarray(rows, dtype=np.float64),
        sampling_rate_hz=sampling_rate_hz,
    )


def export_csv_measurement(measurement: Measurement, path: str | Path) -> Path:
    """Write one measurement block as a ``x,y,z`` CSV (with header)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["x_g", "y_g", "z_g"])
        for row in measurement.samples:
            writer.writerow([f"{v:.9g}" for v in row])
    return target
