"""Analysis-period data retrieval API (the bottom layer of Fig. 7).

The paper exposes a "common restful-type API" that hands the transformation
layer every record inside an *analysis period* ``[Ts, Te)``.  The period is
a rolling window: the system refreshes it periodically (hourly in the
paper's example) so the engine recomputes on the newest data.

``DataRetrievalAPI`` provides exactly that contract over a
:class:`~repro.storage.database.VibrationDatabase`, including the rolling
refresh (``advance``) semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.storage.database import VibrationDatabase
from repro.storage.records import (
    LabelRecord,
    MaintenanceEvent,
    Measurement,
    TemperatureRecord,
)

#: Injection point name (duck-typed contract with repro.chaos.inject).
STORAGE_READ_POINT = "storage.read"


@dataclass(frozen=True)
class AnalysisPeriod:
    """Half-open analysis window ``[start_day, end_day)``.

    Attributes:
        start_day: ``Ts`` in deployment epoch days.
        end_day: ``Te`` in deployment epoch days; must exceed ``Ts``.
    """

    start_day: float
    end_day: float

    def __post_init__(self) -> None:
        if not self.end_day > self.start_day:
            raise ValueError("end_day must be greater than start_day")

    @property
    def duration_days(self) -> float:
        return self.end_day - self.start_day

    def advanced(self, delta_days: float) -> "AnalysisPeriod":
        """The next rolling window: the paper's ``Te_j = Te_{j-1} + delta``.

        The start is kept fixed (the engine accumulates history) and the
        end slides forward, matching the refresh rule of Sec. III-B.
        """
        if delta_days <= 0:
            raise ValueError("delta_days must be positive")
        return AnalysisPeriod(self.start_day, self.end_day + delta_days)

    def contains(self, day: float) -> bool:
        return self.start_day <= day < self.end_day


class DataRetrievalAPI:
    """Typed retrieval facade scoped to an analysis period."""

    def __init__(
        self,
        database: VibrationDatabase,
        period: AnalysisPeriod,
        injector=None,
        retry=None,
        clock=None,
    ):
        """Create a retrieval facade.

        Args:
            database: the backing sensor database.
            period: the initial analysis window.
            injector: optional chaos fault injector; measurement reads
                are faulted at ``storage.read``.
            retry: optional retry policy (duck-typed
                :class:`repro.chaos.retry.RetryPolicy`) applied to
                transient read failures.
            clock: clock for the retry policy's backoff.
        """
        self._db = database
        self.period = period
        self._injector = injector
        self._retry = retry
        self._clock = clock

    @property
    def database(self) -> VibrationDatabase:
        """The backing database (engines inspect ``in_memory`` for the
        process-backend fallback)."""
        return self._db

    def advance(self, delta_days: float) -> None:
        """Slide the analysis window forward (periodic refresh)."""
        self.period = self.period.advanced(delta_days)

    # ------------------------------------------------------------------
    # Retrieval endpoints.
    # ------------------------------------------------------------------
    def get_measurements(self, pump_ids: list[int] | None = None) -> list[Measurement]:
        """Measurements inside the current analysis period.

        A configured injector can fault the read (transient errors,
        retried under the retry policy when one is set) and mutate the
        returned records — the engine's quarantine logic downstream must
        cope with whatever comes back.
        """

        def _fetch() -> list[Measurement]:
            if self._injector is not None:
                self._injector.maybe_fail(STORAGE_READ_POINT)
            return self._db.measurements.query(
                self.period.start_day, self.period.end_day, pump_ids
            )

        if self._retry is not None:
            records = self._retry.run(_fetch, clock=self._clock)
        else:
            records = _fetch()
        if self._injector is not None:
            records = self._injector.mutate_measurements(STORAGE_READ_POINT, records)
        return records

    def get_labels(self, pump_ids: list[int] | None = None) -> list[LabelRecord]:
        """Valid expert labels (invalid labels are discarded, as the paper does)."""
        return self._db.labels.query(pump_ids=pump_ids, only_valid=True)

    def get_events(self, pump_ids: list[int] | None = None) -> list[MaintenanceEvent]:
        """Maintenance events inside the current analysis period."""
        return self._db.events.query(self.period.start_day, self.period.end_day, pump_ids)

    def get_temperature(self, pump_ids: list[int] | None = None) -> list[TemperatureRecord]:
        """FICS temperature readings inside the current analysis period."""
        return self._db.temperature.query(
            self.period.start_day, self.period.end_day, pump_ids
        )

    # ------------------------------------------------------------------
    # Matrix construction helpers for the transformation layer.
    # ------------------------------------------------------------------
    def measurement_matrices(
        self, pump_ids: list[int] | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Dense arrays ``(pump_ids, measurement_ids, service_days, samples)``.

        Measurements whose block length differs from the majority ``K``
        are dropped (incomplete sensor transfers cannot be stacked), which
        implements the "eliminating invalid measurements to prevent
        unwanted computations" step of the preprocessing layer.
        """
        pumps, mids, service, samples, _, _ = self.measurement_matrices_with_health(
            pump_ids
        )
        return pumps, mids, service, samples

    def measurement_matrices_with_health(
        self, pump_ids: list[int] | None = None
    ) -> tuple[
        np.ndarray, np.ndarray, np.ndarray, np.ndarray, dict[int, int], dict[int, int]
    ]:
        """:meth:`measurement_matrices` plus per-pump drop accounting.

        Returns:
            ``(pump_ids, measurement_ids, service_days, samples,
            dropped_incomplete, corrupt)`` where ``dropped_incomplete``
            maps pump id → measurements discarded for not matching the
            majority block length ``K`` and ``corrupt`` maps pump id →
            rows quarantined for a stored-BLOB checksum mismatch.
        """
        if self._injector is None and self._retry is None:
            # Fast path: no chaos hooks to honour, so the store can decode
            # BLOBs straight into one preallocated matrix (bit-identical
            # to the record path below, without materializing records).
            return self._db.measurements.query_arrays(
                self.period.start_day, self.period.end_day, pump_ids
            )
        records = self.get_measurements(pump_ids)
        # The store quarantined checksum failures during the query; its
        # per-pump tally is the record path's corruption accounting.
        corrupt = dict(self._db.measurements.last_corrupt)
        if not records:
            empty = np.empty(0)
            return (
                empty.astype(int),
                empty.astype(int),
                empty,
                np.empty((0, 0, 3)),
                {},
                corrupt,
            )
        lengths = np.asarray([r.num_samples for r in records])
        counts = np.bincount(lengths)
        k = int(counts.argmax())
        kept = [r for r in records if r.num_samples == k]
        dropped_incomplete: dict[int, int] = {}
        for r in records:
            if r.num_samples != k:
                dropped_incomplete[r.pump_id] = dropped_incomplete.get(r.pump_id, 0) + 1
        pumps = np.asarray([r.pump_id for r in kept], dtype=int)
        mids = np.asarray([r.measurement_id for r in kept], dtype=int)
        service = np.asarray([r.service_day for r in kept], dtype=np.float64)
        samples = np.stack([r.samples for r in kept])
        return pumps, mids, service, samples, dropped_incomplete, corrupt
