"""Record types shared by the storage, simulation and analysis layers.

Timestamps are plain floats in *days* since the deployment epoch: the
paper's analysis operates on service-time axes measured in days, and a
single numeric time base keeps the simulators, stores and analytics
trivially interoperable (converting to wall-clock datetimes is a display
concern).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

PM = "PM"
"""Planned (scheduled) maintenance event kind."""

BM = "BM"
"""Breakdown maintenance event kind."""

LABEL_SOURCE_DATA = "data-driven"
"""Label produced by an expert reading sensor data."""

LABEL_SOURCE_PHYSICAL = "physical-checking"
"""Label produced by physically inspecting a replaced equipment."""


@dataclass(frozen=True)
class SensorMeta:
    """Static description of one deployed vibration sensor.

    Attributes:
        sensor_id: unique sensor identifier.
        pump_id: equipment the sensor is attached to (one sensor per
            equipment, as the paper assumes).
        sampling_rate_hz: configured sampling rate.
        samples_per_measurement: block length ``K``.
        install_day: deployment epoch day the sensor went live.
    """

    sensor_id: int
    pump_id: int
    sampling_rate_hz: float = 4000.0
    samples_per_measurement: int = 1024
    install_day: float = 0.0


@dataclass(frozen=True)
class Measurement:
    """One vibration measurement: ``K`` tri-axial acceleration samples.

    Attributes:
        pump_id: equipment identifier.
        measurement_id: per-pump measurement sequence number.
        timestamp_day: absolute time of the measurement (deployment epoch
            days).
        service_day: pump service time at the measurement, in days since
            the pump's (latest) installation.
        samples: acceleration block, shape ``(K, 3)`` in g.
        sampling_rate_hz: sampling rate the block was captured at.
    """

    pump_id: int
    measurement_id: int
    timestamp_day: float
    service_day: float
    samples: np.ndarray
    sampling_rate_hz: float = 4000.0

    def __post_init__(self) -> None:
        # float32 blocks (the storage layer's zero-copy BLOB views) are
        # kept as-is — upcasting here would force a copy per record and
        # every analysis consumer casts to float64 itself (exactly, since
        # every float32 is representable).  Everything else is coerced to
        # float64 as before.
        arr = np.asarray(self.samples)
        if arr.dtype != np.float32:
            arr = np.asarray(arr, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] != 3:
            raise ValueError(f"samples must have shape (K, 3), got {arr.shape}")
        object.__setattr__(self, "samples", arr)

    @property
    def num_samples(self) -> int:
        return int(self.samples.shape[0])


@dataclass(frozen=True)
class LabelRecord:
    """Expert zone label for one measurement.

    Attributes:
        pump_id: equipment identifier.
        measurement_id: measurement the label refers to.
        zone: one of ``"A"``, ``"BC"``, ``"D"`` — or an arbitrary string
            for invalid labels (``valid`` is the authoritative flag).
        source: ``"data-driven"`` or ``"physical-checking"``.
        valid: False for labels the paper discards as human mistakes.
    """

    pump_id: int
    measurement_id: int
    zone: str
    source: str = LABEL_SOURCE_DATA
    valid: bool = True


@dataclass(frozen=True)
class MaintenanceEvent:
    """A PM or BM maintenance action on one equipment.

    Attributes:
        pump_id: equipment identifier.
        timestamp_day: when the action happened.
        kind: ``"PM"`` (planned) or ``"BM"`` (breakdown).
        service_day_at_event: pump service time when it was replaced.
        true_rul_days: ground-truth remaining useful lifetime at the
            event (simulation only; positive for PM waste, negative when
            the pump had already failed).  NaN when unknown.
    """

    pump_id: int
    timestamp_day: float
    kind: str
    service_day_at_event: float
    true_rul_days: float = float("nan")

    def __post_init__(self) -> None:
        if self.kind not in (PM, BM):
            raise ValueError(f"kind must be PM or BM, got {self.kind!r}")


@dataclass(frozen=True)
class TemperatureRecord:
    """One FICS temperature reading for an equipment."""

    pump_id: int
    timestamp_day: float
    temperature_c: float


@dataclass(frozen=True)
class DeadLetterRecord:
    """A measurement quarantined somewhere along the pipeline.

    The robustness layer never silently discards data: a measurement
    that cannot be transported, converted or analyzed is recorded here
    so the operator report (and post-mortems) can account for it.

    Attributes:
        stage: pipeline stage that quarantined it (``"transport"``,
            ``"gateway"``, ``"engine"``).
        pump_id: equipment (or sensor) the measurement came from.
        measurement_id: per-pump measurement sequence number.
        reason: short machine-readable cause (e.g.
            ``"transfer-failed"``, ``"reassembly-failed"``,
            ``"conversion-failed"``, ``"non-finite"``,
            ``"circuit-open"``).
        detail: free-text diagnostic (exception text etc.).
        timestamp_day: when the measurement was taken, if known.
    """

    stage: str
    pump_id: int
    measurement_id: int
    reason: str
    detail: str = ""
    timestamp_day: float = float("nan")
