"""Data-engine substrate: record types, SQLite stores and the retrieval API.

This layer plays the role of the paper's factory database + sensor database
pair and the restful-type data retrieval layer at the bottom of Fig. 7.
"""

from repro.storage.records import (
    LabelRecord,
    MaintenanceEvent,
    Measurement,
    SensorMeta,
    TemperatureRecord,
)
from repro.storage.database import (
    EventStore,
    LabelStore,
    MeasurementStore,
    TemperatureStore,
    VibrationDatabase,
)
from repro.storage.api import AnalysisPeriod, DataRetrievalAPI
from repro.storage.aggregate import DailySummary, RetentionManager
from repro.storage.traces import (
    export_csv_measurement,
    export_npz,
    import_csv_measurement,
    import_npz,
)

__all__ = [
    "Measurement",
    "LabelRecord",
    "MaintenanceEvent",
    "SensorMeta",
    "TemperatureRecord",
    "MeasurementStore",
    "LabelStore",
    "EventStore",
    "TemperatureStore",
    "VibrationDatabase",
    "AnalysisPeriod",
    "DataRetrievalAPI",
    "DailySummary",
    "RetentionManager",
    "export_npz",
    "import_npz",
    "export_csv_measurement",
    "import_csv_measurement",
]
