"""SQLite-backed stores for measurements, labels, events and temperature.

The paper's engine reads from a *sensor database* (vibration measurements)
and a *factory database* (FICS events, maintenance records, temperature).
Both are modelled here over a single SQLite connection — in-memory by
default, file-backed when a path is given — with acceleration blocks stored
as raw little-endian float32 BLOBs for compactness (the sensors themselves
emit 2-byte counts; float32 keeps full post-conversion precision at half
the float64 footprint).
"""

from __future__ import annotations

import sqlite3
from collections.abc import Iterable, Sequence

import numpy as np

from repro.storage.records import (
    DeadLetterRecord,
    LabelRecord,
    MaintenanceEvent,
    Measurement,
    SensorMeta,
    TemperatureRecord,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS sensors (
    sensor_id INTEGER PRIMARY KEY,
    pump_id INTEGER NOT NULL,
    sampling_rate_hz REAL NOT NULL,
    samples_per_measurement INTEGER NOT NULL,
    install_day REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS measurements (
    pump_id INTEGER NOT NULL,
    measurement_id INTEGER NOT NULL,
    timestamp_day REAL NOT NULL,
    service_day REAL NOT NULL,
    sampling_rate_hz REAL NOT NULL,
    num_samples INTEGER NOT NULL,
    samples BLOB NOT NULL,
    PRIMARY KEY (pump_id, measurement_id)
);
CREATE INDEX IF NOT EXISTS idx_measurements_time ON measurements (timestamp_day);
CREATE TABLE IF NOT EXISTS labels (
    pump_id INTEGER NOT NULL,
    measurement_id INTEGER NOT NULL,
    zone TEXT NOT NULL,
    source TEXT NOT NULL,
    valid INTEGER NOT NULL,
    PRIMARY KEY (pump_id, measurement_id, source)
);
CREATE TABLE IF NOT EXISTS events (
    pump_id INTEGER NOT NULL,
    timestamp_day REAL NOT NULL,
    kind TEXT NOT NULL,
    service_day_at_event REAL NOT NULL,
    true_rul_days REAL
);
CREATE INDEX IF NOT EXISTS idx_events_time ON events (timestamp_day);
CREATE TABLE IF NOT EXISTS temperature (
    pump_id INTEGER NOT NULL,
    timestamp_day REAL NOT NULL,
    temperature_c REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_temperature_time ON temperature (timestamp_day);
CREATE TABLE IF NOT EXISTS dead_letters (
    stage TEXT NOT NULL,
    pump_id INTEGER NOT NULL,
    measurement_id INTEGER NOT NULL,
    reason TEXT NOT NULL,
    detail TEXT NOT NULL,
    timestamp_day REAL
);
CREATE INDEX IF NOT EXISTS idx_dead_letters_pump ON dead_letters (pump_id);
"""


class VibrationDatabase:
    """Owner of the SQLite connection and the typed store facades.

    File-backed databases get throughput pragmas on open: WAL journaling
    (readers never block the gateway's writes), ``synchronous=NORMAL``
    (safe under WAL), memory-mapped I/O for the BLOB-heavy measurement
    table, and in-memory temp stores.  In-memory databases skip them —
    WAL and mmap are meaningless without a file.
    """

    #: Bytes of the database file to memory-map (pragma ``mmap_size``).
    MMAP_BYTES = 256 * 1024 * 1024

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self.in_memory = path == ":memory:" or "mode=memory" in path
        self._conn = sqlite3.connect(path)
        if not self.in_memory:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(f"PRAGMA mmap_size={self.MMAP_BYTES}")
            self._conn.execute("PRAGMA temp_store=MEMORY")
        self._conn.executescript(_SCHEMA)
        self.measurements = MeasurementStore(self._conn)
        self.labels = LabelStore(self._conn)
        self.events = EventStore(self._conn)
        self.temperature = TemperatureStore(self._conn)
        self.sensors = SensorStore(self._conn)
        self.dead_letters = DeadLetterStore(self._conn)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "VibrationDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SensorStore:
    """Sensor metadata table."""

    def __init__(self, conn: sqlite3.Connection):
        self._conn = conn

    def add(self, meta: SensorMeta) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO sensors VALUES (?, ?, ?, ?, ?)",
            (
                meta.sensor_id,
                meta.pump_id,
                meta.sampling_rate_hz,
                meta.samples_per_measurement,
                meta.install_day,
            ),
        )
        self._conn.commit()

    def all(self) -> list[SensorMeta]:
        rows = self._conn.execute(
            "SELECT sensor_id, pump_id, sampling_rate_hz, samples_per_measurement,"
            " install_day FROM sensors ORDER BY sensor_id"
        ).fetchall()
        return [SensorMeta(*row) for row in rows]


class MeasurementStore:
    """Vibration measurement table with BLOB-encoded sample blocks."""

    def __init__(self, conn: sqlite3.Connection):
        self._conn = conn

    @staticmethod
    def _encode(samples: np.ndarray) -> bytes:
        return np.ascontiguousarray(samples, dtype="<f4").tobytes()

    @staticmethod
    def _decode(blob: bytes, num_samples: int) -> np.ndarray:
        # Zero-copy: a read-only float32 view over the BLOB bytes — no
        # per-row allocation and no silent float64 upcast.  Consumers that
        # need float64 math cast at the batch level (exactly: every
        # float32 value is representable in float64).
        return np.frombuffer(blob, dtype="<f4").reshape(num_samples, 3)

    def add(self, measurement: Measurement) -> None:
        self.add_many([measurement])

    def add_many(self, measurements: Iterable[Measurement]) -> None:
        rows = [
            (
                m.pump_id,
                m.measurement_id,
                m.timestamp_day,
                m.service_day,
                m.sampling_rate_hz,
                m.num_samples,
                self._encode(m.samples),
            )
            for m in measurements
        ]
        # One transaction for the whole batch: a single fsync instead of
        # one per implicit autocommit, and all-or-nothing semantics.
        with self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO measurements VALUES (?, ?, ?, ?, ?, ?, ?)", rows
            )

    def query(
        self,
        start_day: float = -np.inf,
        end_day: float = np.inf,
        pump_ids: Sequence[int] | None = None,
    ) -> list[Measurement]:
        """Measurements with ``start_day <= timestamp_day < end_day``."""
        sql = (
            "SELECT pump_id, measurement_id, timestamp_day, service_day,"
            " sampling_rate_hz, num_samples, samples FROM measurements"
            " WHERE timestamp_day >= ? AND timestamp_day < ?"
        )
        params: list[object] = [float(start_day), float(end_day)]
        if pump_ids is not None:
            placeholders = ",".join("?" * len(pump_ids))
            sql += f" AND pump_id IN ({placeholders})"
            params.extend(int(p) for p in pump_ids)
        sql += " ORDER BY timestamp_day, pump_id, measurement_id"
        out = []
        for pump_id, mid, ts, service, fs, k, blob in self._conn.execute(sql, params):
            out.append(
                Measurement(
                    pump_id=pump_id,
                    measurement_id=mid,
                    timestamp_day=ts,
                    service_day=service,
                    samples=self._decode(blob, k),
                    sampling_rate_hz=fs,
                )
            )
        return out

    def query_arrays(
        self,
        start_day: float = -np.inf,
        end_day: float = np.inf,
        pump_ids: Sequence[int] | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, dict[int, int]]:
        """Bulk fetch straight into dense arrays, skipping per-row records.

        Same selection, ordering and majority-``K`` filtering as
        :meth:`query` followed by record stacking — and bit-identical
        output — but each BLOB is decoded with ``np.frombuffer`` directly
        into one preallocated contiguous ``(N, K, 3)`` float64 matrix:
        no per-row :class:`Measurement` objects, no per-row array
        allocations, one exact float32→float64 upcast on assignment.

        Returns:
            ``(pump_ids, measurement_ids, service_days, samples,
            dropped_incomplete)`` where ``samples`` has shape
            ``(N, K, 3)`` and ``dropped_incomplete`` maps pump id →
            measurements discarded for not matching the majority block
            length.
        """
        sql = (
            "SELECT pump_id, measurement_id, service_day, num_samples, samples"
            " FROM measurements WHERE timestamp_day >= ? AND timestamp_day < ?"
        )
        params: list[object] = [float(start_day), float(end_day)]
        if pump_ids is not None:
            placeholders = ",".join("?" * len(pump_ids))
            sql += f" AND pump_id IN ({placeholders})"
            params.extend(int(p) for p in pump_ids)
        sql += " ORDER BY timestamp_day, pump_id, measurement_id"
        rows = self._conn.execute(sql, params).fetchall()
        if not rows:
            empty = np.empty(0)
            return empty.astype(int), empty.astype(int), empty, np.empty((0, 0, 3)), {}

        lengths = np.asarray([row[3] for row in rows])
        k = int(np.bincount(lengths).argmax())
        keep = lengths == k
        n_keep = int(keep.sum())
        dropped_incomplete: dict[int, int] = {}
        pumps = np.empty(n_keep, dtype=int)
        mids = np.empty(n_keep, dtype=int)
        service = np.empty(n_keep)
        samples = np.empty((n_keep, k, 3))
        i = 0
        for (pump_id, mid, service_day, num_samples, blob), kept in zip(rows, keep):
            if not kept:
                dropped_incomplete[pump_id] = dropped_incomplete.get(pump_id, 0) + 1
                continue
            pumps[i] = pump_id
            mids[i] = mid
            service[i] = service_day
            samples[i] = np.frombuffer(blob, dtype="<f4").reshape(k, 3)
            i += 1
        return pumps, mids, service, samples, dropped_incomplete

    def count(self) -> int:
        (n,) = self._conn.execute("SELECT COUNT(*) FROM measurements").fetchone()
        return int(n)


class LabelStore:
    """Expert label table."""

    def __init__(self, conn: sqlite3.Connection):
        self._conn = conn

    def add(self, label: LabelRecord) -> None:
        self.add_many([label])

    def add_many(self, labels: Iterable[LabelRecord]) -> None:
        rows = [
            (l.pump_id, l.measurement_id, l.zone, l.source, int(l.valid)) for l in labels
        ]
        with self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO labels VALUES (?, ?, ?, ?, ?)", rows
            )

    def query(
        self,
        pump_ids: Sequence[int] | None = None,
        only_valid: bool = True,
    ) -> list[LabelRecord]:
        sql = "SELECT pump_id, measurement_id, zone, source, valid FROM labels"
        clauses = []
        params: list[object] = []
        if only_valid:
            clauses.append("valid = 1")
        if pump_ids is not None:
            placeholders = ",".join("?" * len(pump_ids))
            clauses.append(f"pump_id IN ({placeholders})")
            params.extend(int(p) for p in pump_ids)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY pump_id, measurement_id"
        return [
            LabelRecord(pump_id=p, measurement_id=m, zone=z, source=s, valid=bool(v))
            for p, m, z, s, v in self._conn.execute(sql, params)
        ]

    def count(self, only_valid: bool = False) -> int:
        sql = "SELECT COUNT(*) FROM labels"
        if only_valid:
            sql += " WHERE valid = 1"
        (n,) = self._conn.execute(sql).fetchone()
        return int(n)


class EventStore:
    """Maintenance event table (PM/BM)."""

    def __init__(self, conn: sqlite3.Connection):
        self._conn = conn

    def add(self, event: MaintenanceEvent) -> None:
        self.add_many([event])

    def add_many(self, events: Iterable[MaintenanceEvent]) -> None:
        rows = [
            (e.pump_id, e.timestamp_day, e.kind, e.service_day_at_event, e.true_rul_days)
            for e in events
        ]
        with self._conn:
            self._conn.executemany("INSERT INTO events VALUES (?, ?, ?, ?, ?)", rows)

    def query(
        self,
        start_day: float = -np.inf,
        end_day: float = np.inf,
        pump_ids: Sequence[int] | None = None,
    ) -> list[MaintenanceEvent]:
        sql = (
            "SELECT pump_id, timestamp_day, kind, service_day_at_event, true_rul_days"
            " FROM events WHERE timestamp_day >= ? AND timestamp_day < ?"
        )
        params: list[object] = [float(start_day), float(end_day)]
        if pump_ids is not None:
            placeholders = ",".join("?" * len(pump_ids))
            sql += f" AND pump_id IN ({placeholders})"
            params.extend(int(p) for p in pump_ids)
        sql += " ORDER BY timestamp_day"
        return [
            MaintenanceEvent(
                pump_id=p,
                timestamp_day=t,
                kind=k,
                service_day_at_event=s,
                true_rul_days=r if r is not None else float("nan"),
            )
            for p, t, k, s, r in self._conn.execute(sql, params)
        ]


class DeadLetterStore:
    """Quarantined-measurement table (the pipeline's dead-letter sink)."""

    def __init__(self, conn: sqlite3.Connection):
        self._conn = conn

    def add(self, record: DeadLetterRecord) -> None:
        self.add_many([record])

    def add_many(self, records: Iterable[DeadLetterRecord]) -> None:
        rows = [
            (
                r.stage,
                r.pump_id,
                r.measurement_id,
                r.reason,
                r.detail,
                None if np.isnan(r.timestamp_day) else r.timestamp_day,
            )
            for r in records
        ]
        with self._conn:
            self._conn.executemany(
                "INSERT INTO dead_letters VALUES (?, ?, ?, ?, ?, ?)", rows
            )

    def query(
        self,
        stage: str | None = None,
        pump_ids: Sequence[int] | None = None,
    ) -> list[DeadLetterRecord]:
        sql = (
            "SELECT stage, pump_id, measurement_id, reason, detail, timestamp_day"
            " FROM dead_letters"
        )
        clauses: list[str] = []
        params: list[object] = []
        if stage is not None:
            clauses.append("stage = ?")
            params.append(stage)
        if pump_ids is not None:
            placeholders = ",".join("?" * len(pump_ids))
            clauses.append(f"pump_id IN ({placeholders})")
            params.extend(int(p) for p in pump_ids)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY pump_id, measurement_id"
        return [
            DeadLetterRecord(
                stage=s,
                pump_id=p,
                measurement_id=m,
                reason=reason,
                detail=detail,
                timestamp_day=t if t is not None else float("nan"),
            )
            for s, p, m, reason, detail, t in self._conn.execute(sql, params)
        ]

    def count(self) -> int:
        (n,) = self._conn.execute("SELECT COUNT(*) FROM dead_letters").fetchone()
        return int(n)


class TemperatureStore:
    """FICS temperature reading table."""

    def __init__(self, conn: sqlite3.Connection):
        self._conn = conn

    def add_many(self, records: Iterable[TemperatureRecord]) -> None:
        rows = [(r.pump_id, r.timestamp_day, r.temperature_c) for r in records]
        with self._conn:
            self._conn.executemany("INSERT INTO temperature VALUES (?, ?, ?)", rows)

    def query(
        self,
        start_day: float = -np.inf,
        end_day: float = np.inf,
        pump_ids: Sequence[int] | None = None,
    ) -> list[TemperatureRecord]:
        sql = (
            "SELECT pump_id, timestamp_day, temperature_c FROM temperature"
            " WHERE timestamp_day >= ? AND timestamp_day < ?"
        )
        params: list[object] = [float(start_day), float(end_day)]
        if pump_ids is not None:
            placeholders = ",".join("?" * len(pump_ids))
            sql += f" AND pump_id IN ({placeholders})"
            params.extend(int(p) for p in pump_ids)
        sql += " ORDER BY timestamp_day"
        return [
            TemperatureRecord(pump_id=p, timestamp_day=t, temperature_c=c)
            for p, t, c in self._conn.execute(sql, params)
        ]
