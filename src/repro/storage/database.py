"""SQLite-backed stores for measurements, labels, events and temperature.

The paper's engine reads from a *sensor database* (vibration measurements)
and a *factory database* (FICS events, maintenance records, temperature).
Both are modelled here over a single SQLite connection — in-memory by
default, file-backed when a path is given — with acceleration blocks stored
as raw little-endian float32 BLOBs for compactness (the sensors themselves
emit 2-byte counts; float32 keeps full post-conversion precision at half
the float64 footprint).

Durability: every measurement BLOB carries a CRC32 checksum written at
insert time and verified on decode.  A row whose bytes no longer match —
at-rest bit rot, a torn page, a misbehaving filesystem — is *quarantined*
to the ``dead_letters`` table instead of poisoning downstream PSD/RUL
results or failing the run; legacy rows (``checksum IS NULL``, migrated
in place via ``ALTER TABLE``) skip verification.  File-backed databases
additionally run ``PRAGMA quick_check`` on open and raise
:class:`DatabaseCorruptionError` (recovery runbook: ``docs/RELIABILITY.md``)
when SQLite's own structures are damaged.
"""

from __future__ import annotations

import sqlite3
import zlib
from collections.abc import Iterable, Sequence

import numpy as np

from repro.storage.records import (
    DeadLetterRecord,
    LabelRecord,
    MaintenanceEvent,
    Measurement,
    SensorMeta,
    TemperatureRecord,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS sensors (
    sensor_id INTEGER PRIMARY KEY,
    pump_id INTEGER NOT NULL,
    sampling_rate_hz REAL NOT NULL,
    samples_per_measurement INTEGER NOT NULL,
    install_day REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS measurements (
    pump_id INTEGER NOT NULL,
    measurement_id INTEGER NOT NULL,
    timestamp_day REAL NOT NULL,
    service_day REAL NOT NULL,
    sampling_rate_hz REAL NOT NULL,
    num_samples INTEGER NOT NULL,
    samples BLOB NOT NULL,
    checksum INTEGER,
    PRIMARY KEY (pump_id, measurement_id)
);
CREATE INDEX IF NOT EXISTS idx_measurements_time ON measurements (timestamp_day);
CREATE TABLE IF NOT EXISTS labels (
    pump_id INTEGER NOT NULL,
    measurement_id INTEGER NOT NULL,
    zone TEXT NOT NULL,
    source TEXT NOT NULL,
    valid INTEGER NOT NULL,
    PRIMARY KEY (pump_id, measurement_id, source)
);
CREATE TABLE IF NOT EXISTS events (
    pump_id INTEGER NOT NULL,
    timestamp_day REAL NOT NULL,
    kind TEXT NOT NULL,
    service_day_at_event REAL NOT NULL,
    true_rul_days REAL
);
CREATE INDEX IF NOT EXISTS idx_events_time ON events (timestamp_day);
CREATE TABLE IF NOT EXISTS temperature (
    pump_id INTEGER NOT NULL,
    timestamp_day REAL NOT NULL,
    temperature_c REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_temperature_time ON temperature (timestamp_day);
CREATE TABLE IF NOT EXISTS dead_letters (
    stage TEXT NOT NULL,
    pump_id INTEGER NOT NULL,
    measurement_id INTEGER NOT NULL,
    reason TEXT NOT NULL,
    detail TEXT NOT NULL,
    timestamp_day REAL
);
CREATE INDEX IF NOT EXISTS idx_dead_letters_pump ON dead_letters (pump_id);
"""


class DatabaseCorruptionError(RuntimeError):
    """SQLite's own structures failed ``PRAGMA quick_check`` on open.

    This is file-level damage (not a single bad BLOB, which the checksum
    layer quarantines row by row).  Recovery path — see
    ``docs/RELIABILITY.md``: restore from backup, or salvage readable
    rows with ``sqlite3 <db> ".recover"`` into a fresh database.
    """


class VibrationDatabase:
    """Owner of the SQLite connection and the typed store facades.

    File-backed databases get throughput pragmas on open: WAL journaling
    (readers never block the gateway's writes), ``synchronous=NORMAL``
    (safe under WAL), memory-mapped I/O for the BLOB-heavy measurement
    table, and in-memory temp stores.  In-memory databases skip them —
    WAL and mmap are meaningless without a file.  File-backed opens also
    run an integrity probe (``PRAGMA quick_check``) so structural
    corruption surfaces as :class:`DatabaseCorruptionError` at open time
    rather than as a random operational failure mid-run.
    """

    #: Bytes of the database file to memory-map (pragma ``mmap_size``).
    MMAP_BYTES = 256 * 1024 * 1024

    def __init__(self, path: str = ":memory:"):
        self.path = path
        self.in_memory = path == ":memory:" or "mode=memory" in path
        self._conn = sqlite3.connect(path)
        if not self.in_memory:
            self._quick_check()
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(f"PRAGMA mmap_size={self.MMAP_BYTES}")
            self._conn.execute("PRAGMA temp_store=MEMORY")
        self._conn.executescript(_SCHEMA)
        self._migrate()
        self.measurements = MeasurementStore(self._conn)
        self.labels = LabelStore(self._conn)
        self.events = EventStore(self._conn)
        self.temperature = TemperatureStore(self._conn)
        self.sensors = SensorStore(self._conn)
        self.dead_letters = DeadLetterStore(self._conn)

    def _quick_check(self) -> None:
        """Fail fast on structural file damage (file-backed only)."""
        try:
            rows = self._conn.execute("PRAGMA quick_check").fetchall()
        except sqlite3.DatabaseError as exc:
            self._conn.close()
            raise DatabaseCorruptionError(
                f"{self.path}: database file is corrupt ({exc}); "
                "see docs/RELIABILITY.md for the recovery runbook"
            ) from exc
        findings = [str(row[0]) for row in rows if row and row[0] != "ok"]
        if findings:
            self._conn.close()
            raise DatabaseCorruptionError(
                f"{self.path}: PRAGMA quick_check reported "
                f"{'; '.join(findings[:3])}; see docs/RELIABILITY.md "
                "for the recovery runbook"
            )

    def _migrate(self) -> None:
        """In-place schema upgrades for databases created before PR 4.

        Adds the nullable ``checksum`` column to ``measurements`` when
        missing; legacy rows keep ``NULL`` (verification skipped) until
        rewritten by an ``INSERT OR REPLACE``.
        """
        columns = {
            row[1] for row in self._conn.execute("PRAGMA table_info(measurements)")
        }
        if "checksum" not in columns:
            self._conn.execute("ALTER TABLE measurements ADD COLUMN checksum INTEGER")
            self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "VibrationDatabase":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SensorStore:
    """Sensor metadata table."""

    def __init__(self, conn: sqlite3.Connection):
        self._conn = conn

    def add(self, meta: SensorMeta) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO sensors VALUES (?, ?, ?, ?, ?)",
            (
                meta.sensor_id,
                meta.pump_id,
                meta.sampling_rate_hz,
                meta.samples_per_measurement,
                meta.install_day,
            ),
        )
        self._conn.commit()

    def all(self) -> list[SensorMeta]:
        rows = self._conn.execute(
            "SELECT sensor_id, pump_id, sampling_rate_hz, samples_per_measurement,"
            " install_day FROM sensors ORDER BY sensor_id"
        ).fetchall()
        return [SensorMeta(*row) for row in rows]


class MeasurementStore:
    """Vibration measurement table with BLOB-encoded sample blocks.

    Every read path verifies the per-BLOB CRC32 checksum; rows whose
    bytes no longer match are skipped and quarantined to the
    ``dead_letters`` table (stage ``"storage"``, reason
    ``"blob-checksum-mismatch"``).  Quarantine inserts are deduplicated,
    so retried reads of the same damaged row record it exactly once.
    The most recent read's per-pump corruption counts are exposed as
    :attr:`last_corrupt` for the health report.
    """

    QUARANTINE_STAGE = "storage"
    QUARANTINE_REASON = "blob-checksum-mismatch"

    def __init__(self, conn: sqlite3.Connection):
        self._conn = conn
        #: pump id → rows quarantined by the most recent query.
        self.last_corrupt: dict[int, int] = {}

    @staticmethod
    def _encode(samples: np.ndarray) -> bytes:
        return np.ascontiguousarray(samples, dtype="<f4").tobytes()

    @staticmethod
    def _checksum(blob: bytes) -> int:
        return zlib.crc32(blob)

    def _verify(self, pump_id: int, mid: int, blob: bytes, checksum) -> bool:
        """True when the BLOB is trustworthy; quarantines it otherwise.

        ``checksum IS NULL`` marks a legacy row written before the
        durability layer — nothing to verify against, so it passes.
        """
        if checksum is None or self._checksum(blob) == checksum:
            return True
        self.last_corrupt[pump_id] = self.last_corrupt.get(pump_id, 0) + 1
        with self._conn:
            # NOT EXISTS dedupe: transient-read retries re-query the same
            # rows; the quarantine record must not multiply.
            self._conn.execute(
                "INSERT INTO dead_letters"
                " SELECT ?, ?, ?, ?, ?, NULL"
                " WHERE NOT EXISTS (SELECT 1 FROM dead_letters"
                "  WHERE stage = ? AND pump_id = ? AND measurement_id = ?"
                "  AND reason = ?)",
                (
                    self.QUARANTINE_STAGE,
                    pump_id,
                    mid,
                    self.QUARANTINE_REASON,
                    f"stored CRC32 does not match {len(blob)}-byte BLOB",
                    self.QUARANTINE_STAGE,
                    pump_id,
                    mid,
                    self.QUARANTINE_REASON,
                ),
            )
        return False

    @staticmethod
    def _decode(blob: bytes, num_samples: int) -> np.ndarray:
        # Zero-copy: a read-only float32 view over the BLOB bytes — no
        # per-row allocation and no silent float64 upcast.  Consumers that
        # need float64 math cast at the batch level (exactly: every
        # float32 value is representable in float64).
        return np.frombuffer(blob, dtype="<f4").reshape(num_samples, 3)

    def add(self, measurement: Measurement) -> None:
        self.add_many([measurement])

    def add_many(self, measurements: Iterable[Measurement]) -> None:
        rows = []
        for m in measurements:
            blob = self._encode(m.samples)
            rows.append(
                (
                    m.pump_id,
                    m.measurement_id,
                    m.timestamp_day,
                    m.service_day,
                    m.sampling_rate_hz,
                    m.num_samples,
                    blob,
                    self._checksum(blob),
                )
            )
        # One transaction for the whole batch: a single fsync instead of
        # one per implicit autocommit, and all-or-nothing semantics.
        with self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO measurements VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )

    def query(
        self,
        start_day: float = -np.inf,
        end_day: float = np.inf,
        pump_ids: Sequence[int] | None = None,
    ) -> list[Measurement]:
        """Measurements with ``start_day <= timestamp_day < end_day``."""
        sql = (
            "SELECT pump_id, measurement_id, timestamp_day, service_day,"
            " sampling_rate_hz, num_samples, samples, checksum FROM measurements"
            " WHERE timestamp_day >= ? AND timestamp_day < ?"
        )
        params: list[object] = [float(start_day), float(end_day)]
        if pump_ids is not None:
            placeholders = ",".join("?" * len(pump_ids))
            sql += f" AND pump_id IN ({placeholders})"
            params.extend(int(p) for p in pump_ids)
        sql += " ORDER BY timestamp_day, pump_id, measurement_id"
        rows = self._conn.execute(sql, params).fetchall()
        self.last_corrupt = {}
        out = []
        for pump_id, mid, ts, service, fs, k, blob, checksum in rows:
            if not self._verify(pump_id, mid, blob, checksum):
                continue
            out.append(
                Measurement(
                    pump_id=pump_id,
                    measurement_id=mid,
                    timestamp_day=ts,
                    service_day=service,
                    samples=self._decode(blob, k),
                    sampling_rate_hz=fs,
                )
            )
        return out

    def query_arrays(
        self,
        start_day: float = -np.inf,
        end_day: float = np.inf,
        pump_ids: Sequence[int] | None = None,
    ) -> tuple[
        np.ndarray, np.ndarray, np.ndarray, np.ndarray, dict[int, int], dict[int, int]
    ]:
        """Bulk fetch straight into dense arrays, skipping per-row records.

        Same selection, ordering, checksum verification and
        majority-``K`` filtering as :meth:`query` followed by record
        stacking — and bit-identical output — but each BLOB is decoded
        with ``np.frombuffer`` directly into one preallocated contiguous
        ``(N, K, 3)`` float64 matrix: no per-row :class:`Measurement`
        objects, no per-row array allocations, one exact
        float32→float64 upcast on assignment.

        Returns:
            ``(pump_ids, measurement_ids, service_days, samples,
            dropped_incomplete, corrupt)`` where ``samples`` has shape
            ``(N, K, 3)``, ``dropped_incomplete`` maps pump id →
            measurements discarded for not matching the majority block
            length, and ``corrupt`` maps pump id → rows quarantined for
            checksum mismatch.
        """
        sql = (
            "SELECT pump_id, measurement_id, service_day, num_samples, samples,"
            " checksum"
            " FROM measurements WHERE timestamp_day >= ? AND timestamp_day < ?"
        )
        params: list[object] = [float(start_day), float(end_day)]
        if pump_ids is not None:
            placeholders = ",".join("?" * len(pump_ids))
            sql += f" AND pump_id IN ({placeholders})"
            params.extend(int(p) for p in pump_ids)
        sql += " ORDER BY timestamp_day, pump_id, measurement_id"
        fetched = self._conn.execute(sql, params).fetchall()
        self.last_corrupt = {}
        rows = [
            row
            for row in fetched
            if self._verify(row[0], row[1], row[4], row[5])
        ]
        corrupt = dict(self.last_corrupt)
        if not rows:
            empty = np.empty(0)
            return (
                empty.astype(int),
                empty.astype(int),
                empty,
                np.empty((0, 0, 3)),
                {},
                corrupt,
            )

        lengths = np.asarray([row[3] for row in rows])
        k = int(np.bincount(lengths).argmax())
        keep = lengths == k
        n_keep = int(keep.sum())
        dropped_incomplete: dict[int, int] = {}
        pumps = np.empty(n_keep, dtype=int)
        mids = np.empty(n_keep, dtype=int)
        service = np.empty(n_keep)
        samples = np.empty((n_keep, k, 3))
        i = 0
        for (pump_id, mid, service_day, num_samples, blob, _), kept in zip(rows, keep):
            if not kept:
                dropped_incomplete[pump_id] = dropped_incomplete.get(pump_id, 0) + 1
                continue
            pumps[i] = pump_id
            mids[i] = mid
            service[i] = service_day
            samples[i] = np.frombuffer(blob, dtype="<f4").reshape(k, 3)
            i += 1
        return pumps, mids, service, samples, dropped_incomplete, corrupt

    def count(self) -> int:
        (n,) = self._conn.execute("SELECT COUNT(*) FROM measurements").fetchone()
        return int(n)

    # ------------------------------------------------------------------
    # Chaos hooks (at-rest corruption).
    # ------------------------------------------------------------------
    def corrupt_blob(
        self, pump_id: int, measurement_id: int, byte_index: int = 0
    ) -> None:
        """Flip one byte of a stored BLOB *without* updating its checksum.

        Test/chaos hook simulating at-rest bit rot; the next read of the
        row fails verification and quarantines it.
        """
        row = self._conn.execute(
            "SELECT samples FROM measurements WHERE pump_id = ?"
            " AND measurement_id = ?",
            (pump_id, measurement_id),
        ).fetchone()
        if row is None:
            raise KeyError(f"no measurement ({pump_id}, {measurement_id})")
        blob = bytearray(row[0])
        blob[byte_index % len(blob)] ^= 0xFF
        with self._conn:
            self._conn.execute(
                "UPDATE measurements SET samples = ? WHERE pump_id = ?"
                " AND measurement_id = ?",
                (bytes(blob), pump_id, measurement_id),
            )

    def fault_blobs(self, injector, point: str) -> list[tuple[int, int]]:
        """Damage stored BLOBs per a chaos injector's ``corrupt`` faults.

        Iterates rows in deterministic ``(pump_id, measurement_id)``
        order, drawing one fire decision per row at ``point`` (duck-typed
        :meth:`FaultInjector.corrupts` / :meth:`FaultInjector.corrupt_index`),
        so the damaged set is a pure function of the plan seed.

        Returns:
            The ``(pump_id, measurement_id)`` pairs corrupted.
        """
        keys = self._conn.execute(
            "SELECT pump_id, measurement_id, num_samples FROM measurements"
            " ORDER BY pump_id, measurement_id"
        ).fetchall()
        damaged: list[tuple[int, int]] = []
        for pump_id, mid, num_samples in keys:
            if injector.corrupts(point):
                index = injector.corrupt_index(point, num_samples * 3 * 4)
                self.corrupt_blob(pump_id, mid, index)
                damaged.append((pump_id, mid))
        return damaged


class LabelStore:
    """Expert label table."""

    def __init__(self, conn: sqlite3.Connection):
        self._conn = conn

    def add(self, label: LabelRecord) -> None:
        self.add_many([label])

    def add_many(self, labels: Iterable[LabelRecord]) -> None:
        rows = [
            (l.pump_id, l.measurement_id, l.zone, l.source, int(l.valid)) for l in labels
        ]
        with self._conn:
            self._conn.executemany(
                "INSERT OR REPLACE INTO labels VALUES (?, ?, ?, ?, ?)", rows
            )

    def query(
        self,
        pump_ids: Sequence[int] | None = None,
        only_valid: bool = True,
    ) -> list[LabelRecord]:
        sql = "SELECT pump_id, measurement_id, zone, source, valid FROM labels"
        clauses = []
        params: list[object] = []
        if only_valid:
            clauses.append("valid = 1")
        if pump_ids is not None:
            placeholders = ",".join("?" * len(pump_ids))
            clauses.append(f"pump_id IN ({placeholders})")
            params.extend(int(p) for p in pump_ids)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY pump_id, measurement_id"
        return [
            LabelRecord(pump_id=p, measurement_id=m, zone=z, source=s, valid=bool(v))
            for p, m, z, s, v in self._conn.execute(sql, params)
        ]

    def count(self, only_valid: bool = False) -> int:
        sql = "SELECT COUNT(*) FROM labels"
        if only_valid:
            sql += " WHERE valid = 1"
        (n,) = self._conn.execute(sql).fetchone()
        return int(n)


class EventStore:
    """Maintenance event table (PM/BM)."""

    def __init__(self, conn: sqlite3.Connection):
        self._conn = conn

    def add(self, event: MaintenanceEvent) -> None:
        self.add_many([event])

    def add_many(self, events: Iterable[MaintenanceEvent]) -> None:
        rows = [
            (e.pump_id, e.timestamp_day, e.kind, e.service_day_at_event, e.true_rul_days)
            for e in events
        ]
        with self._conn:
            self._conn.executemany("INSERT INTO events VALUES (?, ?, ?, ?, ?)", rows)

    def query(
        self,
        start_day: float = -np.inf,
        end_day: float = np.inf,
        pump_ids: Sequence[int] | None = None,
    ) -> list[MaintenanceEvent]:
        sql = (
            "SELECT pump_id, timestamp_day, kind, service_day_at_event, true_rul_days"
            " FROM events WHERE timestamp_day >= ? AND timestamp_day < ?"
        )
        params: list[object] = [float(start_day), float(end_day)]
        if pump_ids is not None:
            placeholders = ",".join("?" * len(pump_ids))
            sql += f" AND pump_id IN ({placeholders})"
            params.extend(int(p) for p in pump_ids)
        sql += " ORDER BY timestamp_day"
        return [
            MaintenanceEvent(
                pump_id=p,
                timestamp_day=t,
                kind=k,
                service_day_at_event=s,
                true_rul_days=r if r is not None else float("nan"),
            )
            for p, t, k, s, r in self._conn.execute(sql, params)
        ]


class DeadLetterStore:
    """Quarantined-measurement table (the pipeline's dead-letter sink)."""

    def __init__(self, conn: sqlite3.Connection):
        self._conn = conn

    def add(self, record: DeadLetterRecord) -> None:
        self.add_many([record])

    def add_many(self, records: Iterable[DeadLetterRecord]) -> None:
        rows = [
            (
                r.stage,
                r.pump_id,
                r.measurement_id,
                r.reason,
                r.detail,
                None if np.isnan(r.timestamp_day) else r.timestamp_day,
            )
            for r in records
        ]
        with self._conn:
            self._conn.executemany(
                "INSERT INTO dead_letters VALUES (?, ?, ?, ?, ?, ?)", rows
            )

    def query(
        self,
        stage: str | None = None,
        pump_ids: Sequence[int] | None = None,
    ) -> list[DeadLetterRecord]:
        sql = (
            "SELECT stage, pump_id, measurement_id, reason, detail, timestamp_day"
            " FROM dead_letters"
        )
        clauses: list[str] = []
        params: list[object] = []
        if stage is not None:
            clauses.append("stage = ?")
            params.append(stage)
        if pump_ids is not None:
            placeholders = ",".join("?" * len(pump_ids))
            clauses.append(f"pump_id IN ({placeholders})")
            params.extend(int(p) for p in pump_ids)
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY pump_id, measurement_id"
        return [
            DeadLetterRecord(
                stage=s,
                pump_id=p,
                measurement_id=m,
                reason=reason,
                detail=detail,
                timestamp_day=t if t is not None else float("nan"),
            )
            for s, p, m, reason, detail, t in self._conn.execute(sql, params)
        ]

    def count(self) -> int:
        (n,) = self._conn.execute("SELECT COUNT(*) FROM dead_letters").fetchone()
        return int(n)


class TemperatureStore:
    """FICS temperature reading table."""

    def __init__(self, conn: sqlite3.Connection):
        self._conn = conn

    def add_many(self, records: Iterable[TemperatureRecord]) -> None:
        rows = [(r.pump_id, r.timestamp_day, r.temperature_c) for r in records]
        with self._conn:
            self._conn.executemany("INSERT INTO temperature VALUES (?, ?, ?)", rows)

    def query(
        self,
        start_day: float = -np.inf,
        end_day: float = np.inf,
        pump_ids: Sequence[int] | None = None,
    ) -> list[TemperatureRecord]:
        sql = (
            "SELECT pump_id, timestamp_day, temperature_c FROM temperature"
            " WHERE timestamp_day >= ? AND timestamp_day < ?"
        )
        params: list[object] = [float(start_day), float(end_day)]
        if pump_ids is not None:
            placeholders = ",".join("?" * len(pump_ids))
            sql += f" AND pump_id IN ({placeholders})"
            params.extend(int(p) for p in pump_ids)
        sql += " ORDER BY timestamp_day"
        return [
            TemperatureRecord(pump_id=p, timestamp_day=t, temperature_c=c)
            for p, t, c in self._conn.execute(sql, params)
        ]
