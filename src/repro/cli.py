"""Command-line interface.

Four subcommands cover the operational loop a deployment runs:

* ``repro simulate`` — generate a synthetic fleet into a SQLite database
  (stand-in for a live sensor network feeding the sensor DB);
* ``repro analyze`` — run the full analysis engine over an analysis
  period of that database and print the operator report;
* ``repro plan`` — the Fig. 5 deployment planner: report-period lower
  bounds and measurement budgets for a target node lifetime;
* ``repro specs`` — print the Table I sensor comparison.

Invoke as ``python -m repro <subcommand> ...``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _add_simulate_parser(subparsers) -> None:
    p = subparsers.add_parser("simulate", help="simulate a fleet into a SQLite DB")
    p.add_argument("--db", required=True, help="output SQLite database path")
    p.add_argument("--pumps", type=int, default=12, help="fleet size")
    p.add_argument("--days", type=float, default=90.0, help="simulated duration")
    p.add_argument(
        "--interval", type=float, default=0.125, help="report interval in days"
    )
    p.add_argument(
        "--pm-interval",
        type=float,
        default=None,
        help="planned-maintenance age in days (omit to run pumps to failure)",
    )
    p.add_argument(
        "--unstable-fraction",
        type=float,
        default=0.0,
        help="fraction of sensors with offset drift/jumps",
    )
    p.add_argument(
        "--labels",
        default="60,60,40",
        help="expert label counts as A,BC,D (default 60,60,40)",
    )
    p.add_argument("--seed", type=int, default=7)


def _add_analyze_parser(subparsers) -> None:
    p = subparsers.add_parser("analyze", help="analyze a database and print the report")
    p.add_argument("--db", required=True, help="SQLite database path")
    p.add_argument("--start", type=float, default=0.0, help="analysis period start day")
    p.add_argument("--end", type=float, default=1e9, help="analysis period end day")
    p.add_argument(
        "--moving-average", type=int, default=8, help="D_a moving-average window"
    )
    p.add_argument(
        "--horizon", type=float, default=30.0, help="alert horizon in days"
    )
    p.add_argument(
        "--profile",
        action="store_true",
        help="append a per-stage wall-clock runtime profile to the report",
    )
    p.add_argument(
        "--scalar",
        action="store_true",
        help="use the scalar reference pipeline instead of the batch runtime",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fleet-executor worker count (default auto; 0/1 forces serial)",
    )
    p.add_argument(
        "--backend",
        choices=("thread", "process"),
        default="thread",
        help=(
            "fleet-executor backend; 'process' sidesteps the GIL for"
            " file-backed databases (in-memory DBs fall back to threads)"
        ),
    )
    p.add_argument(
        "--supervise",
        action="store_true",
        help=(
            "arm fleet supervision: per-chunk deadlines, worker restart"
            " with backoff, partial-result salvage (see docs/RELIABILITY.md)"
        ),
    )
    p.add_argument(
        "--checkpoint",
        metavar="DIR",
        default=None,
        help=(
            "journal transform chunks into DIR so an interrupted run can"
            " be resumed bit-identically with --resume DIR"
        ),
    )
    p.add_argument(
        "--resume",
        metavar="DIR",
        default=None,
        help=(
            "resume from a checkpoint manifest written by --checkpoint;"
            " a missing or stale manifest falls back to a fresh run"
            " (and re-journals into DIR)"
        ),
    )


def _add_plan_parser(subparsers) -> None:
    p = subparsers.add_parser("plan", help="Fig. 5 deployment planning numbers")
    p.add_argument(
        "--sampling-hz",
        type=float,
        nargs="+",
        default=[150.0, 1000.0, 4000.0, 22000.0],
        help="sampling frequencies to evaluate",
    )
    p.add_argument(
        "--target-years",
        type=float,
        nargs="+",
        default=[1.0, 2.0, 3.0, 4.0],
        help="target node lifetimes",
    )


def _add_compact_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "compact", help="aggregate old raw measurements into daily summaries"
    )
    p.add_argument("--db", required=True, help="SQLite database path")
    p.add_argument(
        "--keep-days", type=float, required=True, help="raw retention window in days"
    )
    p.add_argument(
        "--now", type=float, required=True, help="current time in deployment days"
    )


def _add_schedule_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "schedule", help="plan replacements from the database's RUL predictions"
    )
    p.add_argument("--db", required=True, help="SQLite database path")
    p.add_argument("--period-days", type=float, default=7.0, help="planning period")
    p.add_argument(
        "--capacity", type=int, default=2, help="replacements per period"
    )
    p.add_argument(
        "--margin-days", type=float, default=14.0, help="safety margin before failure"
    )
    p.add_argument(
        "--horizon", type=int, default=26, help="planning horizon in periods"
    )
    p.add_argument(
        "--moving-average", type=int, default=8, help="D_a moving-average window"
    )


def _add_dashboard_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "dashboard", help="render the HTML fleet dashboard from a database"
    )
    p.add_argument("--db", required=True, help="SQLite database path")
    p.add_argument("--out", required=True, help="output HTML path")
    p.add_argument(
        "--moving-average", type=int, default=8, help="D_a moving-average window"
    )
    p.add_argument("--title", default="Fleet dashboard")


def _add_export_parser(subparsers) -> None:
    p = subparsers.add_parser(
        "export", help="export measurements to a portable NPZ corpus"
    )
    p.add_argument("--db", required=True, help="SQLite database path")
    p.add_argument("--out", required=True, help="output .npz path")
    p.add_argument("--start", type=float, default=0.0)
    p.add_argument("--end", type=float, default=1e9)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Vibration analysis for IoT-enabled predictive maintenance",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_simulate_parser(subparsers)
    _add_analyze_parser(subparsers)
    _add_plan_parser(subparsers)
    _add_compact_parser(subparsers)
    _add_schedule_parser(subparsers)
    _add_dashboard_parser(subparsers)
    _add_export_parser(subparsers)
    subparsers.add_parser("specs", help="print the Table I sensor comparison")
    return parser


def _cmd_simulate(args, out) -> int:
    from repro.simulation import FleetConfig, FleetSimulator
    from repro.storage.database import VibrationDatabase

    try:
        counts = [int(c) for c in args.labels.split(",")]
        if len(counts) != 3:
            raise ValueError
    except ValueError:
        print("error: --labels must be three integers A,BC,D", file=out)
        return 2

    config = FleetConfig(
        num_pumps=args.pumps,
        duration_days=args.days,
        report_interval_days=args.interval,
        pm_interval_days=args.pm_interval,
        unstable_sensor_fraction=args.unstable_fraction,
        max_initial_age_fraction=0.9,
        seed=args.seed,
    )
    dataset = FleetSimulator(config).run()
    with VibrationDatabase(args.db) as db:
        dataset.to_database(db)
        label_counts = dict(zip(("A", "BC", "D"), counts))
        try:
            records, _ = dataset.expert_labels(label_counts)
        except ValueError as exc:
            print(f"error: cannot satisfy label mix: {exc}", file=out)
            return 2
        db.labels.add_many(records)
        print(
            f"wrote {db.measurements.count()} measurements, "
            f"{db.labels.count()} labels, {len(dataset.events)} events "
            f"to {args.db}",
            file=out,
        )
    return 0


def _cmd_analyze(args, out) -> int:
    import os
    import sys

    from repro.analysis.engine import EngineConfig, VibrationAnalysisEngine
    from repro.analysis.reporting import render_report
    from repro.core.pipeline import PipelineConfig
    from repro.runtime import RuntimeProfile, SupervisionPolicy
    from repro.runtime.checkpoint import MANIFEST_NAME
    from repro.storage.api import AnalysisPeriod, DataRetrievalAPI
    from repro.storage.database import VibrationDatabase

    checkpoint_dir = args.resume or args.checkpoint
    if args.resume and args.checkpoint and args.resume != args.checkpoint:
        print("error: --resume and --checkpoint name different directories", file=out)
        return 2
    if args.resume is not None:
        manifest = os.path.join(args.resume, MANIFEST_NAME)
        if not os.path.exists(manifest):
            # Diagnostics go to stderr: the report on stdout must stay
            # byte-identical to a plain run (CI diffs it).
            print(
                f"note: no checkpoint manifest at {manifest}; "
                "running fresh (and journaling a new checkpoint)",
                file=sys.stderr,
            )

    with VibrationDatabase(args.db) as db:
        api = DataRetrievalAPI(db, AnalysisPeriod(args.start, args.end))
        engine = VibrationAnalysisEngine(
            api,
            EngineConfig(
                pipeline=PipelineConfig(moving_average_window=args.moving_average),
                use_batch_runtime=not args.scalar,
                max_workers=args.workers,
                executor_backend=args.backend,
                supervision=SupervisionPolicy() if args.supervise else None,
                checkpoint_dir=checkpoint_dir,
            ),
        )
        profile = RuntimeProfile() if args.profile else None
        try:
            report = engine.run(profile=profile)
        except ValueError as exc:
            print(f"error: {exc}", file=out)
            return 1
        print(render_report(report, horizon_days=args.horizon), file=out)
        if profile is not None:
            print(profile.report(), file=out)
    return 0


def _cmd_plan(args, out) -> int:
    from repro.sensornet.energy import EnergyModel

    model = EnergyModel()
    print(
        f"{'fs (Hz)':>9}  {'target (yr)':>11}  {'min period (h)':>14}  "
        f"{'measurements':>12}",
        file=out,
    )
    for fs in args.sampling_hz:
        for years in args.target_years:
            bound_s = model.report_period_lower_bound_s(fs, years)
            budget = model.measurements_in_lifetime(fs, years)
            bound_text = (
                f"{bound_s / 3600:.2f}" if np.isfinite(bound_s) else "infeasible"
            )
            print(
                f"{fs:>9.0f}  {years:>11.1f}  {bound_text:>14}  {budget:>12,.0f}",
                file=out,
            )
    return 0


def _cmd_specs(out) -> int:
    from repro.simulation.mems import SENSOR_SPECS

    piezo, mems = SENSOR_SPECS["piezo"], SENSOR_SPECS["mems"]
    rows = [
        ("Price (US$)", piezo.price_usd, mems.price_usd),
        ("Power (mW)", piezo.power_mw, mems.power_mw),
        ("Noise density (ug/rtHz)", piezo.noise_density_ug_per_rthz,
         mems.noise_density_ug_per_rthz),
        ("Resonance freq (kHz)", piezo.resonance_khz, mems.resonance_khz),
        ("Accel range (g)", piezo.accel_range_g, mems.accel_range_g),
    ]
    print(f"{'feature':<26} {'Piezo':>10} {'MEMS':>10}", file=out)
    for name, a, b in rows:
        print(f"{name:<26} {a:>10} {b:>10}", file=out)
    return 0


def _cmd_compact(args, out) -> int:
    from repro.storage.aggregate import RetentionManager
    from repro.storage.database import VibrationDatabase

    with VibrationDatabase(args.db) as db:
        manager = RetentionManager(db)
        try:
            outcome = manager.compact(args.keep_days, args.now)
        except ValueError as exc:
            print(f"error: {exc}", file=out)
            return 2
        print(
            f"compacted: {outcome['summaries_written']} pump-day summaries "
            f"written, {outcome['raw_deleted']} raw measurements deleted, "
            f"{db.measurements.count()} raw measurements remain",
            file=out,
        )
    return 0


def _cmd_schedule(args, out) -> int:
    from repro.analysis.engine import EngineConfig, VibrationAnalysisEngine
    from repro.analysis.scheduling import MaintenanceScheduler
    from repro.core.pipeline import PipelineConfig
    from repro.storage.api import AnalysisPeriod, DataRetrievalAPI
    from repro.storage.database import VibrationDatabase

    with VibrationDatabase(args.db) as db:
        api = DataRetrievalAPI(db, AnalysisPeriod(0.0, 1e9))
        engine = VibrationAnalysisEngine(
            api,
            EngineConfig(
                pipeline=PipelineConfig(moving_average_window=args.moving_average)
            ),
        )
        try:
            report = engine.run()
        except ValueError as exc:
            print(f"error: {exc}", file=out)
            return 1
        scheduler = MaintenanceScheduler(
            period_days=args.period_days,
            capacity_per_period=args.capacity,
            safety_margin_days=args.margin_days,
        )
        plan = scheduler.plan(report.rul, horizon_periods=args.horizon)
        if not plan.replacements:
            print("no replacements due within the horizon", file=out)
            return 0
        for period, items in sorted(plan.by_period().items()):
            pumps = ", ".join(
                f"pump {s.pump_id} (RUL {s.predicted_rul_days:.0f} d)" for s in items
            )
            print(f"period {period}: {pumps}", file=out)
        print(
            f"expected wasted RUL: {plan.expected_wasted_days:.0f} days "
            f"(${plan.expected_wasted_usd:,.0f})",
            file=out,
        )
    return 0


def _cmd_dashboard(args, out) -> int:
    from repro.analysis.engine import EngineConfig, VibrationAnalysisEngine
    from repro.core.pipeline import PipelineConfig
    from repro.storage.api import AnalysisPeriod, DataRetrievalAPI
    from repro.storage.database import VibrationDatabase
    from repro.viz.dashboard import write_dashboard

    with VibrationDatabase(args.db) as db:
        api = DataRetrievalAPI(db, AnalysisPeriod(0.0, 1e9))
        engine = VibrationAnalysisEngine(
            api,
            EngineConfig(
                pipeline=PipelineConfig(moving_average_window=args.moving_average)
            ),
        )
        try:
            report = engine.run()
        except ValueError as exc:
            print(f"error: {exc}", file=out)
            return 1
        path = write_dashboard(report, args.out, title=args.title)
        print(f"dashboard written to {path}", file=out)
    return 0


def _cmd_export(args, out) -> int:
    from repro.storage.database import VibrationDatabase
    from repro.storage.traces import export_npz

    with VibrationDatabase(args.db) as db:
        records = db.measurements.query(args.start, args.end)
        if not records:
            print("error: no measurements in the requested range", file=out)
            return 1
        path = export_npz(records, args.out)
        print(f"exported {len(records)} measurements to {path}", file=out)
    return 0


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command == "simulate":
        return _cmd_simulate(args, out)
    if args.command == "analyze":
        return _cmd_analyze(args, out)
    if args.command == "plan":
        return _cmd_plan(args, out)
    if args.command == "compact":
        return _cmd_compact(args, out)
    if args.command == "schedule":
        return _cmd_schedule(args, out)
    if args.command == "dashboard":
        return _cmd_dashboard(args, out)
    if args.command == "export":
        return _cmd_export(args, out)
    if args.command == "specs":
        return _cmd_specs(out)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
