"""repro — reproduction of "Vibration Analysis for IoT Enabled Predictive
Maintenance" (Jung, Zhang & Winslett, ICDE 2017).

The package is organised by layer:

* :mod:`repro.core` — the paper's analytical contribution: DCT-based PSD
  features, harmonic peak extraction, the peak harmonic distance
  (Algorithm 1), zone classification, recursive-RANSAC lifetime models and
  RUL estimation.
* :mod:`repro.simulation` — a synthetic fab substrate (rotating-machinery
  vibration, MEMS sensor imperfections, degradation, labels, maintenance).
* :mod:`repro.sensornet` — the wireless collection tier (motes, Flush
  bulk transport, scheduling, the energy/lifetime tradeoff).
* :mod:`repro.storage` — SQLite-backed sensor/factory databases and the
  analysis-period retrieval API.
* :mod:`repro.analysis` — the end-to-end engine, evaluation metrics and
  the replacement-cost model.
* :mod:`repro.viz` — ASCII plots and CSV export for figure regeneration.

Quickstart::

    from repro.simulation import FleetConfig, FleetSimulator
    from repro.core import AnalysisPipeline

    dataset = FleetSimulator(
        FleetConfig(num_pumps=6, duration_days=80, pm_interval_days=None,
                    max_initial_age_fraction=0.9)
    ).run()
    pumps, service, samples = dataset.measurement_arrays()
    _, labels = dataset.expert_labels({"A": 40, "BC": 40, "D": 15})
    result = AnalysisPipeline().run(pumps, service, samples, labels)
    print(result.rul)
"""

from repro.core import (
    AnalysisPipeline,
    PipelineConfig,
    PipelineResult,
    RULEstimator,
    ZoneClassifier,
    extract_harmonic_peaks,
    peak_harmonic_distance,
)
from repro.analysis import AnalysisReport, CostModel, VibrationAnalysisEngine
from repro.simulation import FleetConfig, FleetDataset, FleetSimulator
from repro.storage import AnalysisPeriod, DataRetrievalAPI, VibrationDatabase

__version__ = "1.0.0"

__all__ = [
    "AnalysisPipeline",
    "PipelineConfig",
    "PipelineResult",
    "ZoneClassifier",
    "RULEstimator",
    "extract_harmonic_peaks",
    "peak_harmonic_distance",
    "VibrationAnalysisEngine",
    "AnalysisReport",
    "CostModel",
    "FleetConfig",
    "FleetSimulator",
    "FleetDataset",
    "VibrationDatabase",
    "DataRetrievalAPI",
    "AnalysisPeriod",
    "__version__",
]
