"""Synthetic fab substrate.

The paper evaluates on dozens of real vacuum pumps in a production
semiconductor fab — proprietary data we cannot have.  This subpackage
builds the closest synthetic equivalent: a physics-inspired rotating
machinery vibration generator, a two-population degradation process
matching the paper's Model I / Model II lifetime split, a MEMS sensor
imperfection model (Table I parameters, offset drift, quantization), the
FICS temperature source, an expert labeling simulator, and a fleet
simulator with PM/BM maintenance events.
"""

from repro.simulation.degradation import (
    DegradationProcess,
    LifetimeModelSpec,
    MODEL_I,
    MODEL_II,
    ZONE_BOUNDARY_A_BC,
    ZONE_BOUNDARY_BC_D,
    WEAR_AT_FAILURE,
    zone_for_wear,
)
from repro.simulation.signal import MachineProfile, VibrationSynthesizer
from repro.simulation.mems import MEMSSensor, MEMSSensorConfig, SENSOR_SPECS, SensorSpec
from repro.simulation.fics import TemperatureSource
from repro.simulation.labels import ExpertLabeler, LabelerConfig
from repro.simulation.fleet import FleetConfig, FleetDataset, FleetSimulator
from repro.simulation.faults import FaultInjector, FaultSpec, FaultType
from repro.simulation.scenarios import (
    conservative_fab,
    mixed_health_fleet,
    noisy_deployment,
    paper_fleet,
)

__all__ = [
    "LifetimeModelSpec",
    "MODEL_I",
    "MODEL_II",
    "DegradationProcess",
    "zone_for_wear",
    "ZONE_BOUNDARY_A_BC",
    "ZONE_BOUNDARY_BC_D",
    "WEAR_AT_FAILURE",
    "MachineProfile",
    "VibrationSynthesizer",
    "SensorSpec",
    "SENSOR_SPECS",
    "MEMSSensorConfig",
    "MEMSSensor",
    "TemperatureSource",
    "ExpertLabeler",
    "LabelerConfig",
    "FleetConfig",
    "FleetSimulator",
    "FleetDataset",
    "FaultInjector",
    "FaultSpec",
    "FaultType",
    "paper_fleet",
    "mixed_health_fleet",
    "noisy_deployment",
    "conservative_fab",
]
