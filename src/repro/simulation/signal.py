"""Physics-inspired rotating-machinery vibration synthesis.

A vacuum pump's vibration signature, as seen through the suction connector
(Fig. 2 of the paper), is dominated by

* the motor rotation fundamental and its harmonics,
* bearing defect tones at non-integer multiples of the rotation frequency
  (outer/inner race passing frequencies), which emerge and grow as the
  bearing wears, and
* broadband noise whose high-frequency content grows with mechanical
  degradation — the paper explicitly relies on this ("equipment in
  abnormal condition tends to give off high-frequency noises").

The synthesizer reproduces these effects, plus the amplitude fluctuation
growth from Zone BC to Zone D visible in Fig. 10, so that every analysis
code path (harmonic peaks, peak harmonic distance, zone classification,
RANSAC trends) is exercised on inputs with the same spectral structure the
paper's plots show.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import lfilter


@dataclass(frozen=True)
class MachineProfile:
    """Static vibro-acoustic profile of one pump model.

    Attributes:
        rotation_hz: motor rotation fundamental frequency.
        num_harmonics: how many rotation harmonics to synthesize.
        harmonic_amplitude_g: amplitude of the fundamental, in g.
        harmonic_decay: per-order geometric amplitude decay of harmonics.
        bearing_tone_ratios: bearing defect frequencies as multiples of
            the rotation frequency (defaults model outer/inner race and
            ball-spin passing frequencies of a generic bearing).
        bearing_tone_amplitude_g: full-wear amplitude of defect tones.
        noise_floor_g: healthy broadband noise RMS per axis.
        hf_noise_gain_g: extra high-frequency noise RMS at full wear.
        hf_corner_hz: corner frequency above which degradation noise is
            injected.
        spall_onset_wear: wear level at which late-stage bearing spalling
            starts populating harmonics of the defect tones.
        rotation_droop: relative slow-down of the rotation speed at full
            wear (bearing friction loads the motor).  This makes every
            harmonic's frequency shift progressively with wear, so the
            peak-matched distance grows roughly linearly across the whole
            wear range instead of saturating once the noise peaks appear.
        axis_coupling: per-axis multipliers for how strongly vibration
            couples into x, y, z at the sensor mount.
    """

    rotation_hz: float = 29.5
    num_harmonics: int = 10
    harmonic_amplitude_g: float = 0.35
    harmonic_decay: float = 0.75
    bearing_tone_ratios: tuple[float, ...] = (3.58, 5.42, 2.37)
    bearing_tone_amplitude_g: float = 0.5
    noise_floor_g: float = 0.02
    hf_noise_gain_g: float = 0.25
    hf_corner_hz: float = 900.0
    rotation_droop: float = 0.06
    spall_onset_wear: float = 0.8
    axis_coupling: tuple[float, float, float] = (1.0, 0.8, 0.55)

    def __post_init__(self) -> None:
        if self.rotation_hz <= 0:
            raise ValueError("rotation_hz must be positive")
        if self.num_harmonics < 1:
            raise ValueError("num_harmonics must be positive")
        if not 0 < self.harmonic_decay <= 1:
            raise ValueError("harmonic_decay must be in (0, 1]")


class VibrationSynthesizer:
    """Generates tri-axial acceleration blocks for a given wear level."""

    def __init__(self, profile: MachineProfile | None = None):
        self.profile = profile or MachineProfile()

    def synthesize(
        self,
        wear: float,
        num_samples: int,
        sampling_rate_hz: float,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """One measurement block of true (pre-sensor) acceleration.

        Args:
            wear: degradation level; 0 healthy, 1 failure (values above 1
                keep degrading further).
            num_samples: block length ``K``.
            sampling_rate_hz: sampling rate; tones above Nyquist alias
                are simply dropped.
            rng: entropy source (sample-level phase and noise).

        Returns:
            ``(K, 3)`` float array of acceleration in g, gravity excluded
            (the sensor model adds gravity and offsets).
        """
        if wear < 0:
            raise ValueError("wear must be non-negative")
        if num_samples < 2:
            raise ValueError("num_samples must be at least 2")
        if sampling_rate_hz <= 0:
            raise ValueError("sampling_rate_hz must be positive")

        p = self.profile
        t = np.arange(num_samples) / sampling_rate_hz
        nyquist = sampling_rate_hz / 2.0
        mono = np.zeros(num_samples)

        # Amplitude fluctuation grows with degradation (Fig. 10: variance
        # of the PSD grows from Zone BC to Zone D).
        fluctuation = float(rng.lognormal(mean=0.0, sigma=0.08 + 0.45 * min(wear, 2.0)))

        # Rotation harmonics: amplitudes grow mildly with wear (looser
        # mounts and imbalance), higher orders grow faster; the rotation
        # speed droops slightly as friction rises, shifting every
        # harmonic's frequency in proportion to its order.
        effective_rotation = p.rotation_hz * (1.0 - p.rotation_droop * min(wear, 2.0))
        base_amp = p.harmonic_amplitude_g * fluctuation
        for order in range(1, p.num_harmonics + 1):
            freq = order * effective_rotation
            if freq >= nyquist:
                break
            growth = 1.0 + wear * (0.4 + 0.25 * order)
            amp = base_amp * p.harmonic_decay ** (order - 1) * growth
            phase = rng.uniform(0, 2 * np.pi)
            mono += amp * np.sin(2 * np.pi * freq * t + phase)

        # Bearing defect tones: essentially absent when healthy, growing
        # super-linearly with wear.
        tone_amp = p.bearing_tone_amplitude_g * (wear**1.5) * fluctuation
        for ratio in p.bearing_tone_ratios:
            freq = ratio * effective_rotation
            if freq >= nyquist or tone_amp <= 0:
                continue
            phase = rng.uniform(0, 2 * np.pi)
            mono += tone_amp * np.sin(2 * np.pi * freq * t + phase)

        # Late-stage spalling: past the damage onset, harmonics of the
        # defect tones spread up the spectrum (the classic bearing
        # "haystack"), giving Zone D its distinct high-frequency peak
        # population.
        onset = max(wear - p.spall_onset_wear, 0.0)
        if onset > 0:
            spall_amp = p.bearing_tone_amplitude_g * 6.0 * onset * fluctuation
            for ratio in p.bearing_tone_ratios:
                for harmonic in (2, 3, 4, 5):
                    freq = harmonic * ratio * effective_rotation
                    if freq >= nyquist:
                        continue
                    phase = rng.uniform(0, 2 * np.pi)
                    mono += spall_amp / harmonic * np.sin(2 * np.pi * freq * t + phase)

        # Broadband noise: white floor plus degradation-driven
        # high-frequency noise shaped by a first-order high-pass.
        noise = rng.normal(0.0, p.noise_floor_g, size=num_samples)
        hf_sigma = p.hf_noise_gain_g * wear**2 * fluctuation
        if hf_sigma > 0:
            white = rng.normal(0.0, hf_sigma, size=num_samples)
            noise += _highpass(white, p.hf_corner_hz, sampling_rate_hz)
        mono += noise

        coupling = np.asarray(p.axis_coupling, dtype=np.float64)
        # Small per-axis independent noise so axes are not perfectly
        # correlated copies of one another.
        block = mono[:, None] * coupling[None, :]
        block += rng.normal(0.0, p.noise_floor_g * 0.5, size=(num_samples, 3))
        return block


def _highpass(signal: np.ndarray, corner_hz: float, sampling_rate_hz: float) -> np.ndarray:
    """First-order high-pass filter (discrete RC), preserving shape.

    Implemented as the IIR recurrence ``y[n] = a*(y[n-1] + x[n] - x[n-1])``
    evaluated with ``scipy.signal.lfilter`` so synthesizing large fleets
    stays fast.
    """
    if corner_hz <= 0:
        return signal.copy()
    dt = 1.0 / sampling_rate_hz
    rc = 1.0 / (2 * np.pi * corner_hz)
    alpha = rc / (rc + dt)
    return lfilter([alpha, -alpha], [1.0, -alpha], signal)
