"""Expert labeling simulator.

The paper collects zone labels two ways: *data-driven* (an expert reads
sensor traces) and *physical-checking* (inspection after replacement).
Data-driven labels carry some confusion between adjacent zones; a small
fraction of labels is outright invalid ("human mistakes") and is discarded
by the analysis.  The labeler below reproduces both behaviours against the
simulator's ground-truth zones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.classify import ZONES
from repro.storage.records import LABEL_SOURCE_DATA, LABEL_SOURCE_PHYSICAL, LabelRecord


@dataclass(frozen=True)
class LabelerConfig:
    """Labeling error model.

    Attributes:
        adjacent_confusion_rate: probability a data-driven label slips to
            an adjacent zone.
        invalid_rate: probability a label is recorded as invalid (the
            paper simply discards these).
    """

    adjacent_confusion_rate: float = 0.03
    invalid_rate: float = 0.01

    def __post_init__(self) -> None:
        if not 0 <= self.adjacent_confusion_rate < 1:
            raise ValueError("adjacent_confusion_rate must be in [0, 1)")
        if not 0 <= self.invalid_rate < 1:
            raise ValueError("invalid_rate must be in [0, 1)")


class ExpertLabeler:
    """Generates LabelRecords from ground-truth zones."""

    def __init__(self, config: LabelerConfig | None = None, rng: np.random.Generator | None = None):
        self.config = config or LabelerConfig()
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def label(
        self,
        pump_id: int,
        measurement_id: int,
        true_zone: str,
        source: str = LABEL_SOURCE_DATA,
    ) -> LabelRecord:
        """One label for a measurement, with realistic error modes.

        Physical-checking labels are exact (the equipment is opened up);
        data-driven labels can slip to an adjacent zone or be invalid.
        """
        if true_zone not in ZONES:
            raise ValueError(f"unknown zone {true_zone!r}")
        zone = true_zone
        valid = True
        if source == LABEL_SOURCE_DATA:
            if self._rng.random() < self.config.invalid_rate:
                valid = False
            elif self._rng.random() < self.config.adjacent_confusion_rate:
                idx = ZONES.index(true_zone)
                neighbours = [i for i in (idx - 1, idx + 1) if 0 <= i < len(ZONES)]
                zone = ZONES[int(self._rng.choice(neighbours))]
        elif source != LABEL_SOURCE_PHYSICAL:
            raise ValueError(f"unknown label source {source!r}")
        return LabelRecord(
            pump_id=pump_id,
            measurement_id=measurement_id,
            zone=zone,
            source=source,
            valid=valid,
        )
