"""Canned simulation scenarios.

The raw :class:`~repro.simulation.fleet.FleetConfig` exposes every knob;
these builders name the handful of configurations that recur across
examples, tests and benchmarks so callers say *what* they want instead of
re-deriving parameter sets:

* :func:`paper_fleet` — the evaluation setting of Sec. V (12 pumps,
  3 months), at a configurable measurement density;
* :func:`mixed_health_fleet` — pumps spread across all three zones with
  no planned maintenance (the classification workloads);
* :func:`noisy_deployment` — a fleet with unstable sensors and
  undocumented faults (the robustness workloads);
* :func:`conservative_fab` — the paper's *baseline* world: fixed-period
  replacement wasting healthy pumps (the economics workloads).
"""

from __future__ import annotations

from repro.simulation.fleet import FleetConfig, FleetDataset, FleetSimulator


def paper_fleet(
    report_interval_days: float = 0.125,
    seed: int = 7,
) -> FleetDataset:
    """The paper's 12-pump, 3-month evaluation fleet.

    Args:
        report_interval_days: measurement period; the paper's 10 minutes
            is ``10 / (60 * 24)`` (155,520 measurements — slow in pure
            Python), the default 3 hours gives ~8.6k with identical code
            paths.
        seed: RNG seed.
    """
    config = FleetConfig(
        num_pumps=12,
        duration_days=90.0,
        report_interval_days=report_interval_days,
        pm_interval_days=None,
        max_initial_age_fraction=0.9,
        model_ii_fraction=1.0 / 3.0,
        seed=seed,
    )
    return FleetSimulator(config).run()


def mixed_health_fleet(
    num_pumps: int = 8,
    duration_days: float = 80.0,
    report_interval_days: float = 1.0,
    seed: int = 11,
) -> FleetDataset:
    """A fleet whose measurements span all three zones.

    Pumps start at staggered ages up to 90% of life and run to failure,
    so Zone A, BC and D are all populated — the precondition for
    training and evaluating the zone classifier.
    """
    config = FleetConfig(
        num_pumps=num_pumps,
        duration_days=duration_days,
        report_interval_days=report_interval_days,
        pm_interval_days=None,
        max_initial_age_fraction=0.9,
        seed=seed,
    )
    return FleetSimulator(config).run()


def noisy_deployment(
    num_pumps: int = 8,
    duration_days: float = 60.0,
    unstable_sensor_fraction: float = 0.4,
    fault_fraction: float = 0.5,
    seed: int = 21,
) -> FleetDataset:
    """The hostile case: drifting sensors and undocumented faults.

    Exercises the outlier-detection, epoch-splitting and diagnosis
    layers together.
    """
    config = FleetConfig(
        num_pumps=num_pumps,
        duration_days=duration_days,
        report_interval_days=1.0,
        pm_interval_days=None,
        max_initial_age_fraction=0.9,
        unstable_sensor_fraction=unstable_sensor_fraction,
        fault_fraction=fault_fraction,
        seed=seed,
    )
    return FleetSimulator(config).run()


def conservative_fab(
    num_pumps: int = 10,
    duration_days: float = 120.0,
    pm_interval_days: float = 60.0,
    seed: int = 9,
) -> FleetDataset:
    """The paper's strawman: fixed-period replacement.

    Short PM intervals guarantee recorded PM events with large wasted
    RUL — the raw material of the Table IV economics.
    """
    config = FleetConfig(
        num_pumps=num_pumps,
        duration_days=duration_days,
        report_interval_days=2.0,
        pm_interval_days=pm_interval_days,
        seed=seed,
    )
    return FleetSimulator(config).run()
