"""Injectable mechanical fault types with characteristic spectral signatures.

Rotating-machinery faults each leave a distinct fingerprint in the
vibration spectrum — the knowledge base every vibration analyst (and the
paper's domain experts, who labelled pumps by reading spectra) relies on:

* **imbalance** — a large tone exactly at 1× the rotation frequency;
* **misalignment** — strong 2× (and some 3×) rotation harmonics;
* **mechanical looseness** — a long comb of many rotation harmonics of
  comparable amplitude;
* **bearing defect** — tones at the non-integer defect frequencies
  (outer/inner race passing), spreading into harmonics as damage grows.

:class:`FaultInjector` wraps a :class:`VibrationSynthesizer` and adds the
selected fault's signature on top of the normal machine signal, which
gives the diagnosis layer (``repro.core.diagnosis``) ground truth to be
scored against.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.simulation.signal import MachineProfile, VibrationSynthesizer


class FaultType(Enum):
    """Supported mechanical fault classes."""

    NONE = "none"
    IMBALANCE = "imbalance"
    MISALIGNMENT = "misalignment"
    LOOSENESS = "looseness"
    BEARING_DEFECT = "bearing_defect"


@dataclass(frozen=True)
class FaultSpec:
    """A fault instance to inject.

    Attributes:
        kind: fault class.
        severity: 0 (absent) to ~1 (severe); scales the signature
            amplitude.
    """

    kind: FaultType
    severity: float = 0.5

    def __post_init__(self) -> None:
        if self.severity < 0:
            raise ValueError("severity must be non-negative")


class FaultInjector:
    """Synthesizes machine vibration with an injected fault signature."""

    def __init__(self, profile: MachineProfile | None = None):
        self.profile = profile or MachineProfile()
        self._base = VibrationSynthesizer(self.profile)

    def _tone(
        self,
        t: np.ndarray,
        freq: float,
        amplitude: float,
        rng: np.random.Generator,
        nyquist: float,
    ) -> np.ndarray:
        if freq >= nyquist or amplitude <= 0:
            return np.zeros_like(t)
        phase = rng.uniform(0, 2 * np.pi)
        return amplitude * np.sin(2 * np.pi * freq * t + phase)

    def synthesize(
        self,
        fault: FaultSpec,
        num_samples: int,
        sampling_rate_hz: float,
        rng: np.random.Generator,
        wear: float = 0.1,
    ) -> np.ndarray:
        """One measurement block of a machine carrying the given fault.

        Args:
            fault: fault class and severity to inject.
            num_samples: block length ``K``.
            sampling_rate_hz: sampling rate.
            rng: entropy source.
            wear: background degradation level of the machine.

        Returns:
            ``(K, 3)`` acceleration block in g (gravity excluded).
        """
        block = self._base.synthesize(wear, num_samples, sampling_rate_hz, rng)
        if fault.kind is FaultType.NONE or fault.severity == 0:
            return block

        p = self.profile
        t = np.arange(num_samples) / sampling_rate_hz
        nyquist = sampling_rate_hz / 2.0
        f0 = p.rotation_hz
        amp = p.harmonic_amplitude_g * fault.severity
        mono = np.zeros(num_samples)

        if fault.kind is FaultType.IMBALANCE:
            # Dominant 1x tone, several times the healthy fundamental.
            mono += self._tone(t, f0, 4.0 * amp, rng, nyquist)
        elif fault.kind is FaultType.MISALIGNMENT:
            # 2x dominates, with a meaningful 3x.
            mono += self._tone(t, 2 * f0, 3.5 * amp, rng, nyquist)
            mono += self._tone(t, 3 * f0, 1.2 * amp, rng, nyquist)
        elif fault.kind is FaultType.LOOSENESS:
            # A comb of near-equal harmonics up to high order.
            for order in range(1, 13):
                mono += self._tone(t, order * f0, 1.1 * amp, rng, nyquist)
        elif fault.kind is FaultType.BEARING_DEFECT:
            # Defect-frequency tones plus their low harmonics.
            for ratio in p.bearing_tone_ratios:
                for harmonic in (1, 2, 3):
                    mono += self._tone(
                        t, harmonic * ratio * f0, 2.5 * amp / harmonic, rng, nyquist
                    )
        else:  # pragma: no cover - exhaustive enum
            raise AssertionError(f"unhandled fault {fault.kind}")

        coupling = np.asarray(p.axis_coupling, dtype=np.float64)
        return block + mono[:, None] * coupling[None, :]
