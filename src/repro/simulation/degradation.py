"""Equipment degradation: two-population lifetime models and zone mapping.

The paper's fleet mixes two latent equipment populations (Fig. 15): pumps
following *Model I* age slowly (about 18 months of useful life) while pumps
following *Model II* age fast (about 6 months).  Which population a pump
belongs to depends on unobserved external factors — here, on a hidden
per-pump draw.

Degradation is captured by a scalar *wear* in ``[0, ∞)``: 0 is factory
fresh, :data:`WEAR_AT_FAILURE` (1.0) is mechanical failure.  Wear maps to
the ISO health zones of Sec. V-A through fixed boundaries, which also
defines the ground-truth RUL used to score the analytics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.classify import ZONE_A, ZONE_BC, ZONE_D

ZONE_BOUNDARY_A_BC = 0.30
"""Wear above which a pump leaves Zone A."""

ZONE_BOUNDARY_BC_D = 0.85
"""Wear above which a pump enters Zone D (hazard)."""

WEAR_AT_FAILURE = 1.0
"""Wear at which the pump mechanically fails (triggers BM)."""


@dataclass(frozen=True)
class LifetimeModelSpec:
    """A latent lifetime population.

    Attributes:
        name: human-readable label ("Model I" / "Model II").
        mean_life_days: average days from installation to failure.
        life_spread: relative standard deviation of individual lifetimes
            within the population.
    """

    name: str
    mean_life_days: float
    life_spread: float = 0.15

    def __post_init__(self) -> None:
        if self.mean_life_days <= 0:
            raise ValueError("mean_life_days must be positive")
        if not 0 <= self.life_spread < 1:
            raise ValueError("life_spread must be in [0, 1)")

    def sample_life_days(self, rng: np.random.Generator) -> float:
        """Draw one pump's total life, floored at 10% of the mean."""
        life = rng.normal(self.mean_life_days, self.life_spread * self.mean_life_days)
        return float(max(life, 0.1 * self.mean_life_days))


MODEL_I = LifetimeModelSpec(name="Model I", mean_life_days=540.0)
"""Long-term population: ~18-month average life (Table IV footnote)."""

MODEL_II = LifetimeModelSpec(name="Model II", mean_life_days=180.0)
"""Short-term population: ~6-month average life."""


def zone_for_wear(wear: float) -> str:
    """Ground-truth ISO zone for a wear level."""
    if wear < 0:
        raise ValueError("wear must be non-negative")
    if wear < ZONE_BOUNDARY_A_BC:
        return ZONE_A
    if wear < ZONE_BOUNDARY_BC_D:
        return ZONE_BC
    return ZONE_D


class DegradationProcess:
    """Wear trajectory of a single pump.

    Wear grows linearly with service time at a pump-specific rate plus a
    small amount of integrated process noise (real degradation is not
    perfectly smooth), so the *expected* feature trajectory is linear —
    the modelling assumption behind the paper's RANSAC lifetime lines —
    while individual measurements scatter around it.
    """

    def __init__(
        self,
        spec: LifetimeModelSpec,
        rng: np.random.Generator,
        process_noise: float = 0.01,
    ):
        """Create a pump's degradation trajectory.

        Args:
            spec: latent population the pump belongs to.
            rng: entropy source for the pump's individual life draw and
                the process-noise path.
            process_noise: relative scale of the integrated noise.
        """
        if process_noise < 0:
            raise ValueError("process_noise must be non-negative")
        self.spec = spec
        self.life_days = spec.sample_life_days(rng)
        self.wear_rate = WEAR_AT_FAILURE / self.life_days
        self._process_noise = process_noise
        self._noise_seed = int(rng.integers(0, 2**31))

    def wear_at(self, service_day: float) -> float:
        """Wear after ``service_day`` days of operation.

        The noise path is a deterministic function of the pump's seed so
        repeated queries at the same day agree (the simulator may sample
        wear both for the signal generator and the ground-truth labeler).
        """
        if service_day < 0:
            raise ValueError("service_day must be non-negative")
        base = self.wear_rate * service_day
        # Deterministic smooth perturbation: two incommensurate sinusoids
        # seeded per pump, amplitude growing with sqrt(t) like integrated
        # noise would.
        phase = self._noise_seed % 1000 / 1000.0 * 2 * np.pi
        t = service_day / self.life_days
        ripple = np.sin(2 * np.pi * 3.1 * t + phase) + 0.5 * np.sin(2 * np.pi * 7.7 * t)
        noise = self._process_noise * np.sqrt(max(t, 0.0)) * ripple
        return float(max(base + noise, 0.0))

    def zone_at(self, service_day: float) -> str:
        """Ground-truth zone after ``service_day`` days."""
        return zone_for_wear(self.wear_at(service_day))

    def true_rul_days(self, service_day: float) -> float:
        """Ground-truth remaining useful lifetime in days.

        Defined against the deterministic wear rate (the noise ripple
        averages out), so it can be negative for a pump operated past its
        nominal failure point.
        """
        return self.life_days - service_day

    def failure_day(self) -> float:
        """Service day at which wear reaches :data:`WEAR_AT_FAILURE`."""
        return self.life_days
