"""MEMS vibration sensor model: Table I specs and measurement imperfections.

The paper's hardware shift — from piezoelectric accelerometers to cheap
MEMS parts — is what makes fleet-wide vibration sensing affordable, at the
cost of much higher noise density and long-term zero-offset drift.  Both
generations are described by :data:`SENSOR_SPECS` (the paper's Table I) and
the imperfections the analytics must survive are modelled by
:class:`MEMSSensor`:

* gravity projection onto the (arbitrary) mounting orientation,
* white measurement noise from the spec's noise density,
* slow zero-offset drift (random-walk plus linear component),
* abrupt offset jumps (e.g. thermal shocks or mounting slips, the cause of
  the invalid segments of Fig. 8b), and
* quantization to signed 16-bit counts over the accelerometer's full
  range, with clipping at the range limits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

STANDARD_GRAVITY_G = 1.0
"""Gravity magnitude in g units (the sensor measures in g)."""


@dataclass(frozen=True)
class SensorSpec:
    """One row of the paper's Table I.

    Attributes:
        name: sensor family name.
        price_usd: unit price.
        power_mw: active power draw in milliwatts.
        size_inches: (L, W, H) package size.
        noise_density_ug_per_rthz: noise density in µg/√Hz.
        resonance_khz: resonance frequency in kHz.
        accel_range_g: full-scale acceleration range in g.
    """

    name: str
    price_usd: float
    power_mw: float
    size_inches: tuple[float, float, float]
    noise_density_ug_per_rthz: float
    resonance_khz: float
    accel_range_g: float

    def noise_sigma_g(self, bandwidth_hz: float) -> float:
        """White-noise standard deviation in g over a given bandwidth."""
        if bandwidth_hz <= 0:
            raise ValueError("bandwidth_hz must be positive")
        return self.noise_density_ug_per_rthz * 1e-6 * np.sqrt(bandwidth_hz)


SENSOR_SPECS: dict[str, SensorSpec] = {
    "piezo": SensorSpec(
        name="Piezo Sensor",
        price_usd=300.0,
        power_mw=27.0,
        size_inches=(1.97, 0.98, 1.0),
        noise_density_ug_per_rthz=700.0,
        resonance_khz=20.0,
        accel_range_g=10.0,
    ),
    "mems": SensorSpec(
        name="MEMS Sensor",
        price_usd=10.0,
        power_mw=3.0,
        size_inches=(0.2, 0.2, 0.05),
        noise_density_ug_per_rthz=4000.0,
        resonance_khz=22.0,
        accel_range_g=100.0,
    ),
}
"""The paper's Table I, keyed by sensor family."""


@dataclass(frozen=True)
class MEMSSensorConfig:
    """Imperfection parameters of one deployed MEMS sensor.

    Attributes:
        spec: hardware family (noise density, range) — MEMS by default.
        drift_g_per_day: expected magnitude of the slow zero-offset drift
            per axis per day; 0 models a stable unit (Fig. 8a).
        jump_probability_per_day: Poisson rate of abrupt offset jumps
            (Fig. 8b shows one mid-trace).
        jump_scale_g: typical magnitude of an abrupt jump per axis.
        counts_full_scale: ADC counts at the positive range limit.
    """

    spec: SensorSpec = SENSOR_SPECS["mems"]
    drift_g_per_day: float = 0.0
    jump_probability_per_day: float = 0.0
    jump_scale_g: float = 0.5
    counts_full_scale: int = 32767

    def __post_init__(self) -> None:
        if self.drift_g_per_day < 0:
            raise ValueError("drift_g_per_day must be non-negative")
        if self.jump_probability_per_day < 0:
            raise ValueError("jump_probability_per_day must be non-negative")
        if self.counts_full_scale < 1:
            raise ValueError("counts_full_scale must be positive")


class MEMSSensor:
    """Stateful sensor: converts true acceleration into raw 2-byte counts.

    The sensor keeps its own offset state between measurements so drift
    and jumps accumulate over the deployment, exactly the behaviour the
    outlier-detection layer has to catch.
    """

    def __init__(
        self,
        config: MEMSSensorConfig | None = None,
        rng: np.random.Generator | None = None,
    ):
        self.config = config or MEMSSensorConfig()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        # Random mounting orientation: gravity projects onto the axes with
        # a unit-norm direction; the dominant component lands on z-like
        # orientations most of the time but any mounting is possible.
        direction = self._rng.normal(size=3)
        direction /= np.linalg.norm(direction)
        self.gravity_offset = STANDARD_GRAVITY_G * direction
        self.zero_offset = self._rng.normal(0.0, 0.02, size=3)
        self._drift_direction = self._rng.normal(size=3)
        norm = np.linalg.norm(self._drift_direction)
        self._drift_direction /= norm if norm else 1.0
        self._last_day: float | None = None

    @property
    def scale_g_per_count(self) -> float:
        """Conversion factor applied by the data transformation layer."""
        return self.config.spec.accel_range_g / self.config.counts_full_scale

    def _advance_offset(self, day: float) -> None:
        """Evolve drift/jump state from the last measurement day to ``day``."""
        if self._last_day is None:
            self._last_day = day
            return
        elapsed = max(day - self._last_day, 0.0)
        self._last_day = day
        if elapsed == 0:
            return
        cfg = self.config
        if cfg.drift_g_per_day > 0:
            # Linear drift along a per-sensor direction plus a random walk.
            self.zero_offset = self.zero_offset + (
                cfg.drift_g_per_day * elapsed * self._drift_direction
                + self._rng.normal(0.0, cfg.drift_g_per_day * np.sqrt(elapsed), size=3)
            )
        if cfg.jump_probability_per_day > 0:
            n_jumps = self._rng.poisson(cfg.jump_probability_per_day * elapsed)
            for _ in range(int(n_jumps)):
                self.zero_offset = self.zero_offset + self._rng.normal(
                    0.0, cfg.jump_scale_g, size=3
                )

    def measure_counts(
        self,
        true_block: np.ndarray,
        day: float,
        sampling_rate_hz: float,
    ) -> np.ndarray:
        """Raw ADC counts for one measurement block.

        Args:
            true_block: physical acceleration ``(K, 3)`` in g, gravity
                excluded.
            day: absolute measurement day (drives offset evolution).
            sampling_rate_hz: drives the white-noise bandwidth.

        Returns:
            int16 array ``(K, 3)`` of clipped, quantized counts.
        """
        block = np.asarray(true_block, dtype=np.float64)
        if block.ndim != 2 or block.shape[1] != 3:
            raise ValueError(f"true_block must have shape (K, 3), got {block.shape}")
        self._advance_offset(day)
        cfg = self.config
        sigma = cfg.spec.noise_sigma_g(sampling_rate_hz / 2.0)
        noisy = (
            block
            + self.gravity_offset[None, :]
            + self.zero_offset[None, :]
            + self._rng.normal(0.0, sigma, size=block.shape)
        )
        limit = cfg.spec.accel_range_g
        clipped = np.clip(noisy, -limit, limit)
        counts = np.round(clipped / self.scale_g_per_count)
        return counts.astype(np.int16)

    def measure_g(
        self,
        true_block: np.ndarray,
        day: float,
        sampling_rate_hz: float,
    ) -> np.ndarray:
        """Counts converted back to g — what the transformation layer sees."""
        counts = self.measure_counts(true_block, day, sampling_rate_hz)
        return counts.astype(np.float64) * self.scale_g_per_count
