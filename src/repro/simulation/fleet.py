"""Fleet simulator: pumps, sensors, maintenance events and labels.

Reproduces the paper's experimental setting (Sec. V-A): a fleet of
identical-model vacuum pumps, each carrying one MEMS vibration sensor that
reports a 1024-sample tri-axial measurement at a fixed period; pumps are
installed at staggered times (different initial ages — "Variance on Initial
Status"), belong to one of two latent lifetime populations (Model I /
Model II — "Diversity on Lifetime model"), and undergo two kinds of
maintenance:

* **PM** (planned maintenance): the conservative fixed-period replacement
  the paper criticises — the pump is replaced at a fixed service age even
  when healthy, wasting its remaining useful lifetime;
* **BM** (breakdown maintenance): the pump is run to mechanical failure,
  having spent its last stretch in hazardous Zone D.

Every generated measurement carries ground truth (wear, zone, true RUL) so
the analytics can be scored exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.classify import ZONES
from repro.simulation.degradation import (
    MODEL_I,
    MODEL_II,
    WEAR_AT_FAILURE,
    ZONE_BOUNDARY_BC_D,
    DegradationProcess,
    zone_for_wear,
)
from repro.simulation.faults import FaultInjector, FaultSpec, FaultType
from repro.simulation.fics import TemperatureSource
from repro.simulation.labels import ExpertLabeler, LabelerConfig
from repro.simulation.mems import MEMSSensor, MEMSSensorConfig
from repro.simulation.signal import MachineProfile, VibrationSynthesizer
from repro.storage.records import (
    BM,
    PM,
    LabelRecord,
    MaintenanceEvent,
    Measurement,
    SensorMeta,
    TemperatureRecord,
)


@dataclass(frozen=True)
class FleetConfig:
    """Simulation parameters.

    Defaults give a small, fast fleet; the paper-scale configuration (12
    pumps, 3 months at a 10-minute report period ⇒ 155,520 measurements)
    is available through :meth:`paper_scale`.

    Attributes:
        num_pumps: fleet size ``M``.
        duration_days: length of the simulated analysis period.
        report_interval_days: time between consecutive measurements of
            one pump (paper: 10 minutes ≈ 0.00694 days).
        sampling_rate_hz: sensor sampling rate (paper: 4 kHz).
        samples_per_measurement: block length ``K`` (paper: 1024).
        model_ii_fraction: fraction of pumps drawn from the fast-ageing
            population.
        max_initial_age_fraction: pumps start the window at a uniform age
            in ``[0, fraction * life]`` (staggered install ages).
        pm_interval_days: fixed-period planned-replacement age; None
            disables PM so pumps run to failure (BM).
        unstable_sensor_fraction: fraction of sensors given offset drift
            and abrupt jumps (Fig. 8b behaviour).
        fault_fraction: fraction of pumps that develop a specific
            mechanical fault (imbalance / misalignment / looseness /
            bearing defect) whose signature grows with wear past
            ``fault_onset_wear``; 0 keeps the original pure-degradation
            fleet.
        fault_onset_wear: wear level at which a faulty pump's signature
            starts to appear.
        labeler: expert labeling error model.
        seed: master RNG seed.
    """

    num_pumps: int = 12
    duration_days: float = 90.0
    report_interval_days: float = 1.0
    sampling_rate_hz: float = 4000.0
    samples_per_measurement: int = 1024
    model_ii_fraction: float = 1.0 / 3.0
    max_initial_age_fraction: float = 0.85
    pm_interval_days: float | None = 180.0
    unstable_sensor_fraction: float = 0.0
    fault_fraction: float = 0.0
    fault_onset_wear: float = 0.3
    labeler: LabelerConfig = field(default_factory=LabelerConfig)
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_pumps < 1:
            raise ValueError("num_pumps must be positive")
        if self.duration_days <= 0:
            raise ValueError("duration_days must be positive")
        if self.report_interval_days <= 0:
            raise ValueError("report_interval_days must be positive")
        if not 0 <= self.model_ii_fraction <= 1:
            raise ValueError("model_ii_fraction must be in [0, 1]")
        if not 0 <= self.unstable_sensor_fraction <= 1:
            raise ValueError("unstable_sensor_fraction must be in [0, 1]")
        if not 0 <= self.fault_fraction <= 1:
            raise ValueError("fault_fraction must be in [0, 1]")
        if not 0 <= self.fault_onset_wear < 1:
            raise ValueError("fault_onset_wear must be in [0, 1)")
        if self.pm_interval_days is not None and self.pm_interval_days <= 0:
            raise ValueError("pm_interval_days must be positive")

    @staticmethod
    def paper_scale(seed: int = 7) -> "FleetConfig":
        """The paper's setting: 12 pumps, 3 months, 10-minute reports."""
        return FleetConfig(
            num_pumps=12,
            duration_days=90.0,
            report_interval_days=10.0 / (60.0 * 24.0),
            seed=seed,
        )


@dataclass(frozen=True)
class PumpInfo:
    """Static metadata of one simulated pump."""

    pump_id: int
    model_name: str
    life_days: float
    initial_age_days: float
    sensor_stable: bool
    fault_kind: FaultType = FaultType.NONE


@dataclass
class FleetDataset:
    """Everything one simulation run produced.

    Measurement-aligned ground-truth arrays (``true_wear``, ``true_zone``,
    ``true_rul_days``) follow the order of ``measurements``.
    """

    config: FleetConfig
    pumps: list[PumpInfo]
    sensors: list[SensorMeta]
    measurements: list[Measurement]
    events: list[MaintenanceEvent]
    temperature: list[TemperatureRecord]
    true_wear: np.ndarray
    true_zone: np.ndarray
    true_rul_days: np.ndarray
    _index_cache: dict[tuple[int, int], int] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def measurement_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Dense ``(pump_ids, service_days, samples)`` arrays.

        The sample matrix is filled into one preallocated block rather
        than stacked from a temporary list, so fleet-scale exports pay a
        single allocation.
        """
        n = len(self.measurements)
        pumps = np.asarray([m.pump_id for m in self.measurements], dtype=int)
        service = np.asarray([m.service_day for m in self.measurements], dtype=np.float64)
        if n == 0:
            return pumps, service, np.empty((0, 0, 3))
        first = np.asarray(self.measurements[0].samples, dtype=np.float64)
        samples = np.empty((n, *first.shape))
        for idx, m in enumerate(self.measurements):
            samples[idx] = m.samples
        return pumps, service, samples

    def measurement_temperatures(self) -> np.ndarray:
        """Per-measurement temperature readings, aligned with measurements.

        The temperature list is generated one reading per measurement in
        the same order, so this is a direct unpacking.
        """
        return np.asarray([t.temperature_c for t in self.temperature], dtype=np.float64)

    def index_of(self, pump_id: int, measurement_id: int) -> int:
        """Global index of a measurement in this dataset's ordering.

        Backed by a lazily built ``(pump_id, measurement_id) → index``
        map, so repeated lookups (label joins over thousands of records)
        are O(1) instead of an O(n) scan each.
        """
        if self._index_cache is None or len(self._index_cache) != len(self.measurements):
            self._index_cache = {
                (m.pump_id, m.measurement_id): idx
                for idx, m in enumerate(self.measurements)
            }
        try:
            return self._index_cache[(pump_id, measurement_id)]
        except KeyError:
            raise KeyError(f"no measurement ({pump_id}, {measurement_id})") from None

    def stratified_label_indices(
        self,
        counts: dict[str, int],
        rng: np.random.Generator | None = None,
    ) -> dict[int, str]:
        """Pick measurement indices per true zone for expert labeling.

        Mirrors the paper's label mix (700 Zone A / 1400 Zone BC / 700
        Zone D).  Raises when a zone has fewer measurements than asked.

        Returns:
            Mapping of global measurement index to *true* zone (pass the
            indices through an :class:`ExpertLabeler` to add human error).
        """
        gen = rng if rng is not None else np.random.default_rng(self.config.seed + 1)
        chosen: dict[int, str] = {}
        for zone, want in counts.items():
            if zone not in ZONES:
                raise ValueError(f"unknown zone {zone!r}")
            pool = np.nonzero(self.true_zone == zone)[0]
            if pool.size < want:
                raise ValueError(
                    f"only {pool.size} measurements in zone {zone}, need {want}"
                )
            picked = gen.choice(pool, size=want, replace=False)
            for idx in picked:
                chosen[int(idx)] = zone
        return chosen

    def expert_labels(
        self,
        counts: dict[str, int],
        rng: np.random.Generator | None = None,
    ) -> tuple[list[LabelRecord], dict[int, str]]:
        """Generate expert labels with realistic error for a label mix.

        Returns:
            ``(records, index_to_label)`` where invalid records are kept
            in ``records`` (the store will filter them) but excluded from
            ``index_to_label`` (what the analysis consumes).
        """
        gen = rng if rng is not None else np.random.default_rng(self.config.seed + 2)
        labeler = ExpertLabeler(self.config.labeler, gen)
        chosen = self.stratified_label_indices(counts, gen)
        records: list[LabelRecord] = []
        index_to_label: dict[int, str] = {}
        for idx, true_zone in chosen.items():
            m = self.measurements[idx]
            record = labeler.label(m.pump_id, m.measurement_id, true_zone)
            records.append(record)
            if record.valid:
                index_to_label[idx] = record.zone
        return records, index_to_label

    def to_database(self, database) -> None:
        """Load this dataset into a :class:`VibrationDatabase`."""
        for meta in self.sensors:
            database.sensors.add(meta)
        database.measurements.add_many(self.measurements)
        database.events.add_many(self.events)
        database.temperature.add_many(self.temperature)


class FleetSimulator:
    """Generates a :class:`FleetDataset` from a :class:`FleetConfig`."""

    def __init__(self, config: FleetConfig | None = None, profile: MachineProfile | None = None):
        self.config = config or FleetConfig()
        self.profile = profile or MachineProfile()

    def _make_sensor(self, stable: bool, rng: np.random.Generator) -> MEMSSensor:
        if stable:
            sensor_cfg = MEMSSensorConfig()
        else:
            sensor_cfg = MEMSSensorConfig(
                drift_g_per_day=0.004,
                jump_probability_per_day=0.03,
                jump_scale_g=0.6,
            )
        return MEMSSensor(sensor_cfg, rng)

    def run(self) -> FleetDataset:
        """Simulate the fleet over the analysis period."""
        cfg = self.config
        master = np.random.default_rng(cfg.seed)
        synthesizer = VibrationSynthesizer(self.profile)
        fault_injector = FaultInjector(self.profile)
        fault_kinds = (
            FaultType.IMBALANCE,
            FaultType.MISALIGNMENT,
            FaultType.LOOSENESS,
            FaultType.BEARING_DEFECT,
        )

        pumps: list[PumpInfo] = []
        sensors: list[SensorMeta] = []
        measurements: list[Measurement] = []
        events: list[MaintenanceEvent] = []
        temperature: list[TemperatureRecord] = []
        wear_list: list[float] = []
        zone_list: list[str] = []
        rul_list: list[float] = []

        for pump_id in range(cfg.num_pumps):
            rng = np.random.default_rng(master.integers(0, 2**31))
            spec = MODEL_II if rng.random() < cfg.model_ii_fraction else MODEL_I
            process = DegradationProcess(spec, rng)
            initial_age = float(
                rng.uniform(0.0, cfg.max_initial_age_fraction * process.life_days)
            )
            if cfg.pm_interval_days is not None:
                initial_age = min(initial_age, 0.95 * cfg.pm_interval_days)
            stable = rng.random() >= cfg.unstable_sensor_fraction
            sensor = self._make_sensor(stable, rng)
            temp_source = TemperatureSource(rng=rng)
            # Draw no entropy when the feature is off, so fleets generated
            # before this option existed stay bit-identical per seed.
            fault_kind = FaultType.NONE
            if cfg.fault_fraction > 0 and rng.random() < cfg.fault_fraction:
                fault_kind = fault_kinds[int(rng.integers(0, len(fault_kinds)))]
            pumps.append(
                PumpInfo(
                    pump_id=pump_id,
                    model_name=spec.name,
                    life_days=process.life_days,
                    initial_age_days=initial_age,
                    sensor_stable=stable,
                    fault_kind=fault_kind,
                )
            )
            sensors.append(
                SensorMeta(
                    sensor_id=pump_id,
                    pump_id=pump_id,
                    sampling_rate_hz=cfg.sampling_rate_hz,
                    samples_per_measurement=cfg.samples_per_measurement,
                    install_day=0.0,
                )
            )

            service = initial_age
            measurement_id = 0
            day = 0.0
            while day < cfg.duration_days:
                wear = process.wear_at(service)

                replaced = False
                if wear >= WEAR_AT_FAILURE:
                    # Breakdown: the pump spent its tail in Zone D.  The
                    # "wasted RUL" of a breakdown is negative — the days it
                    # was operated in hazard condition.
                    days_in_zone_d = (1.0 - ZONE_BOUNDARY_BC_D) * process.life_days
                    events.append(
                        MaintenanceEvent(
                            pump_id=pump_id,
                            timestamp_day=day,
                            kind=BM,
                            service_day_at_event=service,
                            true_rul_days=-days_in_zone_d,
                        )
                    )
                    replaced = True
                elif cfg.pm_interval_days is not None and service >= cfg.pm_interval_days:
                    events.append(
                        MaintenanceEvent(
                            pump_id=pump_id,
                            timestamp_day=day,
                            kind=PM,
                            service_day_at_event=service,
                            true_rul_days=process.true_rul_days(service),
                        )
                    )
                    replaced = True

                if replaced:
                    process = DegradationProcess(spec, rng)
                    sensor = self._make_sensor(stable, rng)
                    service = 0.0
                    wear = process.wear_at(service)

                if fault_kind is FaultType.NONE:
                    true_block = synthesizer.synthesize(
                        wear, cfg.samples_per_measurement, cfg.sampling_rate_hz, rng
                    )
                else:
                    severity = max(wear - cfg.fault_onset_wear, 0.0) / max(
                        1.0 - cfg.fault_onset_wear, 1e-9
                    )
                    true_block = fault_injector.synthesize(
                        FaultSpec(fault_kind, severity),
                        cfg.samples_per_measurement,
                        cfg.sampling_rate_hz,
                        rng,
                        wear=wear,
                    )
                sensed = sensor.measure_g(true_block, day, cfg.sampling_rate_hz)
                measurements.append(
                    Measurement(
                        pump_id=pump_id,
                        measurement_id=measurement_id,
                        timestamp_day=day,
                        service_day=service,
                        samples=sensed,
                        sampling_rate_hz=cfg.sampling_rate_hz,
                    )
                )
                temperature.append(
                    TemperatureRecord(
                        pump_id=pump_id,
                        timestamp_day=day,
                        temperature_c=temp_source.reading(day, wear),
                    )
                )
                wear_list.append(wear)
                zone_list.append(zone_for_wear(wear))
                rul_list.append(process.true_rul_days(service))

                measurement_id += 1
                day += cfg.report_interval_days
                service += cfg.report_interval_days

        # Physical-checking labels at replacement: the opened-up pump's
        # condition is known exactly (at most one per equipment instance).
        dataset = FleetDataset(
            config=cfg,
            pumps=pumps,
            sensors=sensors,
            measurements=measurements,
            events=events,
            temperature=temperature,
            true_wear=np.asarray(wear_list),
            true_zone=np.asarray(zone_list, dtype=object),
            true_rul_days=np.asarray(rul_list),
        )
        return dataset
