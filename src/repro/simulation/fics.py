"""FICS temperature source.

The paper's empirical finding (Figs. 12–14) is that equipment temperature
is useless for health classification because "equipments' temperature is
greatly affected by the factory control system rather than equipments'
inherent condition".  The source below models exactly that: a controlled
setpoint with daily process swings, control noise, and only a very weak
dependence on pump wear — so the temperature baseline in our benchmarks
fails for the same reason it failed in the paper.
"""

from __future__ import annotations

import numpy as np


class TemperatureSource:
    """Per-pump temperature reading generator."""

    def __init__(
        self,
        setpoint_c: float = 65.0,
        control_amplitude_c: float = 4.0,
        noise_c: float = 1.5,
        wear_coupling_c: float = 0.8,
        rng: np.random.Generator | None = None,
    ):
        """Create a source.

        Args:
            setpoint_c: factory-controlled operating temperature.
            control_amplitude_c: amplitude of the daily process swing
                imposed by the factory control loop.
            noise_c: standard deviation of reading noise.
            wear_coupling_c: temperature increase at full wear; kept small
                relative to the control dynamics by design.
            rng: entropy source.
        """
        if noise_c < 0:
            raise ValueError("noise_c must be non-negative")
        self.setpoint_c = setpoint_c
        self.control_amplitude_c = control_amplitude_c
        self.noise_c = noise_c
        self.wear_coupling_c = wear_coupling_c
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._phase = self._rng.uniform(0, 2 * np.pi)

    def reading(self, day: float, wear: float) -> float:
        """Temperature in °C at an absolute day for a given pump wear."""
        control = self.control_amplitude_c * np.sin(2 * np.pi * day + self._phase)
        # Slow multi-day recipe changes add a second, larger-period swing.
        recipe = 0.5 * self.control_amplitude_c * np.sin(2 * np.pi * day / 9.0)
        noise = self._rng.normal(0.0, self.noise_c)
        return float(
            self.setpoint_c + control + recipe + self.wear_coupling_c * wear + noise
        )
