"""CSV artifact export for benchmark outputs."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence


def write_csv(
    path: str | Path,
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> Path:
    """Write a CSV artifact, creating parent directories as needed.

    Args:
        path: destination file.
        header: column names.
        rows: row tuples; lengths must match the header.

    Returns:
        The resolved path written.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(header))
        for row in rows:
            if len(row) != len(header):
                raise ValueError(f"row length {len(row)} != header length {len(header)}")
            writer.writerow(list(row))
    return target
