"""Self-contained HTML fleet dashboard — the GUI component of Fig. 1.

Renders an :class:`~repro.analysis.engine.AnalysisReport` into a single
HTML file with no external dependencies: inline CSS (light and dark via
``prefers-color-scheme``) and inline SVG charts.

Design notes (following the project's data-viz conventions):

* zone state is shown as a **status badge with a text label** — color
  never carries meaning alone (A → good, BC → warning, D → critical);
* per-pump ``D_a`` **sparklines** are single-series 2px lines in the
  primary series hue with an 8px end-dot ringed in the surface color —
  one series, so no legend box;
* the fleet scatter keeps **one axis pair**, hairline gridlines, muted
  dots for measurements and 2px lines for the discovered lifetime
  models, with a legend for the multi-series plot;
* all text wears ink tokens, never series colors; marks carry native
  ``<title>`` tooltips (the dependency-free hover layer), and the
  per-pump table is the table view of the same data.
"""

from __future__ import annotations

import html
from pathlib import Path

import numpy as np

from repro.analysis.engine import AnalysisReport
from repro.analysis.reporting import build_alerts, fleet_health_summary
from repro.core.classify import ZONE_A, ZONE_BC, ZONE_D

# Reference palette roles (light, dark).
_CSS = """
:root { color-scheme: light dark; }
.viz-root {
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --ink-3: #898781;
  --grid: #e1e0d9;
  --series-1: #2a78d6; --series-2: #1baf7a;
  --status-good: #0ca30c; --status-warning: #fab219;
  --status-critical: #d03b3b;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--ink-1);
  margin: 0; padding: 24px;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-3: #898781;
    --grid: #2c2c2a;
    --series-1: #3987e5; --series-2: #199e70;
  }
}
.viz-root h1 { font-size: 20px; margin: 0 0 4px; }
.viz-root .subtitle { color: var(--ink-2); margin: 0 0 20px; font-size: 13px; }
.viz-root section { background: var(--surface-1); border-radius: 8px;
  padding: 16px 20px; margin-bottom: 16px; }
.viz-root h2 { font-size: 13px; font-weight: 600; color: var(--ink-2);
  text-transform: uppercase; letter-spacing: 0.04em; margin: 0 0 12px; }
.tiles { display: flex; gap: 24px; flex-wrap: wrap; }
.tile .label { font-size: 12px; color: var(--ink-2); }
.tile .value { font-size: 28px; font-weight: 600; }
.badge { display: inline-block; padding: 1px 8px; border-radius: 10px;
  font-size: 12px; font-weight: 600; color: var(--surface-1); }
.badge.zone-a { background: var(--status-good); }
.badge.zone-bc { background: var(--status-warning); color: #0b0b0b; }
.badge.zone-d { background: var(--status-critical); }
.badge.zone-unknown { background: var(--ink-3); }
table.fleet { border-collapse: collapse; width: 100%; font-size: 13px; }
table.fleet th { text-align: left; color: var(--ink-2); font-weight: 600;
  border-bottom: 1px solid var(--grid); padding: 6px 10px 6px 0; }
table.fleet td { border-bottom: 1px solid var(--grid); padding: 6px 10px 6px 0; }
ul.alerts { margin: 0; padding-left: 18px; font-size: 13px; }
ul.alerts li { margin-bottom: 4px; }
.alert-hazard { color: var(--status-critical); font-weight: 600; }
.alert-upcoming { color: var(--ink-1); }
.axis-label { font-size: 10px; fill: var(--ink-3); }
.legend { font-size: 12px; color: var(--ink-2); margin-top: 6px; }
.legend .key { display: inline-block; width: 14px; height: 3px;
  vertical-align: middle; margin-right: 4px; border-radius: 2px; }
"""

_ZONE_BADGE = {
    ZONE_A: ("zone-a", "A — healthy"),
    ZONE_BC: ("zone-bc", "BC — caution"),
    ZONE_D: ("zone-d", "D — hazard"),
}


def _badge(zone: str) -> str:
    css, label = _ZONE_BADGE.get(zone, ("zone-unknown", "unknown"))
    return f'<span class="badge {css}">{html.escape(label)}</span>'


def _sparkline(days: np.ndarray, values: np.ndarray, width=140, height=32) -> str:
    """Single-series D_a sparkline: 2px line, ringed 8px end-dot."""
    finite = np.isfinite(values)
    xs, ys = days[finite], values[finite]
    if xs.size < 2:
        return '<span style="color: var(--ink-3)">–</span>'
    pad = 5
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    px = pad + (xs - x_lo) / x_span * (width - 2 * pad)
    py = height - pad - (ys - y_lo) / y_span * (height - 2 * pad)
    points = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(px, py))
    tooltip = (
        f"D_a {y_lo:.3f} to {y_hi:.3f} over service days "
        f"{x_lo:.0f} to {x_hi:.0f}"
    )
    return (
        f'<svg width="{width}" height="{height}" role="img" '
        f'aria-label="{html.escape(tooltip)}">'
        f"<title>{html.escape(tooltip)}</title>"
        f'<polyline points="{points}" fill="none" stroke="var(--series-1)" '
        f'stroke-width="2" stroke-linejoin="round" stroke-linecap="round"/>'
        f'<circle cx="{px[-1]:.1f}" cy="{py[-1]:.1f}" r="4" '
        f'fill="var(--series-1)" stroke="var(--surface-1)" stroke-width="2"/>'
        f"</svg>"
    )


def _fleet_scatter(
    report: AnalysisReport, width=640, height=260, max_points=400
) -> str:
    """D_a vs service time with the discovered lifetime model lines."""
    valid = report.pipeline.valid_mask
    days = report.service_days[valid]
    da = report.pipeline.da[valid]
    finite = np.isfinite(da)
    days, da = days[finite], da[finite]
    if days.size < 2:
        return "<p>not enough data for the fleet scatter</p>"
    step = max(1, days.size // max_points)
    days_s, da_s = days[::step], da[::step]

    pad_l, pad_r, pad_t, pad_b = 46, 12, 10, 30
    x_lo, x_hi = float(days.min()), float(days.max())
    y_lo, y_hi = 0.0, float(max(da.max(), report.pipeline.zone_d_threshold) * 1.05)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    def sx(v):
        return pad_l + (v - x_lo) / x_span * (width - pad_l - pad_r)

    def sy(v):
        return height - pad_b - (v - y_lo) / y_span * (height - pad_t - pad_b)

    parts = [
        f'<svg width="{width}" height="{height}" role="img" '
        f'aria-label="Fleet degradation scatter with lifetime models">'
    ]
    # Hairline gridlines + tick labels (clean steps).
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        y_val = y_lo + frac * y_span
        y_pix = sy(y_val)
        parts.append(
            f'<line x1="{pad_l}" y1="{y_pix:.1f}" x2="{width - pad_r}" '
            f'y2="{y_pix:.1f}" stroke="var(--grid)" stroke-width="1"/>'
            f'<text x="{pad_l - 6}" y="{y_pix + 3:.1f}" text-anchor="end" '
            f'class="axis-label">{y_val:.2f}</text>'
        )
    for frac in (0.0, 0.5, 1.0):
        x_val = x_lo + frac * x_span
        parts.append(
            f'<text x="{sx(x_val):.1f}" y="{height - 10}" text-anchor="middle" '
            f'class="axis-label">{x_val:.0f} d</text>'
        )
    # Measurement dots: muted, small, with native tooltips via title.
    for x, y in zip(days_s, da_s):
        parts.append(
            f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" r="2" '
            f'fill="var(--ink-3)" fill-opacity="0.45">'
            f"<title>day {x:.0f}: D_a {y:.3f}</title></circle>"
        )
    # Hazard threshold: status line with a text label.
    thr_y = sy(report.pipeline.zone_d_threshold)
    parts.append(
        f'<line x1="{pad_l}" y1="{thr_y:.1f}" x2="{width - pad_r}" '
        f'y2="{thr_y:.1f}" stroke="var(--status-critical)" stroke-width="1.5" '
        f'stroke-dasharray="none" opacity="0.8"/>'
        f'<text x="{width - pad_r}" y="{thr_y - 4:.1f}" text-anchor="end" '
        f'class="axis-label">zone D boundary '
        f"{report.pipeline.zone_d_threshold:.2f}</text>"
    )
    # Lifetime model lines: 2px, categorical slots.
    series_vars = ("var(--series-1)", "var(--series-2)")
    for i, model in enumerate(report.lifetime_models[:2]):
        y1 = model.predict(x_lo)
        y2 = model.predict(x_hi)
        parts.append(
            f'<line x1="{sx(x_lo):.1f}" y1="{sy(y1):.1f}" '
            f'x2="{sx(x_hi):.1f}" y2="{sy(max(min(y2, y_hi), y_lo)):.1f}" '
            f'stroke="{series_vars[i]}" stroke-width="2" '
            f'stroke-linecap="round">'
            f"<title>model {i + 1}: slope {model.slope:.2e}/day</title></line>"
        )
    parts.append("</svg>")
    legend = "".join(
        f'<span><span class="key" style="background:{series_vars[i]}"></span>'
        f"model {i + 1} ({model.n_inliers} meas.)</span>&nbsp;&nbsp;"
        for i, model in enumerate(report.lifetime_models[:2])
    )
    parts.append(f'<div class="legend">{legend}'
                 '<span><span class="key" style="background:var(--ink-3)">'
                 "</span>measurements</span></div>")
    return "".join(parts)


def render_dashboard(report: AnalysisReport, title: str = "Fleet dashboard") -> str:
    """Render the full dashboard HTML document."""
    health = fleet_health_summary(report)
    alerts = build_alerts(report)
    n_pumps = len(set(int(p) for p in report.pump_ids))

    tiles = [
        ("Pumps monitored", str(n_pumps)),
        ("Measurements", f"{report.pump_ids.shape[0]:,}"),
        ("Active alerts", str(len(alerts))),
        ("Zone D boundary", f"{report.pipeline.zone_d_threshold:.3f}"),
    ]
    tiles_html = "".join(
        f'<div class="tile"><div class="label">{html.escape(label)}</div>'
        f'<div class="value">{html.escape(value)}</div></div>'
        for label, value in tiles
    )

    if alerts:
        alerts_html = "<ul class='alerts'>" + "".join(
            f'<li class="alert-{a.severity}">'
            f'{"&#9888; " if a.severity == "hazard" else "&#8986; "}'
            f"{html.escape(a.message)}</li>"
            for a in alerts
        ) + "</ul>"
    else:
        alerts_html = "<p>No pump reaches hazard within the horizon.</p>"

    show_diagnosis = bool(report.diagnoses)
    rows = []
    for pump in sorted(set(int(p) for p in report.pump_ids)):
        member = np.nonzero(
            (report.pump_ids == pump) & report.pipeline.valid_mask
        )[0]
        order = member[np.argsort(report.service_days[member])]
        spark = _sparkline(
            report.service_days[order], report.pipeline.da[order]
        )
        prediction = report.rul.get(pump)
        rul_text = f"{prediction.rul_days:,.0f}" if prediction else "–"
        model_text = f"{prediction.model_index + 1}" if prediction else "–"
        diag_cell = ""
        if show_diagnosis:
            diagnosis = report.diagnoses.get(pump)
            diag_cell = f"<td>{html.escape(diagnosis.label) if diagnosis else '–'}</td>"
        rows.append(
            f"<tr><td>{pump}</td><td>{_badge(report.zone_of(pump))}</td>"
            f"<td>{model_text}</td><td>{rul_text}</td>{diag_cell}"
            f"<td>{spark}</td></tr>"
        )
    diag_header = "<th>Diagnosis</th>" if show_diagnosis else ""
    table_html = (
        "<table class='fleet'><thead><tr>"
        "<th>Pump</th><th>Zone</th><th>Model</th><th>RUL (days)</th>"
        f"{diag_header}<th>D_a trend</th></tr></thead><tbody>"
        + "".join(rows)
        + "</tbody></table>"
    )

    wasted = report.wasted_rul
    cost_html = (
        f"<p>Planned replacements wasted "
        f"<strong>{wasted['pm_wasted_days']:,.0f} useful days</strong> "
        f"(${wasted['pm_wasted_usd']:,.0f}); breakdown penalties "
        f"${wasted['bm_penalty_usd']:,.0f}; total "
        f"<strong>${wasted['total_usd']:,.0f}</strong>.</p>"
    )

    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{html.escape(title)}</title>
<style>{_CSS}</style>
</head>
<body class="viz-root">
<h1>{html.escape(title)}</h1>
<p class="subtitle">Vibration-based predictive maintenance &middot;
{report.n_labels_used} expert labels &middot;
{len(report.lifetime_models)} lifetime models</p>
<section><h2>Fleet health</h2><div class="tiles">{tiles_html}</div></section>
<section><h2>Alerts</h2>{alerts_html}</section>
<section><h2>Fleet degradation</h2>{_fleet_scatter(report)}</section>
<section><h2>Per-pump status</h2>{table_html}</section>
<section><h2>Maintenance cost (analysis window)</h2>{cost_html}</section>
</body>
</html>"""


def write_dashboard(
    report: AnalysisReport, path: str | Path, title: str = "Fleet dashboard"
) -> Path:
    """Render and write the dashboard; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_dashboard(report, title), encoding="utf-8")
    return target
