"""Text-mode visualization and artifact export.

The paper's GUI component is out of scope (and matplotlib is unavailable
offline), so figures are regenerated as ASCII plots for the terminal plus
CSV artifacts for external plotting.
"""

from repro.viz.ascii import ascii_histogram, ascii_line_plot, ascii_scatter
from repro.viz.export import write_csv
from repro.viz.dashboard import render_dashboard, write_dashboard

__all__ = [
    "ascii_line_plot",
    "ascii_histogram",
    "ascii_scatter",
    "write_csv",
    "render_dashboard",
    "write_dashboard",
]
