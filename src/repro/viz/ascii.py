"""Minimal ASCII plotting for figure regeneration in the terminal."""

from __future__ import annotations

import numpy as np

_SERIES_GLYPHS = "*o+x#@%&"


def _scale(values: np.ndarray, lo: float, hi: float, size: int) -> np.ndarray:
    """Map values in [lo, hi] to integer cells [0, size-1]."""
    if hi == lo:
        return np.zeros(values.shape, dtype=int)
    frac = (values - lo) / (hi - lo)
    return np.clip((frac * (size - 1)).round().astype(int), 0, size - 1)


def ascii_line_plot(
    x: np.ndarray,
    series: dict[str, np.ndarray],
    width: int = 72,
    height: int = 18,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render one or more series over a shared x axis.

    Args:
        x: shared x values.
        series: name → y values (aligned with ``x``); non-finite points
            are skipped.
        width: plot width in characters.
        height: plot height in rows.
        title: optional heading.
        x_label: optional x-axis caption.
        y_label: optional y-axis caption.

    Returns:
        Multi-line string.
    """
    xs = np.asarray(x, dtype=np.float64)
    if not series:
        raise ValueError("at least one series is required")
    all_y = np.concatenate(
        [np.asarray(v, dtype=np.float64)[np.isfinite(v)] for v in series.values()]
    )
    if all_y.size == 0:
        raise ValueError("all series are empty or non-finite")
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    x_lo, x_hi = float(xs.min()), float(xs.max())

    grid = [[" "] * width for _ in range(height)]
    for s_idx, (name, values) in enumerate(series.items()):
        ys = np.asarray(values, dtype=np.float64)
        if ys.shape != xs.shape:
            raise ValueError(f"series {name!r} does not align with x")
        glyph = _SERIES_GLYPHS[s_idx % len(_SERIES_GLYPHS)]
        finite = np.isfinite(ys)
        cols = _scale(xs[finite], x_lo, x_hi, width)
        rows = _scale(ys[finite], y_lo, y_hi, height)
        for col, row in zip(cols, rows):
            grid[height - 1 - row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(f"[y: {y_label}]  range {y_lo:.4g} .. {y_hi:.4g}")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    footer = f"x: {x_lo:.4g} .. {x_hi:.4g}"
    if x_label:
        footer += f"  [{x_label}]"
    lines.append(footer)
    legend = "  ".join(
        f"{_SERIES_GLYPHS[i % len(_SERIES_GLYPHS)]}={name}"
        for i, name in enumerate(series)
    )
    lines.append("legend: " + legend)
    return "\n".join(lines)


def ascii_scatter(
    x: np.ndarray,
    y: np.ndarray,
    width: int = 72,
    height: int = 18,
    title: str = "",
) -> str:
    """Scatter plot of one point cloud."""
    return ascii_line_plot(np.asarray(x), {"points": np.asarray(y)}, width, height, title)


def ascii_histogram(
    values: np.ndarray,
    bins: int = 24,
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal-bar histogram of scalar values."""
    vals = np.asarray(values, dtype=np.float64)
    vals = vals[np.isfinite(vals)]
    if vals.size == 0:
        raise ValueError("no finite values to plot")
    counts, edges = np.histogram(vals, bins=bins)
    peak = counts.max() if counts.max() else 1
    lines = [title] if title else []
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"{lo:>10.4g} .. {hi:<10.4g} |{bar} {count}")
    return "\n".join(lines)
