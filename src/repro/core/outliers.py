"""Invalid-measurement detection on acceleration averages (Fig. 8).

A vibration sensor is rigidly attached to its pump, so the per-measurement
acceleration averages (the sensor zero-offset plus gravity projection)
should stay constant over the sensor's life.  Low-cost MEMS parts violate
this with long-term zero-offset drift and abrupt offset jumps; measurements
taken during such episodes are unreliable and must be excluded before
feature extraction.

The paper's remedy — reproduced here — is a 3-D mean-shift clustering over
the ``(avg_x, avg_y, avg_z)`` points of all measurements of one sensor: the
dominant cluster is taken as the sensor's true offset regime and every
measurement falling outside it is marked invalid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.meanshift import MeanShift


@dataclass(frozen=True)
class OutlierConfig:
    """Configuration for invalid-measurement detection.

    Attributes:
        bandwidth: mean-shift bandwidth in g.  The default of 0.15 g is a
            physical choice: per-measurement averages of a healthy sensor
            scatter by roughly the MEMS noise divided by ``sqrt(K)``
            (a few mg), while drift episodes and offset jumps move the
            average by hundreds of mg — so a tenth-of-a-g ball cleanly
            separates the regimes.  Pass None to estimate the bandwidth
            from the data instead (useful for other sensor families).
        min_main_fraction: smallest fraction of points the dominant
            cluster may hold before the whole trace is considered
            unstable (in which case only the dominant cluster is kept and
            everything else is invalid, matching the paper's behaviour of
            excluding drifted segments).
        max_offset_jump: measurements whose average is farther than this
            many bandwidths from the dominant cluster center are invalid
            even if mean shift assigned them to the main cluster.
        max_cluster_points: mean shift is O(n²); traces longer than this
            are clustered on a uniform subsample and the remaining points
            are labeled by nearest mode — required for paper-density
            fleets (a 10-minute report period yields ~13k measurements
            per pump per quarter).
    """

    bandwidth: float | None = 0.15
    min_main_fraction: float = 0.5
    max_offset_jump: float = 1.5
    max_cluster_points: int = 1500

    def __post_init__(self) -> None:
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 < self.min_main_fraction <= 1.0:
            raise ValueError("min_main_fraction must be in (0, 1]")
        if self.max_offset_jump <= 0:
            raise ValueError("max_offset_jump must be positive")
        if self.max_cluster_points < 10:
            raise ValueError("max_cluster_points must be at least 10")


def detect_invalid_measurements(
    averages: np.ndarray,
    config: OutlierConfig | None = None,
) -> np.ndarray:
    """Flag measurements whose acceleration average is off-regime.

    Args:
        averages: ``(n, 3)`` per-measurement acceleration averages in g
            for one sensor (see ``features.measurement_offsets``).
        config: detection configuration; defaults apply when omitted.

    Returns:
        Boolean mask of shape ``(n,)``; True marks an *invalid*
        measurement to be excluded from analysis.
    """
    cfg = config or OutlierConfig()
    pts = np.atleast_2d(np.asarray(averages, dtype=np.float64))
    if pts.ndim != 2 or pts.shape[1] != 3:
        raise ValueError(f"averages must have shape (n, 3), got {pts.shape}")
    n = pts.shape[0]
    if n == 0:
        return np.zeros(0, dtype=bool)
    if n == 1:
        return np.zeros(1, dtype=bool)

    if n <= cfg.max_cluster_points:
        cluster_pts = pts
        subsampled = False
    else:
        # Uniform stride subsample preserves the trace's temporal mix of
        # regimes (a random draw would too, but stride is deterministic).
        stride = -(-n // cfg.max_cluster_points)
        cluster_pts = pts[::stride]
        subsampled = True

    result = MeanShift(bandwidth=cfg.bandwidth).fit(cluster_pts)
    main_center = result.centers[0]
    if subsampled:
        # Label every point by its nearest discovered mode.
        dists = np.linalg.norm(
            pts[:, None, :] - result.centers[None, :, :], axis=2
        )
        labels = dists.argmin(axis=1)
        invalid = labels != 0
    else:
        invalid = result.labels != 0

    # Guard against drift that stretches the main cluster: points assigned
    # to the main cluster but far from its center are still invalid.
    dist_to_main = np.linalg.norm(pts - main_center, axis=1)
    invalid |= dist_to_main > cfg.max_offset_jump * result.bandwidth
    return invalid


def stability_report(averages: np.ndarray, config: OutlierConfig | None = None) -> dict:
    """Summarize a sensor's offset stability for diagnostics dashboards.

    Returns a dict with the number of clusters found, the fraction of
    invalid measurements, and the dominant-cluster center — the quantities
    a fab operator reads off Fig. 8.
    """
    cfg = config or OutlierConfig()
    pts = np.atleast_2d(np.asarray(averages, dtype=np.float64))
    invalid = detect_invalid_measurements(pts, cfg)
    result = MeanShift(bandwidth=cfg.bandwidth).fit(pts)
    return {
        "n_measurements": int(pts.shape[0]),
        "n_clusters": result.n_clusters,
        "invalid_fraction": float(invalid.mean()) if pts.shape[0] else 0.0,
        "main_offset": result.centers[0].tolist(),
        "stable": bool(result.n_clusters == 1 and invalid.mean() < 1 - cfg.min_main_fraction),
    }
