"""Windowing and smoothing primitives.

The harmonic peak extraction procedure (Sec. IV-B) smooths the PSD over
adjacent frequency bins by convolving with a Hann window before searching
for local maxima; the preprocessing layer (Fig. 7) applies a moving average
over time to reduce measurement noise.  Both primitives live here.
"""

from __future__ import annotations

import numpy as np


def hann_window(size: int) -> np.ndarray:
    """The Hann window ``w_h(n) = 0.5 (1 - cos(2 pi n / (n_h - 1)))``.

    This is the exact formula of Sec. IV-B.  For ``size == 1`` the window
    degenerates to a single unit tap (identity smoothing).

    Args:
        size: number of taps ``n_h``; must be positive.
    """
    if size < 1:
        raise ValueError("window size must be positive")
    if size == 1:
        return np.ones(1)
    n = np.arange(size)
    return 0.5 * (1.0 - np.cos(2.0 * np.pi * n / (size - 1)))


def smooth_hann(values: np.ndarray, window_size: int) -> np.ndarray:
    """Smooth a 1-D series by normalized Hann-window convolution.

    The window is normalized to unit sum so smoothing preserves the mean
    level of the series, and the convolution uses reflected boundaries so
    the output has the same length as the input without edge attenuation.

    Args:
        values: 1-D array to smooth.
        window_size: Hann window size ``n_h``; 1 returns a copy.

    Returns:
        Smoothed array, same shape as ``values``.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError("smooth_hann expects a 1-D array")
    if window_size < 1:
        raise ValueError("window_size must be positive")
    if window_size == 1 or arr.size <= 2:
        return arr.copy()
    window = hann_window(min(window_size, arr.size))
    weight_sum = window.sum()
    if weight_sum <= 0:
        # A size-2 Hann window is all zeros; fall back to identity.
        return arr.copy()
    window = window / weight_sum
    pad = window.size // 2
    padded = np.pad(arr, pad_width=pad, mode="reflect")
    smoothed = np.convolve(padded, window, mode="same")
    return smoothed[pad : pad + arr.size]


def smooth_hann_batch(rows: np.ndarray, window_size: int) -> np.ndarray:
    """Row-wise :func:`smooth_hann` over a ``(n, K)`` matrix.

    All rows are reflect-padded in one 2-D pad, then each row runs
    through the *same* ``np.convolve`` call as the scalar path — so the
    result is bit-identical to calling :func:`smooth_hann` per row by
    construction (the batched analysis runtime relies on this to keep
    exact parity with the scalar reference pipeline).  Per-row convolve
    beats a single guard-separated flat convolution here: ``correlate``
    on the flat layout pays for the guard gaps and loses cache locality,
    measuring ~2x slower than the loop at fleet scale.

    Args:
        rows: 2-D array of series to smooth, one per row.
        window_size: Hann window size ``n_h``; 1 returns a copy.

    Returns:
        Smoothed array, same shape as ``rows``.
    """
    arr = np.asarray(rows, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("smooth_hann_batch expects a 2-D array")
    if window_size < 1:
        raise ValueError("window_size must be positive")
    n, k = arr.shape
    if n == 0 or window_size == 1 or k <= 2:
        return arr.copy()
    window = hann_window(min(window_size, k))
    weight_sum = window.sum()
    if weight_sum <= 0:
        return arr.copy()
    window = window / weight_sum
    pad = window.size // 2
    padded = np.pad(arr, ((0, 0), (pad, pad)), mode="reflect")
    out = np.empty_like(arr)
    for i in range(n):
        out[i] = np.convolve(padded[i], window, mode="same")[pad : pad + k]
    return out


def moving_average(values: np.ndarray, window: int) -> np.ndarray:
    """Trailing moving average along axis 0 with a growing warm-up window.

    Used by the preprocessing layer to denoise per-measurement scalar
    series (e.g. the peak harmonic distance over time) with a user-defined
    time window.  The first ``window - 1`` outputs average over all points
    seen so far, so the output never references future data and has no NaN
    prefix.

    Args:
        values: 1-D or 2-D array; averaging runs along axis 0.
        window: number of trailing points to average; must be positive.
    """
    arr = np.asarray(values, dtype=np.float64)
    if window < 1:
        raise ValueError("window must be positive")
    if arr.shape[0] == 0:
        return arr.copy()
    cumsum = np.cumsum(arr, axis=0)
    out = np.empty_like(cumsum)
    n = arr.shape[0]
    eff = np.minimum(np.arange(1, n + 1), window)
    out[:window] = cumsum[:window]
    if n > window:
        out[window:] = cumsum[window:] - cumsum[:-window]
    denom = eff if arr.ndim == 1 else eff[:, None]
    return out / denom
