"""Zone classification from scalar degradation features (Sec. IV-C, Figs. 11-14).

The paper classifies each measurement into ISO-style health zones using a
single scalar feature: the peak harmonic distance ``D_a`` from a healthy
(Zone A) exemplar.  Because ``D_a`` grows monotonically with degradation,
classification reduces to learning thresholds between adjacent zones that
minimize empirical error.  The same threshold machinery is reused for the
baseline feature metrics of Figs. 12–14 (Euclidean distance, Mahalanobis
distance, and raw temperature), which makes the comparison apples-to-apples:
only the feature changes.

Zones follow Sec. V-A: ``A`` (healthy), ``BC`` (caution; the paper merges
B and C for labeling) and ``D`` (hazard).
"""

from __future__ import annotations

import numpy as np

from repro.core.distance import MahalanobisMetric, peak_harmonic_distance
from repro.core.kde import min_error_threshold
from repro.core.peaks import (
    DEFAULT_NUM_PEAKS,
    DEFAULT_WINDOW_SIZE,
    HarmonicPeaks,
    extract_harmonic_peaks,
)

ZONE_A = "A"
ZONE_BC = "BC"
ZONE_D = "D"
ZONES = (ZONE_A, ZONE_BC, ZONE_D)


class OrderedThresholdClassifier:
    """Multi-class classifier over a scalar feature with ordered classes.

    For classes ``c_0 < c_1 < ... < c_k`` in feature order, a boundary is
    learned between every adjacent pair by minimizing empirical
    misclassification error; prediction is a simple digitization of the
    feature value against the boundaries.
    """

    def __init__(self, classes: tuple[str, ...] = ZONES):
        if len(classes) < 2:
            raise ValueError("need at least two classes")
        if len(set(classes)) != len(classes):
            raise ValueError("classes must be unique")
        self.classes = tuple(classes)
        self.thresholds_: np.ndarray | None = None

    def fit(self, values: np.ndarray, labels: np.ndarray) -> "OrderedThresholdClassifier":
        """Learn inter-class boundaries from labelled scalar features.

        Args:
            values: scalar feature per training sample.
            labels: class label per training sample; every configured
                class must appear at least once.
        """
        vals = np.asarray(values, dtype=np.float64).ravel()
        labs = np.asarray(labels)
        if vals.shape[0] != labs.shape[0]:
            raise ValueError("values and labels must have equal length")
        groups = {}
        for cls in self.classes:
            member_vals = vals[labs == cls]
            if member_vals.size == 0:
                raise ValueError(f"no training samples for class {cls!r}")
            groups[cls] = member_vals
        thresholds = [
            min_error_threshold(groups[lo], groups[hi])
            for lo, hi in zip(self.classes[:-1], self.classes[1:])
        ]
        # Pathological label noise can invert adjacent boundaries; the
        # class order is structural, so enforce monotone thresholds (an
        # inverted pair collapses to the same cut point).
        self.thresholds_ = np.maximum.accumulate(
            np.asarray(thresholds, dtype=np.float64)
        )
        return self

    def predict(self, values: np.ndarray) -> np.ndarray:
        """Predict a class label per scalar feature value."""
        if self.thresholds_ is None:
            raise RuntimeError("classifier is not fitted")
        vals = np.atleast_1d(np.asarray(values, dtype=np.float64))
        idx = np.searchsorted(self.thresholds_, vals, side="left")
        classes = np.asarray(self.classes, dtype=object)
        return classes[idx]


class PeakHarmonicFeature:
    """The paper's ``D_a`` feature: peak harmonic distance from Zone A.

    The Zone A exemplar is the harmonic peak feature of the *mean PSD* of
    the healthy training samples, which is more stable than any single
    measurement (joint smoothing over time and frequency, as Sec. IV-B
    recommends).
    """

    def __init__(
        self,
        num_peaks: int = DEFAULT_NUM_PEAKS,
        window_size: int = DEFAULT_WINDOW_SIZE,
    ):
        self.num_peaks = num_peaks
        self.window_size = window_size
        self.baseline_: HarmonicPeaks | None = None

    def fit(self, reference_psds: np.ndarray, frequencies: np.ndarray) -> "PeakHarmonicFeature":
        """Build the Zone A baseline from reference PSD rows ``(n, K)``."""
        ref = np.atleast_2d(np.asarray(reference_psds, dtype=np.float64))
        if ref.shape[0] == 0:
            raise ValueError("at least one reference PSD is required")
        mean_psd = ref.mean(axis=0)
        self.baseline_ = extract_harmonic_peaks(
            mean_psd, frequencies, num_peaks=self.num_peaks, window_size=self.window_size
        )
        return self

    def score(self, psd: np.ndarray, frequencies: np.ndarray) -> float:
        """``D_a`` of one PSD vector from the fitted Zone A baseline."""
        if self.baseline_ is None:
            raise RuntimeError("feature is not fitted")
        peaks = extract_harmonic_peaks(
            psd, frequencies, num_peaks=self.num_peaks, window_size=self.window_size
        )
        return peak_harmonic_distance(peaks, self.baseline_)

    def score_many(self, psds: np.ndarray, frequencies: np.ndarray) -> np.ndarray:
        """Vectorized ``score`` over PSD rows ``(n, K)``."""
        rows = np.atleast_2d(np.asarray(psds, dtype=np.float64))
        return np.asarray([self.score(row, frequencies) for row in rows])


class EuclideanFeature:
    """Baseline feature: Euclidean distance of the PSD from the Zone A mean."""

    def __init__(self) -> None:
        self.baseline_: np.ndarray | None = None

    def fit(self, reference_psds: np.ndarray, frequencies: np.ndarray) -> "EuclideanFeature":
        ref = np.atleast_2d(np.asarray(reference_psds, dtype=np.float64))
        if ref.shape[0] == 0:
            raise ValueError("at least one reference PSD is required")
        self.baseline_ = ref.mean(axis=0)
        return self

    def score(self, psd: np.ndarray, frequencies: np.ndarray) -> float:
        if self.baseline_ is None:
            raise RuntimeError("feature is not fitted")
        return float(np.linalg.norm(np.asarray(psd, dtype=np.float64) - self.baseline_))

    def score_many(self, psds: np.ndarray, frequencies: np.ndarray) -> np.ndarray:
        rows = np.atleast_2d(np.asarray(psds, dtype=np.float64))
        return np.asarray([self.score(row, frequencies) for row in rows])


class MahalanobisFeature:
    """Baseline feature: Mahalanobis distance from the Zone A distribution."""

    def __init__(self, shrinkage: float = 0.5):
        self.shrinkage = shrinkage
        self.metric_: MahalanobisMetric | None = None

    def fit(self, reference_psds: np.ndarray, frequencies: np.ndarray) -> "MahalanobisFeature":
        self.metric_ = MahalanobisMetric(reference_psds, shrinkage=self.shrinkage)
        return self

    def score(self, psd: np.ndarray, frequencies: np.ndarray) -> float:
        if self.metric_ is None:
            raise RuntimeError("feature is not fitted")
        return self.metric_.distance(psd)

    def score_many(self, psds: np.ndarray, frequencies: np.ndarray) -> np.ndarray:
        if self.metric_ is None:
            raise RuntimeError("feature is not fitted")
        return self.metric_.distance_many(np.atleast_2d(np.asarray(psds)))


class ZoneClassifier:
    """End-to-end zone classifier: a scalar feature + ordered thresholds.

    This is the paper's Peak Harmonic Distance Classification algorithm
    when constructed with the default feature, and each Figs. 12–14
    baseline when constructed with the corresponding feature object.
    """

    def __init__(self, feature=None, classes: tuple[str, ...] = ZONES):
        self.feature = feature if feature is not None else PeakHarmonicFeature()
        self.classifier = OrderedThresholdClassifier(classes)
        self.reference_class = classes[0]

    def fit(
        self,
        psds: np.ndarray,
        labels: np.ndarray,
        frequencies: np.ndarray,
    ) -> "ZoneClassifier":
        """Fit the feature baseline and the zone thresholds.

        Args:
            psds: training PSD rows ``(n, K)``.
            labels: zone label per row.
            frequencies: PSD bin frequencies ``(K,)``.
        """
        rows = np.atleast_2d(np.asarray(psds, dtype=np.float64))
        labs = np.asarray(labels)
        reference = rows[labs == self.reference_class]
        if reference.shape[0] == 0:
            raise ValueError(f"no {self.reference_class!r} samples to build the baseline")
        self.feature.fit(reference, frequencies)
        scores = self.feature.score_many(rows, frequencies)
        self.classifier.fit(scores, labs)
        return self

    def decision_scores(self, psds: np.ndarray, frequencies: np.ndarray) -> np.ndarray:
        """Scalar feature value (e.g. ``D_a``) per PSD row."""
        return self.feature.score_many(psds, frequencies)

    def predict(self, psds: np.ndarray, frequencies: np.ndarray) -> np.ndarray:
        """Predict the zone label per PSD row."""
        return self.classifier.predict(self.decision_scores(psds, frequencies))

    @property
    def thresholds_(self) -> np.ndarray | None:
        return self.classifier.thresholds_
