"""Distance metrics between vibration features.

The paper's key metric is the *peak harmonic distance* (Algorithm 1): an
approximation of the Euclidean distance between two harmonic peak features
that first aligns peaks by frequency, accumulates the Euclidean distance of
matched ``(frequency, value)`` pairs, and charges unmatched peaks their full
magnitude.  Because frequencies are normalized by the global maximum before
matching, a disagreement at a high frequency costs more than the same
disagreement at a low frequency — deliberately, since degrading equipment
gives off high-frequency noise.

Two baseline metrics used in the paper's comparison (Figs. 12–14) are also
provided: plain Euclidean distance between PSD vectors and the Mahalanobis
distance with a covariance estimated from reference (Zone A) samples.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

import numpy as np
from scipy.linalg import solve_triangular

from repro.core.peaks import DEFAULT_WINDOW_SIZE, HarmonicPeaks


def peak_harmonic_distance(
    peaks_i: HarmonicPeaks,
    peaks_j: HarmonicPeaks,
    match_tolerance_hz: float = float(DEFAULT_WINDOW_SIZE),
) -> float:
    """Peak harmonic distance ``D_ij`` between two peak features (Algorithm 1).

    Both features are normalized by the shared maxima ``p_max`` and
    ``f_max`` so the result is scale free.  For every peak of ``peaks_i``
    the closest peak of ``peaks_j`` (by frequency, via binary search) is
    located; if the physical frequency gap is below ``match_tolerance_hz``
    (the paper reuses the Hann window size ``n_h`` here) the pair
    contributes the Euclidean distance between the two normalized
    ``(f, p)`` points and the matched peak is consumed, otherwise the
    unmatched peak contributes its own normalized magnitude.  Peaks of
    ``peaks_j`` left unconsumed contribute their normalized amplitudes, so
    the metric is symmetric in spirit: extra energy on either side is
    penalized.

    Exact symmetry holds when every peak pairs up (same peak count, each
    within the match tolerance of its partner) — the property tests pin
    this down — but not in general: following the paper's Algorithm 1, an
    unmatched ``peaks_i`` peak is charged its full normalized ``(f, p)``
    magnitude while an unmatched ``peaks_j`` peak is charged its
    amplitude only, and the greedy matching itself is order-dependent
    when several peaks compete for the same partner.

    Args:
        peaks_i: first harmonic peak feature.
        peaks_j: second harmonic peak feature (typically the Zone A
            exemplar when computing ``D_a``).
        match_tolerance_hz: maximum physical frequency gap for two peaks to
            be considered the same harmonic.

    Returns:
        Non-negative dissimilarity; 0.0 when both features are empty or
        identical.
    """
    if match_tolerance_hz <= 0:
        raise ValueError("match_tolerance_hz must be positive")
    n_i, n_j = len(peaks_i), len(peaks_j)
    if n_i == 0 and n_j == 0:
        return 0.0

    p_max = max(peaks_i.max_value, peaks_j.max_value)
    f_max = max(peaks_i.max_frequency, peaks_j.max_frequency)
    if p_max <= 0:
        p_max = 1.0
    if f_max <= 0:
        f_max = 1.0

    fi = peaks_i.frequencies / f_max
    pi = peaks_i.values / p_max
    fj = peaks_j.frequencies / f_max
    pj = peaks_j.values / p_max

    # The matching loop runs on native floats (list indexing + bisect)
    # purely for speed — every arithmetic operation, including np.hypot,
    # sees the same IEEE doubles as an ndarray version would, so the
    # result is bit-identical.
    fi_l, pi_l = fi.tolist(), pi.tolist()
    fj_l, pj_l = fj.tolist(), pj.tolist()

    consumed = np.zeros(n_j, dtype=bool)
    consumed_l = consumed.tolist()
    total = 0.0
    count = 0
    for idx in range(n_i):
        f = fi_l[idx]
        j_star = _nearest_unconsumed(fj_l, consumed_l, f)
        if j_star >= 0 and abs(f - fj_l[j_star]) * f_max < match_tolerance_hz:
            gap = np.hypot(f - fj_l[j_star], pi_l[idx] - pj_l[j_star])
            consumed[j_star] = True
            consumed_l[j_star] = True
        else:
            gap = float(np.hypot(f, pi_l[idx]))
        total += gap
        count += 1

    residual = pj[~consumed]
    total += float(residual.sum())
    count += int(residual.size)
    if count == 0:
        return 0.0
    return total / count


@dataclass(frozen=True)
class PackedPeaks:
    """A batch of harmonic peak features packed into padded matrices.

    Ragged per-measurement peak sets are stored as fixed-width rows so the
    batched Algorithm 1 kernel can run whole-fleet vectorized passes.
    Row ``i`` holds feature ``i``'s peaks in its first ``counts[i]``
    columns (increasing frequency order, like :class:`HarmonicPeaks`);
    the padding columns hold zeros and are never read through a valid
    index.

    Attributes:
        frequencies: ``(N, P)`` peak frequencies in Hz, zero-padded.
        values: ``(N, P)`` peak amplitudes, zero-padded, aligned with
            ``frequencies``.
        counts: ``(N,)`` number of real peaks per row.
    """

    frequencies: np.ndarray
    values: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        freqs = np.asarray(self.frequencies, dtype=np.float64)
        vals = np.asarray(self.values, dtype=np.float64)
        counts = np.asarray(self.counts, dtype=np.intp)
        if freqs.ndim != 2 or freqs.shape != vals.shape:
            raise ValueError("frequencies and values must be equal-shape 2-D arrays")
        if counts.shape != (freqs.shape[0],):
            raise ValueError("counts must have one entry per row")
        if counts.size and (counts.min() < 0 or counts.max() > freqs.shape[1]):
            raise ValueError("counts must lie in [0, P]")
        object.__setattr__(self, "frequencies", freqs)
        object.__setattr__(self, "values", vals)
        object.__setattr__(self, "counts", counts)

    def __len__(self) -> int:
        return int(self.counts.shape[0])

    @property
    def valid(self) -> np.ndarray:
        """``(N, P)`` boolean mask of real (non-padding) peak slots."""
        width = self.frequencies.shape[1]
        return np.arange(width)[None, :] < self.counts[:, None]

    def row(self, i: int) -> HarmonicPeaks:
        """Unpack one row back into a :class:`HarmonicPeaks` feature."""
        n = int(self.counts[i])
        return HarmonicPeaks(self.frequencies[i, :n].copy(), self.values[i, :n].copy())


def pack_peaks(peaks_list: list[HarmonicPeaks]) -> PackedPeaks:
    """Pack ragged peak features into padded ``(N, P)`` matrices.

    ``P`` is the widest feature in the batch (0 rows pack to width 0).
    """
    counts = np.asarray([len(p) for p in peaks_list], dtype=np.intp)
    width = int(counts.max()) if counts.size else 0
    freqs = np.zeros((len(peaks_list), width))
    vals = np.zeros((len(peaks_list), width))
    for i, peaks in enumerate(peaks_list):
        n = counts[i]
        freqs[i, :n] = peaks.frequencies
        vals[i, :n] = peaks.values
    return PackedPeaks(freqs, vals, counts)


def packed_harmonic_distances(
    packed: PackedPeaks,
    reference: HarmonicPeaks,
    match_tolerance_hz: float = float(DEFAULT_WINDOW_SIZE),
) -> np.ndarray:
    """Batched Algorithm 1: ``D_a`` of every packed row from ``reference``.

    Bit-identical to ``[peak_harmonic_distance(row, reference) for row in
    rows]`` — the contract the runtime parity and property tests enforce —
    but computed in vectorized passes over the whole batch:

    * per-row normalization maxima come from masked reductions;
    * the greedy nearest-unconsumed matching loops over *peak rank* only
      (at most ``P`` iterations): each iteration resolves the ``k``-th
      peak of every row at once, replicating the scalar search's
      bisect-and-expand choice (nearest unconsumed neighbour on each
      side, left wins ties) with index arithmetic on an ``(N, n_j)``
      consumed mask;
    * unmatched-exemplar residuals are compacted per row and summed in
      groups of equal residual count, so every row's residual sees the
      same pairwise-summation tree as the scalar path's
      ``residual.sum()``.

    Args:
        packed: packed peak features (one row per measurement).
        reference: the shared exemplar feature.
        match_tolerance_hz: maximum physical frequency gap for a match.

    Returns:
        ``(N,)`` float64 distances aligned with the packed rows.
    """
    if match_tolerance_hz <= 0:
        raise ValueError("match_tolerance_hz must be positive")
    n_rows = len(packed)
    if n_rows == 0:
        return np.empty(0)
    n_j = len(reference)
    counts = packed.counts
    valid = packed.valid

    # Per-row shared maxima, exactly as the scalar path computes them:
    # max over each feature's own peaks (0.0 when empty), combined with
    # the reference maxima, clamped to 1.0 when non-positive.
    if packed.frequencies.shape[1]:
        row_fmax = np.where(valid, packed.frequencies, -np.inf).max(axis=1)
        row_pmax = np.where(valid, packed.values, -np.inf).max(axis=1)
        row_fmax = np.where(counts > 0, row_fmax, 0.0)
        row_pmax = np.where(counts > 0, row_pmax, 0.0)
    else:
        row_fmax = np.zeros(n_rows)
        row_pmax = np.zeros(n_rows)
    p_max = np.maximum(row_pmax, reference.max_value)
    f_max = np.maximum(row_fmax, reference.max_frequency)
    p_max = np.where(p_max <= 0, 1.0, p_max)
    f_max = np.where(f_max <= 0, 1.0, f_max)

    fi = packed.frequencies / f_max[:, None]
    pi = packed.values / p_max[:, None]
    fj = reference.frequencies[None, :] / f_max[:, None]
    pj = reference.values[None, :] / p_max[:, None]

    consumed = np.zeros((n_rows, n_j), dtype=bool)
    total = np.zeros(n_rows)
    col = np.arange(n_j)
    max_rank = int(counts.max()) if counts.size else 0
    for k in range(max_rank):
        act = counts > k
        f = fi[:, k]
        p = pi[:, k]
        if n_j:
            # bisect_left on the sorted normalized exemplar row.
            pos = (fj < f[:, None]).sum(axis=1)
            free = ~consumed
            # Nearest unconsumed neighbour on each side of the insertion
            # point: the largest free index below it, the smallest at or
            # above it — the exact pair the scalar expand-outward scan
            # stops at.
            left_idx = np.where(free & (col[None, :] < pos[:, None]), col, -1).max(axis=1)
            right_idx = np.where(free & (col[None, :] >= pos[:, None]), col, n_j).min(axis=1)
            has_left = left_idx >= 0
            has_right = right_idx < n_j
            fj_left = np.take_along_axis(
                fj, np.maximum(left_idx, 0)[:, None], axis=1
            )[:, 0]
            fj_right = np.take_along_axis(
                fj, np.minimum(right_idx, n_j - 1)[:, None], axis=1
            )[:, 0]
            gap_left = np.where(has_left, np.abs(f - fj_left), np.inf)
            gap_right = np.where(has_right, np.abs(f - fj_right), np.inf)
            # The scalar scan visits the left candidate first and only
            # lets the right one replace it on a strictly smaller gap.
            use_left = has_left & (~has_right | ~(gap_right < gap_left))
            j_star = np.where(use_left, left_idx, right_idx)
            has_any = has_left | has_right
            j_safe = np.clip(j_star, 0, n_j - 1)[:, None]
            fj_star = np.take_along_axis(fj, j_safe, axis=1)[:, 0]
            pj_star = np.take_along_axis(pj, j_safe, axis=1)[:, 0]
            matched = act & has_any & (np.abs(f - fj_star) * f_max < match_tolerance_hz)
            gap = np.where(
                matched,
                np.hypot(f - fj_star, p - pj_star),
                np.hypot(f, p),
            )
            rows_hit = np.nonzero(matched)[0]
            consumed[rows_hit, j_star[rows_hit]] = True
        else:
            gap = np.hypot(f, p)
        total[act] += gap[act]

    # Residual: unconsumed exemplar peaks charged their normalized
    # amplitude.  Rows are compacted (stable order) and summed grouped by
    # residual length so each group's np.sum reduction is bit-identical
    # to the scalar path's sum over the same compacted 1-D array.
    if n_j:
        unconsumed = ~consumed
        residual_counts = unconsumed.sum(axis=1)
        if residual_counts.any():
            order = np.argsort(consumed, axis=1, kind="stable")
            compact_pj = np.take_along_axis(pj, order, axis=1)
            for m in np.unique(residual_counts):
                if m == 0:
                    continue
                rows_m = residual_counts == m
                total[rows_m] += compact_pj[rows_m, :m].sum(axis=1)
    else:
        residual_counts = np.zeros(n_rows, dtype=np.intp)

    denom = counts + residual_counts
    out = np.zeros(n_rows)
    np.divide(total, denom, out=out, where=denom > 0)
    return out


def peak_harmonic_distances(
    peaks_list: list[HarmonicPeaks],
    reference: HarmonicPeaks,
    match_tolerance_hz: float = float(DEFAULT_WINDOW_SIZE),
) -> np.ndarray:
    """``D_a`` of every feature in ``peaks_list`` from a shared reference.

    Semantically ``[peak_harmonic_distance(p, reference) for p in
    peaks_list]`` and bit-identical to that loop, but executed through
    the padded-array kernel (:func:`packed_harmonic_distances`) so the
    whole batch runs in vectorized numpy passes — the single entry point
    batched callers and the memoization layer wrap.

    Args:
        peaks_list: harmonic peak features, one per measurement.
        reference: the shared exemplar (typically the Zone A baseline).
        match_tolerance_hz: forwarded to :func:`peak_harmonic_distance`.

    Returns:
        Float array of distances aligned with ``peaks_list``.
    """
    return packed_harmonic_distances(
        pack_peaks(peaks_list), reference, match_tolerance_hz=match_tolerance_hz
    )


def _nearest_unconsumed(
    sorted_freqs: list[float], consumed: list[bool], target: float
) -> int:
    """Index of the unconsumed frequency nearest to ``target``, or -1.

    ``sorted_freqs`` is increasing (guaranteed by HarmonicPeaks), so a
    binary search locates the insertion point and the nearest unconsumed
    neighbour is found by expanding left/right from it.
    """
    n = len(sorted_freqs)
    if n == 0 or all(consumed):
        return -1
    pos = bisect_left(sorted_freqs, target)
    left = pos - 1
    right = pos
    best = -1
    best_gap = float("inf")
    while left >= 0 or right < n:
        if left >= 0:
            if not consumed[left]:
                gap = abs(sorted_freqs[left] - target)
                if gap < best_gap:
                    best, best_gap = left, gap
                left = -1  # nearest unconsumed on the left found
            else:
                left -= 1
        if right < n:
            if not consumed[right]:
                gap = abs(sorted_freqs[right] - target)
                if gap < best_gap:
                    best, best_gap = right, gap
                right = n  # nearest unconsumed on the right found
            else:
                right += 1
    return best


def euclidean_distance(vec_a: np.ndarray, vec_b: np.ndarray) -> float:
    """Plain Euclidean distance between two equal-length feature vectors."""
    a = np.asarray(vec_a, dtype=np.float64)
    b = np.asarray(vec_b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.linalg.norm(a - b))


class MahalanobisMetric:
    """Mahalanobis distance with covariance learned from reference samples.

    With 1024-dimensional PSD vectors and a handful of training samples the
    sample covariance is singular, so a shrinkage regularizer blends it
    with its diagonal; this mirrors the practical difficulty the paper
    points out for raw-PSD metrics.
    """

    def __init__(self, reference: np.ndarray, shrinkage: float = 0.1):
        """Fit the metric.

        Args:
            reference: ``(n, d)`` reference sample matrix (Zone A PSDs).
            shrinkage: blend factor in [0, 1] toward the diagonal of the
                sample covariance; higher is more regularized.
        """
        ref = np.atleast_2d(np.asarray(reference, dtype=np.float64))
        if ref.shape[0] < 1:
            raise ValueError("at least one reference sample is required")
        if not 0.0 <= shrinkage <= 1.0:
            raise ValueError("shrinkage must be in [0, 1]")
        self.mean_ = ref.mean(axis=0)
        dim = ref.shape[1]
        if ref.shape[0] == 1:
            cov = np.eye(dim)
        else:
            cov = np.cov(ref, rowvar=False)
            cov = np.atleast_2d(cov)
        diag = np.diag(np.clip(np.diag(cov), 1e-12, None))
        cov = (1.0 - shrinkage) * cov + shrinkage * diag
        cov += 1e-9 * np.trace(cov) / dim * np.eye(dim)
        self._chol = np.linalg.cholesky(cov)

    def distance(self, vec: np.ndarray) -> float:
        """Mahalanobis distance of ``vec`` from the reference mean."""
        return float(self.distance_many(np.asarray(vec)[None, :])[0])

    def distance_many(self, vecs: np.ndarray) -> np.ndarray:
        """Vectorized distances for rows of ``vecs`` (one triangular solve)."""
        matrix = np.atleast_2d(np.asarray(vecs, dtype=np.float64))
        if matrix.shape[1] != self.mean_.shape[0]:
            raise ValueError(
                f"shape mismatch: {matrix.shape[1]} vs {self.mean_.shape[0]}"
            )
        deltas = matrix - self.mean_[None, :]
        solved = solve_triangular(self._chol, deltas.T, lower=True)
        return np.linalg.norm(solved, axis=0)


def mahalanobis_distance(vec: np.ndarray, reference: np.ndarray, shrinkage: float = 0.1) -> float:
    """One-shot Mahalanobis distance of ``vec`` from ``reference`` samples."""
    return MahalanobisMetric(reference, shrinkage=shrinkage).distance(vec)
