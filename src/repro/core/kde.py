"""One-dimensional Gaussian kernel density estimation and threshold learning.

Fig. 11 of the paper estimates ``P(D_a | zone)`` for zones A, BC and D with
Gaussian kernel densities and picks the decision boundary between Zone D and
the rest that minimizes misclassification error (the paper reports a
boundary of 0.21 on its data).  scikit-learn is not available offline, so a
compact, fully tested KDE lives here.
"""

from __future__ import annotations

import numpy as np


class GaussianKDE1D:
    """Gaussian kernel density estimator over scalar samples.

    The bandwidth defaults to Silverman's rule of thumb
    ``0.9 * min(std, IQR/1.34) * n^(-1/5)``, floored at a small positive
    value so degenerate (constant) samples still yield a proper density.
    """

    def __init__(self, samples: np.ndarray, bandwidth: float | None = None):
        data = np.asarray(samples, dtype=np.float64).ravel()
        if data.size == 0:
            raise ValueError("KDE requires at least one sample")
        if not np.all(np.isfinite(data)):
            raise ValueError("KDE samples must be finite")
        self.samples_ = data
        if bandwidth is None:
            bandwidth = self._silverman_bandwidth(data)
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth_ = float(bandwidth)

    @staticmethod
    def _silverman_bandwidth(data: np.ndarray) -> float:
        n = data.size
        std = float(data.std(ddof=1)) if n > 1 else 0.0
        if n > 1:
            q75, q25 = np.percentile(data, [75, 25])
            iqr = float(q75 - q25)
        else:
            iqr = 0.0
        spread_candidates = [s for s in (std, iqr / 1.34) if s > 0]
        spread = min(spread_candidates) if spread_candidates else 0.0
        if spread <= 0:
            scale = max(abs(float(data.mean())), 1.0)
            return 0.01 * scale
        return 0.9 * spread * n ** (-0.2)

    def pdf(self, points: np.ndarray | float) -> np.ndarray:
        """Density evaluated at ``points`` (scalar or array)."""
        x = np.atleast_1d(np.asarray(points, dtype=np.float64))
        z = (x[:, None] - self.samples_[None, :]) / self.bandwidth_
        # Beyond ~39 sigma the kernel underflows to exactly 0; clipping
        # avoids a spurious overflow warning in the squaring.
        z = np.clip(z, -40.0, 40.0)
        dens = np.exp(-0.5 * z**2).sum(axis=1)
        dens /= self.samples_.size * self.bandwidth_ * np.sqrt(2.0 * np.pi)
        return dens

    def __call__(self, points: np.ndarray | float) -> np.ndarray:
        return self.pdf(points)


def min_error_threshold(
    lower_class: np.ndarray,
    upper_class: np.ndarray,
    num_candidates: int = 512,
) -> float:
    """Scalar threshold separating two classes with minimum empirical error.

    ``lower_class`` samples are expected (mostly) below the threshold and
    ``upper_class`` samples above it.  Candidate thresholds are scanned on
    a uniform grid spanning both sample sets plus all sample midpoints'
    range; the threshold minimizing the total count of misclassified
    samples is returned, with ties broken toward the midpoint of the
    optimal plateau for stability.

    This is the paper's boundary-learning rule ("chosen to minimize the
    error of wrongly classifying records in zone C and zone D").

    Args:
        lower_class: samples of the class below the boundary.
        upper_class: samples of the class above the boundary.
        num_candidates: grid resolution for the scan.

    Returns:
        The learned threshold; classify ``value >= threshold`` as the
        upper class.
    """
    lo_samples = np.asarray(lower_class, dtype=np.float64).ravel()
    hi_samples = np.asarray(upper_class, dtype=np.float64).ravel()
    if lo_samples.size == 0 or hi_samples.size == 0:
        raise ValueError("both classes need at least one sample")
    all_vals = np.concatenate([lo_samples, hi_samples])
    lo, hi = float(all_vals.min()), float(all_vals.max())
    if lo == hi:
        return lo
    candidates = np.linspace(lo, hi, num_candidates)
    # errors(t) = #lower >= t  +  #upper < t
    lower_sorted = np.sort(lo_samples)
    upper_sorted = np.sort(hi_samples)
    lower_wrong = lo_samples.size - np.searchsorted(lower_sorted, candidates, side="left")
    upper_wrong = np.searchsorted(upper_sorted, candidates, side="left")
    errors = lower_wrong + upper_wrong
    best = errors.min()
    optimal = candidates[errors == best]
    return float(optimal.mean())
