"""One-dimensional Gaussian kernel density estimation and threshold learning.

Fig. 11 of the paper estimates ``P(D_a | zone)`` for zones A, BC and D with
Gaussian kernel densities and picks the decision boundary between Zone D and
the rest that minimizes misclassification error (the paper reports a
boundary of 0.21 on its data).  scikit-learn is not available offline, so a
compact, fully tested KDE lives here.
"""

from __future__ import annotations

import numpy as np

#: float64 elements per tiled (points × samples) block in :meth:`pdf`
#: (~2 MiB): peak memory stays bounded no matter how many evaluation
#: points a fleet-scale caller passes, while each tile still amortizes
#: numpy dispatch.  Rows (evaluation points) are never split, so each
#: row's kernel sum keeps the exact reduction order of the untiled code
#: and densities are bit-identical.
KDE_TILE_ELEMENTS = 1 << 18


class GaussianKDE1D:
    """Gaussian kernel density estimator over scalar samples.

    The bandwidth defaults to Silverman's rule of thumb
    ``0.9 * min(std, IQR/1.34) * n^(-1/5)``, floored at a small positive
    value so degenerate (constant) samples still yield a proper density.
    """

    def __init__(self, samples: np.ndarray, bandwidth: float | None = None):
        data = np.asarray(samples, dtype=np.float64).ravel()
        if data.size == 0:
            raise ValueError("KDE requires at least one sample")
        if not np.all(np.isfinite(data)):
            raise ValueError("KDE samples must be finite")
        self.samples_ = data
        if bandwidth is None:
            bandwidth = self._silverman_bandwidth(data)
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth_ = float(bandwidth)

    @staticmethod
    def _silverman_bandwidth(data: np.ndarray) -> float:
        n = data.size
        std = float(data.std(ddof=1)) if n > 1 else 0.0
        if n > 1:
            q75, q25 = np.percentile(data, [75, 25])
            iqr = float(q75 - q25)
        else:
            iqr = 0.0
        spread_candidates = [s for s in (std, iqr / 1.34) if s > 0]
        spread = min(spread_candidates) if spread_candidates else 0.0
        if spread <= 0:
            scale = max(abs(float(data.mean())), 1.0)
            return 0.01 * scale
        return 0.9 * spread * n ** (-0.2)

    def pdf(self, points: np.ndarray | float) -> np.ndarray:
        """Density evaluated at ``points`` (scalar or array).

        The (points × samples) kernel matrix is walked in row tiles of at
        most :data:`KDE_TILE_ELEMENTS` elements through one scratch
        buffer, so evaluating a dense grid against a large fleet sample
        never materializes the full outer product.
        """
        x = np.atleast_1d(np.asarray(points, dtype=np.float64))
        samples = self.samples_
        n = samples.size
        dens = np.empty(x.size)
        rows = max(1, KDE_TILE_ELEMENTS // max(1, n))
        buf = np.empty((min(rows, max(1, x.size)), n))
        for lo in range(0, x.size, rows):
            block = x[lo : lo + rows]
            b = buf[: block.size]
            np.subtract(block[:, None], samples[None, :], out=b)
            b /= self.bandwidth_
            # Beyond ~39 sigma the kernel underflows to exactly 0;
            # clipping avoids a spurious overflow warning in the squaring.
            np.clip(b, -40.0, 40.0, out=b)
            np.multiply(b, b, out=b)
            b *= -0.5
            np.exp(b, out=b)
            dens[lo : lo + block.size] = b.sum(axis=1)
        dens /= n * self.bandwidth_ * np.sqrt(2.0 * np.pi)
        return dens

    def __call__(self, points: np.ndarray | float) -> np.ndarray:
        return self.pdf(points)


def min_error_threshold(
    lower_class: np.ndarray,
    upper_class: np.ndarray,
    num_candidates: int = 512,
) -> float:
    """Scalar threshold separating two classes with minimum empirical error.

    ``lower_class`` samples are expected (mostly) below the threshold and
    ``upper_class`` samples above it.  The empirical error
    ``errors(t) = #lower >= t + #upper < t`` is a step function that only
    changes at sample values, so scanning every distinct sample value
    *and* every midpoint between consecutive distinct values covers every
    level the function takes on ``[min, max]`` — the returned threshold
    achieves the exact global minimum (a uniform grid, used previously,
    could step over the true minimum between grid points).  Ties are
    broken toward the midpoint of the widest contiguous optimal plateau
    for stability (earliest plateau on equal widths).

    This is the paper's boundary-learning rule ("chosen to minimize the
    error of wrongly classifying records in zone C and zone D").

    Args:
        lower_class: samples of the class below the boundary.
        upper_class: samples of the class above the boundary.
        num_candidates: ignored; kept for backward compatibility.  The
            scan is exact over sample midpoints and needs no resolution
            knob.

    Returns:
        The learned threshold; classify ``value >= threshold`` as the
        upper class.
    """
    del num_candidates
    lo_samples = np.asarray(lower_class, dtype=np.float64).ravel()
    hi_samples = np.asarray(upper_class, dtype=np.float64).ravel()
    if lo_samples.size == 0 or hi_samples.size == 0:
        raise ValueError("both classes need at least one sample")
    all_vals = np.concatenate([lo_samples, hi_samples])
    lo, hi = float(all_vals.min()), float(all_vals.max())
    if lo == hi:
        return lo

    # Candidates: distinct sample values interleaved with the midpoints
    # of consecutive distinct values.  Between two adjacent candidates
    # errors(t) is constant, so this sequence observes every value the
    # step function takes on [lo, hi].
    uniq = np.unique(all_vals)
    mids = (uniq[:-1] + uniq[1:]) / 2.0
    candidates = np.empty(uniq.size + mids.size)
    candidates[0::2] = uniq
    candidates[1::2] = mids

    # errors(t) = #lower >= t  +  #upper < t
    lower_sorted = np.sort(lo_samples)
    upper_sorted = np.sort(hi_samples)
    lower_wrong = lo_samples.size - np.searchsorted(lower_sorted, candidates, side="left")
    upper_wrong = np.searchsorted(upper_sorted, candidates, side="left")
    errors = lower_wrong + upper_wrong

    optimal = np.nonzero(errors == errors.min())[0]
    # The widest run of consecutive optimal candidates is the most stable
    # plateau; return its midpoint.  Any point inside an optimal run is
    # itself optimal (the run covers the whole interval between its
    # endpoint candidates).
    breaks = np.nonzero(np.diff(optimal) > 1)[0]
    starts = np.concatenate([[0], breaks + 1])
    ends = np.concatenate([breaks, [optimal.size - 1]])
    widths = candidates[optimal[ends]] - candidates[optimal[starts]]
    k = int(np.argmax(widths))
    return float(
        (candidates[optimal[starts[k]]] + candidates[optimal[ends[k]]]) / 2.0
    )
