"""Rule-based fault diagnosis from harmonic peak features.

The paper's fab experts label pump health by *reading the spectrum* —
this module encodes that reading as an explainable rule engine over the
harmonic peak feature, the standard analyst's decision table:

* energy concentrated at 1× rotation → imbalance;
* 2× dominating 1× → misalignment;
* a long comb of comparable rotation harmonics → mechanical looseness;
* significant energy at non-integer multiples of the rotation frequency
  (bearing defect passing frequencies) → bearing defect.

Diagnosis consumes only the :class:`~repro.core.peaks.HarmonicPeaks`
feature and the machine's nominal rotation frequency, so it slots into
the analysis pipeline after feature extraction with zero extra sensing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.peaks import HarmonicPeaks

IMBALANCE = "imbalance"
MISALIGNMENT = "misalignment"
LOOSENESS = "looseness"
BEARING_DEFECT = "bearing_defect"
HEALTHY = "healthy"


@dataclass(frozen=True)
class Diagnosis:
    """Outcome of one spectral diagnosis.

    Attributes:
        label: the winning fault class (or ``"healthy"``).
        scores: per-class evidence scores (higher = more evidence); the
            explainability surface an analyst can audit.
    """

    label: str
    scores: dict[str, float]


class SpectralDiagnoser:
    """Explainable fault classifier over harmonic peak features."""

    def __init__(
        self,
        rotation_hz: float,
        harmonic_tolerance: float = 0.25,
        healthy_margin: float = 1.6,
    ):
        """Create a diagnoser.

        Args:
            rotation_hz: nominal rotation frequency of the machine.
            harmonic_tolerance: a peak within this fraction of the
                rotation frequency of an exact multiple counts as that
                harmonic order (covers speed droop and bin quantization).
            healthy_margin: how many times the healthy baseline's 1x
                amplitude the evidence must reach before any fault is
                called.
        """
        if rotation_hz <= 0:
            raise ValueError("rotation_hz must be positive")
        if not 0 < harmonic_tolerance < 0.5:
            raise ValueError("harmonic_tolerance must be in (0, 0.5)")
        if healthy_margin <= 0:
            raise ValueError("healthy_margin must be positive")
        self.rotation_hz = rotation_hz
        self.harmonic_tolerance = harmonic_tolerance
        self.healthy_margin = healthy_margin
        self.baseline_fundamental_: float | None = None

    def fit_baseline(self, healthy_peaks: HarmonicPeaks) -> "SpectralDiagnoser":
        """Record the healthy machine's 1x amplitude as the reference."""
        amp = self._harmonic_amplitude(healthy_peaks, 1)
        self.baseline_fundamental_ = max(amp, 1e-12)
        return self

    # ------------------------------------------------------------------
    # Peak bookkeeping.
    # ------------------------------------------------------------------
    def _order_of(self, frequency: float) -> float:
        return frequency / self.rotation_hz

    def _is_harmonic(self, frequency: float) -> int | None:
        """Integer order when the frequency is a rotation harmonic."""
        order = self._order_of(frequency)
        nearest = round(order)
        if nearest >= 1 and abs(order - nearest) <= self.harmonic_tolerance:
            return int(nearest)
        return None

    def _harmonic_amplitude(self, peaks: HarmonicPeaks, order: int) -> float:
        best = 0.0
        for f, p in zip(peaks.frequencies, peaks.values):
            if self._is_harmonic(f) == order:
                best = max(best, float(p))
        return best

    # ------------------------------------------------------------------
    # Diagnosis.
    # ------------------------------------------------------------------
    def diagnose(self, peaks: HarmonicPeaks) -> Diagnosis:
        """Classify the fault carried by one harmonic peak feature.

        Raises:
            RuntimeError: when no healthy baseline has been fitted.
        """
        if self.baseline_fundamental_ is None:
            raise RuntimeError("fit_baseline() must run before diagnose()")
        if len(peaks) == 0:
            return Diagnosis(HEALTHY, {})

        baseline = self.baseline_fundamental_
        h1 = self._harmonic_amplitude(peaks, 1)
        h2 = self._harmonic_amplitude(peaks, 2)

        non_harmonic_amp = 0.0
        for f, p in zip(peaks.frequencies, peaks.values):
            if self._is_harmonic(f) is None and self._order_of(f) > 1.5:
                # Non-integer multiples above ~1.5x: bearing territory.
                non_harmonic_amp += float(p)

        # High harmonic orders (>= 4) with energy comparable to the
        # healthy fundamental: the defining comb of mechanical looseness.
        high_orders = {
            order
            for f, p in zip(peaks.frequencies, peaks.values)
            if (order := self._is_harmonic(f)) is not None
            and order >= 4
            and p > 0.3 * baseline
        }

        scores = {
            # Imbalance: 1x grossly above baseline AND dominating 2x.
            IMBALANCE: (h1 / baseline) * (h1 / max(h2, 1e-12) > 2.0),
            # Misalignment: 2x above baseline and dominating 1x.
            MISALIGNMENT: (h2 / baseline) * (h2 > 1.2 * h1),
            # Looseness: a long comb of energetic high harmonics.
            LOOSENESS: len(high_orders) / 2.0,
            # Bearing: substantial non-harmonic energy relative to baseline.
            BEARING_DEFECT: non_harmonic_amp / baseline,
        }
        best_label = max(scores, key=scores.get)
        if scores[best_label] < self.healthy_margin:
            return Diagnosis(HEALTHY, scores)
        return Diagnosis(best_label, scores)
