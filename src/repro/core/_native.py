"""Optional fused C kernel for RANSAC consensus counting.

The batched :class:`~repro.core.ransac.RANSACLineFitter` spends nearly
all of its time evaluating ``|z - (slope * x + intercept)| <= threshold``
over a (trials × N) grid.  numpy has to materialize that grid one
elementwise pass at a time (multiply, add, subtract, abs, compare, sum),
so every element crosses the memory hierarchy six times.  A fused loop
touches each element once, which on a single core is worth ~8-10x.

This module compiles that loop from embedded C source on first use with
the system compiler and loads it through :mod:`ctypes` — no third-party
build dependency.  The compiled object is cached on disk keyed by a
digest of the source and flags, so each machine compiles once.

Bit-identity with the numpy path is preserved by construction: the C
expression performs the same IEEE-754 operations in the same order
(multiply, add, subtract, fabs, compare), and ``-ffp-contract=off``
forbids the compiler from fusing the multiply-add into an FMA, which
would round differently.  Inlier counting is integer and therefore
order-independent.  ``tests/core/test_ransac_parity.py`` asserts the
native counts equal the tiled-numpy counts exactly.

Everything degrades gracefully: no compiler, a failed compile, or
``REPRO_DISABLE_NATIVE=1`` in the environment simply means
:func:`consensus_counts` returns None and callers fall back to the
tiled numpy kernel.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from pathlib import Path

import numpy as np

_KERNEL_SOURCE = r"""
#include <math.h>
#include <stdint.h>

/* Inlier count per trial.  The residual expression must stay exactly
 * z[i] - (m * x[i] + b): multiply, then add, then subtract, each
 * individually rounded (the build forbids FMA contraction), so the
 * boolean decision per element is bit-identical to the numpy kernel
 * and to the scalar reference loop. */
void consensus_counts(const double *x, const double *z, int64_t n,
                      const double *slopes, const double *intercepts,
                      const uint8_t *admissible, int64_t n_trials,
                      double threshold, int64_t *counts)
{
    for (int64_t t = 0; t < n_trials; t++) {
        if (!admissible[t]) {
            counts[t] = 0;
            continue;
        }
        const double m = slopes[t];
        const double b = intercepts[t];
        int64_t c = 0;
        for (int64_t i = 0; i < n; i++) {
            double r = z[i] - (m * x[i] + b);
            c += (fabs(r) <= threshold);
        }
        counts[t] = c;
    }
}
"""

#: Strict-IEEE flag set: -ffp-contract=off is load-bearing (see module
#: docstring); -fno-math-errno only affects libm error reporting, never
#: rounding.  -march=native unlocks SIMD and is retried without when the
#: compiler rejects it.
_BASE_FLAGS = ("-O3", "-ffp-contract=off", "-fno-math-errno", "-shared", "-fPIC")

_UNSET = object()
_LIB: object = _UNSET


def _cache_dir() -> Path:
    root = os.environ.get("XDG_CACHE_HOME")
    base = Path(root) if root else Path.home() / ".cache"
    return base / "repro-native"


def _compile(target: Path) -> bool:
    """Compile the kernel into ``target``; False on any failure."""
    cc = os.environ.get("CC", "cc")
    target.parent.mkdir(parents=True, exist_ok=True)
    for extra in (("-march=native",), ()):
        try:
            with tempfile.TemporaryDirectory(dir=target.parent) as tmp:
                src = Path(tmp) / "consensus.c"
                src.write_text(_KERNEL_SOURCE)
                out = Path(tmp) / "consensus.so"
                result = subprocess.run(
                    [cc, *extra, *_BASE_FLAGS, str(src), "-o", str(out)],
                    capture_output=True,
                    timeout=120,
                )
                if result.returncode == 0:
                    os.replace(out, target)  # atomic under concurrent builds
                    return True
        except (OSError, subprocess.SubprocessError):
            return False
    return False


def _load() -> ctypes.CDLL | None:
    if os.environ.get("REPRO_DISABLE_NATIVE", "") not in ("", "0"):
        return None
    digest = hashlib.sha1(
        (_KERNEL_SOURCE + repr(_BASE_FLAGS)).encode()
    ).hexdigest()[:16]
    so_path = _cache_dir() / f"consensus-{digest}.so"
    if not so_path.exists() and not _compile(so_path):
        return None
    try:
        lib = ctypes.CDLL(str(so_path))
        fn = lib.consensus_counts
    except (OSError, AttributeError):
        return None
    c_double_p = ctypes.POINTER(ctypes.c_double)
    fn.argtypes = [
        c_double_p,
        c_double_p,
        ctypes.c_int64,
        c_double_p,
        c_double_p,
        ctypes.POINTER(ctypes.c_uint8),
        ctypes.c_int64,
        ctypes.c_double,
        ctypes.POINTER(ctypes.c_int64),
    ]
    fn.restype = None
    return lib


def _library() -> ctypes.CDLL | None:
    global _LIB
    if _LIB is _UNSET:
        _LIB = _load()
    return _LIB  # type: ignore[return-value]


def available() -> bool:
    """True when the fused kernel compiled and loaded on this machine."""
    return _library() is not None


def consensus_counts(
    xs: np.ndarray,
    zs: np.ndarray,
    slopes: np.ndarray,
    intercepts: np.ndarray,
    admissible: np.ndarray,
    threshold: float,
) -> np.ndarray | None:
    """Fused inlier count per trial; None when the kernel is unavailable.

    Args:
        xs: service times, float64.
        zs: feature values, float64, same length.
        slopes: per-trial candidate slopes, float64.
        intercepts: per-trial candidate intercepts, float64.
        admissible: per-trial boolean mask; inadmissible trials get
            count 0 without being evaluated.
        threshold: inlier band half-width.

    Returns:
        int64 counts aligned with ``slopes``, or None (caller falls back
        to the numpy kernel).
    """
    lib = _library()
    if lib is None:
        return None
    xs = np.ascontiguousarray(xs, dtype=np.float64)
    zs = np.ascontiguousarray(zs, dtype=np.float64)
    slopes = np.ascontiguousarray(slopes, dtype=np.float64)
    intercepts = np.ascontiguousarray(intercepts, dtype=np.float64)
    ok = np.ascontiguousarray(admissible, dtype=np.uint8)
    counts = np.empty(slopes.size, dtype=np.int64)
    c_double_p = ctypes.POINTER(ctypes.c_double)
    lib.consensus_counts(
        xs.ctypes.data_as(c_double_p),
        zs.ctypes.data_as(c_double_p),
        xs.size,
        slopes.ctypes.data_as(c_double_p),
        intercepts.ctypes.data_as(c_double_p),
        ok.ctypes.data_as(ctypes.POINTER(ctypes.c_uint8)),
        slopes.size,
        float(threshold),
        counts.ctypes.data_as(ctypes.POINTER(ctypes.c_int64)),
    )
    return counts
