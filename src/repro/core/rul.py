"""Remaining-Useful-Lifetime estimation (Sec. IV-C, Figs. 15-16, Table IV).

The RUL layer combines three learned artifacts:

1. the Zone D decision threshold on ``D_a`` (boundary between "caution" and
   "hazard", learned to minimize classification error — Fig. 11);
2. the population lifetime models discovered by Recursive RANSAC on the
   pooled fleet scatter of ``(service time, D_a)`` (Fig. 15); and
3. each pump's own measurement history, used to select which population
   model the pump follows and to anchor the model line to the pump.

A pump's RUL is the horizontal distance from its current service time to
the point where its anchored lifetime line crosses the Zone D threshold.
Negative RUL means the pump is already past the hazard boundary (the paper
reports -87 and -3 days for two pumps).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.classify import ZONE_BC, ZONE_D
from repro.core.kde import min_error_threshold
from repro.core.ransac import LineModel, RecursiveRANSAC


def learn_zone_d_threshold(da_values: np.ndarray, labels: np.ndarray) -> float:
    """Learn the ``D_a`` boundary between Zone BC and Zone D.

    The threshold minimizes the count of wrongly classified BC/D records,
    exactly the rule of Sec. IV-C (the paper learns 0.21 on its fleet).

    Args:
        da_values: peak harmonic distances of labelled measurements.
        labels: zone labels aligned with ``da_values``; only BC and D
            records participate.
    """
    vals = np.asarray(da_values, dtype=np.float64).ravel()
    labs = np.asarray(labels)
    bc = vals[labs == ZONE_BC]
    d = vals[labs == ZONE_D]
    if bc.size == 0 or d.size == 0:
        raise ValueError("need labelled samples in both Zone BC and Zone D")
    return min_error_threshold(bc, d)


@dataclass(frozen=True)
class RULPrediction:
    """RUL estimate for one equipment.

    Attributes:
        model_index: index of the population lifetime model the pump was
            assigned to (0-based; -1 when no model fit the pump).
        slope: degradation rate of the anchored per-pump line.
        intercept: intercept of the anchored per-pump line.
        current_service_days: pump service time at prediction.
        crossing_service_days: service time at which the line reaches the
            Zone D threshold (may be ``inf`` for a flat line).
        rul_days: remaining useful lifetime in days; negative when the
            pump is already past the threshold.
    """

    model_index: int
    slope: float
    intercept: float
    current_service_days: float
    crossing_service_days: float
    rul_days: float


class RULEstimator:
    """Fleet-level lifetime-model learner and per-pump RUL predictor."""

    def __init__(
        self,
        zone_d_threshold: float,
        recursive_ransac: RecursiveRANSAC | None = None,
    ):
        """Create an estimator.

        Args:
            zone_d_threshold: learned ``D_a`` hazard boundary.
            recursive_ransac: model-discovery engine; a default configured
                for daily-scale fleet data is created when omitted.
        """
        if not np.isfinite(zone_d_threshold):
            raise ValueError("zone_d_threshold must be finite")
        self.zone_d_threshold = float(zone_d_threshold)
        self.ransac = recursive_ransac or RecursiveRANSAC(min_inliers=30, seed=0)
        self.models_: list[LineModel] = []

    def fit(self, service_days: np.ndarray, da_values: np.ndarray) -> "RULEstimator":
        """Discover population lifetime models from pooled fleet data.

        Args:
            service_days: service time of every measurement (all pumps
                pooled), in days since each pump's installation.
            da_values: ``D_a`` of every measurement, aligned.
        """
        self.models_ = self.ransac.fit(service_days, da_values)
        return self

    @property
    def n_models(self) -> int:
        return len(self.models_)

    def _anchored_candidates(
        self, xs: np.ndarray, zs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Anchoring intercept and residual score per population model.

        One batched evaluation over all models: each row of the
        (models × history) matrices goes through the same elementwise
        operation sequence as the former per-model loop, and the axis
        medians partition each row independently, so both vectors are
        bit-identical to the scalar computation.
        """
        slopes = np.asarray([m.slope for m in self.models_])
        intercepts = np.median(zs[None, :] - slopes[:, None] * xs[None, :], axis=1)
        residuals = np.abs(
            zs[None, :] - (slopes[:, None] * xs[None, :] + intercepts[:, None])
        )
        return intercepts, np.median(residuals, axis=1)

    def select_model(self, service_days: np.ndarray, da_values: np.ndarray) -> int:
        """Pick the population model that best explains one pump's history.

        The pump keeps the population *slope* but is anchored with its own
        intercept (median residual anchoring, robust to maintenance
        spikes); the model with the smallest median absolute residual
        after anchoring wins.

        Returns:
            Model index, or -1 when no models have been fitted.
        """
        if not self.models_:
            return -1
        xs = np.asarray(service_days, dtype=np.float64).ravel()
        zs = np.asarray(da_values, dtype=np.float64).ravel()
        if xs.size == 0:
            raise ValueError("pump history is empty")
        return self._select(self._anchored_candidates(xs, zs)[1])

    @staticmethod
    def _select(scores: np.ndarray) -> int:
        # Strictly-smaller replacement, first win: non-finite scores can
        # never displace the champion (matching the scalar loop they
        # replaced), so a plain argmin would disagree on NaN.
        best_idx = -1
        best_score = np.inf
        for idx, score in enumerate(scores):
            if score < best_score:
                best_score = float(score)
                best_idx = idx
        return best_idx

    def predict(self, service_days: np.ndarray, da_values: np.ndarray) -> RULPrediction:
        """Predict the RUL of one pump from its measurement history.

        Args:
            service_days: the pump's measurement service times (days).
            da_values: the pump's ``D_a`` series, aligned.

        Returns:
            RULPrediction anchored at the pump's latest measurement.
        """
        xs = np.asarray(service_days, dtype=np.float64).ravel()
        zs = np.asarray(da_values, dtype=np.float64).ravel()
        if xs.size != zs.size:
            raise ValueError("service_days and da_values must have equal length")
        if xs.size == 0:
            raise ValueError("pump history is empty")
        current = float(xs.max())

        if not self.models_:
            raise RuntimeError("no lifetime models fitted; call fit() first")
        intercepts, scores = self._anchored_candidates(xs, zs)
        model_idx = self._select(scores)
        if model_idx < 0:
            raise RuntimeError("no lifetime models fitted; call fit() first")
        model = self.models_[model_idx]
        intercept = float(intercepts[model_idx])
        anchored = LineModel(
            slope=model.slope,
            intercept=intercept,
            inlier_indices=np.arange(xs.size),
            residual_threshold=model.residual_threshold,
        )
        crossing = anchored.crossing_time(self.zone_d_threshold)
        rul = crossing - current if np.isfinite(crossing) else np.inf
        return RULPrediction(
            model_index=model_idx,
            slope=anchored.slope,
            intercept=anchored.intercept,
            current_service_days=current,
            crossing_service_days=float(crossing),
            rul_days=float(rul),
        )

    def predict_fleet(
        self,
        histories: dict[object, tuple[np.ndarray, np.ndarray]],
    ) -> dict[object, RULPrediction]:
        """Predict RUL for every pump in ``{pump_id: (service_days, da)}``."""
        return {pump_id: self.predict(xs, zs) for pump_id, (xs, zs) in histories.items()}
