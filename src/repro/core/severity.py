"""ISO 10816-style velocity severity assessment.

The paper's Zone A/B/C/D labels are ISO 10816 terminology: the standard
assesses machine condition by the *velocity* RMS (mm/s) in the 10–1000 Hz
band, with zone boundaries depending on the machine class.  The paper's
experts used exactly these zone definitions ("Zone A: vibration of newly
commissioned machines", …).

MEMS sensors measure *acceleration*; velocity is obtained by integration,
done here in the frequency domain (division by ``ω = 2πf`` per spectral
bin), which avoids the drift that time-domain integration of noisy
acceleration suffers from.

This gives the library a second, standards-based zone opinion next to the
data-driven ``D_a`` classifier — useful for bootstrapping labels on a
fresh deployment with no expert in the loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.classify import ZONE_A, ZONE_BC, ZONE_D
from repro.core.features import psd_feature, psd_frequencies

STANDARD_GRAVITY_MS2 = 9.80665

# ISO 10816-3 group 1 (large machines, rigid foundation) boundaries in
# mm/s velocity RMS: A/B at 2.3, B/C at 4.5, C/D at 7.1.  The paper pools
# B and C into "BC", which we mirror.
DEFAULT_BOUNDARIES_MM_S = (2.3, 4.5, 7.1)


@dataclass(frozen=True)
class SeverityAssessment:
    """Outcome of an ISO-style severity evaluation.

    Attributes:
        velocity_rms_mm_s: in-band velocity RMS.
        zone: pooled zone label (A / BC / D).
        iso_zone: unpooled four-zone label (A / B / C / D).
    """

    velocity_rms_mm_s: float
    zone: str
    iso_zone: str


def velocity_rms_mm_s(
    samples: np.ndarray,
    sampling_rate_hz: float,
    band_hz: tuple[float, float] = (10.0, 1000.0),
) -> float:
    """Velocity RMS (mm/s) of a measurement block via spectral integration.

    Each acceleration PSD bin at frequency ``f`` contributes velocity
    power ``s_a(f) / (2 pi f)^2``; summing over the standard's band and
    taking the square root gives the band velocity RMS.  The acceleration
    block is in g and converted to m/s² internally.

    Args:
        samples: raw acceleration block ``(K, 3)`` in g.
        sampling_rate_hz: sampling rate.
        band_hz: evaluation band (ISO: 10–1000 Hz).

    Returns:
        Velocity RMS in mm/s over the three axes combined.
    """
    lo, hi = band_hz
    if not 0 < lo < hi:
        raise ValueError("band_hz must satisfy 0 < low < high")
    psd_g = psd_feature(samples)  # g² per bin, combined over axes
    freqs = psd_frequencies(psd_g.size, sampling_rate_hz)
    mask = (freqs >= lo) & (freqs <= hi)
    omega = 2.0 * np.pi * freqs[mask]
    accel_power_ms2 = psd_g[mask] * STANDARD_GRAVITY_MS2**2
    velocity_power = accel_power_ms2 / omega**2
    return float(np.sqrt(velocity_power.sum()) * 1000.0)


def assess_severity(
    samples: np.ndarray,
    sampling_rate_hz: float,
    boundaries_mm_s: tuple[float, float, float] = DEFAULT_BOUNDARIES_MM_S,
) -> SeverityAssessment:
    """Full ISO-style zone assessment of one measurement.

    Args:
        samples: raw acceleration block ``(K, 3)`` in g.
        sampling_rate_hz: sampling rate.
        boundaries_mm_s: the machine class's (A/B, B/C, C/D) velocity
            boundaries.

    Returns:
        SeverityAssessment with both the pooled (paper-style) and the
        four-zone label.
    """
    ab, bc, cd = boundaries_mm_s
    if not 0 < ab < bc < cd:
        raise ValueError("boundaries must be positive and increasing")
    vrms = velocity_rms_mm_s(samples, sampling_rate_hz)
    if vrms < ab:
        iso_zone = "A"
    elif vrms < bc:
        iso_zone = "B"
    elif vrms < cd:
        iso_zone = "C"
    else:
        iso_zone = "D"
    pooled = {"A": ZONE_A, "B": ZONE_BC, "C": ZONE_BC, "D": ZONE_D}[iso_zone]
    return SeverityAssessment(
        velocity_rms_mm_s=vrms, zone=pooled, iso_zone=iso_zone
    )
