"""Degradation-trajectory forecasting (the paper's future-work extension).

Sec. VII proposes adding *sequential models* so the engine tracks each
equipment's own ageing dynamics instead of projecting a population line.
Offline (no deep-learning stack), two classical sequence models cover the
idea end to end:

* :class:`HoltLinearForecaster` — double exponential smoothing with a
  damped trend: an online level+trend state per pump, updated per
  measurement, that extrapolates the pump's *current* degradation rate.
* :class:`ARForecaster` — an autoregressive model of order ``p`` fitted
  by least squares on the pump's recent increments.

Both expose :meth:`forecast` for the feature trajectory and
:func:`crossing_forecast` converts a forecast into a threshold-crossing
(RUL) estimate, comparable head-to-head with the recursive-RANSAC
projection (see ``benchmarks/test_ablation_forecasting.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CrossingForecast:
    """Outcome of a threshold-crossing forecast.

    Attributes:
        crossing_step: number of *future steps* until the forecast first
            reaches the threshold (``inf`` when it never does inside the
            horizon).
        crossed_already: the last observation is already at/over the
            threshold.
    """

    crossing_step: float
    crossed_already: bool


class HoltLinearForecaster:
    """Holt's linear (double exponential) smoothing with damped trend.

    State: a level ``l`` and a trend ``b`` per series, updated as

    ``l_t = α y_t + (1-α)(l_{t-1} + φ b_{t-1})``
    ``b_t = β (l_t - l_{t-1}) + (1-β) φ b_{t-1}``

    and forecast ``ŷ_{t+h} = l_t + (φ + φ² + ... + φ^h) b_t``.
    """

    def __init__(self, alpha: float = 0.3, beta: float = 0.1, damping: float = 0.98):
        """Create a forecaster.

        Args:
            alpha: level smoothing factor in (0, 1].
            beta: trend smoothing factor in (0, 1].
            damping: trend damping ``φ`` in (0, 1]; 1 is undamped Holt.
        """
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if not 0 < beta <= 1:
            raise ValueError("beta must be in (0, 1]")
        if not 0 < damping <= 1:
            raise ValueError("damping must be in (0, 1]")
        self.alpha = alpha
        self.beta = beta
        self.damping = damping
        self.level_: float | None = None
        self.trend_: float | None = None

    def fit(self, series: np.ndarray) -> "HoltLinearForecaster":
        """Run the smoother over a full series (at least 2 points)."""
        values = np.asarray(series, dtype=np.float64).ravel()
        if values.size < 2:
            raise ValueError("need at least 2 observations")
        if not np.all(np.isfinite(values)):
            raise ValueError("series must be finite")
        self.level_ = float(values[0])
        self.trend_ = float(values[1] - values[0])
        for y in values[1:]:
            self.update(float(y))
        return self

    def update(self, value: float) -> None:
        """Consume one new observation (online usage)."""
        if self.level_ is None or self.trend_ is None:
            self.level_ = value
            self.trend_ = 0.0
            return
        prev_level = self.level_
        damped_trend = self.damping * self.trend_
        self.level_ = self.alpha * value + (1 - self.alpha) * (prev_level + damped_trend)
        self.trend_ = self.beta * (self.level_ - prev_level) + (1 - self.beta) * damped_trend

    def forecast(self, horizon: int) -> np.ndarray:
        """Forecast the next ``horizon`` steps."""
        if self.level_ is None or self.trend_ is None:
            raise RuntimeError("forecaster is not fitted")
        if horizon < 1:
            raise ValueError("horizon must be positive")
        phi = self.damping
        steps = np.arange(1, horizon + 1)
        if phi == 1.0:
            trend_sum = steps.astype(np.float64)
        else:
            trend_sum = phi * (1 - phi**steps) / (1 - phi)
        return self.level_ + trend_sum * self.trend_

    def _forecast_at(self, step: int) -> float:
        """The ``step``-ahead forecast, via the exact elementwise
        expression of :meth:`forecast` on a one-element slice — so the
        value is bit-identical to ``forecast(horizon)[step - 1]``."""
        phi = self.damping
        steps = np.arange(step, step + 1)
        if phi == 1.0:
            trend_sum = steps.astype(np.float64)
        else:
            trend_sum = phi * (1 - phi**steps) / (1 - phi)
        return float((self.level_ + trend_sum * self.trend_)[0])

    def crossing_step(self, threshold: float, horizon: int) -> int | None:
        """First future step whose forecast reaches ``threshold``.

        Equivalent to ``np.nonzero(forecast(horizon) >= threshold)[0][0]
        + 1`` but O(log horizon) instead of O(horizon): the damped-trend
        trajectory ``level + trend_sum(h) * trend`` is monotone in ``h``
        (``trend_sum`` is nondecreasing), so a positive-trend crossing
        can be bisected and a non-positive trend can only cross at step 1.
        Returns None when the horizon is never crossed.
        """
        if self.level_ is None or self.trend_ is None:
            raise RuntimeError("forecaster is not fitted")
        if horizon < 1:
            raise ValueError("horizon must be positive")
        if self._forecast_at(1) >= threshold:
            return 1
        if self.trend_ <= 0:
            # Nonincreasing trajectory: step 1 is the maximum.
            return None
        if self._forecast_at(horizon) < threshold:
            return None
        lo, hi = 1, horizon  # invariant: f(lo) < threshold <= f(hi)
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self._forecast_at(mid) >= threshold:
                hi = mid
            else:
                lo = mid
        return hi


class ARForecaster:
    """Autoregressive forecaster on first differences.

    Fits ``Δy_t = c + Σ_i a_i Δy_{t-i}`` by least squares and rolls the
    recursion forward; forecasting differences rather than levels keeps
    the model stationary on trending degradation series.
    """

    def __init__(self, order: int = 3, ridge: float = 1e-6):
        """Create a forecaster.

        Args:
            order: number of lagged differences ``p``.
            ridge: L2 regularization on the coefficients.
        """
        if order < 1:
            raise ValueError("order must be positive")
        if ridge < 0:
            raise ValueError("ridge must be non-negative")
        self.order = order
        self.ridge = ridge
        self.coef_: np.ndarray | None = None
        self.intercept_: float | None = None
        self._history: np.ndarray | None = None

    def fit(self, series: np.ndarray) -> "ARForecaster":
        """Fit on a series with at least ``order + 2`` observations."""
        values = np.asarray(series, dtype=np.float64).ravel()
        if values.size < self.order + 2:
            raise ValueError(f"need at least {self.order + 2} observations")
        if not np.all(np.isfinite(values)):
            raise ValueError("series must be finite")
        diffs = np.diff(values)
        p = self.order
        rows = [diffs[i : i + p][::-1] for i in range(diffs.size - p)]
        design = np.column_stack([np.ones(len(rows)), np.stack(rows)])
        target = diffs[p:]
        gram = design.T @ design + self.ridge * np.eye(design.shape[1])
        solution = np.linalg.solve(gram, design.T @ target)
        self.intercept_ = float(solution[0])
        self.coef_ = solution[1:]
        self._history = values[-(p + 1) :].copy()
        return self

    def forecast(self, horizon: int) -> np.ndarray:
        """Forecast the next ``horizon`` levels."""
        if self.coef_ is None or self._history is None:
            raise RuntimeError("forecaster is not fitted")
        if horizon < 1:
            raise ValueError("horizon must be positive")
        recent_diffs = list(np.diff(self._history))
        level = float(self._history[-1])
        out = np.empty(horizon)
        for h in range(horizon):
            lags = np.asarray(recent_diffs[-self.order :][::-1])
            step = self.intercept_ + float(self.coef_ @ lags)
            level += step
            recent_diffs.append(step)
            out[h] = level
        return out


def crossing_forecast(
    forecaster,
    last_value: float,
    threshold: float,
    horizon: int = 2000,
) -> CrossingForecast:
    """When does a fitted forecaster's trajectory reach ``threshold``?

    Args:
        forecaster: fitted object with ``forecast(horizon)``.
        last_value: most recent observation (decides ``crossed_already``).
        threshold: hazard boundary on the feature.
        horizon: maximum future steps to examine.

    Returns:
        CrossingForecast; ``crossing_step`` is 1-based (the first future
        step at/over the threshold), ``inf`` when the horizon is never
        crossed, and 0 when already crossed.
    """
    if last_value >= threshold:
        return CrossingForecast(crossing_step=0.0, crossed_already=True)
    trajectory = forecaster.forecast(horizon)
    over = np.nonzero(trajectory >= threshold)[0]
    if over.size == 0:
        return CrossingForecast(crossing_step=np.inf, crossed_already=False)
    return CrossingForecast(crossing_step=float(over[0] + 1), crossed_already=False)
