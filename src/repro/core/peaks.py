"""Harmonic peak feature extraction (Sec. IV-B).

Raw PSD vectors are high dimensional (1024 bins) and noisy, which makes them
poor direct inputs for regression: the Gram matrix ``s^T s`` is typically
singular and per-bin amplitudes fluctuate heavily between measurements.  The
paper's remedy is a *harmonic peak feature*: the set of the ``n_p`` most
significant spectral peaks, each represented by its ``(frequency, amplitude)``
pair.

The extraction procedure is exactly the paper's:

1. smooth the PSD over adjacent frequency bins with a Hann window of size
   ``n_h`` (24 by default), and
2. find the points where the first-order differential changes from positive
   to negative (local maxima of the smoothed PSD),

then keep the ``n_p`` (20 by default) highest peaks, reported in increasing
frequency order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.window import smooth_hann, smooth_hann_batch

DEFAULT_NUM_PEAKS = 20
DEFAULT_WINDOW_SIZE = 24


@dataclass(frozen=True)
class HarmonicPeaks:
    """Harmonic peak feature ``p_n = {(f_nk, p_nk)}`` of one measurement.

    Attributes:
        frequencies: peak frequencies in Hz, strictly increasing.
        values: peak amplitudes (same units as the input PSD), aligned with
            ``frequencies``.
    """

    frequencies: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        freqs = np.asarray(self.frequencies, dtype=np.float64)
        vals = np.asarray(self.values, dtype=np.float64)
        if freqs.shape != vals.shape or freqs.ndim != 1:
            raise ValueError("frequencies and values must be 1-D arrays of equal length")
        if freqs.size > 1 and not np.all(np.diff(freqs) > 0):
            raise ValueError("peak frequencies must be strictly increasing")
        object.__setattr__(self, "frequencies", freqs)
        object.__setattr__(self, "values", vals)

    def __len__(self) -> int:
        return int(self.frequencies.size)

    def as_pairs(self) -> np.ndarray:
        """Peaks as an ``(n, 2)`` array of ``(frequency, value)`` rows."""
        return np.stack([self.frequencies, self.values], axis=1)

    @property
    def max_value(self) -> float:
        """Largest peak amplitude, 0.0 when there are no peaks."""
        return float(self.values.max()) if len(self) else 0.0

    @property
    def max_frequency(self) -> float:
        """Largest peak frequency, 0.0 when there are no peaks."""
        return float(self.frequencies.max()) if len(self) else 0.0


def _trusted_peaks(freqs: np.ndarray, vals: np.ndarray) -> HarmonicPeaks:
    """Build a :class:`HarmonicPeaks` from pre-validated float64 arrays.

    The batched selection produces slices that are float64, 1-D,
    equal-length and strictly increasing by construction, so the
    per-object ``__post_init__`` validation (an ``np.diff`` + ``np.all``
    per row — real cost at fleet scale) is skipped.
    """
    peaks = object.__new__(HarmonicPeaks)
    object.__setattr__(peaks, "frequencies", freqs)
    object.__setattr__(peaks, "values", vals)
    return peaks


def _local_maxima(values: np.ndarray) -> np.ndarray:
    """Indices where the first-order differential flips positive→negative.

    Plateau maxima (exactly equal neighbours) are attributed to the first
    bin of the plateau.  Endpoints are never reported as peaks, matching
    the paper's sign-change criterion, except that a series rising into the
    last bin has no sign change and therefore no peak there.

    This is the scalar reference implementation (a literal transcription
    of the criterion); the batched runtime uses :func:`_local_maxima_mask`,
    which the parity tests hold bit-identical to this function.
    """
    if values.size < 3:
        return np.empty(0, dtype=np.intp)
    diff = np.diff(values)
    # Treat zero differences as continuing the previous trend so plateaus
    # produce a single sign change at their leading edge.
    sign = np.sign(diff)
    for i in range(1, sign.size):
        if sign[i] == 0:
            sign[i] = sign[i - 1]
    rising = sign[:-1] > 0
    falling = sign[1:] < 0
    return np.nonzero(rising & falling)[0] + 1


def _local_maxima_mask(rows: np.ndarray) -> np.ndarray:
    """Vectorized local-maximum mask per row of a ``(n, K)`` matrix.

    ``mask[i, j]`` is True when bin ``j`` of row ``i`` satisfies the
    sign-change criterion of :func:`_local_maxima`.  Rows without any
    zero difference — the overwhelming majority of real PSD rows — take
    a pure comparison path; only rows containing a plateau pay for the
    forward fill that lands plateau maxima on the leading edge.
    """
    n, k = rows.shape
    mask = np.zeros((n, k), dtype=bool)
    if k < 3:
        return mask
    diff = np.diff(rows, axis=1)
    nonzero = diff != 0.0
    rising = diff > 0
    # Plateau-free criterion: a strict rise into the bin and a strict
    # fall out of it.  (`~rising & nonzero` is "strictly falling".)
    mask[:, 1:-1] = rising[:, :-1] & ~rising[:, 1:] & nonzero[:, 1:]
    plateau_rows = np.nonzero(~nonzero.all(axis=1))[0]
    if plateau_rows.size:
        mask[plateau_rows] = _local_maxima_mask_filled(rows[plateau_rows])
    return mask


def _local_maxima_mask_filled(rows: np.ndarray) -> np.ndarray:
    """Local-maximum mask with plateau forward-filling (any row shape).

    The general form of :func:`_local_maxima_mask`: zero differences are
    forward-filled with the previous trend (plateau maxima land on the
    plateau's leading edge), implemented as an index-carrying cumulative
    maximum instead of the per-element Python loop of the scalar path.
    """
    n, k = rows.shape
    mask = np.zeros((n, k), dtype=bool)
    diff = np.diff(rows, axis=1)
    # int8 signs: the fill/compare passes below are pure sign logic, so
    # narrow integers cut the memory traffic of the hot scan 8x.
    sign = (diff > 0).astype(np.int8) - (diff < 0).astype(np.int8)
    # Forward-fill zeros: each position takes the sign at the latest
    # non-zero position at or before it (a leading run of zeros keeps 0).
    positions = np.where(sign != 0, np.arange(sign.shape[1], dtype=np.int32)[None, :], 0)
    filled = np.take_along_axis(
        sign, np.maximum.accumulate(positions, axis=1), axis=1
    )
    rising = filled[:, :-1] > 0
    falling = filled[:, 1:] < 0
    mask[:, 1:-1] = rising & falling
    return mask


DEFAULT_MIN_SIGNIFICANCE = 0.02


def extract_harmonic_peaks(
    psd: np.ndarray,
    frequencies: np.ndarray,
    num_peaks: int = DEFAULT_NUM_PEAKS,
    window_size: int = DEFAULT_WINDOW_SIZE,
    skip_dc_bins: int = 2,
    min_significance: float = DEFAULT_MIN_SIGNIFICANCE,
) -> HarmonicPeaks:
    """Extract the harmonic peak feature from a PSD vector.

    Args:
        psd: 1-D PSD amplitudes (combined over axes).
        frequencies: physical frequency of each bin, same length as ``psd``.
        num_peaks: ``n_p`` — maximum number of peaks to keep (paper: 20).
        window_size: ``n_h`` — Hann smoothing window size (paper: 24).
        skip_dc_bins: lowest bins to exclude from the search; normalization
            removes DC but smoothing can leak residual low-bin energy into
            a spurious edge maximum.
        min_significance: peaks whose smoothed amplitude falls below this
            fraction of the strongest candidate are discarded — the
            paper's Fig. 9 keeps only "peaks with high significance", and
            without this floor the sensor's noise floor contributes
            spurious high-frequency peaks that inflate the distance of
            even healthy equipment.

    Returns:
        HarmonicPeaks with at most ``num_peaks`` peaks in increasing
        frequency order.  The peak *amplitudes* are read from the smoothed
        PSD, which is what makes the feature stable across measurements.
    """
    psd_arr = np.asarray(psd, dtype=np.float64)
    freq_arr = np.asarray(frequencies, dtype=np.float64)
    if psd_arr.ndim != 1:
        raise ValueError("psd must be 1-D")
    if psd_arr.shape != freq_arr.shape:
        raise ValueError("psd and frequencies must have the same shape")
    _check_peak_params(num_peaks, skip_dc_bins, min_significance)

    smoothed = smooth_hann(psd_arr, window_size)
    candidates = _local_maxima(smoothed)
    return _select_peaks(
        smoothed, freq_arr, candidates, num_peaks, skip_dc_bins, min_significance
    )


def _check_peak_params(num_peaks: int, skip_dc_bins: int, min_significance: float) -> None:
    if num_peaks < 1:
        raise ValueError("num_peaks must be positive")
    if skip_dc_bins < 0:
        raise ValueError("skip_dc_bins must be non-negative")
    if not 0.0 <= min_significance < 1.0:
        raise ValueError("min_significance must be in [0, 1)")


def _select_peaks(
    smoothed: np.ndarray,
    freq_arr: np.ndarray,
    candidates: np.ndarray,
    num_peaks: int,
    skip_dc_bins: int,
    min_significance: float,
) -> HarmonicPeaks:
    """Significance filter + top-``num_peaks`` selection over maxima indices."""
    candidates = candidates[candidates >= skip_dc_bins]
    if candidates.size and min_significance > 0:
        floor = min_significance * smoothed[candidates].max()
        candidates = candidates[smoothed[candidates] >= floor]
    if candidates.size == 0:
        return HarmonicPeaks(np.empty(0), np.empty(0))

    # Keep the num_peaks most significant maxima, then restore frequency
    # order.  The descending sort is stable (equal amplitudes keep their
    # frequency order) so the scalar and batched top-k agree bit-for-bit
    # even on tied candidates.
    order = np.argsort(-smoothed[candidates], kind="stable")[:num_peaks]
    selected = np.sort(candidates[order])
    return HarmonicPeaks(freq_arr[selected], smoothed[selected])


def extract_harmonic_peaks_batch(
    psds: np.ndarray,
    frequencies: np.ndarray,
    num_peaks: int = DEFAULT_NUM_PEAKS,
    window_size: int = DEFAULT_WINDOW_SIZE,
    skip_dc_bins: int = 2,
    min_significance: float = DEFAULT_MIN_SIGNIFICANCE,
) -> list[HarmonicPeaks]:
    """:func:`extract_harmonic_peaks` over PSD rows ``(n, K)`` in one pass.

    Every stage — Hann smoothing, the local-maxima scan, the significance
    floor, and the top-``num_peaks`` selection — runs vectorized over the
    whole matrix (one C convolution plus masked reductions and a single
    stable argsort; no per-row Python selection loop).  Results are
    bit-identical to the scalar function applied row by row, which is the
    contract the batched analysis runtime's parity tests enforce.

    Args:
        psds: PSD matrix, one measurement per row.
        frequencies: physical frequency per column, shape ``(K,)``.
        num_peaks: ``n_p`` — maximum number of peaks to keep per row.
        window_size: ``n_h`` — Hann smoothing window size.
        skip_dc_bins: lowest bins to exclude from the search.
        min_significance: per-row significance floor (see scalar docs).

    Returns:
        One :class:`HarmonicPeaks` per input row, in row order.
    """
    rows = np.atleast_2d(np.asarray(psds, dtype=np.float64))
    freq_arr = np.asarray(frequencies, dtype=np.float64)
    if rows.ndim != 2:
        raise ValueError("psds must be a 2-D matrix")
    if freq_arr.ndim != 1 or freq_arr.shape[0] != rows.shape[1]:
        raise ValueError("frequencies must align with psd columns")
    _check_peak_params(num_peaks, skip_dc_bins, min_significance)

    smoothed = smooth_hann_batch(rows, window_size)
    mask = _local_maxima_mask(smoothed)
    return _select_peaks_batch(
        smoothed, freq_arr, mask, num_peaks, skip_dc_bins, min_significance
    )


def _select_peaks_batch(
    smoothed: np.ndarray,
    freq_arr: np.ndarray,
    mask: np.ndarray,
    num_peaks: int,
    skip_dc_bins: int,
    min_significance: float,
) -> list[HarmonicPeaks]:
    """Vectorized :func:`_select_peaks` over every row at once.

    Candidate maxima are first *compacted*: ``np.nonzero`` lists them in
    row-major order, so scattering into a padded ``(n, max_candidates)``
    matrix preserves each row's frequency order with the padding slots
    holding ``-inf`` values and a sentinel column index.  The stable
    descending argsort then runs over tens of columns instead of the
    full bin width — the same top-``k`` (ties keep frequency order, like
    the scalar path's stable sort over its candidate list) at a fraction
    of the sort cost.  Sorting the selected column indices afterwards
    restores frequency order, exactly like the scalar path's
    ``np.sort(candidates[order])``.
    """
    n_rows, n_bins = smoothed.shape
    mask = mask.copy()
    mask[:, : min(skip_dc_bins, n_bins)] = False

    counts = mask.sum(axis=1)
    max_cand = int(counts.max()) if n_rows else 0
    if max_cand == 0:
        return [HarmonicPeaks(np.empty(0), np.empty(0)) for _ in range(n_rows)]

    # Compact candidates: row-major nonzero order keeps each row's
    # columns increasing, so slot order == frequency order.
    rowe, cole = np.nonzero(mask)
    starts = np.zeros(n_rows, dtype=np.intp)
    np.cumsum(counts[:-1], out=starts[1:])
    slots = np.arange(rowe.size) - starts[rowe]
    cand_cols = np.full((n_rows, max_cand), n_bins, dtype=np.intp)
    cand_vals = np.full((n_rows, max_cand), -np.inf)
    cand_cols[rowe, slots] = cole
    cand_vals[rowe, slots] = smoothed[rowe, cole]

    if min_significance > 0:
        row_max = cand_vals.max(axis=1)
        # Rows with no candidates have row_max == -inf; their floor stays
        # -inf, so the explicit padding guard below must carry the cut.
        floor = min_significance * row_max
        keep = (cand_vals >= floor[:, None]) & (cand_cols < n_bins)
        cand_vals[~keep] = -np.inf
        cand_cols[~keep] = n_bins
        counts = keep.sum(axis=1)

    take = np.minimum(counts, num_peaks)
    if not counts.any():
        return [HarmonicPeaks(np.empty(0), np.empty(0)) for _ in range(n_rows)]

    # Stable descending argsort: padding (-inf) sinks to the end, tied
    # candidates keep frequency order — the same tie rule as the scalar
    # selection.  Invalid tail slots keep the sentinel column so the
    # final per-row index sort pushes them past every real selection.
    width = min(num_peaks, max_cand)
    order = np.argsort(-cand_vals, axis=1, kind="stable")[:, :width]
    rank = np.arange(width)[None, :]
    selected = np.take_along_axis(cand_cols, order, axis=1)
    selected = np.where(rank < take[:, None], selected, n_bins)
    selected = np.sort(selected, axis=1)

    safe = np.minimum(selected, n_bins - 1)
    freqs = freq_arr[safe]
    vals = np.take_along_axis(smoothed, safe, axis=1)
    return [
        _trusted_peaks(freqs[i, : take[i]].copy(), vals[i, : take[i]].copy())
        for i in range(n_rows)
    ]
