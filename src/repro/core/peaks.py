"""Harmonic peak feature extraction (Sec. IV-B).

Raw PSD vectors are high dimensional (1024 bins) and noisy, which makes them
poor direct inputs for regression: the Gram matrix ``s^T s`` is typically
singular and per-bin amplitudes fluctuate heavily between measurements.  The
paper's remedy is a *harmonic peak feature*: the set of the ``n_p`` most
significant spectral peaks, each represented by its ``(frequency, amplitude)``
pair.

The extraction procedure is exactly the paper's:

1. smooth the PSD over adjacent frequency bins with a Hann window of size
   ``n_h`` (24 by default), and
2. find the points where the first-order differential changes from positive
   to negative (local maxima of the smoothed PSD),

then keep the ``n_p`` (20 by default) highest peaks, reported in increasing
frequency order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.window import smooth_hann, smooth_hann_batch

DEFAULT_NUM_PEAKS = 20
DEFAULT_WINDOW_SIZE = 24


@dataclass(frozen=True)
class HarmonicPeaks:
    """Harmonic peak feature ``p_n = {(f_nk, p_nk)}`` of one measurement.

    Attributes:
        frequencies: peak frequencies in Hz, strictly increasing.
        values: peak amplitudes (same units as the input PSD), aligned with
            ``frequencies``.
    """

    frequencies: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        freqs = np.asarray(self.frequencies, dtype=np.float64)
        vals = np.asarray(self.values, dtype=np.float64)
        if freqs.shape != vals.shape or freqs.ndim != 1:
            raise ValueError("frequencies and values must be 1-D arrays of equal length")
        if freqs.size > 1 and not np.all(np.diff(freqs) > 0):
            raise ValueError("peak frequencies must be strictly increasing")
        object.__setattr__(self, "frequencies", freqs)
        object.__setattr__(self, "values", vals)

    def __len__(self) -> int:
        return int(self.frequencies.size)

    def as_pairs(self) -> np.ndarray:
        """Peaks as an ``(n, 2)`` array of ``(frequency, value)`` rows."""
        return np.stack([self.frequencies, self.values], axis=1)

    @property
    def max_value(self) -> float:
        """Largest peak amplitude, 0.0 when there are no peaks."""
        return float(self.values.max()) if len(self) else 0.0

    @property
    def max_frequency(self) -> float:
        """Largest peak frequency, 0.0 when there are no peaks."""
        return float(self.frequencies.max()) if len(self) else 0.0


def _local_maxima(values: np.ndarray) -> np.ndarray:
    """Indices where the first-order differential flips positive→negative.

    Plateau maxima (exactly equal neighbours) are attributed to the first
    bin of the plateau.  Endpoints are never reported as peaks, matching
    the paper's sign-change criterion, except that a series rising into the
    last bin has no sign change and therefore no peak there.

    This is the scalar reference implementation (a literal transcription
    of the criterion); the batched runtime uses :func:`_local_maxima_mask`,
    which the parity tests hold bit-identical to this function.
    """
    if values.size < 3:
        return np.empty(0, dtype=np.intp)
    diff = np.diff(values)
    # Treat zero differences as continuing the previous trend so plateaus
    # produce a single sign change at their leading edge.
    sign = np.sign(diff)
    for i in range(1, sign.size):
        if sign[i] == 0:
            sign[i] = sign[i - 1]
    rising = sign[:-1] > 0
    falling = sign[1:] < 0
    return np.nonzero(rising & falling)[0] + 1


def _local_maxima_mask(rows: np.ndarray) -> np.ndarray:
    """Vectorized local-maximum mask per row of a ``(n, K)`` matrix.

    ``mask[i, j]`` is True when bin ``j`` of row ``i`` satisfies the
    sign-change criterion of :func:`_local_maxima`.  Zero differences are
    forward-filled with the previous trend (plateau maxima land on the
    plateau's leading edge), implemented as an index-carrying cumulative
    maximum instead of the per-element Python loop of the scalar path.
    """
    n, k = rows.shape
    mask = np.zeros((n, k), dtype=bool)
    if k < 3:
        return mask
    sign = np.sign(np.diff(rows, axis=1))
    # Forward-fill zeros: each position takes the sign at the latest
    # non-zero position at or before it (a leading run of zeros keeps 0).
    positions = np.where(sign != 0, np.arange(sign.shape[1])[None, :], 0)
    filled = np.take_along_axis(
        sign, np.maximum.accumulate(positions, axis=1), axis=1
    )
    rising = filled[:, :-1] > 0
    falling = filled[:, 1:] < 0
    mask[:, 1:-1] = rising & falling
    return mask


DEFAULT_MIN_SIGNIFICANCE = 0.02


def extract_harmonic_peaks(
    psd: np.ndarray,
    frequencies: np.ndarray,
    num_peaks: int = DEFAULT_NUM_PEAKS,
    window_size: int = DEFAULT_WINDOW_SIZE,
    skip_dc_bins: int = 2,
    min_significance: float = DEFAULT_MIN_SIGNIFICANCE,
) -> HarmonicPeaks:
    """Extract the harmonic peak feature from a PSD vector.

    Args:
        psd: 1-D PSD amplitudes (combined over axes).
        frequencies: physical frequency of each bin, same length as ``psd``.
        num_peaks: ``n_p`` — maximum number of peaks to keep (paper: 20).
        window_size: ``n_h`` — Hann smoothing window size (paper: 24).
        skip_dc_bins: lowest bins to exclude from the search; normalization
            removes DC but smoothing can leak residual low-bin energy into
            a spurious edge maximum.
        min_significance: peaks whose smoothed amplitude falls below this
            fraction of the strongest candidate are discarded — the
            paper's Fig. 9 keeps only "peaks with high significance", and
            without this floor the sensor's noise floor contributes
            spurious high-frequency peaks that inflate the distance of
            even healthy equipment.

    Returns:
        HarmonicPeaks with at most ``num_peaks`` peaks in increasing
        frequency order.  The peak *amplitudes* are read from the smoothed
        PSD, which is what makes the feature stable across measurements.
    """
    psd_arr = np.asarray(psd, dtype=np.float64)
    freq_arr = np.asarray(frequencies, dtype=np.float64)
    if psd_arr.ndim != 1:
        raise ValueError("psd must be 1-D")
    if psd_arr.shape != freq_arr.shape:
        raise ValueError("psd and frequencies must have the same shape")
    _check_peak_params(num_peaks, skip_dc_bins, min_significance)

    smoothed = smooth_hann(psd_arr, window_size)
    candidates = _local_maxima(smoothed)
    return _select_peaks(
        smoothed, freq_arr, candidates, num_peaks, skip_dc_bins, min_significance
    )


def _check_peak_params(num_peaks: int, skip_dc_bins: int, min_significance: float) -> None:
    if num_peaks < 1:
        raise ValueError("num_peaks must be positive")
    if skip_dc_bins < 0:
        raise ValueError("skip_dc_bins must be non-negative")
    if not 0.0 <= min_significance < 1.0:
        raise ValueError("min_significance must be in [0, 1)")


def _select_peaks(
    smoothed: np.ndarray,
    freq_arr: np.ndarray,
    candidates: np.ndarray,
    num_peaks: int,
    skip_dc_bins: int,
    min_significance: float,
) -> HarmonicPeaks:
    """Significance filter + top-``num_peaks`` selection over maxima indices."""
    candidates = candidates[candidates >= skip_dc_bins]
    if candidates.size and min_significance > 0:
        floor = min_significance * smoothed[candidates].max()
        candidates = candidates[smoothed[candidates] >= floor]
    if candidates.size == 0:
        return HarmonicPeaks(np.empty(0), np.empty(0))

    # Keep the num_peaks most significant maxima, then restore frequency order.
    order = np.argsort(smoothed[candidates])[::-1][:num_peaks]
    selected = np.sort(candidates[order])
    return HarmonicPeaks(freq_arr[selected], smoothed[selected])


def extract_harmonic_peaks_batch(
    psds: np.ndarray,
    frequencies: np.ndarray,
    num_peaks: int = DEFAULT_NUM_PEAKS,
    window_size: int = DEFAULT_WINDOW_SIZE,
    skip_dc_bins: int = 2,
    min_significance: float = DEFAULT_MIN_SIGNIFICANCE,
) -> list[HarmonicPeaks]:
    """:func:`extract_harmonic_peaks` over PSD rows ``(n, K)`` in one pass.

    The two expensive stages — Hann smoothing and the local-maxima scan —
    run vectorized over the whole matrix (one C convolution, no
    per-element Python loop); only the final top-``num_peaks`` selection
    runs per row, on the handful of candidate maxima.  Results are
    bit-identical to the scalar function applied row by row, which is the
    contract the batched analysis runtime's parity tests enforce.

    Args:
        psds: PSD matrix, one measurement per row.
        frequencies: physical frequency per column, shape ``(K,)``.
        num_peaks: ``n_p`` — maximum number of peaks to keep per row.
        window_size: ``n_h`` — Hann smoothing window size.
        skip_dc_bins: lowest bins to exclude from the search.
        min_significance: per-row significance floor (see scalar docs).

    Returns:
        One :class:`HarmonicPeaks` per input row, in row order.
    """
    rows = np.atleast_2d(np.asarray(psds, dtype=np.float64))
    freq_arr = np.asarray(frequencies, dtype=np.float64)
    if rows.ndim != 2:
        raise ValueError("psds must be a 2-D matrix")
    if freq_arr.ndim != 1 or freq_arr.shape[0] != rows.shape[1]:
        raise ValueError("frequencies must align with psd columns")
    _check_peak_params(num_peaks, skip_dc_bins, min_significance)

    smoothed = smooth_hann_batch(rows, window_size)
    mask = _local_maxima_mask(smoothed)
    return [
        _select_peaks(
            smoothed[i],
            freq_arr,
            np.nonzero(mask[i])[0],
            num_peaks,
            skip_dc_bins,
            min_significance,
        )
        for i in range(rows.shape[0])
    ]
