"""Measurement normalization and feature extraction (Sec. III-B of the paper).

A *measurement* is a block of ``K`` acceleration samples on three orthogonal
axes, shaped ``(K, 3)`` with columns ``(x, y, z)`` in units of g.  From each
measurement the paper derives two features:

* the root mean square (RMS) ``r_mn``, the overall vibration magnitude, and
* the power spectral density (PSD) ``s_mn`` obtained through a discrete
  cosine transform (the ``W_K`` matrix of the paper).

The paper's normalization subtracts the per-axis mean of the measurement to
remove the gravity component and any sensor zero-offset, so the RMS of a
normalized axis equals the standard deviation of its raw samples.

Scaling convention
------------------
The paper writes ``s^x = (1/2K)(a W_K)^2`` and asserts Parseval's identity
``(rms^x)^2 = sum_k s^x_k``.  These two statements are only simultaneously
true for a specific (non-orthonormal) DCT scaling.  We use the orthonormal
DCT-II and scale the squared coefficients by ``1/K``, which makes Parseval's
identity hold *exactly* — the property the paper actually relies on ("s_mn
alone is sufficient to construct feature space").  The constant factor
difference from the paper's ``1/2K`` does not affect any downstream result:
the peak harmonic distance normalizes by the global peak maximum, and all
classifiers are scale-equivariant in the feature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.fft import dct
from scipy.signal import welch

AXES = ("x", "y", "z")


@dataclass(frozen=True)
class FeatureConfig:
    """Configuration for feature extraction.

    Attributes:
        sampling_rate_hz: sampling frequency of the measurement block; used
            only to attach physical frequencies to PSD bins.
        samples_per_measurement: expected ``K``; measurements with a
            different length are rejected to prevent silently comparing
            incompatible feature vectors.
    """

    sampling_rate_hz: float = 4000.0
    samples_per_measurement: int = 1024

    def __post_init__(self) -> None:
        if self.sampling_rate_hz <= 0:
            raise ValueError("sampling_rate_hz must be positive")
        if self.samples_per_measurement < 2:
            raise ValueError("samples_per_measurement must be at least 2")


def _as_measurement(samples: np.ndarray) -> np.ndarray:
    """Validate and coerce a raw measurement block to float64 ``(K, 3)``."""
    arr = np.asarray(samples, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise ValueError(f"measurement must have shape (K, 3), got {arr.shape}")
    if arr.shape[0] < 2:
        raise ValueError("measurement must contain at least 2 samples")
    if not np.all(np.isfinite(arr)):
        raise ValueError("measurement contains non-finite samples")
    return arr


def normalize_measurement(samples: np.ndarray) -> np.ndarray:
    """Remove the per-axis mean from a measurement block.

    This is the paper's ``â = a - 1·mean(a)`` step: it strips the gravity
    bias and any slowly-varying sensor zero offset, leaving only the
    oscillatory vibration component.

    Args:
        samples: raw acceleration block, shape ``(K, 3)`` in g.

    Returns:
        Normalized block of the same shape, each column zero-mean.
    """
    arr = _as_measurement(samples)
    return arr - arr.mean(axis=0, keepdims=True)


def measurement_offsets(samples: np.ndarray) -> np.ndarray:
    """Per-axis average of a measurement block, shape ``(3,)``.

    The averages are the sensor's observed zero-offset (plus gravity
    projection).  They are expected to be constant across a sensor's life;
    the outlier-detection layer (Fig. 8) clusters them to flag invalid
    measurements.
    """
    return _as_measurement(samples).mean(axis=0)


def rms_feature(samples: np.ndarray) -> float:
    """Overall RMS vibration magnitude ``r_mn`` of a measurement.

    Computed as ``sqrt(sum_l rms_l^2)`` over the three normalized axes,
    where ``rms_l = ||â_l|| / sqrt(K)`` is the per-axis standard deviation.
    """
    normalized = normalize_measurement(samples)
    k = normalized.shape[0]
    per_axis_sq = (normalized**2).sum(axis=0) / k
    return float(np.sqrt(per_axis_sq.sum()))


def rms_per_axis(samples: np.ndarray) -> np.ndarray:
    """Per-axis RMS values ``(rms_x, rms_y, rms_z)``."""
    normalized = normalize_measurement(samples)
    k = normalized.shape[0]
    return np.sqrt((normalized**2).sum(axis=0) / k)


def psd_feature(samples: np.ndarray, per_axis: bool = False) -> np.ndarray:
    """DCT-based power spectral density ``s_mn`` of a measurement.

    Each axis is normalized, transformed with the orthonormal DCT-II
    (the ``W_K`` matrix), squared and scaled by ``1/K`` so that Parseval's
    identity ``sum_k s_k == rms^2`` holds exactly per axis.

    Args:
        samples: raw acceleration block, shape ``(K, 3)``.
        per_axis: when True return the ``(K, 3)`` per-axis PSD; otherwise
            return the combined ``(K,)`` PSD summed over axes (the paper's
            ``s_mn = sum_l s^l_mn``).

    Returns:
        PSD array in g²-per-bin units.
    """
    normalized = normalize_measurement(samples)
    k = normalized.shape[0]
    coeffs = dct(normalized, type=2, norm="ortho", axis=0)
    spectra = coeffs**2 / k
    if per_axis:
        return spectra
    return spectra.sum(axis=1)


def welch_psd(
    samples: np.ndarray,
    sampling_rate_hz: float,
    nperseg: int = 256,
) -> tuple[np.ndarray, np.ndarray]:
    """Welch-averaged PSD — the standard alternative to the paper's DCT.

    The paper computes its PSD as a single full-block DCT (maximum
    frequency resolution, maximum per-bin variance); Welch's method
    trades resolution for variance by averaging windowed segments.  Both
    estimators feed the same downstream feature machinery, so the choice
    is ablatable (see ``benchmarks/test_ablation_dct_vs_welch.py``).

    Args:
        samples: raw acceleration block ``(K, 3)`` in g.
        sampling_rate_hz: sampling rate.
        nperseg: Welch segment length (must not exceed ``K``).

    Returns:
        ``(frequencies, psd)`` with the per-axis PSDs summed, in g²/Hz ×
        bin-width units comparable to :func:`psd_feature`'s convention
        (total over bins equals the signal's variance).
    """
    normalized = normalize_measurement(samples)
    k = normalized.shape[0]
    if nperseg < 2:
        raise ValueError("nperseg must be at least 2")
    nperseg = min(nperseg, k)
    freqs, pxx = welch(
        normalized, fs=sampling_rate_hz, nperseg=nperseg, axis=0, detrend=False
    )
    # welch returns density (g²/Hz); convert to per-bin power so the sum
    # over bins matches rms² like the DCT-based feature.
    bin_width = sampling_rate_hz / nperseg
    per_bin = pxx * bin_width
    return freqs, per_bin.sum(axis=1)


def psd_frequencies(num_samples: int, sampling_rate_hz: float) -> np.ndarray:
    """Physical frequency (Hz) of each DCT bin.

    The DCT-II basis function of index ``k`` oscillates at ``k / (2K)``
    cycles per sample, i.e. ``k * fs / (2K)`` Hz, so the PSD spans DC to
    the Nyquist frequency ``fs / 2``.
    """
    if num_samples < 2:
        raise ValueError("num_samples must be at least 2")
    if sampling_rate_hz <= 0:
        raise ValueError("sampling_rate_hz must be positive")
    k = np.arange(num_samples)
    return k * sampling_rate_hz / (2.0 * num_samples)


def extract_features(samples: np.ndarray, config: FeatureConfig) -> tuple[float, np.ndarray]:
    """Convenience wrapper returning ``(rms, psd)`` for one measurement.

    Raises:
        ValueError: when the block length differs from the configured ``K``.
    """
    arr = _as_measurement(samples)
    if arr.shape[0] != config.samples_per_measurement:
        raise ValueError(
            f"expected K={config.samples_per_measurement} samples, got {arr.shape[0]}"
        )
    return rms_feature(arr), psd_feature(arr)
