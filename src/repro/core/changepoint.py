"""Changepoint detection on degradation feature series.

A pump replacement resets the degradation feature to its healthy level —
a large downward step in the ``D_a`` series.  When maintenance records
are complete, the pipeline splits sensor epochs on service-time resets;
when they are *not* (a chronically real fab problem: undocumented swaps,
CMMS lag), the step itself is the only evidence.  This module detects
such level shifts directly from the data.

The detector is binary segmentation with a squared-error cost: the split
that most reduces the series' total squared deviation from its segment
means is accepted when the reduction is significant relative to the
residual noise, then each side is searched recursively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Changepoint:
    """One detected level shift.

    Attributes:
        index: first index of the new regime.
        mean_before: segment mean left of the split.
        mean_after: segment mean right of the split.
    """

    index: int
    mean_before: float
    mean_after: float

    @property
    def step(self) -> float:
        """Signed level change (negative for a replacement-style drop)."""
        return self.mean_after - self.mean_before


def _best_split(values: np.ndarray) -> tuple[int, float]:
    """Best split index and its cost reduction for one segment.

    Cost is the total squared deviation from segment means; the returned
    index is the start of the right part.  O(n) via prefix sums.
    """
    n = values.size
    total_sum = values.sum()
    total_sq = (values**2).sum()
    base_cost = total_sq - total_sum**2 / n

    prefix_sum = np.cumsum(values)[:-1]
    prefix_sq = np.cumsum(values**2)[:-1]
    left_n = np.arange(1, n)
    right_n = n - left_n
    left_cost = prefix_sq - prefix_sum**2 / left_n
    right_sum = total_sum - prefix_sum
    right_sq = total_sq - prefix_sq
    right_cost = right_sq - right_sum**2 / right_n
    split_cost = left_cost + right_cost
    best = int(np.argmin(split_cost))
    return best + 1, float(base_cost - split_cost[best])


def detect_changepoints(
    values: np.ndarray,
    min_segment: int = 5,
    penalty_scale: float = 8.0,
) -> list[Changepoint]:
    """Detect level shifts by binary segmentation.

    Args:
        values: 1-D feature series (e.g. a pump's smoothed ``D_a``).
        min_segment: smallest allowed segment length on either side of a
            split (suppresses single-outlier "changes").
        penalty_scale: a split is accepted when its cost reduction
            exceeds ``penalty_scale * sigma^2 * log(n)`` where ``sigma``
            is the series' robust noise estimate — the BIC-style penalty
            that keeps pure noise split-free.

    Returns:
        Changepoints in index order (possibly empty).
    """
    series = np.asarray(values, dtype=np.float64).ravel()
    if not np.all(np.isfinite(series)):
        raise ValueError("series must be finite")
    if min_segment < 2:
        raise ValueError("min_segment must be at least 2")
    if penalty_scale <= 0:
        raise ValueError("penalty_scale must be positive")
    n = series.size
    if n < 2 * min_segment:
        return []

    # Robust noise estimate from first differences (level shifts affect
    # only a handful of the differences).
    diffs = np.diff(series)
    sigma = 1.4826 * float(np.median(np.abs(diffs - np.median(diffs)))) / np.sqrt(2)
    if sigma <= 0:
        sigma = float(series.std()) * 0.1 or 1e-12
    penalty = penalty_scale * sigma**2 * np.log(n)
    # Floor against floating-point gain noise on (near-)constant series:
    # prefix-sum cancellation produces "gains" around 1e-17 * scale².
    scale = max(float(np.abs(series).max()), 1.0)
    penalty = max(penalty, 1e-9 * scale**2)

    splits: list[int] = []

    def recurse(lo: int, hi: int) -> None:
        segment = series[lo:hi]
        if segment.size < 2 * min_segment:
            return
        split, gain = _best_split(segment)
        if gain < penalty:
            return
        if split < min_segment or segment.size - split < min_segment:
            return
        absolute = lo + split
        splits.append(absolute)
        recurse(lo, absolute)
        recurse(absolute, hi)

    recurse(0, n)
    splits.sort()

    out = []
    boundaries = [0] + splits + [n]
    for i, split in enumerate(splits):
        left = series[boundaries[i] : split]
        right = series[split : boundaries[i + 2]]
        out.append(
            Changepoint(
                index=split,
                mean_before=float(left.mean()),
                mean_after=float(right.mean()),
            )
        )
    return out


def detect_replacements(
    da_series: np.ndarray,
    min_drop: float = 0.1,
    min_segment: int = 5,
) -> list[int]:
    """Indices where an undocumented replacement likely happened.

    A replacement is a changepoint whose level *drops* by at least
    ``min_drop`` — degradation only rises, so a large downward step in
    ``D_a`` means fresh hardware.

    Args:
        da_series: one pump's ``D_a`` series in time order.
        min_drop: smallest drop (in feature units) to call a replacement.
        min_segment: passed through to the changepoint detector.

    Returns:
        Sorted indices of the first measurement after each detected
        replacement.
    """
    if min_drop <= 0:
        raise ValueError("min_drop must be positive")
    changes = detect_changepoints(da_series, min_segment=min_segment)
    return [c.index for c in changes if c.step <= -min_drop]
