"""Core analytical algorithms from the paper.

This subpackage implements the paper's primary contribution: the feature
pipeline (normalization, RMS, DCT-based power spectral density), harmonic
peak extraction, the peak harmonic distance (Algorithm 1), zone
classification, and the recursive-RANSAC Remaining-Useful-Lifetime model.

All functions here are pure numpy/scipy computations over arrays; the
storage, simulation and orchestration layers live in sibling subpackages.
"""

from repro.core.features import (
    FeatureConfig,
    normalize_measurement,
    psd_feature,
    psd_frequencies,
    rms_feature,
)
from repro.core.window import hann_window, moving_average, smooth_hann
from repro.core.peaks import HarmonicPeaks, extract_harmonic_peaks
from repro.core.distance import (
    euclidean_distance,
    mahalanobis_distance,
    peak_harmonic_distance,
)
from repro.core.kde import GaussianKDE1D, min_error_threshold
from repro.core.meanshift import MeanShift, MeanShiftResult
from repro.core.outliers import OutlierConfig, detect_invalid_measurements
from repro.core.classify import (
    ZONE_A,
    ZONE_BC,
    ZONE_D,
    ZONES,
    OrderedThresholdClassifier,
    ZoneClassifier,
)
from repro.core.ransac import (
    LineModel,
    RANSACLineFitter,
    RANSACRegressor,
    RecursiveRANSAC,
    draw_trial_pairs,
    fit_line_least_squares,
)
from repro.core.rul import RULEstimator, RULPrediction, learn_zone_d_threshold
from repro.core.pipeline import AnalysisPipeline, PipelineConfig, PipelineResult
from repro.core.spectral import ConditionIndicators, condition_indicators
from repro.core.forecast import (
    ARForecaster,
    CrossingForecast,
    HoltLinearForecaster,
    crossing_forecast,
)
from repro.core.diagnosis import Diagnosis, SpectralDiagnoser
from repro.core.changepoint import (
    Changepoint,
    detect_changepoints,
    detect_replacements,
)
from repro.core.severity import SeverityAssessment, assess_severity, velocity_rms_mm_s
from repro.core.spectral import envelope_spectrum

__all__ = [
    "FeatureConfig",
    "normalize_measurement",
    "rms_feature",
    "psd_feature",
    "psd_frequencies",
    "hann_window",
    "smooth_hann",
    "moving_average",
    "HarmonicPeaks",
    "extract_harmonic_peaks",
    "peak_harmonic_distance",
    "euclidean_distance",
    "mahalanobis_distance",
    "GaussianKDE1D",
    "min_error_threshold",
    "MeanShift",
    "MeanShiftResult",
    "OutlierConfig",
    "detect_invalid_measurements",
    "ZONE_A",
    "ZONE_BC",
    "ZONE_D",
    "ZONES",
    "OrderedThresholdClassifier",
    "ZoneClassifier",
    "LineModel",
    "fit_line_least_squares",
    "RANSACLineFitter",
    "RANSACRegressor",
    "RecursiveRANSAC",
    "learn_zone_d_threshold",
    "RULEstimator",
    "RULPrediction",
    "AnalysisPipeline",
    "PipelineConfig",
    "PipelineResult",
    "ConditionIndicators",
    "condition_indicators",
    "HoltLinearForecaster",
    "ARForecaster",
    "CrossingForecast",
    "crossing_forecast",
    "draw_trial_pairs",
    "Diagnosis",
    "SpectralDiagnoser",
    "Changepoint",
    "detect_changepoints",
    "detect_replacements",
    "SeverityAssessment",
    "assess_severity",
    "velocity_rms_mm_s",
    "envelope_spectrum",
]
