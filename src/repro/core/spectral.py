"""Classical vibration condition indicators.

The paper's pipeline rests on RMS and the harmonic peak feature, but a
production vibration-analytics engine also exposes the standard scalar
condition indicators that maintenance engineers expect (ISO 10816-style
severity assessment, bearing diagnostics).  They complement ``D_a``: all
are cheap per-measurement scalars the GUI can trend, and several are used
by the extended examples.

All indicators operate on a normalized measurement block or its PSD.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.signal import hilbert

from repro.core.features import normalize_measurement, psd_feature, psd_frequencies


def crest_factor(samples: np.ndarray) -> float:
    """Peak-to-RMS ratio of the combined vibration magnitude.

    Grows when impulsive events (bearing impacts) punctuate an otherwise
    smooth signal; a healthy sinusoid sits near ``sqrt(2)``.
    """
    normalized = normalize_measurement(samples)
    magnitude = np.linalg.norm(normalized, axis=1)
    rms = float(np.sqrt((magnitude**2).mean()))
    if rms == 0:
        return 0.0
    return float(magnitude.max() / rms)


def kurtosis(samples: np.ndarray) -> float:
    """Excess kurtosis of the combined vibration signal.

    Near 0 for Gaussian vibration; strongly positive for impulsive
    (damaged-bearing) signals.  Computed over all axes pooled.
    """
    normalized = normalize_measurement(samples).ravel()
    std = normalized.std()
    if std == 0:
        return 0.0
    return float(((normalized / std) ** 4).mean() - 3.0)


def peak_to_peak(samples: np.ndarray) -> float:
    """Largest peak-to-peak swing across the three axes, in g."""
    normalized = normalize_measurement(samples)
    return float(np.ptp(normalized, axis=0).max())


def band_energies(
    psd: np.ndarray,
    frequencies: np.ndarray,
    edges: tuple[float, ...],
) -> np.ndarray:
    """Total PSD energy inside each band ``[edges[i], edges[i+1])``.

    Args:
        psd: 1-D PSD vector.
        frequencies: bin frequencies aligned with ``psd``.
        edges: strictly increasing band edges in Hz (``n`` edges define
            ``n - 1`` bands).

    Returns:
        Array of ``len(edges) - 1`` band energies.
    """
    psd_arr = np.asarray(psd, dtype=np.float64)
    freq_arr = np.asarray(frequencies, dtype=np.float64)
    if psd_arr.shape != freq_arr.shape:
        raise ValueError("psd and frequencies must align")
    edge_arr = np.asarray(edges, dtype=np.float64)
    if edge_arr.size < 2 or not np.all(np.diff(edge_arr) > 0):
        raise ValueError("edges must be at least 2 strictly increasing values")
    # Bin each frequency into its band (0 = below the first edge) and
    # accumulate band sums in one pass; bincount index n_bands+1 collects
    # the at-or-above-last-edge tail, dropped with the below-first bucket.
    band = np.searchsorted(edge_arr, freq_arr, side="right")
    sums = np.bincount(band, weights=psd_arr, minlength=edge_arr.size + 1)
    return sums[1 : edge_arr.size]


def spectral_centroid(psd: np.ndarray, frequencies: np.ndarray) -> float:
    """Energy-weighted mean frequency of the spectrum.

    Shifts upward as degradation injects high-frequency content — a
    single-number proxy for the paper's "abnormal equipment gives off
    high-frequency noise" observation.
    """
    psd_arr = np.asarray(psd, dtype=np.float64)
    freq_arr = np.asarray(frequencies, dtype=np.float64)
    if psd_arr.shape != freq_arr.shape:
        raise ValueError("psd and frequencies must align")
    total = psd_arr.sum()
    if total <= 0:
        return 0.0
    return float((psd_arr * freq_arr).sum() / total)


def spectral_entropy(psd: np.ndarray) -> float:
    """Normalized Shannon entropy of the PSD in [0, 1].

    Low for a clean harmonic spectrum (energy concentrated in few bins),
    approaching 1 as broadband noise flattens the spectrum.
    """
    psd_arr = np.asarray(psd, dtype=np.float64)
    total = psd_arr.sum()
    if psd_arr.size < 2 or total <= 0:
        return 0.0
    p = psd_arr / total
    nonzero = p[p > 0]
    entropy = float(-(nonzero * np.log(nonzero)).sum())
    return entropy / float(np.log(psd_arr.size))


def envelope_spectrum(
    samples: np.ndarray,
    sampling_rate_hz: float,
    carrier_band_hz: tuple[float, float] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Envelope (demodulated) spectrum — the classical bearing analysis.

    Early bearing defects produce periodic *impacts* that amplitude-
    modulate the machine's high-frequency resonances: the defect's
    repetition rate is invisible in the raw spectrum but dominates the
    spectrum of the signal's *envelope*.  The analysis: band-pass around
    the resonance carrier, take the analytic signal's magnitude (Hilbert
    transform), and return that envelope's spectrum.

    Args:
        samples: raw acceleration block ``(K, 3)`` in g.
        sampling_rate_hz: sampling rate.
        carrier_band_hz: band to demodulate; defaults to the upper half
            of the spectrum (resonance territory).

    Returns:
        ``(frequencies, envelope_psd)`` of the demodulated signal; the
        frequency axis spans DC to Nyquist like the ordinary PSD.
    """
    normalized = normalize_measurement(samples)
    k = normalized.shape[0]
    if carrier_band_hz is None:
        carrier_band_hz = (sampling_rate_hz / 8.0, sampling_rate_hz / 2.0)
    lo, hi = carrier_band_hz
    if not 0 <= lo < hi:
        raise ValueError("carrier_band_hz must satisfy 0 <= low < high")

    # Band-pass via FFT masking (zero-phase, exact band edges).
    spectrum = np.fft.rfft(normalized, axis=0)
    freqs = np.fft.rfftfreq(k, d=1.0 / sampling_rate_hz)
    mask = (freqs >= lo) & (freqs <= hi)
    spectrum[~mask] = 0.0
    band_signal = np.fft.irfft(spectrum, n=k, axis=0)

    # Envelope per axis, combined by magnitude; its mean is removed so
    # the envelope spectrum shows modulation, not the carrier level.
    envelope = np.abs(hilbert(band_signal, axis=0))
    combined = np.linalg.norm(envelope, axis=1)
    combined -= combined.mean()
    env_block = np.stack([combined, np.zeros(k), np.zeros(k)], axis=1)
    return psd_frequencies(k, sampling_rate_hz), psd_feature(env_block)


@dataclass(frozen=True)
class ConditionIndicators:
    """Bundle of scalar condition indicators for one measurement.

    Attributes mirror the individual functions of this module; see each
    function for interpretation.
    """

    rms: float
    crest_factor: float
    kurtosis: float
    peak_to_peak: float
    spectral_centroid_hz: float
    spectral_entropy: float
    high_frequency_energy: float

    def as_dict(self) -> dict[str, float]:
        return {
            "rms": self.rms,
            "crest_factor": self.crest_factor,
            "kurtosis": self.kurtosis,
            "peak_to_peak": self.peak_to_peak,
            "spectral_centroid_hz": self.spectral_centroid_hz,
            "spectral_entropy": self.spectral_entropy,
            "high_frequency_energy": self.high_frequency_energy,
        }


def condition_indicators(
    samples: np.ndarray,
    sampling_rate_hz: float,
    high_frequency_cutoff_hz: float = 1000.0,
) -> ConditionIndicators:
    """Compute the full indicator bundle for one measurement block.

    Args:
        samples: raw acceleration block ``(K, 3)`` in g.
        sampling_rate_hz: sampling rate for the frequency axis.
        high_frequency_cutoff_hz: boundary for the high-frequency energy
            indicator.
    """
    from repro.core.features import rms_feature

    psd = psd_feature(samples)
    freqs = psd_frequencies(psd.size, sampling_rate_hz)
    hf = freqs >= high_frequency_cutoff_hz
    return ConditionIndicators(
        rms=rms_feature(samples),
        crest_factor=crest_factor(samples),
        kurtosis=kurtosis(samples),
        peak_to_peak=peak_to_peak(samples),
        spectral_centroid_hz=spectral_centroid(psd, freqs),
        spectral_entropy=spectral_entropy(psd),
        high_frequency_energy=float(psd[hf].sum()),
    )
