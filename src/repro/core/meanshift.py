"""Mean-shift clustering (Comaniciu & Meer, 2002).

The preprocessing layer uses mean shift over the 3-D per-measurement
acceleration averages to detect invalid measurements produced by sensor
offset drift or abrupt offset jumps (Fig. 8 of the paper).  scikit-learn is
unavailable offline, so this is a from-scratch implementation with a flat
(uniform ball) kernel, the variant used in sklearn's ``MeanShift``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MeanShiftResult:
    """Outcome of a mean-shift run.

    Attributes:
        labels: cluster index per input point, shape ``(n,)``.
        centers: cluster modes, shape ``(n_clusters, d)``, ordered by
            descending cluster size.
        bandwidth: bandwidth actually used (estimated when not supplied).
    """

    labels: np.ndarray
    centers: np.ndarray
    bandwidth: float

    @property
    def n_clusters(self) -> int:
        return int(self.centers.shape[0])

    def cluster_sizes(self) -> np.ndarray:
        """Number of members per cluster, aligned with ``centers``."""
        return np.bincount(self.labels, minlength=self.n_clusters)


def _sq_norms(points: np.ndarray) -> np.ndarray:
    """Row-wise squared Euclidean norms."""
    return np.einsum("ij,ij->i", points, points)


def _pairwise_sq_distances(
    a: np.ndarray, b: np.ndarray, b_sq: np.ndarray | None = None
) -> np.ndarray:
    """Squared Euclidean distance matrix via the expanded quadratic form.

    ``|a - b|^2 = |a|^2 + |b|^2 - 2 a.b`` turns the pairwise distance
    computation into one BLAS matmul instead of materializing the
    ``(len(a), len(b), d)`` difference tensor — the dominant cost of the
    naive form at fleet scale.  Cancellation can produce tiny negative
    values for near-coincident points, so the result is clamped at zero.
    """
    if b_sq is None:
        b_sq = _sq_norms(b)
    sq = _sq_norms(a)[:, None] + b_sq[None, :]
    sq -= 2.0 * (a @ b.T)
    np.maximum(sq, 0.0, out=sq)
    return sq


def estimate_bandwidth(points: np.ndarray, quantile: float = 0.3) -> float:
    """Bandwidth estimate: the given quantile of pairwise distances.

    Mirrors sklearn's ``estimate_bandwidth`` heuristic (average distance to
    the k-th nearest neighbour with ``k = quantile * n``), computed exactly
    for the moderate point counts used here.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    n = pts.shape[0]
    if n < 2:
        return 1.0
    if not 0.0 < quantile <= 1.0:
        raise ValueError("quantile must be in (0, 1]")
    dists = np.sqrt(_pairwise_sq_distances(pts, pts))
    k = max(1, min(n - 1, int(round(quantile * n))))
    kth = np.sort(dists, axis=1)[:, k]
    bandwidth = float(kth.mean())
    if bandwidth <= 0:
        # All points coincide along the k-th neighbour; fall back to the
        # largest pairwise distance or unity.
        bandwidth = float(dists.max()) or 1.0
    return bandwidth


class MeanShift:
    """Flat-kernel mean-shift clustering.

    Every input point is used as a seed; each seed iteratively moves to the
    mean of the points within ``bandwidth`` until convergence, and the
    converged modes are merged when closer than ``bandwidth``.  Points are
    finally labeled by their nearest mode.
    """

    def __init__(
        self,
        bandwidth: float | None = None,
        max_iterations: int = 300,
        convergence_tol: float | None = None,
    ):
        """Create a clusterer.

        Args:
            bandwidth: flat-kernel radius; estimated from the data when
                None.
            max_iterations: per-seed iteration cap.
            convergence_tol: movement below which a seed is converged;
                defaults to ``1e-3 * bandwidth``.
        """
        if bandwidth is not None and bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if max_iterations < 1:
            raise ValueError("max_iterations must be positive")
        self.bandwidth = bandwidth
        self.max_iterations = max_iterations
        self.convergence_tol = convergence_tol

    def fit(self, points: np.ndarray) -> MeanShiftResult:
        """Cluster ``points`` of shape ``(n, d)``."""
        pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if pts.ndim != 2:
            raise ValueError("points must be a 2-D array (n, d)")
        n = pts.shape[0]
        if n == 0:
            raise ValueError("cannot cluster an empty point set")
        bandwidth = self.bandwidth if self.bandwidth is not None else estimate_bandwidth(pts)
        tol = self.convergence_tol if self.convergence_tol is not None else 1e-3 * bandwidth

        # All seeds advance in lockstep: one vectorized distance matrix
        # per round, and every seed's new center comes from a single
        # members @ points matmul (the flat-kernel mean is just a
        # normalized indicator product) instead of one masked mean and
        # one norm call per seed per iteration.  A converged seed is
        # frozen and drops out of later rounds.
        modes = pts.copy()
        active = np.ones(n, dtype=bool)
        pts_sq = _sq_norms(pts)
        sq_bandwidth = bandwidth * bandwidth
        # Seeds per round chunk: bounds the (seeds, n) distance matrix.
        seed_chunk = max(1, int(4_000_000 // max(n, 1)))
        for _ in range(self.max_iterations):
            idx = np.nonzero(active)[0]
            if idx.size == 0:
                break
            for lo in range(0, idx.size, seed_chunk):
                rows = idx[lo : lo + seed_chunk]
                # Membership only needs the squared-distance comparison,
                # so the sqrt over the (seeds, n) matrix is skipped.
                members = _pairwise_sq_distances(modes[rows], pts, pts_sq) <= sq_bandwidth
                counts = members.sum(axis=1)
                new_centers = (members.astype(np.float64) @ pts) / counts[:, None]
                shifts = np.linalg.norm(new_centers - modes[rows], axis=1)
                modes[rows] = new_centers
                active[rows[shifts < tol]] = False

        centers = _merge_modes(modes, bandwidth)
        # Label points by the nearest merged mode (squared distances
        # share the argmin with true distances).
        labels = _pairwise_sq_distances(pts, centers).argmin(axis=1)
        # Reorder clusters by descending size so label 0 is the main cluster.
        sizes = np.bincount(labels, minlength=centers.shape[0])
        order = np.argsort(sizes)[::-1]
        remap = np.empty_like(order)
        remap[order] = np.arange(order.size)
        return MeanShiftResult(labels=remap[labels], centers=centers[order], bandwidth=bandwidth)


def _merge_modes(modes: np.ndarray, bandwidth: float) -> np.ndarray:
    """Greedily merge converged modes closer than ``bandwidth``.

    Modes are processed in descending local-density order (number of other
    modes within the bandwidth) so denser basins absorb their satellites,
    as in the reference implementation.
    """
    n = modes.shape[0]
    within = _pairwise_sq_distances(modes, modes) <= bandwidth * bandwidth
    density = within.sum(axis=1)
    order = np.argsort(density)[::-1]
    kept: list[int] = []
    suppressed = np.zeros(n, dtype=bool)
    for idx in order:
        if suppressed[idx]:
            continue
        kept.append(idx)
        suppressed |= within[idx]
    return modes[kept]
