"""RANSAC and Recursive RANSAC lifetime-model discovery (Sec. IV-C, Fig. 15).

``D_a`` is expected to grow monotonically with service time, but a fleet
mixes equipment populations with different ageing rates, and maintenance
events inject points that belong to no single linear trend.  The paper
handles both with Random Sample Consensus (Fischler & Bolles, 1981):

* one RANSAC pass finds the most supported increasing line ``D_a = θ·x + b``
  and marks everything else as outliers, and
* *Recursive RANSAC* re-runs RANSAC on the outliers until no further
  monotonically increasing line (slope above a threshold) with sufficient
  support can be found, yielding one linear lifetime model per latent
  equipment population (the paper finds two: Model I and Model II).

Execution model
---------------
:class:`RANSACLineFitter` evaluates all trials as one batched kernel:
every minimal-sample pair is drawn up front (:func:`draw_trial_pairs`,
the RNG-stream contract), slopes/intercepts/admissibility are computed
as vectors, and the (trials × N) residual matrix is walked in tiled
blocks through reused scratch buffers so the working set stays cache
resident at fleet scale.  When the optional fused C kernel
(:mod:`repro.core._native`) compiles on the host machine, consensus
counting runs through it instead of the tiled numpy passes — same
operation sequence, same bits, one memory traversal instead of six.
:meth:`RANSACLineFitter.fit_reference` keeps
the per-trial scalar loop over the *same* drawn pairs as the reference
implementation of record: both paths consume the identical RNG stream
and return bit-identical models (same slope/intercept floats, same
inlier indices) — the property suite in ``tests/core/test_ransac.py``
enforces this.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.core import _native

#: float64 elements per tiled residual block (~2 MiB): the scratch row
#: block stays inside L2 while each tile still amortizes numpy dispatch
#: over hundreds of trials.
RANSAC_TILE_ELEMENTS = 1 << 18


def draw_trial_pairs(
    rng: np.random.Generator, n_points: int, n_pairs: int
) -> np.ndarray:
    """Draw ``n_pairs`` distinct index pairs — the RNG-stream contract.

    All of the model layer's randomness flows through this one function
    so the batched and scalar-reference fitters consume *exactly* the
    same stream.  The contract, in order:

    1. ``first  = rng.integers(0, n_points, size=n_pairs)``
    2. ``second = rng.integers(0, n_points - 1, size=n_pairs)``, then
       shifted up by one wherever ``second >= first``.

    Two bulk draws, no per-trial calls; the shift makes ``second``
    uniform over the ``n_points - 1`` indices distinct from ``first``,
    so each pair is a uniform ordered sample without replacement.

    Args:
        rng: generator to consume.
        n_points: population size (must be at least 2).
        n_pairs: number of pairs to draw.

    Returns:
        ``(n_pairs, 2)`` integer array of distinct index pairs.
    """
    if n_points < 2:
        raise ValueError("need at least two points to draw sample pairs")
    if n_pairs < 0:
        raise ValueError("n_pairs must be non-negative")
    first = rng.integers(0, n_points, size=n_pairs)
    second = rng.integers(0, n_points - 1, size=n_pairs)
    second = second + (second >= first)
    return np.stack([first, second], axis=1)


@dataclass(frozen=True)
class LineModel:
    """A fitted linear lifetime model ``z = slope * x + intercept``.

    Attributes:
        slope: degradation rate (feature units per day).
        intercept: feature value extrapolated to service time 0.
        inlier_indices: indices (into the fitted arrays) of supporting
            points.
        residual_threshold: inlier band half-width used during fitting.
    """

    slope: float
    intercept: float
    inlier_indices: np.ndarray
    residual_threshold: float

    @property
    def n_inliers(self) -> int:
        return int(self.inlier_indices.size)

    def predict(self, x: np.ndarray | float) -> np.ndarray | float:
        """Feature value predicted at service time(s) ``x``."""
        return self.slope * np.asarray(x, dtype=np.float64) + self.intercept

    def crossing_time(self, threshold: float) -> float:
        """Service time at which the line reaches ``threshold``.

        Returns ``inf`` for non-increasing lines that never reach an
        above-line threshold.
        """
        if self.slope <= 0:
            return np.inf if threshold > self.intercept else 0.0
        return (threshold - self.intercept) / self.slope

    def residuals(self, x: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Absolute residuals of points against this line."""
        return np.abs(np.asarray(z, dtype=np.float64) - self.predict(np.asarray(x)))


def fit_line_least_squares(x: np.ndarray, z: np.ndarray) -> tuple[float, float]:
    """Ordinary least squares line fit returning ``(slope, intercept)``."""
    xs = np.asarray(x, dtype=np.float64).ravel()
    zs = np.asarray(z, dtype=np.float64).ravel()
    if xs.size != zs.size:
        raise ValueError("x and z must have equal length")
    if xs.size < 2:
        raise ValueError("need at least two points to fit a line")
    x_mean = xs.mean()
    z_mean = zs.mean()
    denom = ((xs - x_mean) ** 2).sum()
    if denom == 0:
        raise ValueError("cannot fit a line to points with identical x")
    slope = float(((xs - x_mean) * (zs - z_mean)).sum() / denom)
    intercept = float(z_mean - slope * x_mean)
    return slope, intercept


class RANSACLineFitter:
    """Robust line fitting by random sample consensus, batched.

    Fits a line through every random minimal sample (two points), counts
    the points within ``residual_threshold`` of each candidate, and keeps
    the line with the largest consensus set (earliest trial wins ties),
    which is finally refined by least squares over its inliers.

    :meth:`fit` runs all trials as one vectorized kernel; the tie-break,
    slope admissibility and refinement replicate the per-trial scalar
    loop exactly, which remains available as :meth:`fit_reference` (the
    parity reference — same RNG stream, bit-identical model).
    """

    def __init__(
        self,
        residual_threshold: float | None = None,
        max_trials: int = 300,
        min_slope: float | None = None,
        max_slope: float | None = None,
        seed: int | np.random.Generator | None = 0,
    ):
        """Create a fitter.

        Args:
            residual_threshold: inlier band half-width; when None it is
                set to the median absolute deviation of ``z`` (sklearn's
                default rule).
            max_trials: number of random minimal samples to draw.
            min_slope: candidate lines with a smaller slope are rejected
                (set to a small positive value to demand increasing
                trends, as the lifetime model requires).
            max_slope: optional upper bound on candidate slopes.
            seed: RNG seed or generator for reproducible fits.
        """
        if max_trials < 1:
            raise ValueError("max_trials must be positive")
        if residual_threshold is not None and residual_threshold <= 0:
            raise ValueError("residual_threshold must be positive")
        self.residual_threshold = residual_threshold
        self.max_trials = max_trials
        self.min_slope = min_slope
        self.max_slope = max_slope
        self._rng = np.random.default_rng(seed)
        # Tiled-kernel scratch, reused across fits (recursive peeling and
        # walk-forward backtests call fit() many times per engine).
        self._resid_scratch: np.ndarray | None = None
        self._mask_scratch: np.ndarray | None = None

    def _slope_ok(self, slope: float) -> bool:
        if self.min_slope is not None and slope < self.min_slope:
            return False
        if self.max_slope is not None and slope > self.max_slope:
            return False
        return True

    def _prepare(
        self, x: np.ndarray, z: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, float] | None:
        """Validate inputs and resolve the inlier band half-width."""
        xs = np.asarray(x, dtype=np.float64).ravel()
        zs = np.asarray(z, dtype=np.float64).ravel()
        if xs.size != zs.size:
            raise ValueError("x and z must have equal length")
        if xs.size < 2:
            return None

        threshold = self.residual_threshold
        if threshold is None:
            mad = float(np.median(np.abs(zs - np.median(zs))))
            threshold = mad if mad > 0 else max(1e-6, float(np.abs(zs).max()) * 1e-3)
        return xs, zs, float(threshold)

    def _refine(
        self,
        xs: np.ndarray,
        zs: np.ndarray,
        best_mask: np.ndarray,
        threshold: float,
    ) -> LineModel | None:
        """Least-squares refinement on the winning consensus set.

        Shared verbatim by the batched and reference paths: refine on the
        consensus set, then re-evaluate inliers once (the refit line
        usually captures a slightly larger consensus set).
        """
        slope, intercept = fit_line_least_squares(xs[best_mask], zs[best_mask])
        if not self._slope_ok(slope):
            # Keep the unrefined model when refinement violates the slope
            # constraint; rebuild it from the consensus mask.
            idx = np.nonzero(best_mask)[0]
            slope, intercept = fit_line_least_squares(xs[idx], zs[idx])
            if not self._slope_ok(slope):
                return None
        residuals = np.abs(zs - (slope * xs + intercept))
        final_mask = residuals <= threshold
        if final_mask.sum() < 2:
            final_mask = best_mask
        return LineModel(
            slope=float(slope),
            intercept=float(intercept),
            inlier_indices=np.nonzero(final_mask)[0],
            residual_threshold=float(threshold),
        )

    def _consensus_counts(
        self,
        xs: np.ndarray,
        zs: np.ndarray,
        slopes: np.ndarray,
        intercepts: np.ndarray,
        admissible: np.ndarray,
        threshold: float,
    ) -> np.ndarray:
        """Inlier count per trial: fused C kernel, else numpy tiles.

        Only admissible trials are evaluated.  Both kernels compute
        ``|z - (slope * x + intercept)| <= threshold`` with the exact
        elementwise operation sequence of the scalar loop, so the counts
        — and therefore the winning trial — are bit-identical to it.
        """
        native = _native.consensus_counts(
            xs, zs, slopes, intercepts, admissible, threshold
        )
        if native is not None:
            return native
        n = xs.size
        counts = np.zeros(slopes.size, dtype=np.int64)
        rows = max(1, RANSAC_TILE_ELEMENTS // max(1, n))
        if (
            self._resid_scratch is None
            or self._resid_scratch.shape[0] < rows
            or self._resid_scratch.shape[1] != n
        ):
            self._resid_scratch = np.empty((rows, n))
            self._mask_scratch = np.empty((rows, n), dtype=bool)
        trial_idx = np.nonzero(admissible)[0]
        for lo in range(0, trial_idx.size, rows):
            sel = trial_idx[lo : lo + rows]
            buf = self._resid_scratch[: sel.size]
            mask = self._mask_scratch[: sel.size]
            np.multiply(slopes[sel, None], xs[None, :], out=buf)
            buf += intercepts[sel, None]
            np.subtract(zs[None, :], buf, out=buf)
            np.abs(buf, out=buf)
            np.less_equal(buf, threshold, out=mask)
            counts[sel] = mask.sum(axis=1)
        return counts

    def fit(
        self, x: np.ndarray, z: np.ndarray, pairs: np.ndarray | None = None
    ) -> LineModel | None:
        """Fit the most supported line; None when no admissible line exists.

        Args:
            x: service times.
            z: feature values, same length.
            pairs: optional pre-drawn ``(trials, 2)`` minimal-sample index
                pairs (:func:`draw_trial_pairs`); drawn from the fitter's
                own RNG when omitted.  :class:`RecursiveRANSAC` passes
                surviving pairs between peeling iterations through this.
        """
        prepared = self._prepare(x, z)
        if prepared is None:
            return None
        xs, zs, threshold = prepared
        if pairs is None:
            pairs = draw_trial_pairs(self._rng, xs.size, self.max_trials)

        first = pairs[:, 0]
        second = pairs[:, 1]
        xi = xs[first]
        zi = zs[first]
        dx = xs[second] - xi
        dz = zs[second] - zi
        admissible = dx != 0.0
        slopes = np.zeros(pairs.shape[0])
        np.divide(dz, dx, out=slopes, where=admissible)
        if self.min_slope is not None:
            admissible &= slopes >= self.min_slope
        if self.max_slope is not None:
            admissible &= slopes <= self.max_slope
        if not admissible.any():
            return None
        intercepts = zi - slopes * xi

        counts = self._consensus_counts(
            xs, zs, slopes, intercepts, admissible, threshold
        )
        # First-win tie-break: the scalar loop only replaces its champion
        # on a strictly larger count, and argmax returns the earliest
        # maximum.  Inadmissible trials hold count 0 and can never win
        # (every admissible trial supports at least its own two points).
        best = int(np.argmax(counts))
        if counts[best] < 2:
            return None
        residuals = np.abs(zs - (slopes[best] * xs + intercepts[best]))
        best_mask = residuals <= threshold
        return self._refine(xs, zs, best_mask, threshold)

    def fit_reference(
        self, x: np.ndarray, z: np.ndarray, pairs: np.ndarray | None = None
    ) -> LineModel | None:
        """Scalar per-trial reference implementation of :meth:`fit`.

        Consumes the same RNG stream (pairs come from
        :func:`draw_trial_pairs` either way) and returns a bit-identical
        model; kept as the parity baseline and for perf comparisons.
        """
        prepared = self._prepare(x, z)
        if prepared is None:
            return None
        xs, zs, threshold = prepared
        if pairs is None:
            pairs = draw_trial_pairs(self._rng, xs.size, self.max_trials)

        best_mask: np.ndarray | None = None
        best_count = 0
        for i, j in pairs:
            dx = xs[j] - xs[i]
            if dx == 0:
                continue
            slope = (zs[j] - zs[i]) / dx
            if not self._slope_ok(slope):
                continue
            intercept = zs[i] - slope * xs[i]
            residuals = np.abs(zs - (slope * xs + intercept))
            mask = residuals <= threshold
            count = int(mask.sum())
            if count > best_count:
                best_count = count
                best_mask = mask

        if best_mask is None or best_count < 2:
            return None
        return self._refine(xs, zs, best_mask, threshold)


#: Backward-compatible name: the regressor has been a batched fitter
#: since the model-layer vectorization; existing callers keep working.
RANSACRegressor = RANSACLineFitter


class RecursiveRANSAC:
    """Discover multiple linear lifetime models in mixed fleet data.

    Runs RANSAC, removes the inliers of the discovered model, and repeats
    on the remaining outliers until either no admissible increasing line
    is found or its support falls below ``min_inliers``.  Models are
    returned ordered by decreasing support; each point belongs to at most
    one model.

    Between peeling iterations the surviving trial pairs — those whose
    two sample points were *not* absorbed by the accepted model — are
    remapped into the peeled index space and reused; only the deficit up
    to ``max_trials`` is redrawn.  Outlier-to-outlier sample pairs are
    exactly the trials that can seed the next population's line, so
    reusing them preserves trial quality while consuming less RNG stream
    and less sampling time per level.
    """

    def __init__(
        self,
        residual_threshold: float | None = None,
        max_trials: int = 300,
        min_slope: float = 1e-12,
        min_inliers: int = 10,
        max_models: int = 8,
        slope_merge_tolerance: float = 0.35,
        seed: int | np.random.Generator | None = 0,
        engine: str = "batched",
    ):
        """Create a recursive model finder.

        Args:
            residual_threshold: inlier band half-width per model.
            max_trials: RANSAC trials per recursion level.
            min_slope: smallest admissible degradation rate.
            min_inliers: minimum support for a model to be kept.
            max_models: recursion cap.
            slope_merge_tolerance: after discovery, models whose slopes
                agree within this relative tolerance are merged and
                refitted — equipment of the same population but different
                install offsets otherwise shows up as parallel duplicate
                lines.  0 disables merging.
            seed: RNG seed.
            engine: ``"batched"`` (default) evaluates trials through the
                vectorized kernel; ``"reference"`` runs the scalar
                per-trial loop.  Both consume the same RNG stream and
                produce bit-identical models.
        """
        if min_inliers < 2:
            raise ValueError("min_inliers must be at least 2")
        if max_models < 1:
            raise ValueError("max_models must be positive")
        if slope_merge_tolerance < 0:
            raise ValueError("slope_merge_tolerance must be non-negative")
        if engine not in ("batched", "reference"):
            raise ValueError(
                f"engine must be 'batched' or 'reference', got {engine!r}"
            )
        self.residual_threshold = residual_threshold
        self.max_trials = max_trials
        self.min_slope = min_slope
        self.min_inliers = min_inliers
        self.max_models = max_models
        self.slope_merge_tolerance = slope_merge_tolerance
        self.engine = engine
        self._rng = np.random.default_rng(seed)
        # Snapshot the pristine RNG state so clone() can replay this
        # engine's exact fit sequence (walk-forward backtests clone per
        # refresh day to keep every day independently reproducible) and
        # config_key() can content-address fits.
        self._bitgen_cls = type(self._rng.bit_generator)
        self._initial_rng_state = copy.deepcopy(self._rng.bit_generator.state)

    def clone(self) -> "RecursiveRANSAC":
        """A fresh engine with identical config and pristine RNG state.

        ``engine.clone().fit(x, z)`` always returns the same models for
        the same data, no matter how many fits the original has already
        run — the reproducibility contract the backtester relies on.
        """
        dup = RecursiveRANSAC(
            residual_threshold=self.residual_threshold,
            max_trials=self.max_trials,
            min_slope=self.min_slope,
            min_inliers=self.min_inliers,
            max_models=self.max_models,
            slope_merge_tolerance=self.slope_merge_tolerance,
            seed=0,
            engine=self.engine,
        )
        rng = np.random.Generator(self._bitgen_cls())
        rng.bit_generator.state = copy.deepcopy(self._initial_rng_state)
        dup._rng = rng
        dup._bitgen_cls = self._bitgen_cls
        dup._initial_rng_state = copy.deepcopy(self._initial_rng_state)
        return dup

    def config_key(self) -> tuple:
        """Hashable fingerprint of everything that determines a fit.

        Two engines with equal keys produce bit-identical models on
        equal data, so the key (plus a content digest of the data) can
        memoize fits — see
        :class:`~repro.runtime.cache.ModelFitCache`.
        """
        return (
            "recursive-ransac",
            self.engine,
            self.residual_threshold,
            self.max_trials,
            self.min_slope,
            self.min_inliers,
            self.max_models,
            self.slope_merge_tolerance,
            repr(self._initial_rng_state),
        )

    def fit(self, x: np.ndarray, z: np.ndarray) -> list[LineModel]:
        """Return the discovered lifetime models (possibly empty).

        The ``inlier_indices`` of every returned model index into the
        *original* ``x``/``z`` arrays.
        """
        xs = np.asarray(x, dtype=np.float64).ravel()
        zs = np.asarray(z, dtype=np.float64).ravel()
        if xs.size != zs.size:
            raise ValueError("x and z must have equal length")

        fitter = RANSACLineFitter(
            residual_threshold=self.residual_threshold,
            max_trials=self.max_trials,
            min_slope=self.min_slope,
            seed=self._rng,
        )
        fit_once = fitter.fit if self.engine == "batched" else fitter.fit_reference

        remaining = np.arange(xs.size)
        pairs: np.ndarray | None = None
        models: list[LineModel] = []
        while remaining.size >= self.min_inliers and len(models) < self.max_models:
            if pairs is None:
                pairs = draw_trial_pairs(self._rng, remaining.size, self.max_trials)
            elif pairs.shape[0] < self.max_trials:
                top_up = draw_trial_pairs(
                    self._rng, remaining.size, self.max_trials - pairs.shape[0]
                )
                pairs = np.concatenate([pairs, top_up], axis=0)
            model = fit_once(xs[remaining], zs[remaining], pairs=pairs)
            if model is None or model.n_inliers < self.min_inliers:
                break
            global_inliers = remaining[model.inlier_indices]
            models.append(
                LineModel(
                    slope=model.slope,
                    intercept=model.intercept,
                    inlier_indices=global_inliers,
                    residual_threshold=model.residual_threshold,
                )
            )
            keep = np.ones(remaining.size, dtype=bool)
            keep[model.inlier_indices] = False
            # Reuse outlier-to-outlier trial pairs at the next level:
            # remap them into the peeled index space, drop pairs that
            # lost an endpoint to the accepted model.
            new_pos = np.cumsum(keep) - 1
            alive = keep[pairs[:, 0]] & keep[pairs[:, 1]]
            pairs = new_pos[pairs[alive]]
            remaining = remaining[keep]
        models = self._merge_similar(models, xs, zs)
        models.sort(key=lambda m: m.n_inliers, reverse=True)
        return models

    def _merge_similar(
        self, models: list[LineModel], xs: np.ndarray, zs: np.ndarray
    ) -> list[LineModel]:
        """Merge models whose slopes agree within the relative tolerance.

        The merged model keeps the dominant member's line (slope and
        intercept are *not* refitted across the union: same-population
        pumps installed at different offsets produce parallel lines, and
        a joint refit would tilt the slope to bridge them).  The union of
        inlier indices becomes the merged support.
        """
        if self.slope_merge_tolerance <= 0 or len(models) < 2:
            return models
        ordered = sorted(models, key=lambda m: m.n_inliers, reverse=True)
        merged: list[LineModel] = []
        for model in ordered:
            host = None
            for idx, existing in enumerate(merged):
                scale = max(abs(existing.slope), abs(model.slope), 1e-30)
                if abs(existing.slope - model.slope) / scale <= self.slope_merge_tolerance:
                    host = idx
                    break
            if host is None:
                merged.append(model)
            else:
                existing = merged[host]
                union = np.union1d(existing.inlier_indices, model.inlier_indices)
                merged[host] = LineModel(
                    slope=existing.slope,
                    intercept=existing.intercept,
                    inlier_indices=union,
                    residual_threshold=existing.residual_threshold,
                )
        return merged

    def assign(self, models: list[LineModel], x: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Assign each point to its best-fitting model (or -1 for none).

        A point is assigned to the model with the smallest residual,
        provided that residual is within the model's inlier band.
        """
        xs = np.asarray(x, dtype=np.float64).ravel()
        zs = np.asarray(z, dtype=np.float64).ravel()
        if not models:
            return np.full(xs.size, -1, dtype=np.intp)
        residuals = np.stack([m.residuals(xs, zs) for m in models], axis=1)
        best = residuals.argmin(axis=1)
        best_resid = residuals[np.arange(xs.size), best]
        bands = np.asarray([m.residual_threshold for m in models])
        assigned = np.where(best_resid <= bands[best], best, -1)
        return assigned.astype(np.intp)
