"""RANSAC and Recursive RANSAC lifetime-model discovery (Sec. IV-C, Fig. 15).

``D_a`` is expected to grow monotonically with service time, but a fleet
mixes equipment populations with different ageing rates, and maintenance
events inject points that belong to no single linear trend.  The paper
handles both with Random Sample Consensus (Fischler & Bolles, 1981):

* one RANSAC pass finds the most supported increasing line ``D_a = θ·x + b``
  and marks everything else as outliers, and
* *Recursive RANSAC* re-runs RANSAC on the outliers until no further
  monotonically increasing line (slope above a threshold) with sufficient
  support can be found, yielding one linear lifetime model per latent
  equipment population (the paper finds two: Model I and Model II).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LineModel:
    """A fitted linear lifetime model ``z = slope * x + intercept``.

    Attributes:
        slope: degradation rate (feature units per day).
        intercept: feature value extrapolated to service time 0.
        inlier_indices: indices (into the fitted arrays) of supporting
            points.
        residual_threshold: inlier band half-width used during fitting.
    """

    slope: float
    intercept: float
    inlier_indices: np.ndarray
    residual_threshold: float

    @property
    def n_inliers(self) -> int:
        return int(self.inlier_indices.size)

    def predict(self, x: np.ndarray | float) -> np.ndarray | float:
        """Feature value predicted at service time(s) ``x``."""
        return self.slope * np.asarray(x, dtype=np.float64) + self.intercept

    def crossing_time(self, threshold: float) -> float:
        """Service time at which the line reaches ``threshold``.

        Returns ``inf`` for non-increasing lines that never reach an
        above-line threshold.
        """
        if self.slope <= 0:
            return np.inf if threshold > self.intercept else 0.0
        return (threshold - self.intercept) / self.slope

    def residuals(self, x: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Absolute residuals of points against this line."""
        return np.abs(np.asarray(z, dtype=np.float64) - self.predict(np.asarray(x)))


def fit_line_least_squares(x: np.ndarray, z: np.ndarray) -> tuple[float, float]:
    """Ordinary least squares line fit returning ``(slope, intercept)``."""
    xs = np.asarray(x, dtype=np.float64).ravel()
    zs = np.asarray(z, dtype=np.float64).ravel()
    if xs.size != zs.size:
        raise ValueError("x and z must have equal length")
    if xs.size < 2:
        raise ValueError("need at least two points to fit a line")
    x_mean = xs.mean()
    z_mean = zs.mean()
    denom = ((xs - x_mean) ** 2).sum()
    if denom == 0:
        raise ValueError("cannot fit a line to points with identical x")
    slope = float(((xs - x_mean) * (zs - z_mean)).sum() / denom)
    intercept = float(z_mean - slope * x_mean)
    return slope, intercept


class RANSACRegressor:
    """Robust line fitting by random sample consensus.

    Repeatedly fits a line through a random minimal sample (two points),
    counts the points within ``residual_threshold`` of it, and keeps the
    line with the largest consensus set, which is finally refined by least
    squares over its inliers.
    """

    def __init__(
        self,
        residual_threshold: float | None = None,
        max_trials: int = 300,
        min_slope: float | None = None,
        max_slope: float | None = None,
        seed: int | np.random.Generator | None = 0,
    ):
        """Create a regressor.

        Args:
            residual_threshold: inlier band half-width; when None it is
                set to the median absolute deviation of ``z`` (sklearn's
                default rule).
            max_trials: number of random minimal samples to draw.
            min_slope: candidate lines with a smaller slope are rejected
                (set to a small positive value to demand increasing
                trends, as the lifetime model requires).
            max_slope: optional upper bound on candidate slopes.
            seed: RNG seed or generator for reproducible fits.
        """
        if max_trials < 1:
            raise ValueError("max_trials must be positive")
        if residual_threshold is not None and residual_threshold <= 0:
            raise ValueError("residual_threshold must be positive")
        self.residual_threshold = residual_threshold
        self.max_trials = max_trials
        self.min_slope = min_slope
        self.max_slope = max_slope
        self._rng = np.random.default_rng(seed)

    def _slope_ok(self, slope: float) -> bool:
        if self.min_slope is not None and slope < self.min_slope:
            return False
        if self.max_slope is not None and slope > self.max_slope:
            return False
        return True

    def fit(self, x: np.ndarray, z: np.ndarray) -> LineModel | None:
        """Fit the most supported line; None when no admissible line exists.

        Args:
            x: service times.
            z: feature values, same length.
        """
        xs = np.asarray(x, dtype=np.float64).ravel()
        zs = np.asarray(z, dtype=np.float64).ravel()
        if xs.size != zs.size:
            raise ValueError("x and z must have equal length")
        if xs.size < 2:
            return None

        threshold = self.residual_threshold
        if threshold is None:
            mad = float(np.median(np.abs(zs - np.median(zs))))
            threshold = mad if mad > 0 else max(1e-6, float(np.abs(zs).max()) * 1e-3)

        best_mask: np.ndarray | None = None
        best_count = 0
        n = xs.size
        for _ in range(self.max_trials):
            i, j = self._rng.choice(n, size=2, replace=False)
            dx = xs[j] - xs[i]
            if dx == 0:
                continue
            slope = (zs[j] - zs[i]) / dx
            if not self._slope_ok(slope):
                continue
            intercept = zs[i] - slope * xs[i]
            residuals = np.abs(zs - (slope * xs + intercept))
            mask = residuals <= threshold
            count = int(mask.sum())
            if count > best_count:
                best_count = count
                best_mask = mask

        if best_mask is None or best_count < 2:
            return None

        # Refine on the consensus set, then re-evaluate inliers once: the
        # refit line usually captures a slightly larger consensus set.
        slope, intercept = fit_line_least_squares(xs[best_mask], zs[best_mask])
        if not self._slope_ok(slope):
            # Keep the unrefined model when refinement violates the slope
            # constraint; rebuild it from the consensus mask.
            idx = np.nonzero(best_mask)[0]
            slope, intercept = fit_line_least_squares(xs[idx], zs[idx])
            if not self._slope_ok(slope):
                return None
        residuals = np.abs(zs - (slope * xs + intercept))
        final_mask = residuals <= threshold
        if final_mask.sum() < 2:
            final_mask = best_mask
        return LineModel(
            slope=float(slope),
            intercept=float(intercept),
            inlier_indices=np.nonzero(final_mask)[0],
            residual_threshold=float(threshold),
        )


class RecursiveRANSAC:
    """Discover multiple linear lifetime models in mixed fleet data.

    Runs RANSAC, removes the inliers of the discovered model, and repeats
    on the remaining outliers until either no admissible increasing line
    is found or its support falls below ``min_inliers``.  Models are
    returned ordered by decreasing support; each point belongs to at most
    one model.
    """

    def __init__(
        self,
        residual_threshold: float | None = None,
        max_trials: int = 300,
        min_slope: float = 1e-12,
        min_inliers: int = 10,
        max_models: int = 8,
        slope_merge_tolerance: float = 0.35,
        seed: int | np.random.Generator | None = 0,
    ):
        """Create a recursive model finder.

        Args:
            residual_threshold: inlier band half-width per model.
            max_trials: RANSAC trials per recursion level.
            min_slope: smallest admissible degradation rate.
            min_inliers: minimum support for a model to be kept.
            max_models: recursion cap.
            slope_merge_tolerance: after discovery, models whose slopes
                agree within this relative tolerance are merged and
                refitted — equipment of the same population but different
                install offsets otherwise shows up as parallel duplicate
                lines.  0 disables merging.
            seed: RNG seed.
        """
        if min_inliers < 2:
            raise ValueError("min_inliers must be at least 2")
        if max_models < 1:
            raise ValueError("max_models must be positive")
        if slope_merge_tolerance < 0:
            raise ValueError("slope_merge_tolerance must be non-negative")
        self.residual_threshold = residual_threshold
        self.max_trials = max_trials
        self.min_slope = min_slope
        self.min_inliers = min_inliers
        self.max_models = max_models
        self.slope_merge_tolerance = slope_merge_tolerance
        self._rng = np.random.default_rng(seed)

    def fit(self, x: np.ndarray, z: np.ndarray) -> list[LineModel]:
        """Return the discovered lifetime models (possibly empty).

        The ``inlier_indices`` of every returned model index into the
        *original* ``x``/``z`` arrays.
        """
        xs = np.asarray(x, dtype=np.float64).ravel()
        zs = np.asarray(z, dtype=np.float64).ravel()
        if xs.size != zs.size:
            raise ValueError("x and z must have equal length")

        remaining = np.arange(xs.size)
        models: list[LineModel] = []
        while remaining.size >= self.min_inliers and len(models) < self.max_models:
            ransac = RANSACRegressor(
                residual_threshold=self.residual_threshold,
                max_trials=self.max_trials,
                min_slope=self.min_slope,
                seed=self._rng,
            )
            model = ransac.fit(xs[remaining], zs[remaining])
            if model is None or model.n_inliers < self.min_inliers:
                break
            global_inliers = remaining[model.inlier_indices]
            models.append(
                LineModel(
                    slope=model.slope,
                    intercept=model.intercept,
                    inlier_indices=global_inliers,
                    residual_threshold=model.residual_threshold,
                )
            )
            keep = np.ones(remaining.size, dtype=bool)
            keep[model.inlier_indices] = False
            remaining = remaining[keep]
        models = self._merge_similar(models, xs, zs)
        models.sort(key=lambda m: m.n_inliers, reverse=True)
        return models

    def _merge_similar(
        self, models: list[LineModel], xs: np.ndarray, zs: np.ndarray
    ) -> list[LineModel]:
        """Merge models whose slopes agree within the relative tolerance.

        The merged model keeps the dominant member's line (slope and
        intercept are *not* refitted across the union: same-population
        pumps installed at different offsets produce parallel lines, and
        a joint refit would tilt the slope to bridge them).  The union of
        inlier indices becomes the merged support.
        """
        if self.slope_merge_tolerance <= 0 or len(models) < 2:
            return models
        ordered = sorted(models, key=lambda m: m.n_inliers, reverse=True)
        merged: list[LineModel] = []
        for model in ordered:
            host = None
            for idx, existing in enumerate(merged):
                scale = max(abs(existing.slope), abs(model.slope), 1e-30)
                if abs(existing.slope - model.slope) / scale <= self.slope_merge_tolerance:
                    host = idx
                    break
            if host is None:
                merged.append(model)
            else:
                existing = merged[host]
                union = np.union1d(existing.inlier_indices, model.inlier_indices)
                merged[host] = LineModel(
                    slope=existing.slope,
                    intercept=existing.intercept,
                    inlier_indices=union,
                    residual_threshold=existing.residual_threshold,
                )
        return merged

    def assign(self, models: list[LineModel], x: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Assign each point to its best-fitting model (or -1 for none).

        A point is assigned to the model with the smallest residual,
        provided that residual is within the model's inlier band.
        """
        xs = np.asarray(x, dtype=np.float64).ravel()
        zs = np.asarray(z, dtype=np.float64).ravel()
        if not models:
            return np.full(xs.size, -1, dtype=np.intp)
        residuals = np.stack([m.residuals(xs, zs) for m in models], axis=1)
        best = residuals.argmin(axis=1)
        best_resid = residuals[np.arange(xs.size), best]
        bands = np.asarray([m.residual_threshold for m in models])
        assigned = np.where(best_resid <= bands[best], best, -1)
        return assigned.astype(np.intp)
