"""The layered analytical workflow of Fig. 7, as a pure-numpy pipeline.

The pipeline mirrors the paper's layer stack:

* **data transformation** — raw acceleration blocks to physical features
  (per-measurement offsets, RMS, DCT-based PSD);
* **data preprocessing** — mean-shift outlier detection on acceleration
  averages per sensor, moving-average denoising of the degradation-feature
  time series, and construction of the dense matrices used downstream;
* **feature matrix extraction** — harmonic peak features and the peak
  harmonic distance ``D_a`` from a Zone A exemplar;
* **RUL model layer** — zone classification thresholds, recursive-RANSAC
  lifetime models and per-pump RUL predictions.

Inputs are plain arrays so the pipeline is independent of the storage
layer; ``repro.analysis.engine`` binds it to the database-backed retrieval
API.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field

import numpy as np

from repro.core.classify import ZoneClassifier
from repro.core.features import measurement_offsets, psd_feature, psd_frequencies, rms_feature
from repro.core.outliers import OutlierConfig, detect_invalid_measurements
from repro.core.peaks import DEFAULT_NUM_PEAKS, DEFAULT_WINDOW_SIZE
from repro.core.ransac import LineModel, RecursiveRANSAC
from repro.core.rul import RULEstimator, RULPrediction, learn_zone_d_threshold
from repro.core.window import moving_average


@dataclass(frozen=True)
class PipelineConfig:
    """Tunable parameters of the analytical workflow.

    Attributes:
        sampling_rate_hz: sensor sampling rate for PSD bin frequencies.
        num_peaks: ``n_p`` of the harmonic peak extraction.
        peak_window_size: ``n_h`` Hann smoothing window.
        moving_average_window: trailing window (in measurements) applied
            to each pump's ``D_a`` series; 1 disables smoothing.  The
            paper defaults to one day of measurements.
        outlier: invalid-measurement detection configuration.
        ransac_min_inliers: minimum support for a lifetime model.
        ransac_residual_threshold: inlier band for lifetime models; None
            derives it from the data.
        ransac_seed: RNG seed for reproducible model discovery.
    """

    sampling_rate_hz: float = 4000.0
    num_peaks: int = DEFAULT_NUM_PEAKS
    peak_window_size: int = DEFAULT_WINDOW_SIZE
    moving_average_window: int = 1
    outlier: OutlierConfig = field(default_factory=OutlierConfig)
    ransac_min_inliers: int = 30
    ransac_residual_threshold: float | None = None
    ransac_seed: int = 0


@dataclass
class PipelineResult:
    """All artifacts produced by one pipeline run.

    Attributes:
        valid_mask: per-measurement validity after outlier detection.
        offsets: ``(n, 3)`` acceleration averages.
        rms: ``(n,)`` RMS features.
        psd: ``(n, K)`` PSD feature matrix.
        da: ``(n,)`` peak harmonic distance from the Zone A exemplar
            (NaN for invalid measurements).
        zones: predicted zone label per measurement (``""`` for invalid).
        zone_thresholds: learned ``D_a`` boundaries between ordered zones.
        zone_d_threshold: hazard boundary used by the RUL layer.
        lifetime_models: population models discovered by recursive RANSAC.
        rul: per-pump RUL predictions.
    """

    valid_mask: np.ndarray
    offsets: np.ndarray
    rms: np.ndarray
    psd: np.ndarray
    da: np.ndarray
    zones: np.ndarray
    zone_thresholds: np.ndarray
    zone_d_threshold: float
    lifetime_models: list[LineModel]
    rul: dict[object, RULPrediction]


class AnalysisPipeline:
    """Fig. 7 workflow over in-memory measurement arrays."""

    def __init__(self, config: PipelineConfig | None = None):
        self.config = config or PipelineConfig()
        self.classifier_: ZoneClassifier | None = None
        self.estimator_: RULEstimator | None = None

    # ------------------------------------------------------------------
    # Individual layers, usable on their own.
    # ------------------------------------------------------------------
    def transform(self, samples: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Data transformation layer: ``(offsets, rms, psd)`` per block.

        Args:
            samples: measurement blocks, shape ``(n, K, 3)``.
        """
        blocks = np.asarray(samples, dtype=np.float64)
        if blocks.ndim != 3 or blocks.shape[2] != 3:
            raise ValueError(f"samples must have shape (n, K, 3), got {blocks.shape}")
        offsets = np.stack([measurement_offsets(b) for b in blocks])
        rms = np.asarray([rms_feature(b) for b in blocks])
        psd = np.stack([psd_feature(b) for b in blocks])
        return offsets, rms, psd

    def preprocess(
        self,
        pump_ids: np.ndarray,
        offsets: np.ndarray,
        service_days: np.ndarray | None = None,
    ) -> np.ndarray:
        """Preprocessing layer: per-sensor invalid-measurement mask.

        Outlier detection runs per sensor *epoch*: a pump replacement
        installs a fresh sensor with a new mounting orientation, so each
        stretch of monotonically increasing service time is clustered on
        its own (a legitimate offset change at replacement must not
        poison the new sensor's regime).

        Returns a boolean mask where True marks a *valid* measurement.
        """
        ids = np.asarray(pump_ids)
        valid = np.ones(ids.shape[0], dtype=bool)
        for pump in np.unique(ids):
            member_idx = np.nonzero(ids == pump)[0]
            if service_days is None:
                epochs = [member_idx]
            else:
                days = np.asarray(service_days, dtype=np.float64)[member_idx]
                resets = np.nonzero(np.diff(days) < 0)[0] + 1
                epochs = np.split(member_idx, resets)
            for epoch in epochs:
                if epoch.size == 0:
                    continue
                invalid = detect_invalid_measurements(
                    offsets[epoch], self.config.outlier
                )
                valid[epoch[invalid]] = False
        return valid

    def frequencies(self, num_bins: int) -> np.ndarray:
        """PSD bin frequencies for the configured sampling rate."""
        return psd_frequencies(num_bins, self.config.sampling_rate_hz)

    # ------------------------------------------------------------------
    # Overridable stage implementations.  The batched runtime
    # (repro.runtime.batch.BatchPipeline) subclasses this pipeline and
    # swaps individual stages for vectorized kernels; everything the two
    # paths share — orchestration, validation, the RUL layer — lives in
    # these methods so the scalar path stays the reference
    # implementation of record.
    # ------------------------------------------------------------------
    def _stage(self, name: str, items: int = 0):
        """Stage context hook; the batch runtime overrides it to profile.

        The base pipeline does no instrumentation, so the orchestration
        below can wrap every stage unconditionally at zero cost here.
        """
        return nullcontext()

    def _validate_inputs(
        self,
        ids: np.ndarray,
        days: np.ndarray,
        blocks: np.ndarray,
        train_labels: dict[int, str],
    ) -> None:
        n = ids.shape[0]
        if days.shape[0] != n or blocks.shape[0] != n:
            raise ValueError("pump_ids, service_days and samples must align")
        if not train_labels:
            raise ValueError("train_labels must not be empty")
        bad_idx = [i for i in train_labels if not 0 <= i < n]
        if bad_idx:
            raise ValueError(f"train_labels reference invalid indices: {bad_idx}")

    def _make_classifier(self) -> ZoneClassifier:
        """Zone classifier factory (the batch path plugs in its feature)."""
        return ZoneClassifier()

    def _fit_classifier(
        self,
        psd: np.ndarray,
        valid: np.ndarray,
        train_labels: dict[int, str],
        freqs: np.ndarray,
    ) -> tuple[ZoneClassifier, np.ndarray, np.ndarray]:
        """Train the zone classifier on the labelled, valid measurements."""
        train_idx = np.asarray(
            [i for i in sorted(train_labels) if valid[i]], dtype=np.intp
        )
        if train_idx.size == 0:
            raise ValueError("all labelled measurements were flagged invalid")
        labels = np.asarray([train_labels[int(i)] for i in train_idx], dtype=object)
        classifier = self._make_classifier()
        classifier.fit(psd[train_idx], labels, freqs)
        self.classifier_ = classifier
        return classifier, train_idx, labels

    def _score_da(
        self,
        classifier: ZoneClassifier,
        psd: np.ndarray,
        valid: np.ndarray,
        ids: np.ndarray,
        days: np.ndarray,
        freqs: np.ndarray,
    ) -> np.ndarray:
        """D_a for all valid measurements, with optional per-pump smoothing."""
        da = np.full(ids.shape[0], np.nan)
        valid_idx = np.nonzero(valid)[0]
        da[valid_idx] = classifier.decision_scores(psd[valid_idx], freqs)
        if self.config.moving_average_window > 1:
            for pump in np.unique(ids):
                member = np.nonzero((ids == pump) & valid)[0]
                member = member[np.argsort(days[member], kind="stable")]
                if member.size:
                    da[member] = moving_average(
                        da[member], self.config.moving_average_window
                    )
        return da

    def _learn_threshold(self, train_da: np.ndarray, labels: np.ndarray) -> float:
        """Hazard (Zone D) boundary learned from the training labels."""
        return learn_zone_d_threshold(train_da, labels)

    def _fit_lifetime_models(
        self,
        zone_d_threshold: float,
        days: np.ndarray,
        da: np.ndarray,
        valid: np.ndarray,
    ) -> RULEstimator:
        """Recursive-RANSAC lifetime models fitted on the pooled fleet."""
        estimator = RULEstimator(
            zone_d_threshold,
            RecursiveRANSAC(
                residual_threshold=self.config.ransac_residual_threshold,
                min_inliers=self.config.ransac_min_inliers,
                seed=self.config.ransac_seed,
            ),
        )
        valid_idx = np.nonzero(valid)[0]
        estimator.fit(days[valid_idx], da[valid_idx])
        self.estimator_ = estimator
        return estimator

    def _predict_rul(
        self,
        estimator: RULEstimator,
        ids: np.ndarray,
        days: np.ndarray,
        da: np.ndarray,
        valid: np.ndarray,
    ) -> dict[object, RULPrediction]:
        """Per-pump RUL predictions (the batch path fans this out)."""
        rul: dict[object, RULPrediction] = {}
        if estimator.n_models:
            for pump in np.unique(ids):
                member = np.nonzero((ids == pump) & valid)[0]
                if member.size:
                    rul[pump] = estimator.predict(days[member], da[member])
        return rul

    # ------------------------------------------------------------------
    # End-to-end run.
    # ------------------------------------------------------------------
    def run(
        self,
        pump_ids: np.ndarray,
        service_days: np.ndarray,
        samples: np.ndarray,
        train_labels: dict[int, str],
    ) -> PipelineResult:
        """Execute the full workflow.

        Args:
            pump_ids: pump identifier per measurement, shape ``(n,)``.
            service_days: pump service time (days) per measurement.
            samples: raw blocks ``(n, K, 3)`` in g.
            train_labels: mapping from measurement index to expert zone
                label; must contain at least one measurement of each zone
                (A, BC and D).

        Returns:
            PipelineResult with every layer's artifacts.
        """
        ids = np.asarray(pump_ids)
        days = np.asarray(service_days, dtype=np.float64)
        blocks = np.asarray(samples, dtype=np.float64)
        self._validate_inputs(ids, days, blocks, train_labels)

        with self._stage("transform", ids.shape[0]):
            offsets, rms, psd = self.transform(blocks)
        return self.run_from_features(ids, days, offsets, rms, psd, train_labels)

    def run_from_features(
        self,
        pump_ids: np.ndarray,
        service_days: np.ndarray,
        offsets: np.ndarray,
        rms: np.ndarray,
        psd: np.ndarray,
        train_labels: dict[int, str],
    ) -> PipelineResult:
        """Execute the workflow from precomputed transform outputs.

        Everything downstream of the data transformation layer —
        preprocessing, classifier training, ``D_a`` scoring, zone
        classification and the RUL layer.  :meth:`run` delegates here
        after transforming raw blocks; incremental callers that cache the
        per-measurement transform triple across rolling-window advances
        enter here directly with the merged features.

        Args:
            pump_ids: pump identifier per measurement, shape ``(n,)``.
            service_days: pump service time (days) per measurement.
            offsets: ``(n, 3)`` acceleration averages.
            rms: ``(n,)`` RMS features.
            psd: ``(n, K)`` PSD feature matrix.
            train_labels: mapping from measurement index to expert label.

        Returns:
            PipelineResult with every layer's artifacts.
        """
        ids = np.asarray(pump_ids)
        days = np.asarray(service_days, dtype=np.float64)
        self._validate_inputs(ids, days, psd, train_labels)
        n = ids.shape[0]

        with self._stage("preprocess", n):
            valid = self.preprocess(ids, offsets, days)
        freqs = self.frequencies(psd.shape[1])

        with self._stage("fit_classifier", len(train_labels)):
            classifier, train_idx, labels = self._fit_classifier(
                psd, valid, train_labels, freqs
            )
        valid_idx = np.nonzero(valid)[0]
        with self._stage("score_da", int(valid_idx.size)):
            da = self._score_da(classifier, psd, valid, ids, days, freqs)

        with self._stage("classify_zones", int(valid_idx.size)):
            zones = np.full(n, "", dtype=object)
            zones[valid_idx] = classifier.classifier.predict(da[valid_idx])

        # The RUL model layer is two distinct costs worth separating in a
        # profile: the exact KDE threshold scan over the labelled records
        # and the batched recursive-RANSAC fit over the whole fleet.
        with self._stage("learn_threshold", int(len(labels))):
            zone_d_threshold = self._learn_threshold(da[train_idx], labels)
        with self._stage("fit_lifetime_models", int(valid_idx.size)):
            estimator = self._fit_lifetime_models(zone_d_threshold, days, da, valid)
        with self._stage("predict_rul", int(np.unique(ids).size)):
            rul = self._predict_rul(estimator, ids, days, da, valid)

        thresholds = classifier.thresholds_
        return PipelineResult(
            valid_mask=valid,
            offsets=offsets,
            rms=rms,
            psd=psd,
            da=da,
            zones=zones,
            zone_thresholds=thresholds if thresholds is not None else np.empty(0),
            zone_d_threshold=zone_d_threshold,
            lifetime_models=estimator.models_,
            rul=rul,
        )
