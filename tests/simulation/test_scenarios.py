"""Tests for the canned scenario builders (scenarios.py)."""

import numpy as np
import pytest

from repro.simulation.faults import FaultType
from repro.simulation.scenarios import (
    conservative_fab,
    mixed_health_fleet,
    noisy_deployment,
    paper_fleet,
)
from repro.storage.records import PM


class TestPaperFleet:
    def test_matches_paper_structure(self):
        dataset = paper_fleet(report_interval_days=10.0)
        assert dataset.config.num_pumps == 12
        assert dataset.config.duration_days == 90.0
        assert len(dataset.measurements) == 12 * 9

    def test_density_scales_measurement_count(self):
        sparse = paper_fleet(report_interval_days=30.0)
        dense = paper_fleet(report_interval_days=10.0)
        assert len(dense.measurements) == 3 * len(sparse.measurements)


class TestMixedHealthFleet:
    def test_all_zones_populated(self):
        dataset = mixed_health_fleet()
        zones = set(dataset.true_zone)
        assert zones == {"A", "BC", "D"}

    def test_deterministic_per_seed(self):
        a = mixed_health_fleet(num_pumps=3, duration_days=20, seed=4)
        b = mixed_health_fleet(num_pumps=3, duration_days=20, seed=4)
        assert np.allclose(a.true_wear, b.true_wear)


class TestNoisyDeployment:
    def test_contains_unstable_sensors_and_faults(self):
        dataset = noisy_deployment(num_pumps=10, duration_days=10)
        assert any(not p.sensor_stable for p in dataset.pumps)
        assert any(p.fault_kind is not FaultType.NONE for p in dataset.pumps)

    def test_still_analyzable(self):
        from repro.core.pipeline import AnalysisPipeline, PipelineConfig

        dataset = noisy_deployment(num_pumps=5, duration_days=50, seed=23)
        pumps, service, samples = dataset.measurement_arrays()
        counts = {z: int((dataset.true_zone == z).sum()) for z in ("A", "BC", "D")}
        want = {z: min(10, max(1, c)) for z, c in counts.items() if c > 0}
        if len(want) < 3:
            pytest.skip("zone coverage too thin in this draw")
        _, labels = dataset.expert_labels(want)
        result = AnalysisPipeline(PipelineConfig(ransac_min_inliers=15)).run(
            pumps, service, samples, labels
        )
        assert result.valid_mask.mean() > 0.3


class TestConservativeFab:
    def test_produces_pm_events_with_wasted_rul(self):
        dataset = conservative_fab()
        pm_events = [e for e in dataset.events if e.kind == PM]
        assert pm_events
        assert max(e.true_rul_days for e in pm_events) > 50
