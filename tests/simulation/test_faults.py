"""Tests for fault injection (faults.py)."""

import numpy as np
import pytest

from repro.core.features import psd_feature, psd_frequencies
from repro.simulation.faults import FaultInjector, FaultSpec, FaultType

FS = 4000.0
K = 1024


@pytest.fixture(scope="module")
def injector():
    return FaultInjector()


def band_amplitude(psd, freqs, center, width=6.0):
    mask = (freqs > center - width) & (freqs < center + width)
    return psd[mask].max()


def mean_psd(injector, fault, n=6, seed=0):
    rng = np.random.default_rng(seed)
    return np.mean(
        [psd_feature(injector.synthesize(fault, K, FS, rng)) for _ in range(n)],
        axis=0,
    )


class TestFaultSpec:
    def test_rejects_negative_severity(self):
        with pytest.raises(ValueError):
            FaultSpec(FaultType.IMBALANCE, severity=-0.1)


class TestFaultInjector:
    def test_none_fault_matches_base_statistics(self, injector):
        rng = np.random.default_rng(1)
        block = injector.synthesize(FaultSpec(FaultType.NONE), K, FS, rng)
        assert block.shape == (K, 3)
        assert np.isfinite(block).all()

    def test_zero_severity_is_no_fault(self, injector):
        healthy = mean_psd(injector, FaultSpec(FaultType.NONE), seed=2)
        zeroed = mean_psd(injector, FaultSpec(FaultType.IMBALANCE, 0.0), seed=2)
        assert np.allclose(healthy, zeroed, rtol=0.5)

    def test_imbalance_boosts_1x(self, injector):
        freqs = psd_frequencies(K, FS)
        f0 = injector.profile.rotation_hz
        healthy = mean_psd(injector, FaultSpec(FaultType.NONE), seed=3)
        faulty = mean_psd(injector, FaultSpec(FaultType.IMBALANCE, 0.8), seed=3)
        assert band_amplitude(faulty, freqs, f0) > 5 * band_amplitude(
            healthy, freqs, f0
        )

    def test_misalignment_boosts_2x_over_1x(self, injector):
        freqs = psd_frequencies(K, FS)
        f0 = injector.profile.rotation_hz
        faulty = mean_psd(injector, FaultSpec(FaultType.MISALIGNMENT, 0.8), seed=4)
        assert band_amplitude(faulty, freqs, 2 * f0) > band_amplitude(
            faulty, freqs, f0
        )

    def test_looseness_populates_high_harmonics(self, injector):
        freqs = psd_frequencies(K, FS)
        f0 = injector.profile.rotation_hz
        healthy = mean_psd(injector, FaultSpec(FaultType.NONE), seed=5)
        faulty = mean_psd(injector, FaultSpec(FaultType.LOOSENESS, 0.8), seed=5)
        # Harmonic 11 is negligible when healthy, strong when loose.
        assert band_amplitude(faulty, freqs, 11 * f0) > 5 * band_amplitude(
            healthy, freqs, 11 * f0
        )

    def test_bearing_defect_energizes_non_integer_multiples(self, injector):
        freqs = psd_frequencies(K, FS)
        f0 = injector.profile.rotation_hz
        defect_hz = injector.profile.bearing_tone_ratios[0] * f0
        healthy = mean_psd(injector, FaultSpec(FaultType.NONE), seed=6)
        faulty = mean_psd(injector, FaultSpec(FaultType.BEARING_DEFECT, 0.8), seed=6)
        assert band_amplitude(faulty, freqs, defect_hz) > 5 * band_amplitude(
            healthy, freqs, defect_hz
        )

    def test_severity_scales_signature(self, injector):
        freqs = psd_frequencies(K, FS)
        f0 = injector.profile.rotation_hz
        mild = mean_psd(injector, FaultSpec(FaultType.IMBALANCE, 0.2), seed=7)
        severe = mean_psd(injector, FaultSpec(FaultType.IMBALANCE, 1.0), seed=7)
        assert band_amplitude(severe, freqs, f0) > band_amplitude(mild, freqs, f0)
