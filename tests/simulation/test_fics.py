"""Tests for the FICS temperature source (fics.py)."""

import numpy as np
import pytest

from repro.simulation.fics import TemperatureSource


class TestTemperatureSource:
    def test_readings_center_on_setpoint(self):
        source = TemperatureSource(setpoint_c=65.0, rng=np.random.default_rng(0))
        readings = [source.reading(day, wear=0.2) for day in np.linspace(0, 30, 300)]
        assert np.mean(readings) == pytest.approx(65.0, abs=2.0)

    def test_control_dominates_wear(self):
        """The paper's finding: temperature reflects the control system,
        not equipment health — wear barely moves the reading."""
        source = TemperatureSource(rng=np.random.default_rng(1))
        healthy = [source.reading(d, wear=0.0) for d in np.linspace(0, 20, 200)]
        worn = [source.reading(d, wear=1.0) for d in np.linspace(0, 20, 200)]
        separation = abs(np.mean(worn) - np.mean(healthy))
        spread = np.std(healthy)
        assert separation < spread  # classes overlap heavily

    def test_daily_swing_visible(self):
        source = TemperatureSource(noise_c=0.0, rng=np.random.default_rng(2))
        same_day = [source.reading(0.0 + f, 0.0) for f in np.linspace(0, 1, 24)]
        assert np.ptp(same_day) > 2.0

    def test_rejects_negative_noise(self):
        with pytest.raises(ValueError):
            TemperatureSource(noise_c=-1.0)
