"""Tests for the fleet simulator (fleet.py)."""

import numpy as np
import pytest

from repro.core.classify import ZONES
from repro.simulation.fleet import FleetConfig, FleetSimulator
from repro.storage.database import VibrationDatabase
from repro.storage.records import BM, PM


class TestFleetConfig:
    def test_paper_scale_matches_paper_numbers(self):
        config = FleetConfig.paper_scale()
        assert config.num_pumps == 12
        assert config.duration_days == 90.0
        # 10-minute report period over 3 months per pump.
        per_pump = config.duration_days / config.report_interval_days
        assert per_pump * config.num_pumps == pytest.approx(155_520, rel=0.01)

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            FleetConfig(num_pumps=0)
        with pytest.raises(ValueError):
            FleetConfig(duration_days=0)
        with pytest.raises(ValueError):
            FleetConfig(report_interval_days=0)
        with pytest.raises(ValueError):
            FleetConfig(model_ii_fraction=1.5)
        with pytest.raises(ValueError):
            FleetConfig(pm_interval_days=0)


class TestFleetSimulator:
    def test_measurement_counts(self, small_fleet):
        config = small_fleet.config
        expected = config.num_pumps * int(
            np.ceil(config.duration_days / config.report_interval_days)
        )
        assert len(small_fleet.measurements) == expected
        assert len(small_fleet.temperature) == len(small_fleet.measurements)

    def test_ground_truth_alignment(self, small_fleet):
        n = len(small_fleet.measurements)
        assert small_fleet.true_wear.shape == (n,)
        assert small_fleet.true_zone.shape == (n,)
        assert small_fleet.true_rul_days.shape == (n,)
        assert set(small_fleet.true_zone) <= set(ZONES)

    def test_reproducible_given_seed(self):
        config = FleetConfig(num_pumps=2, duration_days=10, report_interval_days=1, seed=42)
        a = FleetSimulator(config).run()
        b = FleetSimulator(config).run()
        assert np.allclose(a.measurements[5].samples, b.measurements[5].samples)
        assert np.allclose(a.true_wear, b.true_wear)

    def test_staggered_initial_ages(self, small_fleet):
        ages = [p.initial_age_days for p in small_fleet.pumps]
        assert len(set(np.round(ages, 3))) > 1

    def test_two_populations_present(self):
        config = FleetConfig(
            num_pumps=20, duration_days=5, report_interval_days=5, seed=0
        )
        dataset = FleetSimulator(config).run()
        names = {p.model_name for p in dataset.pumps}
        assert names == {"Model I", "Model II"}

    def test_service_day_resets_at_replacement(self, small_fleet):
        for event in small_fleet.events:
            after = [
                m
                for m in small_fleet.measurements
                if m.pump_id == event.pump_id and m.timestamp_day >= event.timestamp_day
            ]
            assert after, "replacement with no subsequent measurements"
            first = min(after, key=lambda m: m.timestamp_day)
            assert first.service_day < event.service_day_at_event

    def test_bm_events_have_negative_true_rul(self, small_fleet):
        for event in small_fleet.events:
            if event.kind == BM:
                assert event.true_rul_days < 0

    def test_pm_events_waste_positive_rul(self):
        config = FleetConfig(
            num_pumps=6,
            duration_days=120,
            report_interval_days=2,
            pm_interval_days=60,
            seed=9,
        )
        dataset = FleetSimulator(config).run()
        pm_events = [e for e in dataset.events if e.kind == PM]
        assert pm_events, "expected planned replacements with a 60-day interval"
        # Model I pumps replaced at 60 days waste hundreds of days.
        assert max(e.true_rul_days for e in pm_events) > 100

    def test_wear_and_zone_are_consistent(self, small_fleet):
        from repro.simulation.degradation import zone_for_wear

        for wear, zone in zip(small_fleet.true_wear[:50], small_fleet.true_zone[:50]):
            assert zone_for_wear(wear) == zone


class TestFleetDataset:
    def test_measurement_arrays_shapes(self, small_fleet):
        pumps, service, samples = small_fleet.measurement_arrays()
        n = len(small_fleet.measurements)
        k = small_fleet.config.samples_per_measurement
        assert pumps.shape == (n,)
        assert service.shape == (n,)
        assert samples.shape == (n, k, 3)

    def test_index_of_roundtrip(self, small_fleet):
        m = small_fleet.measurements[17]
        assert small_fleet.index_of(m.pump_id, m.measurement_id) == 17
        with pytest.raises(KeyError):
            small_fleet.index_of(999, 0)

    def test_stratified_label_indices_respect_counts(self, small_fleet):
        chosen = small_fleet.stratified_label_indices({"A": 10, "BC": 10, "D": 5})
        zones = list(chosen.values())
        assert zones.count("A") == 10
        assert zones.count("BC") == 10
        assert zones.count("D") == 5

    def test_stratified_rejects_oversampling(self, small_fleet):
        total_d = int((small_fleet.true_zone == "D").sum())
        with pytest.raises(ValueError):
            small_fleet.stratified_label_indices({"D": total_d + 1})

    def test_stratified_rejects_unknown_zone(self, small_fleet):
        with pytest.raises(ValueError):
            small_fleet.stratified_label_indices({"Z": 1})

    def test_expert_labels_filter_invalid(self, small_fleet):
        records, index_map = small_fleet.expert_labels({"A": 20, "BC": 20, "D": 10})
        assert len(records) == 50
        assert len(index_map) <= 50
        valid_records = [r for r in records if r.valid]
        assert len(index_map) == len(valid_records)

    def test_temperature_alignment(self, small_fleet):
        temps = small_fleet.measurement_temperatures()
        assert temps.shape == (len(small_fleet.measurements),)
        assert np.isfinite(temps).all()

    def test_to_database_roundtrip(self, small_fleet):
        with VibrationDatabase() as db:
            small_fleet.to_database(db)
            assert db.measurements.count() == len(small_fleet.measurements)
            stored = db.measurements.query()
            assert len(stored) == len(small_fleet.measurements)
            assert len(db.sensors.all()) == small_fleet.config.num_pumps


class TestFaultyFleet:
    def test_default_fleet_has_no_faults(self, small_fleet):
        from repro.simulation.faults import FaultType

        assert all(p.fault_kind is FaultType.NONE for p in small_fleet.pumps)

    def test_fault_fraction_assigns_faults(self):
        from repro.simulation.faults import FaultType

        config = FleetConfig(
            num_pumps=10, duration_days=4, report_interval_days=2,
            fault_fraction=1.0, seed=3,
        )
        dataset = FleetSimulator(config).run()
        kinds = {p.fault_kind for p in dataset.pumps}
        assert FaultType.NONE not in kinds
        assert len(kinds) >= 2  # a mix of fault classes

    def test_faulty_pump_signature_detectable_late_in_life(self):
        """A worn faulty pump's spectrum shows its fault to the diagnoser."""
        import numpy as np

        from repro.core.diagnosis import HEALTHY, SpectralDiagnoser
        from repro.core.features import psd_feature, psd_frequencies
        from repro.core.peaks import extract_harmonic_peaks
        from repro.simulation.faults import FaultType

        config = FleetConfig(
            num_pumps=6, duration_days=60, report_interval_days=2,
            fault_fraction=1.0, pm_interval_days=None,
            max_initial_age_fraction=0.9, seed=5,
        )
        dataset = FleetSimulator(config).run()
        pumps, service, samples = dataset.measurement_arrays()
        freqs = psd_frequencies(config.samples_per_measurement,
                                config.sampling_rate_hz)

        # Healthy baseline from low-wear measurements across the fleet.
        low_wear = dataset.true_wear < 0.15
        if low_wear.sum() < 3:
            import pytest

            pytest.skip("no low-wear measurements in this draw")
        baseline_psd = np.mean(
            [psd_feature(samples[i]) for i in np.nonzero(low_wear)[0][:10]], axis=0
        )
        diagnoser = SpectralDiagnoser(29.5)
        diagnoser.fit_baseline(extract_harmonic_peaks(baseline_psd, freqs))

        # Diagnose each pump's most-worn measurements.
        hits = 0
        candidates = 0
        for info in dataset.pumps:
            member = np.nonzero(pumps == info.pump_id)[0]
            worn = member[dataset.true_wear[member] > 0.7]
            if worn.size < 2 or info.fault_kind is FaultType.NONE:
                continue
            candidates += 1
            mean_psd = np.mean([psd_feature(samples[i]) for i in worn[-5:]], axis=0)
            diagnosis = diagnoser.diagnose(extract_harmonic_peaks(mean_psd, freqs))
            hits += diagnosis.label != HEALTHY
        if candidates == 0:
            import pytest

            pytest.skip("no pump reached high wear in this draw")
        assert hits / candidates >= 0.5
