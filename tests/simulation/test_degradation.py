"""Tests for the degradation process (degradation.py)."""

import numpy as np
import pytest

from repro.core.classify import ZONE_A, ZONE_BC, ZONE_D
from repro.simulation.degradation import (
    MODEL_I,
    MODEL_II,
    WEAR_AT_FAILURE,
    ZONE_BOUNDARY_A_BC,
    ZONE_BOUNDARY_BC_D,
    DegradationProcess,
    LifetimeModelSpec,
    zone_for_wear,
)


class TestLifetimeModelSpec:
    def test_paper_populations(self):
        assert MODEL_I.mean_life_days == pytest.approx(540.0)  # ~18 months
        assert MODEL_II.mean_life_days == pytest.approx(180.0)  # ~6 months

    def test_sampled_lives_center_on_mean(self):
        gen = np.random.default_rng(0)
        lives = [MODEL_I.sample_life_days(gen) for _ in range(500)]
        assert np.mean(lives) == pytest.approx(540.0, rel=0.05)

    def test_sampled_life_has_floor(self):
        spec = LifetimeModelSpec("edge", mean_life_days=100.0, life_spread=0.9)
        gen = np.random.default_rng(1)
        lives = [spec.sample_life_days(gen) for _ in range(200)]
        assert min(lives) >= 10.0

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            LifetimeModelSpec("bad", mean_life_days=0)
        with pytest.raises(ValueError):
            LifetimeModelSpec("bad", mean_life_days=10, life_spread=1.0)


class TestZoneMapping:
    def test_boundaries(self):
        assert zone_for_wear(0.0) == ZONE_A
        assert zone_for_wear(ZONE_BOUNDARY_A_BC - 1e-9) == ZONE_A
        assert zone_for_wear(ZONE_BOUNDARY_A_BC) == ZONE_BC
        assert zone_for_wear(ZONE_BOUNDARY_BC_D - 1e-9) == ZONE_BC
        assert zone_for_wear(ZONE_BOUNDARY_BC_D) == ZONE_D
        assert zone_for_wear(WEAR_AT_FAILURE) == ZONE_D

    def test_rejects_negative_wear(self):
        with pytest.raises(ValueError):
            zone_for_wear(-0.1)


class TestDegradationProcess:
    def test_wear_starts_at_zero(self):
        process = DegradationProcess(MODEL_I, np.random.default_rng(0))
        assert process.wear_at(0.0) == pytest.approx(0.0, abs=0.02)

    def test_wear_reaches_failure_at_life(self):
        process = DegradationProcess(MODEL_II, np.random.default_rng(1))
        assert process.wear_at(process.life_days) == pytest.approx(
            WEAR_AT_FAILURE, abs=0.05
        )

    def test_wear_trend_is_monotone_on_average(self):
        process = DegradationProcess(MODEL_I, np.random.default_rng(2))
        days = np.linspace(0, process.life_days, 50)
        wear = np.asarray([process.wear_at(d) for d in days])
        # Coarse (10-point) averages must be strictly increasing even if
        # the ripple makes individual steps non-monotone.
        coarse = wear.reshape(10, 5).mean(axis=1)
        assert (np.diff(coarse) > 0).all()

    def test_wear_is_deterministic_per_pump(self):
        process = DegradationProcess(MODEL_I, np.random.default_rng(3))
        assert process.wear_at(123.0) == process.wear_at(123.0)

    def test_true_rul_is_linear_in_service_time(self):
        process = DegradationProcess(MODEL_I, np.random.default_rng(4))
        assert process.true_rul_days(0.0) == pytest.approx(process.life_days)
        assert process.true_rul_days(process.life_days) == pytest.approx(0.0)
        assert process.true_rul_days(process.life_days + 50) == pytest.approx(-50.0)

    def test_zone_progression_over_life(self):
        process = DegradationProcess(MODEL_I, np.random.default_rng(5), process_noise=0.0)
        zones = [process.zone_at(f * process.life_days) for f in (0.1, 0.5, 0.95)]
        assert zones == [ZONE_A, ZONE_BC, ZONE_D]

    def test_rejects_negative_service_day(self):
        process = DegradationProcess(MODEL_I, np.random.default_rng(6))
        with pytest.raises(ValueError):
            process.wear_at(-1.0)

    def test_rejects_negative_process_noise(self):
        with pytest.raises(ValueError):
            DegradationProcess(MODEL_I, np.random.default_rng(7), process_noise=-0.1)

    def test_failure_day_equals_life(self):
        process = DegradationProcess(MODEL_II, np.random.default_rng(8))
        assert process.failure_day() == process.life_days
