"""Tests for the MEMS sensor model (mems.py)."""

import numpy as np
import pytest

from repro.simulation.mems import MEMSSensor, MEMSSensorConfig, SENSOR_SPECS, SensorSpec


class TestSensorSpecs:
    def test_table1_mems_row(self):
        spec = SENSOR_SPECS["mems"]
        assert spec.price_usd == pytest.approx(10.0)
        assert spec.power_mw == pytest.approx(3.0)
        assert spec.noise_density_ug_per_rthz == pytest.approx(4000.0)
        assert spec.resonance_khz == pytest.approx(22.0)
        assert spec.accel_range_g == pytest.approx(100.0)

    def test_table1_piezo_row(self):
        spec = SENSOR_SPECS["piezo"]
        assert spec.price_usd == pytest.approx(300.0)
        assert spec.power_mw == pytest.approx(27.0)
        assert spec.noise_density_ug_per_rthz == pytest.approx(700.0)

    def test_mems_is_cheaper_and_noisier(self):
        mems, piezo = SENSOR_SPECS["mems"], SENSOR_SPECS["piezo"]
        assert mems.price_usd < piezo.price_usd
        assert mems.power_mw < piezo.power_mw
        assert mems.noise_density_ug_per_rthz > piezo.noise_density_ug_per_rthz

    def test_noise_sigma_scales_with_bandwidth(self):
        spec = SENSOR_SPECS["mems"]
        assert spec.noise_sigma_g(2000.0) == pytest.approx(
            4000e-6 * np.sqrt(2000.0)
        )
        with pytest.raises(ValueError):
            spec.noise_sigma_g(0.0)


class TestMEMSSensorConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            MEMSSensorConfig(drift_g_per_day=-1)
        with pytest.raises(ValueError):
            MEMSSensorConfig(jump_probability_per_day=-1)
        with pytest.raises(ValueError):
            MEMSSensorConfig(counts_full_scale=0)


class TestMEMSSensor:
    def test_counts_are_int16(self):
        sensor = MEMSSensor(rng=np.random.default_rng(0))
        counts = sensor.measure_counts(np.zeros((64, 3)), day=0.0, sampling_rate_hz=4000)
        assert counts.dtype == np.int16

    def test_quantization_roundtrip_scale(self):
        sensor = MEMSSensor(rng=np.random.default_rng(1))
        assert sensor.scale_g_per_count == pytest.approx(100.0 / 32767)

    def test_gravity_magnitude_embedded_in_offsets(self):
        sensor = MEMSSensor(rng=np.random.default_rng(2))
        block = sensor.measure_g(np.zeros((4096, 3)), day=0.0, sampling_rate_hz=4000)
        observed = block.mean(axis=0) - sensor.zero_offset
        assert np.linalg.norm(observed) == pytest.approx(1.0, abs=0.05)

    def test_stable_sensor_offsets_constant_over_time(self):
        sensor = MEMSSensor(MEMSSensorConfig(), rng=np.random.default_rng(3))
        first = sensor.measure_g(np.zeros((2048, 3)), 0.0, 4000).mean(axis=0)
        later = sensor.measure_g(np.zeros((2048, 3)), 90.0, 4000).mean(axis=0)
        assert np.allclose(first, later, atol=0.02)

    def test_drifting_sensor_offsets_move(self):
        config = MEMSSensorConfig(drift_g_per_day=0.01)
        sensor = MEMSSensor(config, rng=np.random.default_rng(4))
        first = sensor.measure_g(np.zeros((2048, 3)), 0.0, 4000).mean(axis=0)
        later = sensor.measure_g(np.zeros((2048, 3)), 120.0, 4000).mean(axis=0)
        assert np.linalg.norm(later - first) > 0.3

    def test_jumps_produce_abrupt_offset_changes(self):
        config = MEMSSensorConfig(jump_probability_per_day=5.0, jump_scale_g=1.0)
        sensor = MEMSSensor(config, rng=np.random.default_rng(5))
        offsets = [
            sensor.measure_g(np.zeros((512, 3)), day, 4000).mean(axis=0)
            for day in np.arange(0, 5.0, 0.5)
        ]
        steps = np.linalg.norm(np.diff(np.stack(offsets), axis=0), axis=1)
        assert steps.max() > 0.3

    def test_saturation_clips_at_range(self):
        sensor = MEMSSensor(rng=np.random.default_rng(6))
        huge = np.full((64, 3), 500.0)  # 5x the 100 g range
        block = sensor.measure_g(huge, 0.0, 4000)
        assert block.max() <= 100.0 + 1e-9

    def test_noise_level_tracks_spec(self):
        sensor = MEMSSensor(rng=np.random.default_rng(7))
        block = sensor.measure_g(np.zeros((8192, 3)), 0.0, 4000)
        measured_sigma = (block - block.mean(axis=0)).std()
        expected = SENSOR_SPECS["mems"].noise_sigma_g(2000.0)
        assert measured_sigma == pytest.approx(expected, rel=0.1)

    def test_rejects_wrong_shape(self):
        sensor = MEMSSensor(rng=np.random.default_rng(8))
        with pytest.raises(ValueError):
            sensor.measure_counts(np.zeros((8, 2)), 0.0, 4000)

    def test_signal_survives_sensing_chain(self):
        """A strong tone must remain recoverable through noise+quantization."""
        from repro.core.features import psd_feature, psd_frequencies

        t = np.arange(1024) / 4000.0
        tone = 0.8 * np.sin(2 * np.pi * 400.0 * t)
        block = np.stack([tone, tone, tone], axis=1)
        sensor = MEMSSensor(rng=np.random.default_rng(9))
        sensed = sensor.measure_g(block, 0.0, 4000)
        psd = psd_feature(sensed)
        freqs = psd_frequencies(1024, 4000.0)
        dominant = freqs[int(np.argmax(psd))]
        assert abs(dominant - 400.0) < 20
