"""Tests for the expert labeling simulator (labels.py)."""

import numpy as np
import pytest

from repro.core.classify import ZONE_A, ZONE_BC, ZONE_D
from repro.simulation.labels import ExpertLabeler, LabelerConfig
from repro.storage.records import LABEL_SOURCE_DATA, LABEL_SOURCE_PHYSICAL


class TestLabelerConfig:
    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            LabelerConfig(adjacent_confusion_rate=1.0)
        with pytest.raises(ValueError):
            LabelerConfig(invalid_rate=-0.1)


class TestExpertLabeler:
    def test_perfect_labeler_is_exact(self):
        labeler = ExpertLabeler(
            LabelerConfig(adjacent_confusion_rate=0.0, invalid_rate=0.0),
            np.random.default_rng(0),
        )
        for zone in (ZONE_A, ZONE_BC, ZONE_D):
            record = labeler.label(1, 2, zone)
            assert record.zone == zone
            assert record.valid

    def test_physical_checking_is_always_exact(self):
        labeler = ExpertLabeler(
            LabelerConfig(adjacent_confusion_rate=0.9, invalid_rate=0.0),
            np.random.default_rng(1),
        )
        records = [
            labeler.label(0, i, ZONE_D, source=LABEL_SOURCE_PHYSICAL) for i in range(50)
        ]
        assert all(r.zone == ZONE_D and r.valid for r in records)

    def test_confusion_only_slips_to_adjacent_zones(self):
        labeler = ExpertLabeler(
            LabelerConfig(adjacent_confusion_rate=0.5, invalid_rate=0.0),
            np.random.default_rng(2),
        )
        records = [labeler.label(0, i, ZONE_A) for i in range(200)]
        zones = {r.zone for r in records}
        assert ZONE_D not in zones  # A can only slip to BC
        assert ZONE_BC in zones

    def test_invalid_rate_produces_invalid_labels(self):
        labeler = ExpertLabeler(
            LabelerConfig(adjacent_confusion_rate=0.0, invalid_rate=0.3),
            np.random.default_rng(3),
        )
        records = [labeler.label(0, i, ZONE_BC) for i in range(300)]
        invalid_fraction = np.mean([not r.valid for r in records])
        assert 0.2 < invalid_fraction < 0.4

    def test_confusion_rate_statistics(self):
        labeler = ExpertLabeler(
            LabelerConfig(adjacent_confusion_rate=0.2, invalid_rate=0.0),
            np.random.default_rng(4),
        )
        records = [labeler.label(0, i, ZONE_BC) for i in range(1000)]
        wrong = np.mean([r.zone != ZONE_BC for r in records])
        assert 0.12 < wrong < 0.28

    def test_rejects_unknown_zone_or_source(self):
        labeler = ExpertLabeler(rng=np.random.default_rng(5))
        with pytest.raises(ValueError):
            labeler.label(0, 0, "Z")
        with pytest.raises(ValueError):
            labeler.label(0, 0, ZONE_A, source="guesswork")

    def test_record_carries_identifiers(self):
        labeler = ExpertLabeler(rng=np.random.default_rng(6))
        record = labeler.label(7, 13, ZONE_A)
        assert record.pump_id == 7
        assert record.measurement_id == 13
        assert record.source == LABEL_SOURCE_DATA
