"""Tests for the vibration synthesizer (signal.py)."""

import numpy as np
import pytest

from repro.core.features import psd_feature, psd_frequencies, rms_feature
from repro.simulation.signal import MachineProfile, VibrationSynthesizer

FS = 4000.0
K = 1024


@pytest.fixture(scope="module")
def synth():
    return VibrationSynthesizer()


class TestMachineProfile:
    def test_default_profile_is_valid(self):
        profile = MachineProfile()
        assert profile.rotation_hz > 0
        assert len(profile.axis_coupling) == 3

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            MachineProfile(rotation_hz=0)
        with pytest.raises(ValueError):
            MachineProfile(num_harmonics=0)
        with pytest.raises(ValueError):
            MachineProfile(harmonic_decay=1.5)


class TestSynthesize:
    def test_output_shape_and_finiteness(self, synth):
        block = synth.synthesize(0.5, K, FS, np.random.default_rng(0))
        assert block.shape == (K, 3)
        assert np.isfinite(block).all()

    def test_healthy_spectrum_shows_rotation_fundamental(self, synth):
        gen = np.random.default_rng(1)
        psd = np.mean(
            [psd_feature(synth.synthesize(0.0, K, FS, gen)) for _ in range(5)], axis=0
        )
        freqs = psd_frequencies(K, FS)
        f0 = synth.profile.rotation_hz
        fund_band = (freqs > f0 - 10) & (freqs < f0 + 10)
        background = (freqs > 500) & (freqs < 600)
        assert psd[fund_band].max() > 20 * psd[background].mean()

    def test_degradation_raises_rms(self, synth):
        gen = np.random.default_rng(2)
        healthy = np.mean(
            [rms_feature(synth.synthesize(0.05, K, FS, gen)) for _ in range(10)]
        )
        worn = np.mean(
            [rms_feature(synth.synthesize(1.0, K, FS, gen)) for _ in range(10)]
        )
        assert worn > healthy

    def test_degradation_adds_high_frequency_energy(self, synth):
        """The paper's key physical premise: abnormal equipment gives off
        high-frequency noise."""
        gen = np.random.default_rng(3)
        freqs = psd_frequencies(K, FS)
        hf = freqs > 1200
        healthy_hf = np.mean(
            [psd_feature(synth.synthesize(0.05, K, FS, gen))[hf].sum() for _ in range(10)]
        )
        worn_hf = np.mean(
            [psd_feature(synth.synthesize(1.0, K, FS, gen))[hf].sum() for _ in range(10)]
        )
        assert worn_hf > 3 * healthy_hf

    def test_bearing_tones_emerge_with_wear(self, synth):
        gen = np.random.default_rng(4)
        freqs = psd_frequencies(K, FS)
        tone_hz = synth.profile.bearing_tone_ratios[0] * synth.profile.rotation_hz
        band = (freqs > tone_hz - 8) & (freqs < tone_hz + 8)
        healthy = np.mean(
            [psd_feature(synth.synthesize(0.0, K, FS, gen))[band].max() for _ in range(8)]
        )
        worn = np.mean(
            [psd_feature(synth.synthesize(1.0, K, FS, gen))[band].max() for _ in range(8)]
        )
        assert worn > 5 * healthy

    def test_amplitude_variance_grows_with_wear(self, synth):
        """Fig. 10: PSD fluctuation grows from Zone BC to Zone D."""
        gen = np.random.default_rng(5)
        healthy_rms = [rms_feature(synth.synthesize(0.1, K, FS, gen)) for _ in range(30)]
        worn_rms = [rms_feature(synth.synthesize(1.0, K, FS, gen)) for _ in range(30)]
        healthy_cv = np.std(healthy_rms) / np.mean(healthy_rms)
        worn_cv = np.std(worn_rms) / np.mean(worn_rms)
        assert worn_cv > healthy_cv

    def test_axes_are_coupled_but_not_identical(self, synth):
        block = synth.synthesize(0.3, K, FS, np.random.default_rng(6))
        corr_xy = np.corrcoef(block[:, 0], block[:, 1])[0, 1]
        assert corr_xy > 0.5
        assert not np.allclose(block[:, 0], block[:, 1])

    def test_respects_nyquist(self, synth):
        # Low sampling rate: tones above Nyquist must be skipped without error.
        block = synth.synthesize(0.5, 256, 100.0, np.random.default_rng(7))
        assert np.isfinite(block).all()

    def test_rejects_bad_inputs(self, synth):
        gen = np.random.default_rng(8)
        with pytest.raises(ValueError):
            synth.synthesize(-0.1, K, FS, gen)
        with pytest.raises(ValueError):
            synth.synthesize(0.5, 1, FS, gen)
        with pytest.raises(ValueError):
            synth.synthesize(0.5, K, 0.0, gen)
