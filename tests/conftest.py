"""Shared fixtures: small fleets and synthetic measurement factories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulation import FleetConfig, FleetSimulator


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def make_sine_block(
    freq_hz: float = 120.0,
    amplitude: float = 0.5,
    num_samples: int = 1024,
    sampling_rate_hz: float = 4000.0,
    offset: tuple[float, float, float] = (0.0, 0.0, 1.0),
    noise: float = 0.0,
    seed: int = 0,
) -> np.ndarray:
    """A clean tri-axial sinusoid measurement block for feature tests."""
    gen = np.random.default_rng(seed)
    t = np.arange(num_samples) / sampling_rate_hz
    mono = amplitude * np.sin(2 * np.pi * freq_hz * t)
    block = np.stack([mono, 0.7 * mono, 0.4 * mono], axis=1)
    block += np.asarray(offset)[None, :]
    if noise > 0:
        block += gen.normal(0.0, noise, size=block.shape)
    return block


@pytest.fixture(scope="session")
def small_fleet():
    """A compact mixed fleet spanning all three zones."""
    config = FleetConfig(
        num_pumps=8,
        duration_days=80,
        report_interval_days=2.0,
        pm_interval_days=None,
        max_initial_age_fraction=0.9,
        seed=11,
    )
    return FleetSimulator(config).run()


@pytest.fixture(scope="session")
def small_fleet_arrays(small_fleet):
    pumps, service, samples = small_fleet.measurement_arrays()
    return pumps, service, samples
