"""Tests for the end-to-end engine (engine.py)."""

import numpy as np
import pytest

from repro.analysis.engine import EngineConfig, VibrationAnalysisEngine
from repro.core.pipeline import PipelineConfig
from repro.storage.api import AnalysisPeriod, DataRetrievalAPI
from repro.storage.database import VibrationDatabase


@pytest.fixture(scope="module")
def loaded_db(small_fleet):
    db = VibrationDatabase()
    small_fleet.to_database(db)
    records, _ = small_fleet.expert_labels({"A": 30, "BC": 30, "D": 20})
    db.labels.add_many(records)
    yield small_fleet, db
    db.close()


@pytest.fixture(scope="module")
def report(loaded_db):
    dataset, db = loaded_db
    api = DataRetrievalAPI(db, AnalysisPeriod(0.0, dataset.config.duration_days + 1))
    engine = VibrationAnalysisEngine(
        api, EngineConfig(pipeline=PipelineConfig(ransac_min_inliers=25))
    )
    return engine.run()


class TestEngineRun:
    def test_report_covers_all_pumps(self, loaded_db, report):
        dataset, _ = loaded_db
        assert set(report.pump_ids) == set(range(dataset.config.num_pumps))

    def test_labels_were_used(self, report):
        assert report.n_labels_used > 40

    def test_zone_predictions_present(self, loaded_db, report):
        dataset, _ = loaded_db
        for pump in range(dataset.config.num_pumps):
            assert report.zone_of(pump) in ("A", "BC", "D", "")

    def test_rul_predictions_when_models_found(self, report):
        if report.lifetime_models:
            assert report.rul
            for prediction in report.rul.values():
                assert prediction.slope > 0

    def test_wasted_rul_accounting_matches_events(self, loaded_db, report):
        dataset, _ = loaded_db
        assert len(report.events) == len(dataset.events)
        assert report.wasted_rul["total_usd"] >= 0

    def test_summary_lines_render(self, loaded_db, report):
        dataset, _ = loaded_db
        lines = report.summary_lines()
        assert len(lines) == dataset.config.num_pumps + 1
        assert lines[0].startswith("pump")

    def test_zone_of_unknown_pump(self, report):
        assert report.zone_of(999) == ""


class TestEngineErrors:
    def test_empty_period_raises(self, loaded_db):
        _, db = loaded_db
        api = DataRetrievalAPI(db, AnalysisPeriod(10_000.0, 10_001.0))
        with pytest.raises(ValueError, match="no measurements"):
            VibrationAnalysisEngine(api).run()

    def test_no_labels_raises(self, small_fleet):
        db = VibrationDatabase()
        small_fleet.to_database(db)  # measurements but no labels
        api = DataRetrievalAPI(db, AnalysisPeriod(0.0, 100.0))
        with pytest.raises(ValueError, match="labels"):
            VibrationAnalysisEngine(api).run()
        db.close()


class TestEngineDiagnosis:
    def test_diagnosis_disabled_by_default(self, report):
        assert report.diagnoses == {}

    def test_diagnosis_produced_when_rotation_known(self, loaded_db):
        from repro.simulation.signal import MachineProfile

        dataset, db = loaded_db
        api = DataRetrievalAPI(
            db, AnalysisPeriod(0.0, dataset.config.duration_days + 1)
        )
        engine = VibrationAnalysisEngine(
            api,
            EngineConfig(
                pipeline=PipelineConfig(ransac_min_inliers=25),
                rotation_hz=MachineProfile().rotation_hz,
            ),
        )
        diagnosed = engine.run()
        assert set(diagnosed.diagnoses) <= set(range(dataset.config.num_pumps))
        assert diagnosed.diagnoses, "expected at least one diagnosis"
        from repro.core.diagnosis import (
            BEARING_DEFECT,
            HEALTHY,
            IMBALANCE,
            LOOSENESS,
            MISALIGNMENT,
        )

        valid_labels = {HEALTHY, IMBALANCE, MISALIGNMENT, LOOSENESS, BEARING_DEFECT}
        assert all(d.label in valid_labels for d in diagnosed.diagnoses.values())

        from repro.analysis.reporting import render_report

        text = render_report(diagnosed)
        assert "SPECTRAL DIAGNOSIS" in text


class TestEngineConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            EngineConfig(rotation_hz=0.0)
        with pytest.raises(ValueError):
            EngineConfig(diagnosis_window=0)
