"""Tests for the HTML fleet dashboard (viz/dashboard.py)."""

import numpy as np
import pytest

from repro.viz.dashboard import render_dashboard, write_dashboard
from tests.analysis.test_reporting import make_report


@pytest.fixture()
def report():
    return make_report({0: "D", 1: "A", 2: "BC"}, {0: -3.0, 1: 250.0, 2: 40.0})


class TestRenderDashboard:
    def test_produces_complete_html_document(self, report):
        doc = render_dashboard(report)
        assert doc.startswith("<!DOCTYPE html>")
        assert "</html>" in doc
        assert "<svg" in doc

    def test_sections_present(self, report):
        doc = render_dashboard(report)
        for section in (
            "Fleet health",
            "Alerts",
            "Fleet degradation",
            "Per-pump status",
            "Maintenance cost",
        ):
            assert section in doc

    def test_zone_badges_carry_text_labels(self, report):
        """Status is never color alone: every badge has a textual label."""
        doc = render_dashboard(report)
        assert "D — hazard" in doc
        assert "A — healthy" in doc
        assert "BC — caution" in doc

    def test_hazard_alert_rendered(self, report):
        doc = render_dashboard(report)
        assert "alert-hazard" in doc
        assert "replace immediately" in doc

    def test_sparkline_per_pump(self, report):
        doc = render_dashboard(report)
        # Three pumps, each with a sparkline polyline plus the scatter.
        assert doc.count("<polyline") == 3

    def test_dark_mode_palette_included(self, report):
        doc = render_dashboard(report)
        assert "prefers-color-scheme: dark" in doc

    def test_marks_have_native_tooltips(self, report):
        doc = render_dashboard(report)
        assert "<title>" in doc

    def test_title_is_escaped(self, report):
        doc = render_dashboard(report, title="<script>alert(1)</script>")
        assert "<script>alert(1)</script>" not in doc
        assert "&lt;script&gt;" in doc

    def test_zone_d_threshold_annotated(self, report):
        doc = render_dashboard(report)
        assert "zone D boundary" in doc

    def test_lifetime_model_legend(self, report):
        doc = render_dashboard(report)
        assert "model 1" in doc
        assert "measurements" in doc

    def test_healthy_fleet_has_no_alert_items(self):
        healthy = make_report({0: "A"}, {0: 500.0})
        doc = render_dashboard(healthy)
        # The CSS class definition is always present; no *list item* should
        # carry it on a healthy fleet.
        assert '<li class="alert-hazard"' not in doc
        assert "No pump reaches hazard" in doc


class TestWriteDashboard:
    def test_writes_file_and_creates_parents(self, report, tmp_path):
        path = write_dashboard(report, tmp_path / "out" / "fleet.html")
        assert path.exists()
        assert path.read_text(encoding="utf-8").startswith("<!DOCTYPE html>")

    def test_written_file_renders_all_pumps(self, report, tmp_path):
        path = write_dashboard(report, tmp_path / "fleet.html")
        text = path.read_text(encoding="utf-8")
        for pump in (0, 1, 2):
            assert f"<tr><td>{pump}</td>" in text


class TestEndToEndDashboard:
    def test_real_engine_report_renders(self, tmp_path, small_fleet):
        from repro.analysis.engine import EngineConfig, VibrationAnalysisEngine
        from repro.core.pipeline import PipelineConfig
        from repro.storage.api import AnalysisPeriod, DataRetrievalAPI
        from repro.storage.database import VibrationDatabase

        db = VibrationDatabase()
        small_fleet.to_database(db)
        records, _ = small_fleet.expert_labels({"A": 20, "BC": 20, "D": 15})
        db.labels.add_many(records)
        api = DataRetrievalAPI(db, AnalysisPeriod(0.0, 100.0))
        report = VibrationAnalysisEngine(
            api, EngineConfig(pipeline=PipelineConfig(ransac_min_inliers=25))
        ).run()
        db.close()

        path = write_dashboard(report, tmp_path / "real.html")
        text = path.read_text(encoding="utf-8")
        assert text.count("<tr><td>") == small_fleet.config.num_pumps
        assert "<svg" in text


class TestDiagnosisColumn:
    def test_absent_by_default(self, report):
        doc = render_dashboard(report)
        assert "<th>Diagnosis</th>" not in doc

    def test_present_when_report_carries_diagnoses(self, report):
        from repro.core.diagnosis import Diagnosis

        report.diagnoses = {
            0: Diagnosis("bearing_defect", {"bearing_defect": 5.0}),
            1: Diagnosis("healthy", {}),
        }
        doc = render_dashboard(report)
        assert "<th>Diagnosis</th>" in doc
        assert "bearing_defect" in doc
        assert "healthy" in doc
