"""Tests for the command-line interface (cli.py)."""

import io

import pytest

from repro.cli import main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestSpecs:
    def test_prints_table1(self):
        code, text = run_cli(["specs"])
        assert code == 0
        assert "Piezo" in text and "MEMS" in text
        assert "4000" in text  # MEMS noise density


class TestPlan:
    def test_prints_requested_grid(self):
        code, text = run_cli(
            ["plan", "--sampling-hz", "150", "--target-years", "3"]
        )
        assert code == 0
        assert "10.2" in text  # the paper's 3-yr anchor
        assert "2,57" in text  # ~2,576 measurements

    def test_infeasible_target_reported(self):
        code, text = run_cli(
            ["plan", "--sampling-hz", "150", "--target-years", "50"]
        )
        assert code == 0
        assert "infeasible" in text


class TestSimulateAnalyze:
    def test_end_to_end_roundtrip(self, tmp_path):
        db_path = str(tmp_path / "fleet.db")
        code, text = run_cli(
            [
                "simulate",
                "--db", db_path,
                "--pumps", "4",
                "--days", "50",
                "--interval", "1.0",
                "--labels", "20,20,10",
                "--seed", "11",
            ]
        )
        assert code == 0
        assert "wrote 200 measurements" in text

        code, text = run_cli(["analyze", "--db", db_path, "--moving-average", "4"])
        assert code == 0
        assert "FLEET REPORT" in text
        assert "PER-PUMP STATUS" in text

    def test_simulate_rejects_bad_label_spec(self, tmp_path):
        code, text = run_cli(
            ["simulate", "--db", str(tmp_path / "x.db"), "--labels", "1,2"]
        )
        assert code == 2
        assert "three integers" in text

    def test_simulate_reports_unsatisfiable_label_mix(self, tmp_path):
        code, text = run_cli(
            [
                "simulate",
                "--db", str(tmp_path / "y.db"),
                "--pumps", "2",
                "--days", "5",
                "--interval", "1.0",
                "--labels", "5,5,5000",
                "--seed", "1",
            ]
        )
        assert code == 2
        assert "label mix" in text

    def test_analyze_empty_database_fails_cleanly(self, tmp_path):
        from repro.storage.database import VibrationDatabase

        db_path = str(tmp_path / "empty.db")
        VibrationDatabase(db_path).close()
        code, text = run_cli(["analyze", "--db", db_path])
        assert code == 1
        assert "error" in text


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCompactScheduleExport:
    @pytest.fixture()
    def populated_db(self, tmp_path):
        db_path = str(tmp_path / "fleet.db")
        code, _ = run_cli(
            [
                "simulate", "--db", db_path,
                "--pumps", "4", "--days", "50", "--interval", "1.0",
                "--labels", "20,20,10", "--seed", "11",
            ]
        )
        assert code == 0
        return db_path

    def test_compact_summarizes_and_deletes(self, populated_db):
        code, text = run_cli(
            ["compact", "--db", populated_db, "--keep-days", "10", "--now", "50"]
        )
        assert code == 0
        assert "summaries written" in text
        assert "raw measurements remain" in text
        # Second run is a no-op.
        code, text = run_cli(
            ["compact", "--db", populated_db, "--keep-days", "10", "--now", "50"]
        )
        assert code == 0
        assert "0 raw measurements deleted" in text

    def test_schedule_prints_plan_or_empty(self, populated_db):
        code, text = run_cli(
            ["schedule", "--db", populated_db, "--moving-average", "4",
             "--capacity", "2", "--horizon", "52"]
        )
        assert code == 0
        assert "period" in text or "no replacements due" in text

    def test_export_roundtrip(self, populated_db, tmp_path):
        out_path = str(tmp_path / "corpus.npz")
        code, text = run_cli(["export", "--db", populated_db, "--out", out_path])
        assert code == 0
        assert "exported 200 measurements" in text

        from repro.storage.traces import import_npz

        corpus = import_npz(out_path)
        assert len(corpus) == 200

    def test_export_empty_range_fails(self, populated_db, tmp_path):
        code, text = run_cli(
            ["export", "--db", populated_db, "--out", str(tmp_path / "x.npz"),
             "--start", "1000", "--end", "2000"]
        )
        assert code == 1
        assert "no measurements" in text


class TestDashboardCommand:
    def test_dashboard_written(self, tmp_path):
        db_path = str(tmp_path / "fleet.db")
        code, _ = run_cli(
            ["simulate", "--db", db_path, "--pumps", "4", "--days", "50",
             "--interval", "1.0", "--labels", "20,20,10", "--seed", "11"]
        )
        assert code == 0
        out_path = str(tmp_path / "dash.html")
        code, text = run_cli(
            ["dashboard", "--db", db_path, "--out", out_path,
             "--moving-average", "4", "--title", "Line 3 pumps"]
        )
        assert code == 0
        assert "dashboard written" in text
        content = open(out_path).read()
        assert "Line 3 pumps" in content
        assert "<svg" in content

    def test_dashboard_on_empty_db_fails(self, tmp_path):
        from repro.storage.database import VibrationDatabase

        db_path = str(tmp_path / "empty.db")
        VibrationDatabase(db_path).close()
        code, text = run_cli(
            ["dashboard", "--db", db_path, "--out", str(tmp_path / "x.html")]
        )
        assert code == 1
        assert "error" in text
