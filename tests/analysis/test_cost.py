"""Tests for the replacement-cost model (cost.py, Table IV economics)."""

import numpy as np
import pytest

from repro.analysis.cost import CostModel
from repro.storage.records import BM, PM, MaintenanceEvent


@pytest.fixture()
def model():
    return CostModel()


class TestConstruction:
    def test_paper_defaults(self, model):
        assert model.pump_price_usd == 55_000.0
        assert model.daily_value_usd == 100.0

    def test_rejects_bad_prices(self):
        with pytest.raises(ValueError):
            CostModel(pump_price_usd=0)
        with pytest.raises(ValueError):
            CostModel(breakdown_penalty_usd=-1)


class TestWastedRULValue:
    def test_table4_example_numbers(self, model):
        """Pumps 4, 5, 8 of Table IV: 390+310+280 wasted days = $98,000."""
        events = [
            MaintenanceEvent(4, 50.0, PM, 180.0, 390.0),
            MaintenanceEvent(5, 55.0, PM, 180.0, 310.0),
            MaintenanceEvent(8, 60.0, PM, 180.0, 280.0),
        ]
        summary = model.wasted_rul_value(events)
        assert summary["pm_wasted_days"] == pytest.approx(980.0)
        assert summary["pm_wasted_usd"] == pytest.approx(98_000.0)

    def test_bm_events_charged_penalty_not_daily_rate(self, model):
        events = [MaintenanceEvent(7, 70.0, BM, 200.0, -80.0)]
        summary = model.wasted_rul_value(events)
        assert summary["bm_overrun_days"] == pytest.approx(80.0)
        assert summary["bm_penalty_usd"] == pytest.approx(30_000.0)
        assert summary["pm_wasted_usd"] == 0.0

    def test_nan_rul_pm_contributes_nothing(self, model):
        events = [MaintenanceEvent(0, 1.0, PM, 100.0)]
        assert model.wasted_rul_value(events)["total_usd"] == 0.0

    def test_empty_events(self, model):
        assert model.wasted_rul_value([])["total_usd"] == 0.0


class TestFixedPeriodPolicy:
    def test_long_lived_pump_replaced_early(self, model):
        [outcome] = model.run_fixed_period_policy(np.asarray([540.0]), 180.0)
        assert not outcome.broke_down
        assert outcome.achieved_life_days == 180.0
        assert outcome.wasted_rul_days == pytest.approx(360.0)
        assert outcome.cost_usd == model.pump_price_usd

    def test_short_lived_pump_breaks_down(self, model):
        [outcome] = model.run_fixed_period_policy(np.asarray([120.0]), 180.0)
        assert outcome.broke_down
        assert outcome.achieved_life_days == 120.0
        assert outcome.cost_usd == model.pump_price_usd + model.breakdown_penalty_usd

    def test_rejects_bad_interval(self, model):
        with pytest.raises(ValueError):
            model.run_fixed_period_policy(np.asarray([100.0]), 0.0)


class TestPredictivePolicy:
    def test_accurate_prediction_harvests_almost_full_life(self, model):
        [outcome] = model.run_predictive_policy(
            np.asarray([540.0]), np.asarray([540.0]), safety_margin_days=14.0
        )
        assert not outcome.broke_down
        assert outcome.achieved_life_days == pytest.approx(526.0)
        assert outcome.wasted_rul_days == pytest.approx(14.0)

    def test_overshooting_prediction_causes_breakdown(self, model):
        [outcome] = model.run_predictive_policy(
            np.asarray([200.0]), np.asarray([400.0]), safety_margin_days=14.0
        )
        assert outcome.broke_down
        assert outcome.achieved_life_days == 200.0

    def test_rejects_misaligned_arrays(self, model):
        with pytest.raises(ValueError):
            model.run_predictive_policy(np.ones(2), np.ones(3))

    def test_rejects_negative_margin(self, model):
        with pytest.raises(ValueError):
            model.run_predictive_policy(np.ones(1), np.ones(1), safety_margin_days=-1)


class TestComparePolicies:
    def test_predictive_saves_on_long_life_population(self, model):
        """The Model I headline: long-lived pumps replaced at a fixed 180
        days waste most of their life; prediction recovers it."""
        gen = np.random.default_rng(0)
        lives = gen.normal(540.0, 50.0, size=200).clip(min=250)
        predictions = lives + gen.normal(0, 20.0, size=200)
        summary = model.compare_policies(lives, predictions, pm_interval_days=180.0)
        assert summary.savings_fraction > 0.2
        assert summary.lifetime_factor > 1.5

    def test_savings_smaller_on_short_life_population(self, model):
        """Model II pumps live ~180 days: the fixed 180-day policy is
        already nearly optimal, so predictive gains are modest."""
        gen = np.random.default_rng(1)
        lives_long = gen.normal(540.0, 50.0, size=300).clip(min=250)
        lives_short = gen.normal(180.0, 18.0, size=300).clip(min=60)
        pred_long = lives_long + gen.normal(0, 15.0, size=300)
        pred_short = lives_short + gen.normal(0, 8.0, size=300)
        long_summary = model.compare_policies(lives_long, pred_long, 180.0)
        short_summary = model.compare_policies(lives_short, pred_short, 150.0)
        assert long_summary.savings_fraction > short_summary.savings_fraction

    def test_breakdown_rates_reported(self, model):
        lives = np.asarray([100.0, 540.0])
        predictions = np.asarray([100.0, 540.0])
        summary = model.compare_policies(lives, predictions, 180.0)
        assert summary.baseline_breakdown_rate == pytest.approx(0.5)
        assert summary.predictive_breakdown_rate == 0.0

    def test_wildly_wrong_predictions_can_lose(self, model):
        """Sanity: the comparison is honest — bad predictions cost money."""
        gen = np.random.default_rng(2)
        lives = gen.normal(200.0, 10.0, size=200).clip(min=100)
        overshoot = lives + 200.0  # every pump breaks down
        summary = model.compare_policies(lives, overshoot, 150.0)
        assert summary.predictive_breakdown_rate == 1.0
