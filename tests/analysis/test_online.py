"""Tests for online per-pump tracking (online.py)."""

import numpy as np
import pytest

from repro.analysis.online import OnlinePumpTracker
from repro.core.classify import ZONE_A, ZONE_D, PeakHarmonicFeature
from repro.core.features import psd_feature, psd_frequencies
from repro.simulation.signal import VibrationSynthesizer

FS = 4000.0
K = 1024
FREQS = psd_frequencies(K, FS)


@pytest.fixture(scope="module")
def fitted_feature():
    gen = np.random.default_rng(0)
    synth = VibrationSynthesizer()
    ref = np.stack(
        [psd_feature(synth.synthesize(0.05, K, FS, gen)) for _ in range(10)]
    )
    return PeakHarmonicFeature().fit(ref, FREQS)


def make_tracker(fitted_feature, thresholds=(0.18, 0.33), debounce=3, window=4):
    return OnlinePumpTracker(
        feature=fitted_feature,
        zone_thresholds=np.asarray(thresholds),
        measurement_interval_days=0.5,
        smoothing_window=window,
        debounce=debounce,
    )


def psd_at_wear(wear, seed):
    gen = np.random.default_rng(seed)
    synth = VibrationSynthesizer()
    return psd_feature(synth.synthesize(wear, K, FS, gen))


class TestConstruction:
    def test_requires_fitted_feature(self):
        with pytest.raises(ValueError, match="fitted"):
            OnlinePumpTracker(
                PeakHarmonicFeature(), np.asarray([0.2, 0.3]), 1.0
            )

    def test_rejects_bad_parameters(self, fitted_feature):
        with pytest.raises(ValueError):
            OnlinePumpTracker(fitted_feature, np.asarray([0.2]), 1.0)
        with pytest.raises(ValueError):
            OnlinePumpTracker(fitted_feature, np.asarray([0.3, 0.2]), 1.0)
        with pytest.raises(ValueError):
            make_tracker(fitted_feature, debounce=0)
        with pytest.raises(ValueError):
            make_tracker(fitted_feature, window=0)
        with pytest.raises(ValueError):
            OnlinePumpTracker(fitted_feature, np.asarray([0.2, 0.3]), 0.0)


class TestStreaming:
    def test_healthy_stream_stays_zone_a_without_alert(self, fitted_feature):
        tracker = make_tracker(fitted_feature)
        updates = [
            tracker.consume(psd_at_wear(0.05, seed=i), FREQS) for i in range(10)
        ]
        assert all(u.zone == ZONE_A for u in updates[2:])
        assert not any(u.alert for u in updates)

    def test_degrading_stream_reaches_zone_d_and_alerts(self, fitted_feature):
        tracker = make_tracker(fitted_feature)
        wears = np.linspace(0.05, 1.1, 40)
        updates = [
            tracker.consume(psd_at_wear(w, seed=100 + i), FREQS)
            for i, w in enumerate(wears)
        ]
        assert updates[-1].zone == ZONE_D
        assert updates[-1].alert

    def test_da_trend_increases_with_wear(self, fitted_feature):
        tracker = make_tracker(fitted_feature)
        early = [tracker.consume(psd_at_wear(0.05, seed=i), FREQS) for i in range(5)]
        late = [tracker.consume(psd_at_wear(1.0, seed=50 + i), FREQS) for i in range(5)]
        assert late[-1].da > early[-1].da

    def test_single_spike_does_not_alert(self, fitted_feature):
        """Hysteresis: one bad measurement must not page the crew."""
        tracker = make_tracker(fitted_feature, debounce=3, window=1)
        for i in range(5):
            tracker.consume(psd_at_wear(0.05, seed=i), FREQS)
        spike = tracker.consume(psd_at_wear(1.2, seed=99), FREQS)
        assert not spike.alert
        after = tracker.consume(psd_at_wear(0.05, seed=7), FREQS)
        assert not after.alert

    def test_alert_clears_after_sustained_recovery(self, fitted_feature):
        tracker = make_tracker(fitted_feature, debounce=2, window=1)
        for i in range(4):
            tracker.consume(psd_at_wear(1.2, seed=i), FREQS)
        assert tracker.alert_active
        # Replacement: healthy measurements stream in.
        updates = [
            tracker.consume(psd_at_wear(0.05, seed=200 + i), FREQS) for i in range(4)
        ]
        assert not updates[-1].alert

    def test_rul_forecast_behaviour(self, fitted_feature):
        tracker = make_tracker(fitted_feature)
        # Degrading pump: finite RUL prediction appears once trend is set.
        wears = np.linspace(0.1, 0.7, 25)
        last = None
        for i, w in enumerate(wears):
            last = tracker.consume(psd_at_wear(w, seed=300 + i), FREQS)
        assert np.isfinite(last.rul_days) or last.rul_days == np.inf
        # Over-threshold pump reports zero remaining life.
        for i in range(8):
            last = tracker.consume(psd_at_wear(1.2, seed=400 + i), FREQS)
        assert last.rul_days == 0.0

    def test_measurement_counter(self, fitted_feature):
        tracker = make_tracker(fitted_feature)
        for i in range(3):
            tracker.consume(psd_at_wear(0.1, seed=i), FREQS)
        assert tracker.n_measurements == 3


class TestBatchConsistency:
    def test_online_zone_matches_batch_thresholding(self, fitted_feature):
        """With window 1, streaming classification equals batch digitize."""
        thresholds = np.asarray([0.18, 0.33])
        tracker = make_tracker(fitted_feature, thresholds=tuple(thresholds), window=1)
        from repro.core.classify import ZONES

        for i, wear in enumerate((0.05, 0.5, 1.1)):
            psd = psd_at_wear(wear, seed=500 + i)
            update = tracker.consume(psd, FREQS)
            da = fitted_feature.score(psd, FREQS)
            expected = ZONES[int(np.searchsorted(thresholds, da))]
            assert update.zone == expected
