"""Tests for model drift monitoring (drift.py)."""

import numpy as np
import pytest

from repro.analysis.drift import DriftMonitor, population_stability_index


def reference_sample(n=500, seed=0):
    gen = np.random.default_rng(seed)
    return gen.normal(0.15, 0.04, size=n)


class TestPSI:
    def test_identical_distributions_near_zero(self):
        ref = reference_sample()
        cur = reference_sample(seed=1)
        assert population_stability_index(ref, cur) < 0.05

    def test_shifted_distribution_is_large(self):
        ref = reference_sample()
        gen = np.random.default_rng(2)
        shifted = gen.normal(0.35, 0.04, size=500)
        assert population_stability_index(ref, shifted) > 0.5

    def test_widened_distribution_detected(self):
        ref = reference_sample()
        gen = np.random.default_rng(3)
        widened = gen.normal(0.15, 0.15, size=500)
        assert population_stability_index(ref, widened) > 0.25

    def test_non_negative(self):
        ref = reference_sample()
        for seed in range(5):
            cur = reference_sample(seed=seed + 10)
            assert population_stability_index(ref, cur) >= 0.0

    def test_handles_tied_reference(self):
        ref = np.concatenate([np.zeros(100), np.ones(100)])
        cur = np.concatenate([np.zeros(50), np.ones(150)])
        psi = population_stability_index(ref, cur)
        assert np.isfinite(psi)
        assert psi > 0

    def test_rejects_tiny_inputs(self):
        with pytest.raises(ValueError):
            population_stability_index(np.ones(5), np.ones(100), bins=10)


class TestDriftMonitor:
    def test_stable_window_no_drift(self):
        monitor = DriftMonitor(reference_sample())
        verdict = monitor.evaluate(reference_sample(n=120, seed=4))
        assert not verdict.drifted
        assert verdict.ks_pvalue > 0.01

    def test_shifted_window_drifts(self):
        monitor = DriftMonitor(reference_sample())
        gen = np.random.default_rng(5)
        verdict = monitor.evaluate(gen.normal(0.4, 0.04, size=120))
        assert verdict.drifted
        assert verdict.psi > 0.25
        assert verdict.ks_pvalue < 0.01

    def test_sensor_swap_scenario(self):
        """A sensor replacement rescales D_a: the monitor must notice."""
        ref = reference_sample()
        monitor = DriftMonitor(ref)
        verdict = monitor.evaluate(ref[:120] * 2.0)
        assert verdict.drifted

    def test_non_finite_values_ignored(self):
        monitor = DriftMonitor(reference_sample())
        window = reference_sample(n=120, seed=6)
        window[::10] = np.nan
        verdict = monitor.evaluate(window)
        assert not verdict.drifted

    def test_small_window_rejected(self):
        monitor = DriftMonitor(reference_sample(), min_window=30)
        with pytest.raises(ValueError, match="at least 30"):
            monitor.evaluate(np.ones(10))

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            DriftMonitor(np.ones(5))
        with pytest.raises(ValueError):
            DriftMonitor(reference_sample(), ks_alpha=0.0)
        with pytest.raises(ValueError):
            DriftMonitor(reference_sample(), psi_threshold=0.0)
        with pytest.raises(ValueError):
            DriftMonitor(reference_sample(), min_window=1)

    def test_verdict_fields_finite(self):
        monitor = DriftMonitor(reference_sample())
        verdict = monitor.evaluate(reference_sample(n=100, seed=7))
        assert np.isfinite(verdict.ks_statistic)
        assert np.isfinite(verdict.ks_pvalue)
        assert np.isfinite(verdict.psi)

    def test_both_alarms_required(self):
        """Drift needs KS *and* PSI: a tiny persistent shift can trip KS
        significance at large n without being operationally meaningful."""
        gen = np.random.default_rng(8)
        ref = gen.normal(0.15, 0.04, size=5000)
        monitor = DriftMonitor(ref)
        slight = gen.normal(0.154, 0.04, size=4000)  # 0.1 sigma shift
        verdict = monitor.evaluate(slight)
        # KS likely significant at this n, PSI stays small -> no retrain.
        assert verdict.psi < 0.25
        assert not verdict.drifted
