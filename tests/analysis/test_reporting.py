"""Tests for operator report rendering (reporting.py)."""

import numpy as np
import pytest

from repro.analysis.engine import AnalysisReport
from repro.analysis.reporting import (
    build_alerts,
    fleet_health_summary,
    render_report,
)
from repro.core.pipeline import PipelineResult
from repro.core.ransac import LineModel
from repro.core.rul import RULPrediction


def make_report(zones_by_pump: dict[int, str], rul_by_pump: dict[int, float]):
    """Assemble a minimal AnalysisReport by hand."""
    pump_ids = []
    service = []
    zones = []
    for pump, zone in zones_by_pump.items():
        pump_ids.extend([pump, pump])
        service.extend([1.0, 2.0])
        zones.extend(["A", zone])  # latest measurement carries the zone
    n = len(pump_ids)
    rul = {
        pump: RULPrediction(
            model_index=0,
            slope=0.001,
            intercept=0.05,
            current_service_days=2.0,
            crossing_service_days=2.0 + days,
            rul_days=days,
        )
        for pump, days in rul_by_pump.items()
    }
    pipeline = PipelineResult(
        valid_mask=np.ones(n, dtype=bool),
        offsets=np.zeros((n, 3)),
        rms=np.zeros(n),
        psd=np.zeros((n, 4)),
        da=np.linspace(0.1, 0.2, n),
        zones=np.asarray(zones, dtype=object),
        zone_thresholds=np.asarray([0.15, 0.3]),
        zone_d_threshold=0.3,
        lifetime_models=[
            LineModel(slope=0.001, intercept=0.05, inlier_indices=np.arange(n),
                      residual_threshold=0.05)
        ],
        rul=rul,
    )
    return AnalysisReport(
        pump_ids=np.asarray(pump_ids),
        measurement_ids=np.arange(n),
        service_days=np.asarray(service),
        pipeline=pipeline,
        events=[],
        wasted_rul={
            "pm_wasted_days": 100.0,
            "pm_wasted_usd": 10_000.0,
            "bm_overrun_days": 0.0,
            "bm_penalty_usd": 0.0,
            "total_usd": 10_000.0,
        },
        n_labels_used=42,
    )


class TestBuildAlerts:
    def test_hazard_zone_triggers_hazard_alert(self):
        report = make_report({0: "D", 1: "A"}, {0: 5.0, 1: 300.0})
        alerts = build_alerts(report)
        assert len(alerts) == 1
        assert alerts[0].severity == "hazard"
        assert alerts[0].pump_id == 0

    def test_negative_rul_triggers_hazard_even_in_bc(self):
        report = make_report({0: "BC"}, {0: -12.0})
        alerts = build_alerts(report)
        assert alerts[0].severity == "hazard"
        assert "replace immediately" in alerts[0].message

    def test_upcoming_alert_within_horizon(self):
        report = make_report({0: "BC", 1: "A"}, {0: 20.0, 1: 200.0})
        alerts = build_alerts(report, horizon_days=30.0)
        assert len(alerts) == 1
        assert alerts[0].severity == "upcoming"
        assert "schedule replacement" in alerts[0].message

    def test_healthy_fleet_has_no_alerts(self):
        report = make_report({0: "A", 1: "BC"}, {0: 200.0, 1: 150.0})
        assert build_alerts(report) == []

    def test_ordering_hazard_first_then_by_rul(self):
        report = make_report(
            {0: "BC", 1: "D", 2: "BC"}, {0: 25.0, 1: -5.0, 2: 10.0}
        )
        alerts = build_alerts(report, horizon_days=30.0)
        assert [a.pump_id for a in alerts] == [1, 2, 0]

    def test_rejects_bad_horizon(self):
        report = make_report({0: "A"}, {})
        with pytest.raises(ValueError):
            build_alerts(report, horizon_days=0.0)

    def test_pump_without_prediction_in_zone_d_still_alerts(self):
        report = make_report({0: "D"}, {})
        alerts = build_alerts(report)
        assert alerts[0].severity == "hazard"
        assert np.isnan(alerts[0].rul_days)


class TestFleetHealthSummary:
    def test_counts_latest_zone_per_pump(self):
        report = make_report({0: "A", 1: "BC", 2: "BC", 3: "D"}, {})
        summary = fleet_health_summary(report)
        assert summary["A"] == 1
        assert summary["BC"] == 2
        assert summary["D"] == 1


class TestRenderReport:
    def test_contains_all_sections(self):
        report = make_report({0: "D", 1: "A"}, {0: -3.0, 1: 250.0})
        text = render_report(report)
        assert "FLEET REPORT" in text
        assert "ALERTS" in text
        assert "PER-PUMP STATUS" in text
        assert "LIFETIME MODELS" in text
        assert "MAINTENANCE COST" in text
        assert "$10,000" in text
        assert "replace immediately" in text

    def test_no_alert_message_for_healthy_fleet(self):
        report = make_report({0: "A"}, {0: 500.0})
        text = render_report(report, horizon_days=30.0)
        assert "none — no pump reaches hazard" in text
