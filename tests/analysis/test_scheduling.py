"""Tests for maintenance schedule optimization (scheduling.py)."""

import numpy as np
import pytest

from repro.analysis.scheduling import MaintenancePlan, MaintenanceScheduler
from repro.core.rul import RULPrediction


def prediction(rul_days: float) -> RULPrediction:
    return RULPrediction(
        model_index=0,
        slope=0.001,
        intercept=0.05,
        current_service_days=100.0,
        crossing_service_days=100.0 + rul_days,
        rul_days=rul_days,
    )


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MaintenanceScheduler(period_days=0)
        with pytest.raises(ValueError):
            MaintenanceScheduler(capacity_per_period=0)
        with pytest.raises(ValueError):
            MaintenanceScheduler(safety_margin_days=-1)

    def test_rejects_bad_horizon(self):
        scheduler = MaintenanceScheduler()
        with pytest.raises(ValueError):
            scheduler.plan({0: prediction(10.0)}, horizon_periods=0)


class TestPlanning:
    def test_overdue_pump_scheduled_immediately(self):
        scheduler = MaintenanceScheduler(period_days=7.0, safety_margin_days=14.0)
        plan = scheduler.plan({0: prediction(-5.0)})
        assert plan.period_of(0) == 0

    def test_pump_scheduled_margin_before_failure(self):
        scheduler = MaintenanceScheduler(period_days=7.0, safety_margin_days=14.0)
        plan = scheduler.plan({0: prediction(50.0)})
        # 50 - 14 = 36 days of slack -> period 5 (days 35..42).
        assert plan.period_of(0) == 5

    def test_far_future_pumps_not_scheduled(self):
        scheduler = MaintenanceScheduler(period_days=7.0)
        plan = scheduler.plan({0: prediction(500.0)}, horizon_periods=10)
        assert plan.period_of(0) is None
        assert plan.replacements == []

    def test_infinite_rul_not_scheduled(self):
        scheduler = MaintenanceScheduler()
        plan = scheduler.plan({0: prediction(np.inf)})
        assert plan.replacements == []

    def test_capacity_pulls_collisions_earlier_never_later(self):
        scheduler = MaintenanceScheduler(
            period_days=7.0, capacity_per_period=1, safety_margin_days=0.0
        )
        # Three pumps all targeting period 2 (RUL 15..20 days).
        plan = scheduler.plan(
            {0: prediction(15.0), 1: prediction(17.0), 2: prediction(20.0)}
        )
        periods = {pump: plan.period_of(pump) for pump in (0, 1, 2)}
        # Most urgent keeps the latest admissible slot it can; others are
        # pulled to earlier periods; nobody is scheduled after its target.
        assert sorted(periods.values()) == [0, 1, 2]
        assert periods[0] <= 2 and periods[1] <= 2 and periods[2] <= 2
        # No period over capacity.
        for period, items in plan.by_period().items():
            assert len(items) <= 1

    def test_overload_lands_in_period_zero(self):
        scheduler = MaintenanceScheduler(
            period_days=7.0, capacity_per_period=1, safety_margin_days=0.0
        )
        plan = scheduler.plan({i: prediction(3.0) for i in range(4)})
        by_period = plan.by_period()
        # All four are urgent; capacity is 1 -> period 0 overflows by design.
        assert len(by_period[0]) >= 2
        assert len(plan.replacements) == 4

    def test_wasted_days_accounting(self):
        scheduler = MaintenanceScheduler(period_days=7.0, safety_margin_days=14.0)
        plan = scheduler.plan({0: prediction(50.0)})
        [item] = plan.replacements
        # Replaced at period 5 = day 35, failure predicted at day 50.
        assert item.expected_wasted_days == pytest.approx(15.0)
        assert plan.expected_wasted_usd == pytest.approx(1500.0)

    def test_plan_is_deterministic_and_sorted(self):
        scheduler = MaintenanceScheduler(capacity_per_period=2)
        predictions = {i: prediction(10.0 * (i + 1)) for i in range(6)}
        plan_a = scheduler.plan(predictions)
        plan_b = scheduler.plan(predictions)
        assert [s.pump_id for s in plan_a.replacements] == [
            s.pump_id for s in plan_b.replacements
        ]
        periods = [s.period for s in plan_a.replacements]
        assert periods == sorted(periods)


class TestMaintenancePlan:
    def test_by_period_groups(self):
        scheduler = MaintenanceScheduler(capacity_per_period=3, safety_margin_days=0.0)
        plan = scheduler.plan({0: prediction(2.0), 1: prediction(3.0)})
        assert set(plan.by_period()) == {0}
        assert len(plan.by_period()[0]) == 2

    def test_period_of_missing_pump(self):
        plan = MaintenancePlan(
            replacements=[], period_days=7.0,
            expected_wasted_days=0.0, expected_wasted_usd=0.0,
        )
        assert plan.period_of(99) is None
