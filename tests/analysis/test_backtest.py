"""Tests for walk-forward RUL backtesting (backtest.py)."""

import numpy as np
import pytest

from repro.analysis.backtest import (
    BacktestPoint,
    BacktestResult,
    backtest_rul,
    backtest_rul_reference,
)
from repro.core.ransac import RecursiveRANSAC
from repro.runtime import FleetExecutor, RuntimeProfile
from repro.runtime.cache import ModelFitCache


def synthetic_fleet_history(seed=0, n_pumps=6, days=90.0, step=1.0):
    """Hand-built linear-degradation fleet with exact ground truth."""
    gen = np.random.default_rng(seed)
    pump_ids, times, service, da = [], [], [], []
    lives = {}
    for pump in range(n_pumps):
        # Half fast (life 150 d), half slow (life 450 d), staggered ages.
        life = 150.0 if pump % 2 else 450.0
        lives[pump] = life
        age0 = gen.uniform(0, 0.5 * life)
        slope = 0.35 / life  # D_a reaches 0.35 at failure
        for t in np.arange(0.0, days, step):
            s = age0 + t
            pump_ids.append(pump)
            times.append(t)
            service.append(s)
            da.append(0.05 + slope * s + gen.normal(0, 0.008))
    return (
        np.asarray(pump_ids),
        np.asarray(times),
        np.asarray(service),
        np.asarray(da),
        lives,
    )


THRESHOLD = 0.05 + 0.35 * 0.85  # feature level at 85% of life


class TestBacktestRul:
    def test_produces_points_for_all_pumps(self):
        pumps, times, service, da, lives = synthetic_fleet_history()
        result = backtest_rul(
            pumps, times, service, da, lives,
            zone_d_threshold=THRESHOLD, refresh_every_days=20.0,
        )
        assert result.points
        assert {p.pump_id for p in result.points} == set(lives)

    def test_errors_are_small_on_clean_linear_fleet(self):
        pumps, times, service, da, lives = synthetic_fleet_history()
        result = backtest_rul(
            pumps, times, service, da, lives,
            zone_d_threshold=THRESHOLD, refresh_every_days=20.0,
        )
        # The projection targets 85% of life; systematic offset is 15% of
        # life plus estimation noise.
        assert result.mae() < 110.0

    def test_prediction_uses_only_past_data(self):
        """Corrupting the future must not change early predictions."""
        pumps, times, service, da, lives = synthetic_fleet_history()
        base = backtest_rul(
            pumps, times, service, da, lives,
            zone_d_threshold=THRESHOLD, refresh_every_days=30.0,
        )
        corrupted = da.copy()
        corrupted[times > 60.0] += 5.0
        alt = backtest_rul(
            pumps, times, service, corrupted, lives,
            zone_d_threshold=THRESHOLD, refresh_every_days=30.0,
        )
        early_base = [p for p in base.points if p.asof_day <= 60.0]
        early_alt = [p for p in alt.points if p.asof_day <= 60.0]
        assert len(early_base) == len(early_alt)
        for a, b in zip(early_base, early_alt):
            assert a.predicted_rul_days == pytest.approx(b.predicted_rul_days)

    def test_invalid_measurements_skipped(self):
        pumps, times, service, da, lives = synthetic_fleet_history()
        da_with_nans = da.copy()
        da_with_nans[::7] = np.nan
        result = backtest_rul(
            pumps, times, service, da_with_nans, lives,
            zone_d_threshold=THRESHOLD, refresh_every_days=30.0,
        )
        assert result.points
        assert np.isfinite(result.errors()).all()

    def test_pumps_without_truth_are_skipped(self):
        pumps, times, service, da, lives = synthetic_fleet_history()
        partial = {k: v for k, v in lives.items() if k < 3}
        result = backtest_rul(
            pumps, times, service, da, partial,
            zone_d_threshold=THRESHOLD, refresh_every_days=30.0,
        )
        assert {p.pump_id for p in result.points} <= set(partial)

    def test_rejects_bad_inputs(self):
        pumps, times, service, da, lives = synthetic_fleet_history()
        with pytest.raises(ValueError, match="align"):
            backtest_rul(pumps[:-1], times, service, da, lives, THRESHOLD)
        with pytest.raises(ValueError, match="refresh"):
            backtest_rul(pumps, times, service, da, lives, THRESHOLD,
                         refresh_every_days=0.0)


class TestIncrementalBacktestParity:
    """The incremental fast path must reproduce the per-day rescan
    reference bit for bit (same points, same floats, same order)."""

    @staticmethod
    def assert_identical(a: BacktestResult, b: BacktestResult):
        assert len(a.points) == len(b.points) > 0
        for pa, pb in zip(a.points, b.points):
            assert pa == pb

    def test_fast_equals_reference(self):
        pumps, times, service, da, lives = synthetic_fleet_history()
        args = (pumps, times, service, da, lives, THRESHOLD)
        fast = backtest_rul(*args, refresh_every_days=20.0,
                            fit_cache=ModelFitCache())
        ref = backtest_rul_reference(*args, refresh_every_days=20.0)
        self.assert_identical(fast, ref)

    def test_fast_equals_reference_with_nans_and_supplied_engine(self):
        pumps, times, service, da, lives = synthetic_fleet_history(seed=3)
        da = da.copy()
        da[::5] = np.nan
        engine = RecursiveRANSAC(residual_threshold=0.05, min_inliers=30, seed=4)
        fast = backtest_rul(
            pumps, times, service, da, lives, THRESHOLD,
            refresh_every_days=15.0, ransac=engine, fit_cache=ModelFitCache(),
        )
        ref = backtest_rul_reference(
            pumps, times, service, da, lives, THRESHOLD,
            refresh_every_days=15.0, ransac=engine,
        )
        self.assert_identical(fast, ref)

    def test_supplied_engine_is_reusable_across_runs(self):
        """Regression: the caller's engine used to advance its RNG state
        across as-of days, so a second backtest with the same engine gave
        different fits.  Cloning per day makes runs reproducible."""
        pumps, times, service, da, lives = synthetic_fleet_history(seed=1)
        engine = RecursiveRANSAC(residual_threshold=0.05, min_inliers=30, seed=7)
        first = backtest_rul(
            pumps, times, service, da, lives, THRESHOLD,
            refresh_every_days=20.0, ransac=engine, fit_cache=ModelFitCache(),
        )
        second = backtest_rul(
            pumps, times, service, da, lives, THRESHOLD,
            refresh_every_days=20.0, ransac=engine, fit_cache=ModelFitCache(),
        )
        self.assert_identical(first, second)

    def test_warm_fit_cache_reuses_every_fit(self):
        pumps, times, service, da, lives = synthetic_fleet_history(seed=2)
        cache = ModelFitCache()
        cold = backtest_rul(
            pumps, times, service, da, lives, THRESHOLD,
            refresh_every_days=20.0, fit_cache=cache,
        )
        cold_misses = cache.misses
        assert cold_misses > 0 and cache.hits == 0
        warm = backtest_rul(
            pumps, times, service, da, lives, THRESHOLD,
            refresh_every_days=20.0, fit_cache=cache,
        )
        self.assert_identical(cold, warm)
        assert cache.misses == cold_misses  # warm run fitted nothing
        assert cache.hits == cold_misses

    def test_executor_fanout_matches_serial(self):
        pumps, times, service, da, lives = synthetic_fleet_history(seed=4)
        serial = backtest_rul(
            pumps, times, service, da, lives, THRESHOLD,
            refresh_every_days=20.0, fit_cache=ModelFitCache(),
        )
        parallel = backtest_rul(
            pumps, times, service, da, lives, THRESHOLD,
            refresh_every_days=20.0, fit_cache=ModelFitCache(),
            executor=FleetExecutor(max_workers=3),
        )
        self.assert_identical(serial, parallel)

    def test_profile_receives_model_layer_stages(self):
        pumps, times, service, da, lives = synthetic_fleet_history(seed=5)
        profile = RuntimeProfile()
        backtest_rul(
            pumps, times, service, da, lives, THRESHOLD,
            refresh_every_days=20.0, fit_cache=ModelFitCache(), profile=profile,
        )
        assert "backtest.fit_models" in profile.stages
        assert "backtest.predict" in profile.stages
        assert profile.counters["backtest.days"] > 0
        assert profile.counters["backtest.predictions"] > 0
        assert profile.counters["backtest.fit_cache_misses"] > 0


class TestBacktestResult:
    def make_points(self):
        return [
            BacktestPoint(0, 10.0, 200.0, 190.0, 200.0),
            BacktestPoint(0, 50.0, 160.0, 180.0, 160.0),
            BacktestPoint(1, 10.0, 40.0, 20.0, 40.0),
        ]

    def test_mae(self):
        result = BacktestResult(self.make_points())
        assert result.mae() == pytest.approx((10 + 20 + 20) / 3)

    def test_mae_by_lead_time(self):
        result = BacktestResult(self.make_points())
        buckets = result.mae_by_lead_time((0.0, 100.0, 300.0))
        assert buckets["0-100d"] == pytest.approx(20.0)
        assert buckets["100-300d"] == pytest.approx(15.0)

    def test_empty_bucket_is_nan(self):
        result = BacktestResult(self.make_points())
        buckets = result.mae_by_lead_time((500.0, 600.0))
        assert np.isnan(buckets["500-600d"])

    def test_empty_result_mae_nan(self):
        assert np.isnan(BacktestResult([]).mae())

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            BacktestResult([]).mae_by_lead_time((10.0,))
        with pytest.raises(ValueError):
            BacktestResult([]).mae_by_lead_time((10.0, 5.0))
