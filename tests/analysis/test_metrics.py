"""Tests for classification metrics (metrics.py)."""

import numpy as np
import pytest

from repro.analysis.metrics import ClassificationReport, confusion_matrix, evaluate_labels
from repro.core.classify import ZONE_A, ZONE_BC, ZONE_D


class TestConfusionMatrix:
    def test_perfect_prediction_is_diagonal(self):
        truth = np.asarray([ZONE_A, ZONE_BC, ZONE_D, ZONE_A], dtype=object)
        matrix = confusion_matrix(truth, truth)
        assert matrix.trace() == 4
        assert matrix.sum() == 4

    def test_off_diagonal_placement(self):
        truth = np.asarray([ZONE_D], dtype=object)
        pred = np.asarray([ZONE_BC], dtype=object)
        matrix = confusion_matrix(truth, pred)
        assert matrix[2, 1] == 1  # truth D predicted BC

    def test_rejects_unknown_labels(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.asarray(["Z"]), np.asarray([ZONE_A]))
        with pytest.raises(ValueError):
            confusion_matrix(np.asarray([ZONE_A]), np.asarray(["Z"]))

    def test_rejects_misaligned(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.asarray([ZONE_A]), np.asarray([ZONE_A, ZONE_D]))


class TestEvaluateLabels:
    def test_perfect_scores(self):
        truth = np.asarray([ZONE_A, ZONE_BC, ZONE_D] * 5, dtype=object)
        report = evaluate_labels(truth, truth)
        assert report.accuracy == 1.0
        assert np.allclose(report.precision, 1.0)
        assert np.allclose(report.recall, 1.0)

    def test_known_mixed_case(self):
        truth = np.asarray([ZONE_A, ZONE_A, ZONE_BC, ZONE_BC, ZONE_D, ZONE_D], dtype=object)
        pred = np.asarray([ZONE_A, ZONE_BC, ZONE_BC, ZONE_BC, ZONE_D, ZONE_BC], dtype=object)
        report = evaluate_labels(truth, pred)
        assert report.accuracy == pytest.approx(4 / 6)
        precision_a, recall_a = report.per_class(ZONE_A)
        assert precision_a == pytest.approx(1.0)
        assert recall_a == pytest.approx(0.5)
        precision_bc, recall_bc = report.per_class(ZONE_BC)
        assert precision_bc == pytest.approx(2 / 4)
        assert recall_bc == pytest.approx(1.0)

    def test_absent_predicted_class_gives_zero_precision(self):
        truth = np.asarray([ZONE_D, ZONE_D], dtype=object)
        pred = np.asarray([ZONE_BC, ZONE_BC], dtype=object)
        report = evaluate_labels(truth, pred)
        precision_d, recall_d = report.per_class(ZONE_D)
        assert precision_d == 0.0
        assert recall_d == 0.0

    def test_macro_averages(self):
        truth = np.asarray([ZONE_A, ZONE_BC, ZONE_D], dtype=object)
        report = evaluate_labels(truth, truth)
        assert report.macro_precision == 1.0
        assert report.macro_recall == 1.0

    def test_matrix_row_column_sums(self):
        gen = np.random.default_rng(0)
        classes = np.asarray([ZONE_A, ZONE_BC, ZONE_D], dtype=object)
        truth = classes[gen.integers(0, 3, size=100)]
        pred = classes[gen.integers(0, 3, size=100)]
        report = evaluate_labels(truth, pred)
        assert report.matrix.sum() == 100
        for i, cls in enumerate(report.classes):
            assert report.matrix[i].sum() == (truth == cls).sum()
