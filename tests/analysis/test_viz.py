"""Tests for ASCII plotting and CSV export (viz package)."""

import csv

import numpy as np
import pytest

from repro.viz.ascii import ascii_histogram, ascii_line_plot, ascii_scatter
from repro.viz.export import write_csv


class TestAsciiLinePlot:
    def test_renders_title_axes_and_legend(self):
        x = np.linspace(0, 10, 50)
        out = ascii_line_plot(
            x,
            {"rising": x, "falling": 10 - x},
            title="Test plot",
            x_label="days",
            y_label="feature",
        )
        assert "Test plot" in out
        assert "days" in out
        assert "feature" in out
        assert "legend:" in out
        assert "rising" in out and "falling" in out

    def test_plot_dimensions(self):
        x = np.linspace(0, 1, 10)
        out = ascii_line_plot(x, {"s": x}, width=40, height=8)
        grid_rows = [line for line in out.splitlines() if line.startswith("|")]
        assert len(grid_rows) == 8
        assert all(len(row) == 41 for row in grid_rows)

    def test_monotone_series_fills_corners(self):
        x = np.linspace(0, 1, 100)
        out = ascii_line_plot(x, {"s": x}, width=20, height=5)
        rows = [line[1:] for line in out.splitlines() if line.startswith("|")]
        assert rows[0].rstrip().endswith("*")  # top-right
        assert rows[-1].startswith("*")  # bottom-left

    def test_skips_non_finite_points(self):
        x = np.linspace(0, 1, 10)
        y = x.copy()
        y[3] = np.nan
        out = ascii_line_plot(x, {"s": y})
        assert "legend" in out

    def test_rejects_empty_series(self):
        with pytest.raises(ValueError):
            ascii_line_plot(np.ones(3), {})
        with pytest.raises(ValueError):
            ascii_line_plot(np.ones(3), {"s": np.full(3, np.nan)})

    def test_rejects_misaligned_series(self):
        with pytest.raises(ValueError):
            ascii_line_plot(np.ones(3), {"s": np.ones(4)})

    def test_scatter_wrapper(self):
        out = ascii_scatter(np.arange(10.0), np.arange(10.0))
        assert "points" in out


class TestAsciiHistogram:
    def test_bar_lengths_track_counts(self):
        values = np.concatenate([np.zeros(90), np.ones(10)])
        out = ascii_histogram(values, bins=2, width=30, title="hist")
        lines = out.splitlines()
        assert lines[0] == "hist"
        assert lines[1].count("#") == 30
        assert 0 < lines[2].count("#") < 10

    def test_ignores_non_finite(self):
        values = np.asarray([1.0, 2.0, np.nan, np.inf])
        out = ascii_histogram(values, bins=2)
        assert "#" in out

    def test_rejects_all_nan(self):
        with pytest.raises(ValueError):
            ascii_histogram(np.full(3, np.nan))


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = write_csv(
            tmp_path / "out.csv", ["a", "b"], [(1, 2.5), (3, "x")]
        )
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2.5"], ["3", "x"]]

    def test_creates_parent_directories(self, tmp_path):
        path = write_csv(tmp_path / "deep" / "nested" / "out.csv", ["a"], [(1,)])
        assert path.exists()

    def test_rejects_ragged_rows(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "bad.csv", ["a", "b"], [(1,)])
