"""Integration tests: fleet simulation → database → engine → report.

These tests exercise the complete paper workflow on a synthetic fleet and
check the *scientific* properties the paper claims, not just plumbing:
``D_a`` tracks degradation, the learned boundary separates zones, the
peak-harmonic classifier beats the temperature baseline, and RUL
predictions correlate with ground truth.
"""

import numpy as np
import pytest

from repro.analysis.engine import EngineConfig, VibrationAnalysisEngine
from repro.analysis.metrics import evaluate_labels
from repro.core.classify import ZONE_A, ZONE_D, OrderedThresholdClassifier
from repro.core.pipeline import AnalysisPipeline, PipelineConfig
from repro.simulation import FleetConfig, FleetSimulator
from repro.storage.api import AnalysisPeriod, DataRetrievalAPI
from repro.storage.database import VibrationDatabase


@pytest.fixture(scope="module")
def pipeline_result(small_fleet):
    pumps, service, samples = small_fleet.measurement_arrays()
    _, labels = small_fleet.expert_labels({"A": 30, "BC": 30, "D": 20})
    result = AnalysisPipeline(PipelineConfig(ransac_min_inliers=25)).run(
        pumps, service, samples, labels
    )
    return small_fleet, pumps, service, result


class TestScientificProperties:
    def test_da_correlates_with_true_wear(self, pipeline_result):
        dataset, _, _, result = pipeline_result
        valid = result.valid_mask
        corr = np.corrcoef(result.da[valid], dataset.true_wear[valid])[0, 1]
        assert corr > 0.7

    def test_da_separates_healthy_from_hazard(self, pipeline_result):
        dataset, _, _, result = pipeline_result
        valid = result.valid_mask
        da_a = result.da[valid & (dataset.true_zone == ZONE_A)]
        da_d = result.da[valid & (dataset.true_zone == ZONE_D)]
        assert da_d.mean() > 2 * da_a.mean()

    def test_zone_classification_beats_chance_strongly(self, pipeline_result):
        dataset, _, _, result = pipeline_result
        valid = result.valid_mask
        report = evaluate_labels(dataset.true_zone[valid], result.zones[valid])
        assert report.accuracy > 0.6
        assert report.macro_recall > 0.5

    def test_learned_boundary_is_in_paper_ballpark(self, pipeline_result):
        """The paper learns a Zone D boundary of 0.21; our synthetic fleet
        should land in the same order of magnitude."""
        _, _, _, result = pipeline_result
        assert 0.05 < result.zone_d_threshold < 0.6

    def test_rul_sign_agrees_with_ground_truth(self, pipeline_result):
        dataset, pumps, service, result = pipeline_result
        if not result.rul:
            pytest.skip("no lifetime models discovered on this fleet")
        agreements = []
        for pump, prediction in result.rul.items():
            info = dataset.pumps[int(pump)]
            member = pumps == pump
            latest_service = service[member].max()
            true_rul = info.life_days - latest_service
            if abs(true_rul) > 30:  # ignore borderline pumps
                agreements.append(np.sign(prediction.rul_days) == np.sign(true_rul))
        if agreements:
            assert np.mean(agreements) >= 0.5


class TestTemperatureBaselineFails:
    def test_temperature_is_near_chance(self, small_fleet):
        """Figs. 12-14: the temperature feature cannot classify zones."""
        temps = small_fleet.measurement_temperatures()
        zones = small_fleet.true_zone
        gen = np.random.default_rng(0)
        idx = gen.permutation(len(temps))
        train, test = idx[:60], idx[60:]
        # Guard: training set must contain every zone.
        train = np.concatenate(
            [train, [np.nonzero(zones == z)[0][0] for z in ("A", "BC", "D")]]
        )
        clf = OrderedThresholdClassifier().fit(temps[train], zones[train])
        pred = clf.predict(temps[test])
        accuracy = (pred == zones[test]).mean()
        assert accuracy < 0.65  # far below the vibration feature


class TestDatabaseRoundtripEquivalence:
    def test_engine_matches_direct_pipeline(self, small_fleet):
        """Running through SQLite + retrieval API must give the same
        zone decisions as running the pipeline on in-memory arrays."""
        records, labels = small_fleet.expert_labels({"A": 20, "BC": 20, "D": 15})

        pumps, service, samples = small_fleet.measurement_arrays()
        direct = AnalysisPipeline(PipelineConfig(ransac_min_inliers=25)).run(
            pumps, service, samples, labels
        )

        db = VibrationDatabase()
        small_fleet.to_database(db)
        db.labels.add_many(records)
        api = DataRetrievalAPI(
            db, AnalysisPeriod(0.0, small_fleet.config.duration_days + 1)
        )
        engine = VibrationAnalysisEngine(
            api, EngineConfig(pipeline=PipelineConfig(ransac_min_inliers=25))
        )
        report = engine.run()
        db.close()

        # Same measurement count and closely matching D_a statistics
        # (float32 storage introduces tiny differences).
        assert report.pump_ids.shape[0] == pumps.shape[0]
        direct_mean = np.nanmean(direct.da)
        engine_mean = np.nanmean(report.pipeline.da)
        assert engine_mean == pytest.approx(direct_mean, rel=0.05)


class TestSensorNetworkToAnalysis:
    def test_collected_counts_feed_the_pipeline(self):
        """Full stack: synthesize → MEMS counts → fragment → Flush over a
        lossy link → reassemble → convert to g → features."""
        from repro.core.features import psd_feature, psd_frequencies
        from repro.core.peaks import extract_harmonic_peaks
        from repro.sensornet.flush import flush_transfer
        from repro.sensornet.packets import fragment_measurement, reassemble_measurement
        from repro.sensornet.radio import LossyLink
        from repro.simulation.mems import MEMSSensor
        from repro.simulation.signal import VibrationSynthesizer

        gen = np.random.default_rng(5)
        synth = VibrationSynthesizer()
        sensor = MEMSSensor(rng=gen)
        true_block = synth.synthesize(0.3, 1024, 4000.0, gen)
        counts = sensor.measure_counts(true_block, day=0.0, sampling_rate_hz=4000.0)

        packets = fragment_measurement(0, 0, counts)
        assert len(packets) == 120
        stats, received = flush_transfer(packets, LossyLink(0.2, seed=1))
        assert stats.success
        recovered = reassemble_measurement(received)
        assert np.array_equal(recovered, counts)

        block_g = recovered.astype(np.float64) * sensor.scale_g_per_count
        psd = psd_feature(block_g)
        freqs = psd_frequencies(1024, 4000.0)
        peaks = extract_harmonic_peaks(psd, freqs)
        assert len(peaks) > 0

    def test_unstable_fleet_still_analyzable(self):
        config = FleetConfig(
            num_pumps=5,
            duration_days=60,
            report_interval_days=2.0,
            unstable_sensor_fraction=0.4,
            pm_interval_days=None,
            max_initial_age_fraction=0.9,
            seed=21,
        )
        dataset = FleetSimulator(config).run()
        pumps, service, samples = dataset.measurement_arrays()
        _, labels = dataset.expert_labels({"A": 10, "BC": 10, "D": 5})
        result = AnalysisPipeline(PipelineConfig(ransac_min_inliers=15)).run(
            pumps, service, samples, labels
        )
        # Some measurements are excluded, but the analysis completes and
        # keeps the majority.
        assert 0.4 < result.valid_mask.mean() <= 1.0


class TestDriftDetectionOnSensorSwap:
    def test_sensor_generation_change_triggers_retraining_alarm(self):
        """A deployment swaps MEMS parts for a noisier batch: the D_a
        distribution shifts and the drift monitor demands retraining."""
        from repro.analysis.drift import DriftMonitor
        from repro.core.classify import PeakHarmonicFeature
        from repro.core.features import psd_feature, psd_frequencies
        from repro.simulation.mems import MEMSSensor, MEMSSensorConfig, SensorSpec
        from repro.simulation.signal import VibrationSynthesizer

        gen = np.random.default_rng(0)
        synth = VibrationSynthesizer()
        freqs = psd_frequencies(1024, 4000.0)

        def da_sample(sensor, n, wear_range, seed):
            local = np.random.default_rng(seed)
            out = []
            for _ in range(n):
                wear = float(local.uniform(*wear_range))
                block = sensor.measure_g(
                    synth.synthesize(wear, 1024, 4000.0, gen), 0.0, 4000.0
                )
                out.append(psd_feature(block))
            return np.stack(out)

        original = MEMSSensor(rng=np.random.default_rng(1))
        reference_psds = da_sample(original, 60, (0.05, 0.6), seed=2)
        feature = PeakHarmonicFeature().fit(reference_psds[:10], freqs)
        reference_da = feature.score_many(reference_psds, freqs)
        monitor = DriftMonitor(reference_da)

        # Same sensors, later window: no drift.
        same = feature.score_many(da_sample(original, 40, (0.05, 0.6), seed=3), freqs)
        assert not monitor.evaluate(same).drifted

        # New sensor batch with 5x the noise density: drift.
        noisy_spec = SensorSpec(
            name="bad-batch", price_usd=8.0, power_mw=3.0,
            size_inches=(0.2, 0.2, 0.05), noise_density_ug_per_rthz=20000.0,
            resonance_khz=22.0, accel_range_g=100.0,
        )
        swapped = MEMSSensor(MEMSSensorConfig(spec=noisy_spec),
                             np.random.default_rng(4))
        drifted = feature.score_many(da_sample(swapped, 40, (0.05, 0.6), seed=5), freqs)
        assert monitor.evaluate(drifted).drifted
