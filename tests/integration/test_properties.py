"""Cross-module property-based tests.

These hypothesis tests pin down invariants that span several modules —
the contracts the system relies on end to end, beyond what any single
module's unit tests cover.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.classify import ZONES, PeakHarmonicFeature
from repro.core.features import psd_feature, psd_frequencies, rms_feature
from repro.core.kde import min_error_threshold
from repro.core.peaks import extract_harmonic_peaks
from repro.core.severity import velocity_rms_mm_s
from repro.core.window import moving_average, smooth_hann
from repro.sensornet.flush import flush_transfer
from repro.sensornet.packets import fragment_measurement, reassemble_measurement
from repro.sensornet.radio import LossyLink
from repro.storage.database import VibrationDatabase
from repro.storage.records import Measurement
from repro.storage.traces import export_npz, import_npz

FS = 4000.0

measurement_blocks = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(8, 128), st.just(3)),
    elements=st.floats(-20, 20, allow_nan=False, allow_infinity=False),
)


class TestFeatureInvariants:
    @given(st.integers(0, 10_000), st.integers(8, 128), st.floats(0.1, 100.0))
    @settings(max_examples=40, deadline=None)
    def test_da_is_amplitude_scale_invariant(self, seed, k, scale):
        """Scaling the whole signal chain (sensor gain) leaves D_a of a
        sample against a same-scaled exemplar unchanged — the property
        that makes uncalibrated cheap sensors usable.

        Blocks are continuous Gaussian signals: for adversarial inputs
        with exactly-tied spectral bins, floating-point rounding can flip
        the ordering of tied local maxima, which is out of scope (ties
        are measure-zero for physical signals).
        """
        gen = np.random.default_rng(seed)
        block = gen.normal(0.0, 1.0, size=(k, 3))
        freqs = psd_frequencies(block.shape[0], FS)
        base_psd = psd_feature(block)
        scaled_psd = psd_feature(block * scale)
        # Disable the top-k and significance *selection* (num_peaks beyond
        # any possible candidate count, significance floor off): selection
        # of near-equal candidates can legitimately flip under FP rounding;
        # the invariance claim is about the normalized metric itself.
        kwargs = {"window_size": 4, "num_peaks": 64, "min_significance": 0.0}
        peaks_base = extract_harmonic_peaks(base_psd, freqs, **kwargs)
        peaks_scaled = extract_harmonic_peaks(scaled_psd, freqs, **kwargs)
        # Same peak locations...
        assert np.allclose(peaks_base.frequencies, peaks_scaled.frequencies)
        # ...and distance from a scaled reference equals the unscaled one.
        from repro.core.distance import peak_harmonic_distance

        ref = extract_harmonic_peaks(base_psd * 0.7, freqs, **kwargs)
        ref_scaled = extract_harmonic_peaks(scaled_psd * 0.7, freqs, **kwargs)
        d1 = peak_harmonic_distance(peaks_base, ref)
        d2 = peak_harmonic_distance(peaks_scaled, ref_scaled)
        assert d1 == pytest.approx(d2, rel=1e-6, abs=1e-9)

    @given(measurement_blocks)
    @settings(max_examples=40, deadline=None)
    def test_velocity_rms_is_non_negative_and_finite(self, block):
        v = velocity_rms_mm_s(block, FS, band_hz=(10.0, 1999.0))
        assert np.isfinite(v)
        assert v >= 0

    @given(measurement_blocks, st.floats(0.1, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_rms_scales_linearly(self, block, scale):
        assert rms_feature(block * scale) == pytest.approx(
            scale * rms_feature(block), rel=1e-9, abs=1e-12
        )


class TestSmoothingInvariants:
    @given(
        arrays(np.float64, st.integers(3, 100),
               elements=st.floats(-100, 100, allow_nan=False)),
        st.integers(1, 32),
        st.integers(1, 16),
    )
    @settings(max_examples=40, deadline=None)
    def test_smoothing_commutes_with_offsets(self, series, hann_window, ma_window):
        """Adding a constant before smoothing equals adding it after —
        so sensor offsets cannot leak into smoothed feature dynamics."""
        offset = 5.0
        a = smooth_hann(series + offset, hann_window)
        b = smooth_hann(series, hann_window) + offset
        assert np.allclose(a, b, atol=1e-9)
        c = moving_average(series + offset, ma_window)
        d = moving_average(series, ma_window) + offset
        assert np.allclose(c, d, atol=1e-9)


class TestTransportInvariants:
    @given(
        st.integers(4, 64),
        st.floats(0.0, 0.5),
        st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_flush_roundtrip_is_lossless(self, k, loss, seed):
        """Whatever survives Flush is byte-identical to what was sent."""
        gen = np.random.default_rng(seed)
        counts = gen.integers(-(2**15), 2**15 - 1, size=(k, 3), dtype=np.int16)
        packets = fragment_measurement(1, 2, counts)
        stats, received = flush_transfer(
            packets, LossyLink(loss, seed=seed), max_rounds=400
        )
        assert stats.success
        assert np.array_equal(reassemble_measurement(received), counts)


class TestStorageInvariants:
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 3),        # pump
                st.integers(0, 50),       # measurement id
                st.floats(0, 100, allow_nan=False),  # day
            ),
            min_size=1,
            max_size=20,
            unique_by=lambda t: (t[0], t[1]),
        ),
        st.floats(0, 100, allow_nan=False),
        st.floats(0, 100, allow_nan=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_time_range_queries_partition_the_store(self, specs, a, b):
        lo, hi = min(a, b), max(a, b)
        gen = np.random.default_rng(0)
        with VibrationDatabase() as db:
            for pump, mid, day in specs:
                db.measurements.add(
                    Measurement(pump, mid, day, day, gen.normal(size=(4, 3)))
                )
            total = db.measurements.count()
            inside = db.measurements.query(lo, hi)
            before = db.measurements.query(end_day=lo)
            after = db.measurements.query(start_day=hi)
            assert len(inside) + len(before) + len(after) == total

    @given(st.integers(1, 8), st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_npz_roundtrip_identity(self, n, seed):
        import tempfile
        from pathlib import Path

        gen = np.random.default_rng(seed)
        originals = [
            Measurement(
                pump_id=int(gen.integers(0, 5)),
                measurement_id=i,
                timestamp_day=float(gen.uniform(0, 100)),
                service_day=float(gen.uniform(0, 100)),
                samples=gen.normal(size=(int(gen.integers(2, 40)), 3)),
            )
            for i in range(n)
        ]
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "corpus.npz"
            restored = import_npz(export_npz(originals, path))
        assert len(restored) == n
        for a, b in zip(originals, restored):
            assert np.allclose(a.samples, b.samples, atol=1e-5)
            assert a.pump_id == b.pump_id


class TestClassifierInvariants:
    @given(
        st.lists(st.floats(0, 1, allow_nan=False), min_size=3, max_size=30),
        st.lists(st.floats(0, 1, allow_nan=False), min_size=3, max_size=30),
        st.lists(st.floats(0, 1, allow_nan=False), min_size=3, max_size=30),
    )
    @settings(max_examples=30, deadline=None)
    def test_ordered_thresholds_are_ordered(self, low, mid, high):
        """Whatever the training data, the two learned boundaries never
        invert (the zone order A < BC < D is structural)."""
        from repro.core.classify import OrderedThresholdClassifier

        values = np.asarray(low + mid + high)
        labels = np.asarray(
            ["A"] * len(low) + ["BC"] * len(mid) + ["D"] * len(high), dtype=object
        )
        clf = OrderedThresholdClassifier().fit(values, labels)
        t1, t2 = clf.thresholds_
        assert t1 <= t2 + 1e-12
        # And predictions always land in the configured label set.
        pred = clf.predict(np.linspace(-1, 2, 20))
        assert set(pred) <= set(ZONES)


class TestSchedulingInvariants:
    @given(
        st.lists(st.floats(-30, 400, allow_nan=False), min_size=1, max_size=20),
        st.integers(1, 5),
        st.floats(1.0, 30.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_plans_respect_capacity_and_never_schedule_late(
        self, ruls, capacity, period_days
    ):
        from repro.analysis.scheduling import MaintenanceScheduler
        from repro.core.rul import RULPrediction

        predictions = {
            i: RULPrediction(
                model_index=0, slope=0.001, intercept=0.05,
                current_service_days=0.0, crossing_service_days=r, rul_days=r,
            )
            for i, r in enumerate(ruls)
        }
        scheduler = MaintenanceScheduler(
            period_days=period_days,
            capacity_per_period=capacity,
            safety_margin_days=5.0,
        )
        plan = scheduler.plan(predictions, horizon_periods=100)
        by_period = plan.by_period()
        # Capacity respected everywhere except the period-0 escape hatch.
        for period, items in by_period.items():
            if period != 0:
                assert len(items) <= capacity
        # No pump is ever scheduled after its safety-adjusted target.
        for item in plan.replacements:
            slack = item.predicted_rul_days - 5.0
            target = int(slack // period_days) if slack > 0 else 0
            assert item.period <= max(target, 0)

    @given(
        st.lists(st.floats(30, 800, allow_nan=False), min_size=2, max_size=50),
        st.floats(30, 400),
    )
    @settings(max_examples=40, deadline=None)
    def test_cost_policies_conserve_pump_count(self, lives, interval):
        from repro.analysis.cost import CostModel

        model = CostModel()
        lives_arr = np.asarray(lives)
        baseline = model.run_fixed_period_policy(lives_arr, interval)
        predictive = model.run_predictive_policy(
            lives_arr, lives_arr, hazard_alert_fraction=0.85
        )
        assert len(baseline) == len(predictive) == len(lives)
        # Achieved life never exceeds true life under either policy.
        for outcome, life in zip(baseline, lives):
            assert outcome.achieved_life_days <= life + 1e-9
        for outcome, life in zip(predictive, lives):
            assert outcome.achieved_life_days <= life + 1e-9
