"""Paper-scale soak test (opt-in: set REPRO_PAPER_SCALE=1).

Runs the full fleet pipeline at the paper's exact measurement density —
12 pumps, 3 months, 10-minute reports, 155,520 measurements — and checks
the same scientific properties the fast integration tests assert.  Takes
several minutes; skipped by default so the regular suite stays fast.
"""

import os

import numpy as np
import pytest

from repro.core.pipeline import AnalysisPipeline, PipelineConfig
from repro.simulation import FleetConfig, FleetSimulator

pytestmark = pytest.mark.skipif(
    os.environ.get("REPRO_PAPER_SCALE", "0") != "1",
    reason="paper-scale soak test; set REPRO_PAPER_SCALE=1 to run",
)


def test_paper_scale_fleet_end_to_end():
    config = FleetConfig.paper_scale(seed=7)
    dataset = FleetSimulator(config).run()
    assert len(dataset.measurements) == pytest.approx(155_520, rel=0.01)

    pumps, service, samples = dataset.measurement_arrays()
    _, labels = dataset.expert_labels({"A": 700, "BC": 1400, "D": 700})
    pipeline = AnalysisPipeline(
        PipelineConfig(
            moving_average_window=144,  # the paper's one-day window
            ransac_min_inliers=len(dataset.measurements) // 20,
            ransac_residual_threshold=0.05,
        )
    )
    result = pipeline.run(pumps, service, samples, labels)

    valid = result.valid_mask
    assert valid.mean() > 0.95
    corr = np.corrcoef(result.da[valid], dataset.true_wear[valid])[0, 1]
    assert corr > 0.7
    accuracy = (result.zones[valid] == dataset.true_zone[valid]).mean()
    assert accuracy > 0.7
    assert 2 <= len(result.lifetime_models) <= 3
