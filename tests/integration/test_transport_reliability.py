"""Integration: Flush vs best-effort under identical radio conditions.

The paper's reason for running Flush (Sec. III-A) is that a 120-packet
measurement over a lossy 802.15.4 link is effectively never delivered
whole without recovery: best-effort survives with probability
``(1 - loss)^120`` while Flush's NACK rounds push recovery to ~100% at
a bounded retransmission cost.  This test runs both transports over
*identical* per-measurement link seeds — the same loss realizations,
packet for packet in the first pass — and asserts that gap.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sensornet.flush import best_effort_transfer, flush_transfer
from repro.sensornet.packets import fragment_measurement, reassemble_measurement
from repro.sensornet.radio import LossyLink

NUM_MEASUREMENTS = 40
K = 1024  # paper block length → 120 packets per measurement
LOSS = 0.05


def make_measurement(seed: int) -> tuple[np.ndarray, list]:
    gen = np.random.default_rng(seed)
    counts = gen.integers(-1000, 1000, size=(K, 3), dtype=np.int16)
    return counts, fragment_measurement(0, seed, counts)


@pytest.fixture(scope="module")
def transport_outcomes():
    """Both transports across the same measurement set and link seeds."""
    flush_results = []
    best_effort_results = []
    for i in range(NUM_MEASUREMENTS):
        counts, packets = make_measurement(i)
        # Identical seed → identical Gilbert-Elliott loss realization for
        # the first pass of both transports.
        flush_stats, flush_packets = flush_transfer(
            packets, LossyLink(LOSS, seed=1000 + i)
        )
        be_stats, _ = best_effort_transfer(packets, LossyLink(LOSS, seed=1000 + i))
        flush_results.append((counts, flush_stats, flush_packets))
        best_effort_results.append(be_stats)
    return flush_results, best_effort_results


def test_flush_recovers_every_measurement(transport_outcomes):
    flush_results, _ = transport_outcomes
    assert all(stats.success for _, stats, _ in flush_results)
    for counts, _, packets in flush_results:
        np.testing.assert_array_equal(reassemble_measurement(packets), counts)


def test_best_effort_loses_most_measurements(transport_outcomes):
    """(1 - 0.05)^120 ≈ 0.2%: at 5% loss, best-effort almost never lands
    a whole measurement."""
    _, best_effort_results = transport_outcomes
    survived = sum(stats.success for stats in best_effort_results)
    assert survived / NUM_MEASUREMENTS < 0.1


def test_reliability_gap_matches_paper(transport_outcomes):
    """The headline gap: Flush ~100% recovery vs best-effort ~0%."""
    flush_results, best_effort_results = transport_outcomes
    flush_rate = sum(s.success for _, s, _ in flush_results) / NUM_MEASUREMENTS
    be_rate = sum(s.success for s in best_effort_results) / NUM_MEASUREMENTS
    assert flush_rate == 1.0
    assert flush_rate - be_rate > 0.9


def test_flush_overhead_is_bounded(transport_outcomes):
    """Reliability is not free, but it is cheap: the retransmission
    overhead at 5% loss stays a small multiple of the loss rate."""
    flush_results, _ = transport_outcomes
    total_packets = NUM_MEASUREMENTS * len(fragment_measurement(0, 0, np.zeros((K, 3), dtype=np.int16)))
    total_sent = sum(s.data_transmissions for _, s, _ in flush_results)
    overhead = total_sent / total_packets - 1.0
    assert 0.0 < overhead < 3 * LOSS

    # Per-transfer invariant: every transmission beyond each fragment's
    # first one is a retransmission, and each fragment goes out at least
    # once.
    n_fragments = len(fragment_measurement(0, 0, np.zeros((K, 3), dtype=np.int16)))
    for _, stats, _ in flush_results:
        assert stats.data_transmissions == n_fragments + stats.retransmissions


def test_best_effort_first_pass_matches_flush_first_round(transport_outcomes):
    """Same seed ⇒ same first-pass deliveries: per measurement, the
    fragments best-effort landed are exactly what Flush held after its
    first round (before any recovery)."""
    counts, packets = make_measurement(999)
    link_seed = 4242
    be_stats, be_packets = best_effort_transfer(
        packets, LossyLink(LOSS, seed=link_seed)
    )
    flush_stats, _ = flush_transfer(
        packets, LossyLink(LOSS, seed=link_seed), max_rounds=1
    )
    # One round of Flush is best-effort plus a NACK it never acts on.
    assert flush_stats.delivered == be_stats.delivered
    assert flush_stats.data_transmissions == be_stats.data_transmissions
