"""Unit tests: retry policy, retry session, circuit breaker, clocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos import (
    CircuitBreaker,
    RetryExhaustedError,
    RetryPolicy,
    SimulatedClock,
    TransientError,
)

pytestmark = pytest.mark.chaos


class TestRetryPolicy:
    def test_delay_grows_exponentially_to_ceiling(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay_s=0.1, multiplier=2.0, max_delay_s=0.5, jitter=0.0
        )
        delays = [policy.delay_for(a) for a in range(1, 6)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.5, 0.5])

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(base_delay_s=1.0, jitter=0.1, max_delay_s=10.0)
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        d_a = policy.delay_for(1, rng_a)
        d_b = policy.delay_for(1, rng_b)
        assert d_a == d_b
        assert 0.9 <= d_a <= 1.1

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)

    def test_run_retries_until_success(self):
        clock = SimulatedClock()
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.1, jitter=0.0)
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientError("boom")
            return "ok"

        assert policy.run(flaky, clock=clock) == "ok"
        assert calls["n"] == 3
        # Two backoffs slept: 0.1 + 0.2.
        assert clock.slept == pytest.approx(0.3)

    def test_run_raises_exhausted_with_cause(self):
        clock = SimulatedClock()
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.01, jitter=0.0)

        def always_fails():
            raise TransientError("down")

        with pytest.raises(RetryExhaustedError) as excinfo:
            policy.run(always_fails, clock=clock)
        assert excinfo.value.attempts == 3
        assert isinstance(excinfo.value.last_error, TransientError)

    def test_run_does_not_catch_unrelated_errors(self):
        policy = RetryPolicy(max_attempts=5)
        with pytest.raises(KeyError):
            policy.run(lambda: (_ for _ in ()).throw(KeyError("x")))


class TestRetrySession:
    def test_attempt_budget(self):
        clock = SimulatedClock()
        session = RetryPolicy(max_attempts=3, base_delay_s=0.01, jitter=0.0).session(
            clock=clock
        )
        assert session.backoff() is True
        assert session.backoff() is True
        assert session.backoff() is False
        assert session.attempts == 3

    def test_deadline_blocks_late_retry(self):
        clock = SimulatedClock()
        policy = RetryPolicy(
            max_attempts=10, base_delay_s=1.0, multiplier=1.0, jitter=0.0, timeout_s=2.5
        )
        session = policy.session(clock=clock)
        assert session.backoff() is True   # t=1.0
        assert session.backoff() is True   # t=2.0
        assert session.backoff() is False  # 2.0 + 1.0 > 2.5 — refused
        assert clock.now() == pytest.approx(2.0)

    def test_deadline_counts_work_time_too(self):
        clock = SimulatedClock()
        policy = RetryPolicy(
            max_attempts=10, base_delay_s=0.5, multiplier=1.0, jitter=0.0, timeout_s=1.0
        )
        session = policy.session(clock=clock)
        clock.advance(0.8)  # the attempt itself was slow
        assert session.backoff() is False


class TestSimulatedClock:
    def test_sleep_advances_without_blocking(self):
        clock = SimulatedClock(start=5.0)
        clock.sleep(2.0)
        assert clock.now() == 7.0
        assert clock.slept == 2.0

    def test_rejects_negative(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            clock.sleep(-1)
        with pytest.raises(ValueError):
            clock.advance(-1)


class TestCircuitBreaker:
    def make(self, clock=None):
        return CircuitBreaker(failure_threshold=3, recovery_time_s=10.0, clock=clock)

    def test_opens_after_threshold(self):
        clock = SimulatedClock()
        breaker = self.make(clock)
        for _ in range(2):
            breaker.record_failure("mote-1")
            assert breaker.allow("mote-1")
        breaker.record_failure("mote-1")
        assert breaker.state("mote-1") == CircuitBreaker.OPEN
        assert not breaker.allow("mote-1")
        assert breaker.open_keys() == ["mote-1"]

    def test_keys_are_independent(self):
        breaker = self.make(SimulatedClock())
        for _ in range(3):
            breaker.record_failure("a")
        assert not breaker.allow("a")
        assert breaker.allow("b")

    def test_half_open_allows_one_probe(self):
        clock = SimulatedClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure("m")
        clock.advance(10.0)
        assert breaker.state("m") == CircuitBreaker.HALF_OPEN
        assert breaker.allow("m") is True   # the single probe
        assert breaker.allow("m") is False  # no second concurrent probe

    def test_probe_success_closes(self):
        clock = SimulatedClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure("m")
        clock.advance(10.0)
        assert breaker.allow("m")
        breaker.record_success("m")
        assert breaker.state("m") == CircuitBreaker.CLOSED
        assert breaker.allow("m")

    def test_probe_failure_reopens(self):
        clock = SimulatedClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure("m")
        clock.advance(10.0)
        assert breaker.allow("m")
        breaker.record_failure("m")
        assert breaker.state("m") == CircuitBreaker.OPEN
        assert not breaker.allow("m")

    def test_success_resets_failure_streak(self):
        breaker = self.make(SimulatedClock())
        breaker.record_failure("m")
        breaker.record_failure("m")
        breaker.record_success("m")
        breaker.record_failure("m")
        breaker.record_failure("m")
        assert breaker.state("m") == CircuitBreaker.CLOSED
