"""Parity: the chaos machinery must not change fault-free behaviour.

The zero-fault plan runs the pipeline with every robustness hook wired
in (injector, retry policies, circuit breaker, dead-letter queue); the
reference run uses none of them.  Identical output — byte for byte —
is the guarantee that the instrumentation itself is invisible.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.chaos import ZERO_FAULTS, run_chaos_scenario
from repro.runtime import SupervisionPolicy

pytestmark = pytest.mark.chaos


@pytest.fixture(scope="module")
def reference(scenario, fleet_dataset):
    return run_chaos_scenario(None, scenario, dataset=fleet_dataset)


@pytest.fixture(scope="module")
def zero_fault(scenario, fleet_dataset):
    return run_chaos_scenario(ZERO_FAULTS, scenario, dataset=fleet_dataset)


def test_zero_fault_report_is_byte_identical(reference, zero_fault):
    assert reference.failure is None
    assert zero_fault.failure is None
    assert zero_fault.text == reference.text


def test_zero_fault_transport_is_identical(reference, zero_fault):
    assert zero_fault.transport == reference.transport
    assert zero_fault.stored == reference.stored


def test_zero_fault_arrays_are_identical(reference, zero_fault):
    ref, zf = reference.report, zero_fault.report
    np.testing.assert_array_equal(zf.pump_ids, ref.pump_ids)
    np.testing.assert_array_equal(zf.measurement_ids, ref.measurement_ids)
    np.testing.assert_array_equal(zf.service_days, ref.service_days)
    np.testing.assert_array_equal(zf.pipeline.zones, ref.pipeline.zones)
    np.testing.assert_array_equal(zf.pipeline.da, ref.pipeline.da)
    np.testing.assert_array_equal(zf.pipeline.psd, ref.pipeline.psd)


def test_zero_fault_fires_nothing(zero_fault):
    assert zero_fault.injector is not None
    assert zero_fault.injector.total_fired == 0
    assert zero_fault.dead_letters == []


def test_clean_run_has_no_data_health_section(reference):
    """A healthy pipeline's report is unchanged from the seed renderer:
    the DATA HEALTH section appears only when something went wrong."""
    assert reference.report.data_health is not None
    assert not reference.report.data_health.has_issues
    assert "DATA HEALTH:" not in reference.text


def test_fault_free_transport_stores_everything(reference, fleet_dataset):
    """At the scenario's honest 5% radio loss, Flush recovers every
    measurement and the gateway stores the full fleet."""
    assert reference.stored == len(fleet_dataset.measurements)
    assert reference.transport.failed == 0


@pytest.mark.parametrize("backend", ["thread", "process"])
def test_supervised_zero_fault_is_byte_identical(
    reference, scenario, fleet_dataset, backend
):
    """Arming supervision must be invisible when nothing goes wrong:
    same chunk boundaries, same assembly order, byte-identical report —
    on the thread and the process backend alike."""
    supervised = replace(
        scenario, max_workers=2, backend=backend, supervision=SupervisionPolicy()
    )
    result = run_chaos_scenario(ZERO_FAULTS, supervised, dataset=fleet_dataset)
    assert result.failure is None
    assert result.text == reference.text
    assert result.supervision is not None
    assert not result.supervision.has_activity


def test_process_backend_zero_fault_is_byte_identical(
    reference, scenario, fleet_dataset
):
    """The unsupervised process pool is parity-bound too."""
    proc = replace(scenario, max_workers=2, backend="process")
    result = run_chaos_scenario(ZERO_FAULTS, proc, dataset=fleet_dataset)
    assert result.failure is None
    assert result.text == reference.text
