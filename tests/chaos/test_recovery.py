"""Crash-recovery chaos: worker kills and at-rest corruption, end to end.

The ISSUE-4 acceptance scenarios: a chaos run with worker kills restarts
its way to a report whose non-supervision bytes match the fault-free
reference; at-rest BLOB corruption is caught by checksums, quarantined
into the dead-letter table, and every *surviving* row's transform output
stays bit-identical to the fault-free run.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.chaos import BUILTIN_PLANS, run_chaos_scenario
from repro.chaos.plan import FLEET_WORKER_KILL, FaultPlan, FaultSpec
from repro.runtime import SupervisionPolicy

from tests.chaos.conftest import chaos_seed

pytestmark = pytest.mark.chaos

#: Kill storm: enough pressure that restarts fire under every seed
#: (8 fan-out chunks at p=0.6 leave ~0.07% odds of a quiet run), with a
#: restart budget that makes abandonment numerically impossible.
KILL_STORM = FaultPlan(
    "kill-storm", seed=0, specs=(FaultSpec(FLEET_WORKER_KILL, "kill", 0.6),)
)

FAST_SUPERVISION = SupervisionPolicy(
    chunk_deadline_s=None, max_restarts=40, backoff_base_s=0.0, backoff_max_s=0.0
)


def _strip_supervision(text: str) -> str:
    """Report text minus the SUPERVISION section (and its blank line)."""
    lines = text.split("\n")
    if "SUPERVISION:" not in lines:
        return text
    i = lines.index("SUPERVISION:")
    return "\n".join(lines[: i - 1] + lines[i + 2 :])


def _psd_by_row(report) -> dict[tuple[int, int], np.ndarray]:
    return {
        (int(p), int(m)): report.pipeline.psd[i]
        for i, (p, m) in enumerate(zip(report.pump_ids, report.measurement_ids))
    }


@pytest.fixture(scope="module")
def reference(scenario, fleet_dataset):
    return run_chaos_scenario(None, scenario, dataset=fleet_dataset)


def test_worker_kills_restart_and_output_stays_bit_identical(
    reference, scenario, fleet_dataset
):
    supervised = replace(scenario, max_workers=2, supervision=FAST_SUPERVISION)
    result = run_chaos_scenario(
        KILL_STORM.with_seed(chaos_seed()), supervised, dataset=fleet_dataset
    )
    assert result.failure is None
    assert result.supervision.worker_deaths > 0
    assert result.supervision.restarts > 0
    assert result.supervision.abandoned_chunks == 0
    assert "SUPERVISION:" in result.text
    # Restarted chunks recompute the same floats: everything except the
    # supervision tally is byte-identical to the fault-free reference.
    assert _strip_supervision(result.text) == reference.text


def test_blob_corruption_quarantines_and_survivors_stay_bit_identical(
    reference, scenario, fleet_dataset
):
    plan = BUILTIN_PLANS["bit-rot-at-rest"].with_seed(chaos_seed())
    result = run_chaos_scenario(plan, scenario, dataset=fleet_dataset)
    assert result.failure is None
    assert len(result.corrupted) > 0

    health = result.report.data_health
    assert health.n_corrupt == len(result.corrupted)
    assert health.dead_letters == len(result.dead_letters)
    storage_dead = [d for d in result.dead_letters if d.stage == "storage"]
    assert {(d.pump_id, d.measurement_id) for d in storage_dead} == set(
        result.corrupted
    )
    assert "corrupt at rest" in result.text

    # Quarantined rows are gone; every surviving row's PSD matches the
    # fault-free run byte for byte.
    analyzed = set(
        zip(
            (int(p) for p in result.report.pump_ids),
            (int(m) for m in result.report.measurement_ids),
        )
    )
    assert analyzed.isdisjoint(result.corrupted)
    ref_psd = _psd_by_row(reference.report)
    for key, row in _psd_by_row(result.report).items():
        np.testing.assert_array_equal(row, ref_psd[key])


def test_crash_recovery_plan_completes_with_quarantine_and_salvage(
    reference, scenario, fleet_dataset
):
    """The combined acceptance plan: kills (p=0.2) + bit rot (p=0.05)
    completes without raising, auto-arms supervision, quarantines every
    corrupt row, and keeps surviving outputs bit-identical."""
    plan = BUILTIN_PLANS["crash-recovery"].with_seed(chaos_seed())
    supervised = replace(scenario, max_workers=2)
    result = run_chaos_scenario(plan, supervised, dataset=fleet_dataset)
    assert result.failure is None
    assert result.supervision is not None  # auto-armed by the runner
    assert len(result.corrupted) > 0

    health = result.report.data_health
    assert health.n_corrupt == len(result.corrupted)
    assert health.dead_letters == len(result.dead_letters)
    ref_psd = _psd_by_row(reference.report)
    for key, row in _psd_by_row(result.report).items():
        np.testing.assert_array_equal(row, ref_psd[key])


def test_crash_recovery_replay_is_identical(scenario, fleet_dataset):
    """Same plan, same seed: same corrupt rows, same restarts, same
    report bytes — recovery is an experiment, not a dice roll."""
    plan = BUILTIN_PLANS["crash-recovery"].with_seed(chaos_seed())
    first = run_chaos_scenario(plan, scenario, dataset=fleet_dataset)
    second = run_chaos_scenario(plan, scenario, dataset=fleet_dataset)
    assert first.corrupted == second.corrupted
    assert first.injector.counts == second.injector.counts
    assert len(first.dead_letters) == len(second.dead_letters)
    assert first.text == second.text
