"""Property tests: the pipeline survives *arbitrary* fault plans.

Hypothesis generates fault plans — random subsets of injection points,
kinds, probabilities and seeds — and the whole scenario must hold the
robustness contract for every one of them: no unhandled exception,
valid zones, consistent accounting.  The fleet dataset is simulated
once at module scope; each example only pays for transport + analysis.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import (
    BUILTIN_PLANS,
    ChaosScenario,
    FaultPlan,
    FaultSpec,
    run_chaos_scenario,
    simulate_fleet,
)
from repro.chaos.plan import FAULT_KINDS, INJECTION_POINTS
from repro.core.classify import ZONES

pytestmark = pytest.mark.chaos

VALID_ZONES = set(ZONES) | {""}

SCENARIO = ChaosScenario()
DATASET = simulate_fleet(SCENARIO)


@st.composite
def fault_specs(draw):
    point = draw(st.sampled_from(INJECTION_POINTS))
    kind = draw(st.sampled_from(FAULT_KINDS))
    # Cap probabilities: the contract under test is graceful degradation,
    # not behaviour at 100% loss (mote-blackout covers the extreme).
    probability = draw(st.floats(min_value=0.0, max_value=0.5))
    magnitude = draw(st.floats(min_value=0.0, max_value=1.0))
    return FaultSpec(point=point, kind=kind, probability=probability, magnitude=magnitude)


@st.composite
def fault_plans(draw):
    specs = tuple(draw(st.lists(fault_specs(), min_size=0, max_size=4)))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return FaultPlan("generated", seed=seed, specs=specs)


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(plan=fault_plans())
def test_engine_never_crashes_under_any_fault_plan(plan):
    result = run_chaos_scenario(plan, SCENARIO, dataset=DATASET)

    # Accounting: every simulated measurement ends up attempted or
    # breaker-skipped, and attempted splits into delivered + failed.
    total = len(DATASET.measurements)
    assert result.transport.attempted + result.transport.skipped_open_circuit == total
    assert (
        result.transport.delivered + result.transport.failed
        == result.transport.attempted
    )

    if result.failure is not None:
        # Degraded-but-handled: a reason, no half-built report.
        assert result.report is None
        assert result.text is None
        return

    report = result.report
    assert report is not None

    # Zones stay inside the paper's vocabulary for every measurement.
    for zone in report.pipeline.zones:
        assert str(zone) in VALID_ZONES

    # Data-health bookkeeping stays internally consistent.
    health = report.data_health
    assert health is not None
    assert health.analyzed == report.pump_ids.shape[0]
    assert health.analyzed + health.n_quarantined == health.total_retrieved
    assert health.dead_letters == len(result.dead_letters)

    # The rendered report never lies about scale.
    assert f"Measurements analyzed: {health.analyzed}" in result.text


@settings(max_examples=6, deadline=None)
@given(
    name=st.sampled_from(sorted(BUILTIN_PLANS)),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_builtin_plans_survive_any_seed(name, seed):
    """Seed choice must never turn a handled fault into a crash."""
    result = run_chaos_scenario(
        BUILTIN_PLANS[name].with_seed(seed), SCENARIO, dataset=DATASET
    )
    assert (result.report is None) == (result.failure is not None)
    assert (result.text is None) == (result.failure is not None)
