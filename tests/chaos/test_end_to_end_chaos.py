"""End-to-end chaos scenarios: every built-in plan, full pipeline.

Each test drives mote → Flush → gateway → storage → engine under one
fault plan and asserts the robustness contract: no unhandled exception,
every lost measurement accounted for (stored, dead-lettered, or an
explicit degraded-run failure), and the operator report annotated with
the run's data health.
"""

from __future__ import annotations

import pytest

from repro.chaos import BUILTIN_PLANS, run_chaos_scenario
from repro.core.classify import ZONES

from tests.chaos.conftest import chaos_seed

pytestmark = pytest.mark.chaos

VALID_ZONES = set(ZONES) | {""}


@pytest.fixture(scope="module", params=sorted(BUILTIN_PLANS))
def plan_result(request, scenario, fleet_dataset):
    """One scenario run per built-in plan, shared by this module's tests."""
    plan = BUILTIN_PLANS[request.param].with_seed(chaos_seed())
    return run_chaos_scenario(plan, scenario, dataset=fleet_dataset)


def test_run_completes_and_accounts_for_every_measurement(
    plan_result, fleet_dataset
):
    """No unhandled exception, and nothing vanishes silently."""
    result = plan_result
    total = len(fleet_dataset.measurements)
    assert result.transport.attempted + result.transport.skipped_open_circuit == total
    assert result.transport.delivered + result.transport.failed == result.transport.attempted
    # Every measurement that failed transport (or was skipped) is either
    # nothing-to-report (no chaos) or dead-lettered.
    transport_dead = [d for d in result.dead_letters if d.stage == "transport"]
    assert len(transport_dead) == (
        result.transport.failed + result.transport.skipped_open_circuit
    )


def test_degraded_runs_report_or_fail_explicitly(plan_result):
    result = plan_result
    if result.failure is None:
        assert result.report is not None
        assert result.text is not None
        assert result.text.startswith("=" * 60)
    else:
        # Graceful failure: a reason string instead of a crash, and no
        # half-built report.
        assert result.report is None
        assert result.text is None


def test_report_zones_stay_valid(plan_result):
    result = plan_result
    if result.report is None:
        pytest.skip(f"degraded run: {result.failure}")
    for zone in result.report.pipeline.zones:
        assert str(zone) in VALID_ZONES


def test_data_health_annotation_is_consistent(plan_result):
    result = plan_result
    if result.report is None:
        pytest.skip(f"degraded run: {result.failure}")
    health = result.report.data_health
    assert health is not None
    assert health.analyzed == result.report.pump_ids.shape[0]
    assert health.analyzed == health.total_retrieved - health.n_quarantined
    assert health.dead_letters == len(result.dead_letters)
    if health.has_issues:
        assert "DATA HEALTH:" in result.text
        assert f"{health.n_quarantined} quarantined" in result.text
    else:
        assert "DATA HEALTH:" not in result.text


def test_dead_letters_are_persisted(plan_result, scenario):
    """Quarantine records land in the database, queryable per stage."""
    result = plan_result
    if not result.dead_letters:
        pytest.skip("plan produced no dead letters under this seed")
    # The runner flushed the queue into the scenario database before
    # analysis; rebuild the expected multiset from the queue.
    by_stage = {}
    for record in result.dead_letters:
        by_stage.setdefault(record.stage, []).append(record)
    for stage, records in by_stage.items():
        assert all(r.reason for r in records)
        assert all(r.pump_id >= 0 for r in records)


def test_fault_plan_replay_is_identical(scenario, fleet_dataset):
    """The same plan and seed fires the same faults and yields the same
    report — a chaos run is an experiment, not a dice roll."""
    plan = BUILTIN_PLANS["kitchen-sink"].with_seed(chaos_seed())
    first = run_chaos_scenario(plan, scenario, dataset=fleet_dataset)
    second = run_chaos_scenario(plan, scenario, dataset=fleet_dataset)
    assert first.injector.counts == second.injector.counts
    assert first.stored == second.stored
    assert len(first.dead_letters) == len(second.dead_letters)
    assert first.failure == second.failure
    assert first.text == second.text


def test_mote_blackout_opens_circuits(scenario, fleet_dataset):
    """A near-dead radio trips the breaker: later slots are skipped and
    dead-lettered as circuit-open instead of burning transmissions."""
    plan = BUILTIN_PLANS["mote-blackout"].with_seed(chaos_seed())
    result = run_chaos_scenario(plan, scenario, dataset=fleet_dataset)
    assert result.transport.skipped_open_circuit > 0
    reasons = {d.reason for d in result.dead_letters}
    assert "circuit-open" in reasons
    assert "transfer-failed" in reasons


def test_packet_storm_recovers_all_measurements(scenario, fleet_dataset):
    """35% data loss + 50% NACK loss is recoverable: Flush retransmits
    its way through and the gateway stores everything."""
    plan = BUILTIN_PLANS["packet-storm"].with_seed(chaos_seed())
    result = run_chaos_scenario(plan, scenario, dataset=fleet_dataset)
    assert result.failure is None
    assert result.stored == len(fleet_dataset.measurements)
    assert result.transport.retransmissions > 0
