"""Shared fixtures for the chaos suite.

The fleet simulation is the expensive part of a scenario, and it is
independent of the fault plan (faults fire in transport and below), so
one session-scoped dataset feeds every chaos test.  The master chaos
seed comes from the ``CHAOS_SEED`` environment variable — CI runs the
suite under several fixed seeds to widen fault coverage while keeping
every run reproducible.
"""

from __future__ import annotations

import os

import pytest

from repro.chaos import ChaosScenario, simulate_fleet


def chaos_seed() -> int:
    """The suite-wide fault-plan seed (CI varies it per job leg)."""
    return int(os.environ.get("CHAOS_SEED", "101"))


@pytest.fixture(scope="session")
def scenario() -> ChaosScenario:
    return ChaosScenario()


@pytest.fixture(scope="session")
def fleet_dataset(scenario):
    return simulate_fleet(scenario)
