"""Unit tests: fault plans and the deterministic injector."""

from __future__ import annotations

import pytest

from repro.chaos import (
    BUILTIN_PLANS,
    INJECTION_POINTS,
    ZERO_FAULTS,
    ChaosError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.chaos.plan import FLEET_TASK, FLUSH_DATA, STORAGE_READ
from repro.sensornet.packets import DataPacket

pytestmark = pytest.mark.chaos


def make_packet(seq: int = 0, payload: bytes = b"abcdef") -> DataPacket:
    return DataPacket(
        sensor_id=1, measurement_id=2, seq=seq, total=1000, payload=payload
    )


class TestFaultSpec:
    def test_rejects_unknown_point(self):
        with pytest.raises(ValueError, match="injection point"):
            FaultSpec(point="nonsense", kind="drop", probability=0.5)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="fault kind"):
            FaultSpec(point=FLUSH_DATA, kind="explode", probability=0.5)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            FaultSpec(point=FLUSH_DATA, kind="drop", probability=1.5)

    def test_rejects_negative_magnitude(self):
        with pytest.raises(ValueError, match="magnitude"):
            FaultSpec(point=FLUSH_DATA, kind="delay", probability=0.5, magnitude=-1)


class TestFaultPlan:
    def test_for_point_filters(self):
        plan = FaultPlan(
            "p",
            seed=0,
            specs=(
                FaultSpec(FLUSH_DATA, "drop", 0.1),
                FaultSpec(STORAGE_READ, "error", 0.2),
                FaultSpec(FLUSH_DATA, "corrupt", 0.3),
            ),
        )
        kinds = [s.kind for s in plan.for_point(FLUSH_DATA)]
        assert kinds == ["drop", "corrupt"]
        assert plan.points == (FLUSH_DATA, STORAGE_READ)

    def test_with_seed_preserves_specs(self):
        plan = BUILTIN_PLANS["packet-storm"].with_seed(42)
        assert plan.seed == 42
        assert plan.specs == BUILTIN_PLANS["packet-storm"].specs

    def test_builtin_plans_are_well_formed(self):
        assert "zero-faults" in BUILTIN_PLANS
        for name, plan in BUILTIN_PLANS.items():
            assert plan.name == name
            for spec in plan.specs:
                assert spec.point in INJECTION_POINTS

    def test_zero_faults_is_empty(self):
        assert ZERO_FAULTS.specs == ()


class TestInjectorDeterminism:
    def plan(self, seed: int = 7) -> FaultPlan:
        return FaultPlan(
            "det",
            seed=seed,
            specs=(
                FaultSpec(FLUSH_DATA, "drop", 0.3),
                FaultSpec(FLUSH_DATA, "corrupt", 0.2),
                FaultSpec(STORAGE_READ, "error", 0.4),
            ),
        )

    def test_same_seed_same_fault_stream(self):
        outcomes = []
        for _ in range(2):
            injector = FaultInjector(self.plan())
            run = [len(injector.deliver_packet(FLUSH_DATA, make_packet(i))) for i in range(200)]
            outcomes.append(run)
        assert outcomes[0] == outcomes[1]

    def test_different_seed_different_stream(self):
        runs = []
        for seed in (1, 2):
            injector = FaultInjector(self.plan(seed))
            runs.append(
                [len(injector.deliver_packet(FLUSH_DATA, make_packet(i))) for i in range(200)]
            )
        assert runs[0] != runs[1]

    def test_point_streams_are_independent(self):
        """Drawing at one point must not perturb another point's stream."""
        interleaved = FaultInjector(self.plan())
        plain = FaultInjector(self.plan())
        plain_stream = []
        inter_stream = []
        for i in range(100):
            plain_stream.append(len(plain.deliver_packet(FLUSH_DATA, make_packet(i))))
            inter_stream.append(len(interleaved.deliver_packet(FLUSH_DATA, make_packet(i))))
            # These extra draws consume only storage.read's RNG.
            try:
                interleaved.maybe_fail(STORAGE_READ)
            except ChaosError:
                pass
        assert plain_stream == inter_stream

    def test_zero_faults_never_fires(self):
        injector = FaultInjector(ZERO_FAULTS)
        for i in range(50):
            assert injector.deliver_packet(FLUSH_DATA, make_packet(i)) == [make_packet(i)]
            injector.maybe_fail(STORAGE_READ)
            assert injector.delay_s(FLEET_TASK) == 0.0
        assert injector.total_fired == 0
        assert injector.events == []


class TestInjectorMutations:
    def test_drop_removes_packet(self):
        plan = FaultPlan("d", seed=0, specs=(FaultSpec(FLUSH_DATA, "drop", 1.0),))
        injector = FaultInjector(plan)
        assert injector.deliver_packet(FLUSH_DATA, make_packet()) == []
        assert injector.fired_count(FLUSH_DATA, "drop") == 1

    def test_corrupt_flips_one_byte_keeps_length(self):
        plan = FaultPlan("c", seed=0, specs=(FaultSpec(FLUSH_DATA, "corrupt", 1.0),))
        injector = FaultInjector(plan)
        original = make_packet()
        (out,) = injector.deliver_packet(FLUSH_DATA, original)
        assert len(out.payload) == len(original.payload)
        assert out.payload != original.payload
        assert sum(a != b for a, b in zip(out.payload, original.payload)) == 1

    def test_truncate_shortens_payload(self):
        plan = FaultPlan(
            "t", seed=0, specs=(FaultSpec(FLUSH_DATA, "truncate", 1.0, magnitude=0.5),)
        )
        injector = FaultInjector(plan)
        (out,) = injector.deliver_packet(FLUSH_DATA, make_packet(payload=b"x" * 10))
        assert len(out.payload) == 5

    def test_duplicate_doubles_packet(self):
        plan = FaultPlan("u", seed=0, specs=(FaultSpec(FLUSH_DATA, "duplicate", 1.0),))
        injector = FaultInjector(plan)
        out = injector.deliver_packet(FLUSH_DATA, make_packet())
        assert len(out) == 2
        assert out[0] == out[1]

    def test_maybe_fail_raises_chaos_error(self):
        plan = FaultPlan("e", seed=0, specs=(FaultSpec(STORAGE_READ, "error", 1.0),))
        injector = FaultInjector(plan)
        with pytest.raises(ChaosError):
            injector.maybe_fail(STORAGE_READ)

    def test_delay_accumulates_magnitudes(self):
        plan = FaultPlan(
            "w",
            seed=0,
            specs=(
                FaultSpec(FLEET_TASK, "delay", 1.0, magnitude=0.25),
                FaultSpec(FLEET_TASK, "delay", 1.0, magnitude=0.5),
            ),
        )
        injector = FaultInjector(plan)
        assert injector.delay_s(FLEET_TASK) == pytest.approx(0.75)

    def test_mutate_measurements_poisons_rows(self):
        import numpy as np

        from repro.storage.records import Measurement

        record = Measurement(
            pump_id=1,
            measurement_id=0,
            timestamp_day=1.0,
            service_day=1.0,
            samples=np.ones((64, 3)),
        )
        plan = FaultPlan("p", seed=0, specs=(FaultSpec(STORAGE_READ, "corrupt", 1.0),))
        injector = FaultInjector(plan)
        (out,) = injector.mutate_measurements(STORAGE_READ, [record])
        assert np.isnan(out.samples).any()
        assert not np.isnan(record.samples).any()
