"""Tests for trace import/export (traces.py)."""

import numpy as np
import pytest

from repro.storage.records import Measurement
from repro.storage.traces import (
    export_csv_measurement,
    export_npz,
    import_csv_measurement,
    import_npz,
)


def make_measurement(pump=0, mid=0, k=32, seed=0):
    gen = np.random.default_rng(seed + mid)
    return Measurement(
        pump_id=pump,
        measurement_id=mid,
        timestamp_day=float(mid),
        service_day=float(mid) + 0.5,
        samples=gen.normal(size=(k, 3)),
        sampling_rate_hz=2000.0,
    )


class TestNPZRoundtrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        original = [make_measurement(mid=i) for i in range(5)]
        path = export_npz(original, tmp_path / "corpus.npz")
        restored = import_npz(path)
        assert len(restored) == 5
        for a, b in zip(original, restored):
            assert a.pump_id == b.pump_id
            assert a.measurement_id == b.measurement_id
            assert a.timestamp_day == b.timestamp_day
            assert a.service_day == b.service_day
            assert a.sampling_rate_hz == b.sampling_rate_hz
            assert np.allclose(a.samples, b.samples, atol=1e-6)

    def test_mixed_block_lengths(self, tmp_path):
        original = [
            make_measurement(mid=0, k=16),
            make_measurement(mid=1, k=64),
            make_measurement(mid=2, k=32),
        ]
        restored = import_npz(export_npz(original, tmp_path / "mixed.npz"))
        assert [m.num_samples for m in restored] == [16, 64, 32]
        assert all(np.isfinite(m.samples).all() for m in restored)

    def test_empty_export_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_npz([], tmp_path / "empty.npz")

    def test_import_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, whatever=np.ones(3))
        with pytest.raises(ValueError, match="missing"):
            import_npz(path)

    def test_creates_parent_directories(self, tmp_path):
        path = export_npz(
            [make_measurement()], tmp_path / "deep" / "dir" / "c.npz"
        )
        assert path.exists()


class TestCSVRoundtrip:
    def test_roundtrip(self, tmp_path):
        original = make_measurement(k=48, seed=3)
        path = export_csv_measurement(original, tmp_path / "block.csv")
        restored = import_csv_measurement(
            path,
            pump_id=original.pump_id,
            measurement_id=original.measurement_id,
            timestamp_day=original.timestamp_day,
            service_day=original.service_day,
            sampling_rate_hz=original.sampling_rate_hz,
        )
        assert np.allclose(restored.samples, original.samples, atol=1e-8)

    def test_header_is_optional(self, tmp_path):
        path = tmp_path / "noheader.csv"
        path.write_text("0.1,0.2,0.3\n0.4,0.5,0.6\n")
        m = import_csv_measurement(path, 0, 0, 0.0, 0.0)
        assert m.num_samples == 2
        assert m.samples[1, 2] == pytest.approx(0.6)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.csv"
        path.write_text("x,y,z\n0.1,0.2,0.3\n\n0.4,0.5,0.6\n")
        assert import_csv_measurement(path, 0, 0, 0.0, 0.0).num_samples == 2

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("0.1,0.2,0.3\nnot,a,number\n")
        with pytest.raises(ValueError, match="malformed"):
            import_csv_measurement(path, 0, 0, 0.0, 0.0)

    def test_short_row_rejected(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("0.1,0.2\n0.3,0.4\n")
        with pytest.raises(ValueError, match="3 columns"):
            import_csv_measurement(path, 0, 0, 0.0, 0.0)

    def test_too_few_samples_rejected(self, tmp_path):
        path = tmp_path / "tiny.csv"
        path.write_text("0.1,0.2,0.3\n")
        with pytest.raises(ValueError, match="at least 2"):
            import_csv_measurement(path, 0, 0, 0.0, 0.0)

    def test_imported_block_feeds_the_pipeline(self, tmp_path):
        """External CSV data flows straight into feature extraction."""
        from repro.core.features import psd_feature

        t = np.arange(256) / 4000.0
        mono = 0.5 * np.sin(2 * np.pi * 300.0 * t)
        block = np.stack([mono, mono, mono], axis=1)
        original = Measurement(0, 0, 0.0, 0.0, block)
        path = export_csv_measurement(original, tmp_path / "tone.csv")
        restored = import_csv_measurement(path, 0, 0, 0.0, 0.0)
        psd = psd_feature(restored.samples)
        assert np.isfinite(psd).all()
        assert psd.argmax() > 0
