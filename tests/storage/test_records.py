"""Tests for record types (records.py)."""

import numpy as np
import pytest

from repro.storage.records import (
    BM,
    PM,
    LabelRecord,
    MaintenanceEvent,
    Measurement,
    SensorMeta,
    TemperatureRecord,
)


class TestMeasurement:
    def test_coerces_samples_to_float(self):
        m = Measurement(
            pump_id=0,
            measurement_id=1,
            timestamp_day=2.0,
            service_day=2.0,
            samples=np.ones((8, 3), dtype=np.int16),
        )
        assert m.samples.dtype == np.float64
        assert m.num_samples == 8

    def test_rejects_bad_sample_shape(self):
        with pytest.raises(ValueError):
            Measurement(0, 0, 0.0, 0.0, samples=np.ones((8, 2)))

    def test_default_sampling_rate_matches_paper(self):
        m = Measurement(0, 0, 0.0, 0.0, samples=np.ones((4, 3)))
        assert m.sampling_rate_hz == 4000.0


class TestMaintenanceEvent:
    def test_valid_kinds(self):
        MaintenanceEvent(0, 1.0, PM, 30.0, 100.0)
        MaintenanceEvent(0, 1.0, BM, 30.0, -10.0)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            MaintenanceEvent(0, 1.0, "OOPS", 30.0)

    def test_default_rul_is_nan(self):
        event = MaintenanceEvent(0, 1.0, PM, 30.0)
        assert np.isnan(event.true_rul_days)


class TestOtherRecords:
    def test_label_record_defaults(self):
        label = LabelRecord(pump_id=1, measurement_id=2, zone="A")
        assert label.valid
        assert label.source == "data-driven"

    def test_sensor_meta_defaults(self):
        meta = SensorMeta(sensor_id=0, pump_id=0)
        assert meta.sampling_rate_hz == 4000.0
        assert meta.samples_per_measurement == 1024

    def test_temperature_record_fields(self):
        record = TemperatureRecord(pump_id=3, timestamp_day=1.5, temperature_c=64.2)
        assert record.temperature_c == 64.2
