"""Tests for tiered retention (aggregate.py)."""

import numpy as np
import pytest

from repro.core.features import rms_feature
from repro.storage.aggregate import RetentionManager
from repro.storage.database import VibrationDatabase
from repro.storage.records import Measurement


def make_measurement(pump=0, mid=0, day=0.0, amplitude=0.5, seed=0):
    gen = np.random.default_rng(seed + mid)
    t = np.arange(128) / 4000.0
    mono = amplitude * np.sin(2 * np.pi * 200.0 * t)
    samples = np.stack([mono, mono, mono], axis=1)
    samples += gen.normal(0, 0.01, size=samples.shape)
    samples += np.asarray([0.1, -0.1, 1.0])[None, :]
    return Measurement(pump, mid, day, day, samples)


@pytest.fixture()
def db():
    with VibrationDatabase() as database:
        yield database


class TestSummarizeDay:
    def test_aggregates_one_pump_day(self, db):
        for i in range(6):
            db.measurements.add(make_measurement(mid=i, day=2.0 + i * 0.1))
        manager = RetentionManager(db)
        summary = manager.summarize_day(0, 2)
        assert summary is not None
        assert summary.n_measurements == 6
        reference = rms_feature(make_measurement(mid=0, day=2.0).samples)
        assert summary.rms_mean == pytest.approx(reference, rel=0.1)
        assert summary.rms_max >= summary.rms_mean
        # The 6.4-period sinusoid leaves a small nonzero mean per block,
        # hence the loose tolerance.
        assert summary.offset_mean == pytest.approx((0.1, -0.1, 1.0), abs=0.05)
        assert summary.service_day_last == pytest.approx(2.5)

    def test_empty_day_returns_none(self, db):
        manager = RetentionManager(db)
        assert manager.summarize_day(0, 5) is None


class TestStoreAndQuery:
    def test_roundtrip(self, db):
        db.measurements.add(make_measurement(day=1.5))
        manager = RetentionManager(db)
        summary = manager.summarize_day(0, 1)
        manager.store_summary(summary)
        [loaded] = manager.summaries()
        assert loaded.pump_id == summary.pump_id
        assert loaded.day == summary.day
        assert loaded.rms_mean == pytest.approx(summary.rms_mean)

    def test_upsert_per_pump_day(self, db):
        db.measurements.add(make_measurement(day=1.5))
        manager = RetentionManager(db)
        summary = manager.summarize_day(0, 1)
        manager.store_summary(summary)
        manager.store_summary(summary)
        assert len(manager.summaries()) == 1

    def test_pump_filter(self, db):
        db.measurements.add(make_measurement(pump=1, day=0.5))
        db.measurements.add(make_measurement(pump=2, day=0.5))
        manager = RetentionManager(db)
        for pump in (1, 2):
            manager.store_summary(manager.summarize_day(pump, 0))
        assert len(manager.summaries(pump_id=1)) == 1
        assert len(manager.summaries()) == 2


class TestCompaction:
    def test_old_blocks_summarized_then_deleted(self, db):
        # Days 0..4, two measurements per day.
        for day in range(5):
            for j in range(2):
                db.measurements.add(
                    make_measurement(mid=day * 10 + j, day=day + 0.2 + 0.3 * j)
                )
        manager = RetentionManager(db)
        outcome = manager.compact(keep_raw_days=2.0, now_day=5.0)
        # Cutoff at day 3: days 0, 1, 2 compacted.
        assert outcome["summaries_written"] == 3
        assert outcome["raw_deleted"] == 6
        assert db.measurements.count() == 4
        summaries = manager.summaries()
        assert [s.day for s in summaries] == [0, 1, 2]
        assert all(s.n_measurements == 2 for s in summaries)

    def test_compaction_is_idempotent(self, db):
        for day in range(3):
            db.measurements.add(make_measurement(mid=day, day=float(day)))
        manager = RetentionManager(db)
        first = manager.compact(keep_raw_days=1.0, now_day=3.0)
        second = manager.compact(keep_raw_days=1.0, now_day=3.0)
        assert first["raw_deleted"] == 2
        assert second["raw_deleted"] == 0
        assert second["summaries_written"] == 0

    def test_summary_preserves_trend_information(self, db):
        """The long-horizon RMS trend survives compaction."""
        for day in range(4):
            amplitude = 0.2 + 0.2 * day  # degrading pump
            db.measurements.add(
                make_measurement(mid=day, day=day + 0.5, amplitude=amplitude)
            )
        manager = RetentionManager(db)
        manager.compact(keep_raw_days=0.0, now_day=5.0)
        summaries = manager.summaries()
        rms_trend = [s.rms_mean for s in summaries]
        assert rms_trend == sorted(rms_trend)

    def test_rejects_negative_retention(self, db):
        manager = RetentionManager(db)
        with pytest.raises(ValueError):
            manager.compact(keep_raw_days=-1.0, now_day=0.0)
