"""Tests for the SQLite stores (database.py)."""

import numpy as np
import pytest

from repro.storage.database import DatabaseCorruptionError, VibrationDatabase
from repro.storage.records import (
    BM,
    PM,
    LabelRecord,
    MaintenanceEvent,
    Measurement,
    SensorMeta,
    TemperatureRecord,
)


@pytest.fixture()
def db():
    with VibrationDatabase() as database:
        yield database


def make_measurement(pump=0, mid=0, day=0.0, k=16, seed=0):
    gen = np.random.default_rng(seed)
    return Measurement(
        pump_id=pump,
        measurement_id=mid,
        timestamp_day=day,
        service_day=day,
        samples=gen.normal(size=(k, 3)),
    )


class TestMeasurementStore:
    def test_roundtrip_preserves_samples(self, db):
        original = make_measurement(seed=1)
        db.measurements.add(original)
        [restored] = db.measurements.query()
        # float32 storage: exact to float32 precision.
        assert np.allclose(restored.samples, original.samples, atol=1e-6)
        assert restored.pump_id == original.pump_id
        assert restored.measurement_id == original.measurement_id

    def test_time_range_query_is_half_open(self, db):
        for day in (0.0, 1.0, 2.0, 3.0):
            db.measurements.add(make_measurement(mid=int(day), day=day))
        results = db.measurements.query(start_day=1.0, end_day=3.0)
        assert [m.timestamp_day for m in results] == [1.0, 2.0]

    def test_pump_filter(self, db):
        db.measurements.add(make_measurement(pump=1, mid=0))
        db.measurements.add(make_measurement(pump=2, mid=0))
        results = db.measurements.query(pump_ids=[2])
        assert len(results) == 1
        assert results[0].pump_id == 2

    def test_ordering_by_time(self, db):
        db.measurements.add(make_measurement(mid=1, day=5.0))
        db.measurements.add(make_measurement(mid=0, day=1.0))
        results = db.measurements.query()
        assert [m.timestamp_day for m in results] == [1.0, 5.0]

    def test_upsert_semantics(self, db):
        db.measurements.add(make_measurement(mid=0, seed=1))
        db.measurements.add(make_measurement(mid=0, seed=2))
        assert db.measurements.count() == 1

    def test_bulk_insert(self, db):
        db.measurements.add_many(make_measurement(mid=i) for i in range(10))
        assert db.measurements.count() == 10


class TestZeroCopyDecode:
    def test_decode_is_float32_little_endian(self, db):
        db.measurements.add(make_measurement(seed=3))
        [restored] = db.measurements.query()
        assert restored.samples.dtype == np.dtype("<f4")

    def test_decode_is_readonly_view_over_blob(self, db):
        """``_decode`` wraps the BLOB bytes directly — a read-only view,
        not a per-row copy."""
        db.measurements.add(make_measurement(seed=4))
        [restored] = db.measurements.query()
        arr = restored.samples
        assert not arr.flags.writeable
        assert not arr.flags.owndata
        # The view chain bottoms out at the immutable BLOB buffer.
        base = arr
        while base.base is not None and isinstance(base.base, np.ndarray):
            base = base.base
        assert isinstance(base.base, (bytes, memoryview))
        with pytest.raises((ValueError, RuntimeError)):
            arr[0, 0] = 1.0

    def test_decode_roundtrips_exact_float32(self, db):
        original = make_measurement(seed=5)
        db.measurements.add(original)
        [restored] = db.measurements.query()
        assert np.array_equal(
            restored.samples, original.samples.astype(np.float32)
        )


class TestQueryArrays:
    def test_matches_record_query_bit_exact(self, db):
        db.measurements.add_many(
            make_measurement(pump=i % 3, mid=i, day=float(i), seed=i)
            for i in range(12)
        )
        records = db.measurements.query()
        pumps, mids, service, samples, dropped, corrupt = (
            db.measurements.query_arrays()
        )
        assert dropped == {}
        assert corrupt == {}
        assert list(pumps) == [m.pump_id for m in records]
        assert list(mids) == [m.measurement_id for m in records]
        assert list(service) == [m.service_day for m in records]
        stacked = np.stack([m.samples for m in records]).astype(np.float64)
        assert samples.dtype == np.float64
        assert np.array_equal(samples, stacked)

    def test_filters_match_record_query(self, db):
        db.measurements.add_many(
            make_measurement(pump=i % 2, mid=i, day=float(i)) for i in range(8)
        )
        records = db.measurements.query(start_day=2.0, end_day=6.0, pump_ids=[1])
        pumps, mids, _, samples, _, _ = db.measurements.query_arrays(
            start_day=2.0, end_day=6.0, pump_ids=[1]
        )
        assert list(mids) == [m.measurement_id for m in records]
        assert (pumps == 1).all()
        assert samples.shape[0] == len(records)

    def test_majority_length_filter_reports_dropped(self, db):
        db.measurements.add_many(
            make_measurement(pump=0, mid=i, day=float(i), k=16) for i in range(4)
        )
        db.measurements.add(make_measurement(pump=1, mid=99, day=9.0, k=8))
        pumps, mids, _, samples, dropped, _ = db.measurements.query_arrays()
        assert samples.shape == (4, 16, 3)
        assert 99 not in mids
        assert dropped == {1: 1}

    def test_empty_result(self, db):
        pumps, mids, service, samples, dropped, corrupt = (
            db.measurements.query_arrays()
        )
        assert pumps.size == 0 and samples.shape == (0, 0, 3) and dropped == {}
        assert corrupt == {}


class TestConnectionPragmas:
    def test_file_backed_uses_wal_and_mmap(self, tmp_path):
        with VibrationDatabase(str(tmp_path / "vibes.db")) as database:
            conn = database._conn
            (mode,) = conn.execute("PRAGMA journal_mode").fetchone()
            assert mode.lower() == "wal"
            (sync,) = conn.execute("PRAGMA synchronous").fetchone()
            assert sync == 1  # NORMAL
            (mmap,) = conn.execute("PRAGMA mmap_size").fetchone()
            assert mmap == VibrationDatabase.MMAP_BYTES

    def test_in_memory_skips_wal(self):
        with VibrationDatabase() as database:
            assert database.in_memory
            (mode,) = database._conn.execute("PRAGMA journal_mode").fetchone()
            assert mode.lower() != "wal"


class TestLabelStore:
    def test_valid_filter(self, db):
        db.labels.add(LabelRecord(0, 0, "A", valid=True))
        db.labels.add(LabelRecord(0, 1, "D", valid=False))
        assert len(db.labels.query(only_valid=True)) == 1
        assert len(db.labels.query(only_valid=False)) == 2
        assert db.labels.count() == 2
        assert db.labels.count(only_valid=True) == 1

    def test_pump_filter(self, db):
        db.labels.add(LabelRecord(1, 0, "A"))
        db.labels.add(LabelRecord(2, 0, "BC"))
        results = db.labels.query(pump_ids=[1])
        assert len(results) == 1
        assert results[0].zone == "A"

    def test_two_sources_coexist_per_measurement(self, db):
        db.labels.add(LabelRecord(0, 0, "A", source="data-driven"))
        db.labels.add(LabelRecord(0, 0, "BC", source="physical-checking"))
        assert db.labels.count() == 2


class TestEventStore:
    def test_roundtrip_with_nan_rul(self, db):
        db.events.add(MaintenanceEvent(0, 10.0, PM, 180.0))
        [event] = db.events.query()
        assert np.isnan(event.true_rul_days)

    def test_time_and_pump_filters(self, db):
        db.events.add(MaintenanceEvent(1, 10.0, PM, 180.0, 50.0))
        db.events.add(MaintenanceEvent(2, 20.0, BM, 200.0, -30.0))
        assert len(db.events.query(start_day=15.0)) == 1
        assert len(db.events.query(pump_ids=[1])) == 1
        assert db.events.query(pump_ids=[2])[0].kind == BM


class TestTemperatureStore:
    def test_roundtrip_and_filters(self, db):
        db.temperature.add_many(
            [
                TemperatureRecord(0, 1.0, 64.0),
                TemperatureRecord(0, 2.0, 66.0),
                TemperatureRecord(1, 1.5, 70.0),
            ]
        )
        assert len(db.temperature.query()) == 3
        assert len(db.temperature.query(start_day=1.2, end_day=1.8)) == 1
        assert db.temperature.query(pump_ids=[1])[0].temperature_c == 70.0


class TestSensorStore:
    def test_roundtrip(self, db):
        db.sensors.add(SensorMeta(sensor_id=5, pump_id=5, install_day=2.0))
        [meta] = db.sensors.all()
        assert meta.sensor_id == 5
        assert meta.install_day == 2.0

    def test_replace_on_same_id(self, db):
        db.sensors.add(SensorMeta(sensor_id=1, pump_id=1))
        db.sensors.add(SensorMeta(sensor_id=1, pump_id=2))
        [meta] = db.sensors.all()
        assert meta.pump_id == 2


class TestFileBacked:
    def test_persistence_across_connections(self, tmp_path):
        path = str(tmp_path / "vibration.db")
        with VibrationDatabase(path) as db:
            db.measurements.add(make_measurement())
        with VibrationDatabase(path) as db:
            assert db.measurements.count() == 1


class _AlwaysCorrupt:
    """Minimal duck-typed injector: damages every row at byte 0."""

    def corrupts(self, point):
        return True

    def corrupt_index(self, point, n):
        return 0


class TestBlobIntegrity:
    def test_corrupt_blob_is_quarantined_on_query(self, db):
        db.measurements.add_many(
            make_measurement(pump=p, mid=p, seed=p) for p in range(3)
        )
        db.measurements.corrupt_blob(1, 1)
        records = db.measurements.query()
        assert [m.pump_id for m in records] == [0, 2]
        assert db.measurements.last_corrupt == {1: 1}
        [letter] = db.dead_letters.query(stage="storage")
        assert letter.pump_id == 1
        assert letter.measurement_id == 1
        assert letter.reason == db.measurements.QUARANTINE_REASON

    def test_query_arrays_filters_corrupt_and_stays_bit_identical(self, db):
        db.measurements.add_many(
            make_measurement(pump=p, mid=p, day=float(p), seed=p) for p in range(4)
        )
        db.measurements.corrupt_blob(2, 2, byte_index=7)
        pumps, mids, _, samples, dropped, corrupt = db.measurements.query_arrays()
        assert list(pumps) == [0, 1, 3]
        assert corrupt == {2: 1}
        assert dropped == {}
        # Survivors decode exactly as the record path decodes them.
        records = db.measurements.query()
        stacked = np.stack([m.samples for m in records]).astype(np.float64)
        assert np.array_equal(samples, stacked)

    def test_quarantine_insert_is_deduplicated_across_reads(self, db):
        db.measurements.add(make_measurement(seed=6))
        db.measurements.corrupt_blob(0, 0)
        db.measurements.query()
        db.measurements.query()
        db.measurements.query_arrays()
        assert len(db.dead_letters.query(stage="storage")) == 1

    def test_legacy_rows_without_checksum_still_decode(self, db):
        db.measurements.add(make_measurement(seed=7))
        db._conn.execute("UPDATE measurements SET checksum = NULL")
        [restored] = db.measurements.query()
        assert db.measurements.last_corrupt == {}
        assert restored.samples.shape == (16, 3)

    def test_checksum_column_is_migrated_on_legacy_files(self, tmp_path):
        path = str(tmp_path / "legacy.db")
        with VibrationDatabase(path) as db:
            db._conn.execute("ALTER TABLE measurements DROP COLUMN checksum")
        with VibrationDatabase(path) as db:
            columns = {
                row[1]
                for row in db._conn.execute("PRAGMA table_info(measurements)")
            }
            assert "checksum" in columns
            db.measurements.add(make_measurement(seed=8))
            assert len(db.measurements.query()) == 1

    def test_fault_blobs_damages_only_drawn_rows(self, db):
        db.measurements.add_many(
            make_measurement(pump=p, mid=p, seed=p) for p in range(3)
        )
        damaged = db.measurements.fault_blobs(_AlwaysCorrupt(), "storage.blob_corrupt")
        assert damaged == [(0, 0), (1, 1), (2, 2)]
        assert db.measurements.query() == []
        assert db.measurements.last_corrupt == {0: 1, 1: 1, 2: 1}


class TestQuickCheck:
    def test_opening_a_damaged_file_raises_corruption_error(self, tmp_path):
        path = tmp_path / "broken.db"
        path.write_bytes(b"this is not a sqlite database, honest\x00" * 64)
        with pytest.raises(DatabaseCorruptionError, match="RELIABILITY"):
            VibrationDatabase(str(path))

    def test_healthy_file_passes_quick_check(self, tmp_path):
        path = str(tmp_path / "healthy.db")
        with VibrationDatabase(path) as db:
            db.measurements.add(make_measurement())
        with VibrationDatabase(path) as db:
            assert db.measurements.count() == 1
