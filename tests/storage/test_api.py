"""Tests for the analysis-period retrieval API (api.py)."""

import numpy as np
import pytest

from repro.storage.api import AnalysisPeriod, DataRetrievalAPI
from repro.storage.database import VibrationDatabase
from repro.storage.records import (
    PM,
    LabelRecord,
    MaintenanceEvent,
    Measurement,
    TemperatureRecord,
)


def make_measurement(pump=0, mid=0, day=0.0, k=16):
    gen = np.random.default_rng(mid)
    return Measurement(pump, mid, day, day, gen.normal(size=(k, 3)))


@pytest.fixture()
def api():
    db = VibrationDatabase()
    for day in range(10):
        db.measurements.add(make_measurement(pump=day % 2, mid=day, day=float(day)))
    db.labels.add(LabelRecord(0, 0, "A"))
    db.labels.add(LabelRecord(0, 2, "BC", valid=False))
    db.events.add(MaintenanceEvent(0, 4.5, PM, 100.0, 40.0))
    db.temperature.add_many([TemperatureRecord(0, 3.0, 65.0)])
    yield DataRetrievalAPI(db, AnalysisPeriod(0.0, 5.0))
    db.close()


class TestAnalysisPeriod:
    def test_validates_ordering(self):
        with pytest.raises(ValueError):
            AnalysisPeriod(5.0, 5.0)

    def test_duration_and_contains(self):
        period = AnalysisPeriod(2.0, 7.0)
        assert period.duration_days == 5.0
        assert period.contains(2.0)
        assert not period.contains(7.0)

    def test_advanced_keeps_start_and_extends_end(self):
        period = AnalysisPeriod(0.0, 5.0).advanced(2.5)
        assert period.start_day == 0.0
        assert period.end_day == 7.5

    def test_advanced_rejects_non_positive(self):
        with pytest.raises(ValueError):
            AnalysisPeriod(0.0, 1.0).advanced(0.0)


class TestRetrieval:
    def test_measurements_scoped_to_period(self, api):
        results = api.get_measurements()
        assert len(results) == 5
        assert all(0.0 <= m.timestamp_day < 5.0 for m in results)

    def test_advance_widens_the_window(self, api):
        api.advance(5.0)
        assert len(api.get_measurements()) == 10

    def test_labels_exclude_invalid(self, api):
        labels = api.get_labels()
        assert len(labels) == 1
        assert labels[0].zone == "A"

    def test_events_scoped_to_period(self, api):
        assert len(api.get_events()) == 1
        api.period = AnalysisPeriod(5.0, 10.0)
        assert api.get_events() == []

    def test_temperature_scoped_to_period(self, api):
        assert len(api.get_temperature()) == 1

    def test_pump_filter_passthrough(self, api):
        only_pump1 = api.get_measurements(pump_ids=[1])
        assert all(m.pump_id == 1 for m in only_pump1)


class TestMatrixConstruction:
    def test_dense_arrays_align(self, api):
        pumps, mids, service, samples = api.measurement_matrices()
        assert pumps.shape == mids.shape == service.shape == (5,)
        assert samples.shape == (5, 16, 3)

    def test_minority_block_lengths_dropped(self):
        db = VibrationDatabase()
        for mid in range(4):
            db.measurements.add(make_measurement(mid=mid, day=float(mid), k=16))
        db.measurements.add(make_measurement(mid=9, day=4.0, k=8))  # truncated transfer
        api = DataRetrievalAPI(db, AnalysisPeriod(0.0, 10.0))
        pumps, mids, _, samples = api.measurement_matrices()
        assert samples.shape == (4, 16, 3)
        assert 9 not in mids
        db.close()

    def test_empty_period(self):
        db = VibrationDatabase()
        api = DataRetrievalAPI(db, AnalysisPeriod(0.0, 1.0))
        pumps, mids, service, samples = api.measurement_matrices()
        assert pumps.size == 0
        assert samples.shape[0] == 0
        db.close()
