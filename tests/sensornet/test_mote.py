"""Tests for the mote state machine (mote.py)."""

import numpy as np
import pytest

from repro.sensornet.energy import EnergyConfig
from repro.sensornet.mote import Mote, MoteState
from repro.sensornet.packets import reassemble_measurement
from repro.sensornet.radio import LossyLink


def counts_source(k=128, seed=0):
    gen = np.random.default_rng(seed)

    def source(measurement_id: int) -> np.ndarray:
        return gen.integers(-100, 100, size=(k, 3), dtype=np.int16)

    return source


def make_mote(loss=0.0, battery_j=3864.0, seed=0):
    return Mote(
        sensor_id=1,
        link=LossyLink(loss, seed=seed),
        measurement_source=counts_source(seed=seed),
        sampling_rate_hz=4000.0,
        energy=EnergyConfig(battery_joules=battery_j),
    )


class TestLifecycle:
    def test_starts_asleep_and_requires_boot(self):
        mote = make_mote()
        assert mote.state is MoteState.SLEEP
        with pytest.raises(RuntimeError, match="boot"):
            mote.execute_slot()

    def test_boot_returns_sensor_id(self):
        mote = make_mote()
        assert mote.boot() == 1

    def test_slot_produces_complete_measurement_on_clean_link(self):
        mote = make_mote()
        mote.boot()
        outcome = mote.execute_slot()
        assert outcome is not None
        assert outcome.flush.success
        block = reassemble_measurement(outcome.packets)
        assert block.shape == (128, 3)

    def test_measurement_ids_increment(self):
        mote = make_mote()
        mote.boot()
        ids = [mote.execute_slot().measurement_id for _ in range(3)]
        assert ids == [0, 1, 2]

    def test_returns_to_sleep_after_slot(self):
        mote = make_mote()
        mote.boot()
        mote.execute_slot()
        assert mote.state is MoteState.SLEEP

    def test_battery_drains_per_slot(self):
        mote = make_mote()
        mote.boot()
        before = mote.battery.remaining_j
        mote.execute_slot(sleep_seconds_since_last=3600.0)
        assert mote.battery.remaining_j < before

    def test_depleted_battery_kills_mote(self):
        mote = make_mote(battery_j=0.3)  # less than one measurement
        mote.boot()
        first = mote.execute_slot()
        assert first is not None  # the killing measurement still runs
        second = mote.execute_slot()
        assert second is None
        assert mote.state is MoteState.DEAD

    def test_dead_mote_cannot_reboot(self):
        mote = make_mote(battery_j=0.3)
        mote.boot()
        mote.execute_slot()
        mote.execute_slot()
        with pytest.raises(RuntimeError, match="dead"):
            mote.boot()

    def test_lossy_link_can_fail_transfer_but_mote_survives(self):
        mote = Mote(
            sensor_id=2,
            link=LossyLink(1.0, seed=1),
            measurement_source=counts_source(seed=1),
            max_flush_rounds=3,
        )
        mote.boot()
        outcome = mote.execute_slot()
        assert outcome is not None
        assert not outcome.flush.success
        assert not outcome.heartbeat_delivered
        assert mote.state is MoteState.SLEEP

    def test_rejects_bad_sampling_rate(self):
        with pytest.raises(ValueError):
            Mote(1, LossyLink(0.0), counts_source(), sampling_rate_hz=0.0)
