"""Tests for the lossy link model (radio.py)."""

import numpy as np
import pytest

from repro.sensornet.radio import LossyLink


class TestBernoulliMode:
    def test_lossless_link_never_drops(self):
        link = LossyLink(loss_probability=0.0, seed=0)
        assert all(link.transmit() for _ in range(500))
        assert link.observed_loss_rate == 0.0

    def test_dead_link_always_drops(self):
        link = LossyLink(loss_probability=1.0, seed=0)
        assert not any(link.transmit() for _ in range(100))
        assert link.observed_loss_rate == 1.0

    def test_loss_rate_statistics(self):
        link = LossyLink(loss_probability=0.2, seed=1)
        outcomes = [link.transmit() for _ in range(5000)]
        assert np.mean(outcomes) == pytest.approx(0.8, abs=0.03)

    def test_counters(self):
        link = LossyLink(loss_probability=0.5, seed=2)
        for _ in range(100):
            link.transmit()
        assert link.transmissions == 100
        assert 0 < link.losses < 100

    def test_fresh_link_reports_zero_rate(self):
        assert LossyLink().observed_loss_rate == 0.0

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ValueError):
            LossyLink(loss_probability=1.5)
        with pytest.raises(ValueError):
            LossyLink(burst_loss_probability=-0.1)
        with pytest.raises(ValueError):
            LossyLink(p_good_to_bad=2.0)


class TestBurstMode:
    def test_burst_mode_raises_overall_loss(self):
        calm = LossyLink(loss_probability=0.02, seed=3)
        bursty = LossyLink(
            loss_probability=0.02,
            burst_loss_probability=0.9,
            p_good_to_bad=0.05,
            p_bad_to_good=0.1,
            seed=3,
        )
        calm_rate = np.mean([not calm.transmit() for _ in range(5000)])
        bursty_rate = np.mean([not bursty.transmit() for _ in range(5000)])
        assert bursty_rate > calm_rate + 0.05

    def test_losses_cluster_in_bursts(self):
        link = LossyLink(
            loss_probability=0.0,
            burst_loss_probability=1.0,
            p_good_to_bad=0.02,
            p_bad_to_good=0.2,
            seed=4,
        )
        outcomes = np.asarray([link.transmit() for _ in range(5000)])
        losses = ~outcomes
        # Conditional probability of loss after a loss must exceed the
        # marginal loss rate (temporal clustering).
        marginal = losses.mean()
        after_loss = losses[1:][losses[:-1]].mean()
        assert after_loss > 2 * marginal
