"""Tests for the Flush reliable bulk transport (flush.py)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sensornet.flush import (
    FlushReceiver,
    best_effort_transfer,
    flush_transfer,
)
from repro.sensornet.packets import fragment_measurement, reassemble_measurement
from repro.sensornet.radio import LossyLink


def make_packets(k=256, seed=0):
    gen = np.random.default_rng(seed)
    counts = gen.integers(-100, 100, size=(k, 3), dtype=np.int16)
    return counts, fragment_measurement(0, 0, counts)


class TestFlushReceiver:
    def test_tracks_missing_fragments(self):
        _, packets = make_packets()
        receiver = FlushReceiver(total=packets[0].total)
        receiver.accept(packets[0])
        receiver.accept(packets[2])
        missing = receiver.missing()
        assert 1 in missing
        assert 0 not in missing
        assert not receiver.complete

    def test_complete_when_all_arrive(self):
        _, packets = make_packets()
        receiver = FlushReceiver(total=packets[0].total)
        for p in packets:
            receiver.accept(p)
        assert receiver.complete
        assert receiver.missing() == []

    def test_rejects_bad_total(self):
        with pytest.raises(ValueError):
            FlushReceiver(total=0)


class TestDuplicateAndReordering:
    def test_duplicate_fragment_is_counted_and_first_write_wins(self):
        _, packets = make_packets()
        receiver = FlushReceiver(total=packets[0].total)
        receiver.accept(packets[0])
        late_copy = packets[0]
        receiver.accept(late_copy)
        assert receiver.duplicates == 1
        assert len(receiver.received) == 1
        assert receiver.received[0] is packets[0]

    def test_duplicate_does_not_overwrite_committed_payload(self):
        """A retransmission that raced a NACK must not clobber data the
        receiver already holds — first arrival wins."""
        from dataclasses import replace

        _, packets = make_packets()
        receiver = FlushReceiver(total=packets[0].total)
        receiver.accept(packets[3])
        tampered = replace(packets[3], payload=b"\xff" * len(packets[3].payload))
        receiver.accept(tampered)
        assert receiver.received[3].payload == packets[3].payload
        assert receiver.duplicates == 1

    def test_out_of_order_arrivals_are_counted(self):
        _, packets = make_packets()
        receiver = FlushReceiver(total=packets[0].total)
        receiver.accept(packets[5])
        receiver.accept(packets[2])  # below highest seen → out of order
        receiver.accept(packets[6])  # in order
        assert receiver.out_of_order == 1
        assert len(receiver.received) == 3

    def test_reordered_delivery_still_reassembles(self):
        counts, packets = make_packets(seed=11)
        receiver = FlushReceiver(total=packets[0].total)
        for p in reversed(packets):
            receiver.accept(p)
        assert receiver.complete
        assert receiver.out_of_order == len(packets) - 1
        assert np.array_equal(reassemble_measurement(receiver.packets()), counts)

    def test_transfer_stats_expose_duplicates_and_retransmissions(self):
        """A lossy NACK channel makes the sender resend fragments the
        receiver already holds: the stats must show that overhead."""
        _, packets = make_packets(seed=12)
        stats, _ = flush_transfer(
            packets,
            LossyLink(0.2, seed=12),
            max_rounds=100,
            nack_link=LossyLink(0.9, seed=13),
        )
        assert stats.success
        assert stats.retransmissions > 0
        assert stats.duplicates > 0
        assert stats.data_transmissions == len(packets) + stats.retransmissions

    def test_lossless_transfer_has_no_overhead(self):
        _, packets = make_packets(seed=14)
        stats, _ = flush_transfer(packets, LossyLink(0.0, seed=0))
        assert stats.retransmissions == 0
        assert stats.duplicates == 0
        assert stats.out_of_order == 0
        assert stats.attempts == 1


class TestFlushRetryPolicy:
    def test_retry_session_reattempts_after_round_budget(self):
        """With a retry session, a transfer that exhausts its round
        budget backs off and tries the missing fragments again."""
        from repro.chaos.retry import RetryPolicy, SimulatedClock

        _, packets = make_packets(seed=15)
        # Loss high enough that 2 rounds rarely finish; retries add
        # budget until the policy gives up or the transfer completes.
        clock = SimulatedClock()
        policy = RetryPolicy(max_attempts=30, base_delay_s=0.01, jitter=0.0)
        stats, received = flush_transfer(
            packets,
            LossyLink(0.5, seed=15),
            max_rounds=2,
            retry=policy.session(clock=clock),
        )
        assert stats.success
        assert stats.attempts > 1
        assert clock.slept > 0

    def test_retry_budget_bounds_attempts(self):
        from repro.chaos.retry import RetryPolicy, SimulatedClock

        _, packets = make_packets(seed=16)
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.01, jitter=0.0)
        stats, _ = flush_transfer(
            packets,
            LossyLink(1.0, seed=16),  # dead link: nothing ever arrives
            max_rounds=2,
            retry=policy.session(clock=SimulatedClock()),
        )
        assert not stats.success
        assert stats.attempts == 3
        assert stats.rounds == 6  # 3 attempts x 2 rounds

    def test_deadline_cuts_retries_short(self):
        from repro.chaos.retry import RetryPolicy, SimulatedClock

        _, packets = make_packets(seed=17)
        policy = RetryPolicy(
            max_attempts=100,
            base_delay_s=1.0,
            multiplier=1.0,
            jitter=0.0,
            timeout_s=2.5,
        )
        stats, _ = flush_transfer(
            packets,
            LossyLink(1.0, seed=17),
            max_rounds=1,
            retry=policy.session(clock=SimulatedClock()),
        )
        assert not stats.success
        # Backoffs at t=1 and t=2 fit the 2.5 s deadline; the third does
        # not, so exactly 3 attempts ran.
        assert stats.attempts == 3


class TestFlushTransfer:
    def test_lossless_link_completes_in_one_round(self):
        counts, packets = make_packets()
        stats, received = flush_transfer(packets, LossyLink(0.0, seed=0))
        assert stats.success
        assert stats.rounds == 1
        assert stats.data_transmissions == len(packets)
        assert np.array_equal(reassemble_measurement(received), counts)

    def test_recovers_under_moderate_loss(self):
        counts, packets = make_packets(seed=1)
        stats, received = flush_transfer(packets, LossyLink(0.3, seed=1))
        assert stats.success
        assert stats.rounds > 1
        assert np.array_equal(reassemble_measurement(received), counts)

    def test_retransmits_only_missing_fragments(self):
        """NACK-driven selective repeat: total transmissions stay near
        n / (1 - loss), far below full-resend-per-round."""
        _, packets = make_packets(seed=2)
        n = len(packets)
        loss = 0.3
        stats, _ = flush_transfer(packets, LossyLink(loss, seed=2), max_rounds=50)
        assert stats.success
        assert stats.data_transmissions < 2.5 * n / (1 - loss)

    def test_gives_up_after_round_budget(self):
        _, packets = make_packets(seed=3)
        stats, _ = flush_transfer(packets, LossyLink(1.0, seed=3), max_rounds=5)
        assert not stats.success
        assert stats.rounds == 5
        assert stats.delivered == 0

    def test_survives_lossy_nack_channel(self):
        counts, packets = make_packets(seed=4)
        data_link = LossyLink(0.2, seed=4)
        nack_link = LossyLink(0.8, seed=5)  # NACKs usually lost
        stats, received = flush_transfer(
            packets, data_link, max_rounds=100, nack_link=nack_link
        )
        assert stats.success
        assert np.array_equal(reassemble_measurement(received), counts)

    def test_rejects_bad_inputs(self):
        _, packets = make_packets()
        with pytest.raises(ValueError):
            flush_transfer([], LossyLink(0.0))
        with pytest.raises(ValueError):
            flush_transfer(packets, LossyLink(0.0), max_rounds=0)

    @given(st.floats(0.0, 0.6), st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_always_succeeds_when_loss_below_one(self, loss, seed):
        """Reliability property: with any loss < 1 and a generous round
        budget, Flush delivers the complete measurement."""
        counts, packets = make_packets(k=64, seed=seed)
        stats, received = flush_transfer(
            packets, LossyLink(loss, seed=seed), max_rounds=300
        )
        assert stats.success
        assert np.array_equal(reassemble_measurement(received), counts)


class TestBestEffortBaseline:
    def test_lossless_best_effort_succeeds(self):
        counts, packets = make_packets(seed=6)
        stats, received = best_effort_transfer(packets, LossyLink(0.0, seed=0))
        assert stats.success
        assert np.array_equal(reassemble_measurement(received), counts)

    def test_best_effort_collapses_under_loss(self):
        """The paper's motivation for Flush: losing any of 120 packets
        loses the measurement, so even 5%% loss is fatal most of the time."""
        gen = np.random.default_rng(7)
        successes = 0
        for trial in range(50):
            counts = gen.integers(-100, 100, size=(1024, 3), dtype=np.int16)
            packets = fragment_measurement(0, trial, counts)
            stats, _ = best_effort_transfer(packets, LossyLink(0.05, seed=trial))
            successes += stats.success
        assert successes / 50 < 0.05  # (1 - 0.05)^120 ~ 0.2%

    def test_best_effort_single_round(self):
        _, packets = make_packets(seed=8)
        stats, _ = best_effort_transfer(packets, LossyLink(0.5, seed=9))
        assert stats.rounds == 1
        assert stats.nack_transmissions == 0
