"""Tests for the Flush reliable bulk transport (flush.py)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sensornet.flush import (
    FlushReceiver,
    best_effort_transfer,
    flush_transfer,
)
from repro.sensornet.packets import fragment_measurement, reassemble_measurement
from repro.sensornet.radio import LossyLink


def make_packets(k=256, seed=0):
    gen = np.random.default_rng(seed)
    counts = gen.integers(-100, 100, size=(k, 3), dtype=np.int16)
    return counts, fragment_measurement(0, 0, counts)


class TestFlushReceiver:
    def test_tracks_missing_fragments(self):
        _, packets = make_packets()
        receiver = FlushReceiver(total=packets[0].total)
        receiver.accept(packets[0])
        receiver.accept(packets[2])
        missing = receiver.missing()
        assert 1 in missing
        assert 0 not in missing
        assert not receiver.complete

    def test_complete_when_all_arrive(self):
        _, packets = make_packets()
        receiver = FlushReceiver(total=packets[0].total)
        for p in packets:
            receiver.accept(p)
        assert receiver.complete
        assert receiver.missing() == []

    def test_rejects_bad_total(self):
        with pytest.raises(ValueError):
            FlushReceiver(total=0)


class TestFlushTransfer:
    def test_lossless_link_completes_in_one_round(self):
        counts, packets = make_packets()
        stats, received = flush_transfer(packets, LossyLink(0.0, seed=0))
        assert stats.success
        assert stats.rounds == 1
        assert stats.data_transmissions == len(packets)
        assert np.array_equal(reassemble_measurement(received), counts)

    def test_recovers_under_moderate_loss(self):
        counts, packets = make_packets(seed=1)
        stats, received = flush_transfer(packets, LossyLink(0.3, seed=1))
        assert stats.success
        assert stats.rounds > 1
        assert np.array_equal(reassemble_measurement(received), counts)

    def test_retransmits_only_missing_fragments(self):
        """NACK-driven selective repeat: total transmissions stay near
        n / (1 - loss), far below full-resend-per-round."""
        _, packets = make_packets(seed=2)
        n = len(packets)
        loss = 0.3
        stats, _ = flush_transfer(packets, LossyLink(loss, seed=2), max_rounds=50)
        assert stats.success
        assert stats.data_transmissions < 2.5 * n / (1 - loss)

    def test_gives_up_after_round_budget(self):
        _, packets = make_packets(seed=3)
        stats, _ = flush_transfer(packets, LossyLink(1.0, seed=3), max_rounds=5)
        assert not stats.success
        assert stats.rounds == 5
        assert stats.delivered == 0

    def test_survives_lossy_nack_channel(self):
        counts, packets = make_packets(seed=4)
        data_link = LossyLink(0.2, seed=4)
        nack_link = LossyLink(0.8, seed=5)  # NACKs usually lost
        stats, received = flush_transfer(
            packets, data_link, max_rounds=100, nack_link=nack_link
        )
        assert stats.success
        assert np.array_equal(reassemble_measurement(received), counts)

    def test_rejects_bad_inputs(self):
        _, packets = make_packets()
        with pytest.raises(ValueError):
            flush_transfer([], LossyLink(0.0))
        with pytest.raises(ValueError):
            flush_transfer(packets, LossyLink(0.0), max_rounds=0)

    @given(st.floats(0.0, 0.6), st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_always_succeeds_when_loss_below_one(self, loss, seed):
        """Reliability property: with any loss < 1 and a generous round
        budget, Flush delivers the complete measurement."""
        counts, packets = make_packets(k=64, seed=seed)
        stats, received = flush_transfer(
            packets, LossyLink(loss, seed=seed), max_rounds=300
        )
        assert stats.success
        assert np.array_equal(reassemble_measurement(received), counts)


class TestBestEffortBaseline:
    def test_lossless_best_effort_succeeds(self):
        counts, packets = make_packets(seed=6)
        stats, received = best_effort_transfer(packets, LossyLink(0.0, seed=0))
        assert stats.success
        assert np.array_equal(reassemble_measurement(received), counts)

    def test_best_effort_collapses_under_loss(self):
        """The paper's motivation for Flush: losing any of 120 packets
        loses the measurement, so even 5%% loss is fatal most of the time."""
        gen = np.random.default_rng(7)
        successes = 0
        for trial in range(50):
            counts = gen.integers(-100, 100, size=(1024, 3), dtype=np.int16)
            packets = fragment_measurement(0, trial, counts)
            stats, _ = best_effort_transfer(packets, LossyLink(0.05, seed=trial))
            successes += stats.success
        assert successes / 50 < 0.05  # (1 - 0.05)^120 ~ 0.2%

    def test_best_effort_single_round(self):
        _, packets = make_packets(seed=8)
        stats, _ = best_effort_transfer(packets, LossyLink(0.5, seed=9))
        assert stats.rounds == 1
        assert stats.nack_transmissions == 0
