"""Tests for the energy model and Fig. 5 tradeoff (energy.py)."""

import numpy as np
import pytest

from repro.sensornet.energy import BatteryTracker, EnergyConfig, EnergyModel


@pytest.fixture(scope="module")
def model():
    return EnergyModel()


class TestEnergyConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            EnergyConfig(battery_joules=0)
        with pytest.raises(ValueError):
            EnergyConfig(active_power_w=0)
        with pytest.raises(ValueError):
            EnergyConfig(radio_window_s=-1)
        with pytest.raises(ValueError):
            EnergyConfig(samples_per_measurement=0)


class TestEnergyModel:
    def test_sensing_window_inversely_proportional_to_rate(self, model):
        assert model.sensing_window_s(150.0) == pytest.approx(1024 / 150)
        assert model.sensing_window_s(22000.0) == pytest.approx(1024 / 22000)

    def test_measurement_energy_decreases_with_sampling_rate(self, model):
        """Sec. II: lower sampling rate = longer active window = more energy."""
        rates = [150.0, 1000.0, 4000.0, 22000.0]
        energies = [model.measurement_energy_j(r) for r in rates]
        assert energies == sorted(energies, reverse=True)

    def test_paper_anchor_3yr_150hz(self, model):
        """Fig. 5's worked example: ~10.2 h report period at 150 Hz / 3 yr."""
        hours = model.report_period_lower_bound_s(150.0, 3.0) / 3600.0
        assert hours == pytest.approx(10.2, rel=0.1)

    def test_paper_anchor_2yr_150hz(self, model):
        """And ~5.2 h at 150 Hz for a 2-year target."""
        hours = model.report_period_lower_bound_s(150.0, 2.0) / 3600.0
        assert hours == pytest.approx(5.2, rel=0.1)

    def test_paper_anchor_measurement_budgets(self, model):
        """2,576 measurements over 3 years; 3,650 over 2 years (Sec. II)."""
        assert model.measurements_in_lifetime(150.0, 3.0) == pytest.approx(2576, rel=0.1)
        assert model.measurements_in_lifetime(150.0, 2.0) == pytest.approx(3650, rel=0.1)

    def test_longer_target_life_demands_longer_report_period(self, model):
        bounds = [model.report_period_lower_bound_s(150.0, y) for y in (1, 2, 3, 4)]
        assert bounds == sorted(bounds)

    def test_report_bound_decreases_with_sampling_rate(self, model):
        """The Fig. 5 curve shape: bound falls as sampling frequency rises."""
        bounds = [
            model.report_period_lower_bound_s(fs, 3.0)
            for fs in np.logspace(np.log10(150), np.log10(22000), 10)
        ]
        assert all(b2 < b1 for b1, b2 in zip(bounds, bounds[1:]))

    def test_infeasible_lifetime_returns_inf(self):
        tiny = EnergyModel(EnergyConfig(battery_joules=1.0))
        assert tiny.report_period_lower_bound_s(150.0, 3.0) == np.inf
        assert tiny.measurements_in_lifetime(150.0, 3.0) == 0.0

    def test_lifetime_inverse_consistency(self, model):
        """lifetime(fs, bound(fs, target)) == target."""
        for fs in (150.0, 4000.0):
            bound = model.report_period_lower_bound_s(fs, 3.0)
            assert model.lifetime_years(fs, bound) == pytest.approx(3.0, rel=1e-6)

    def test_tradeoff_curve_in_hours(self, model):
        rates = np.asarray([150.0, 4000.0])
        curve = model.tradeoff_curve(rates, 3.0)
        assert curve.shape == (2,)
        assert curve[0] == pytest.approx(
            model.report_period_lower_bound_s(150.0, 3.0) / 3600.0
        )

    def test_rejects_bad_inputs(self, model):
        with pytest.raises(ValueError):
            model.sensing_window_s(0)
        with pytest.raises(ValueError):
            model.report_period_lower_bound_s(150.0, 0)
        with pytest.raises(ValueError):
            model.lifetime_years(150.0, 0)


class TestBatteryTracker:
    def test_fresh_battery_is_full(self):
        tracker = BatteryTracker()
        assert tracker.fraction_remaining() == 1.0
        assert not tracker.depleted

    def test_sleep_drains_slowly(self):
        tracker = BatteryTracker()
        tracker.sleep(24 * 3600.0)
        assert 0.99 < tracker.fraction_remaining() < 1.0

    def test_measurements_drain_faster_at_low_rate(self):
        low = BatteryTracker()
        high = BatteryTracker()
        for _ in range(10):
            low.measure(150.0)
            high.measure(22000.0)
        assert low.remaining_j < high.remaining_j

    def test_depletion(self):
        # One 150 Hz measurement costs ~0.78 J; a 0.5 J battery dies on it.
        tracker = BatteryTracker(EnergyConfig(battery_joules=0.5))
        tracker.measure(150.0)
        assert tracker.depleted
        assert tracker.fraction_remaining() == 0.0

    def test_rejects_negative_sleep(self):
        with pytest.raises(ValueError):
            BatteryTracker().sleep(-1.0)
