"""Tests for wakeup scheduling, liveness and adaptive sampling (scheduler.py)."""

import numpy as np
import pytest

from repro.sensornet.scheduler import AdaptiveSamplingPolicy, ScheduleEntry, WakeupScheduler


class TestScheduleEntry:
    def test_wakeup_times_follow_period(self):
        entry = ScheduleEntry(sensor_id=0, offset_s=10.0, report_period_s=600.0)
        assert entry.wakeup_time(0) == 10.0
        assert entry.wakeup_time(3) == pytest.approx(1810.0)

    def test_rejects_negative_round(self):
        entry = ScheduleEntry(0, 0.0, 600.0)
        with pytest.raises(ValueError):
            entry.wakeup_time(-1)


class TestWakeupScheduler:
    def test_slots_are_staggered(self):
        scheduler = WakeupScheduler(report_period_s=600.0, slot_width_s=30.0)
        entries = [scheduler.register(i) for i in range(5)]
        offsets = [e.offset_s for e in entries]
        assert offsets == [0.0, 30.0, 60.0, 90.0, 120.0]

    def test_slots_wrap_within_period(self):
        scheduler = WakeupScheduler(report_period_s=100.0, slot_width_s=30.0)
        entries = [scheduler.register(i) for i in range(5)]
        assert all(0 <= e.offset_s < 100.0 for e in entries)

    def test_reregistration_is_idempotent(self):
        scheduler = WakeupScheduler(600.0)
        first = scheduler.register(7)
        second = scheduler.register(7)
        assert first == second

    def test_liveness_tracks_heartbeats(self):
        scheduler = WakeupScheduler(report_period_s=600.0)
        scheduler.register(1, boot_time_s=0.0)
        assert scheduler.is_alive(1, now_s=600.0)
        # No heartbeat for > 2.5 periods -> dead.
        assert not scheduler.is_alive(1, now_s=2000.0)
        scheduler.record_heartbeat(1, now_s=2000.0)
        assert scheduler.is_alive(1, now_s=2500.0)

    def test_dead_sensor_listing(self):
        scheduler = WakeupScheduler(report_period_s=100.0)
        scheduler.register(1, boot_time_s=0.0)
        scheduler.register(2, boot_time_s=0.0)
        scheduler.record_heartbeat(2, now_s=900.0)
        assert scheduler.dead_sensors(now_s=1000.0) == [1]

    def test_unknown_sensor_heartbeat_raises(self):
        scheduler = WakeupScheduler(100.0)
        with pytest.raises(KeyError):
            scheduler.record_heartbeat(99, 0.0)

    def test_unregistered_sensor_is_dead(self):
        scheduler = WakeupScheduler(100.0)
        assert not scheduler.is_alive(5, 0.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            WakeupScheduler(0.0)
        with pytest.raises(ValueError):
            WakeupScheduler(100.0, slot_width_s=0.0)
        with pytest.raises(ValueError):
            WakeupScheduler(100.0, heartbeat_timeout_periods=0.0)


class TestAdaptiveSamplingPolicy:
    def test_flat_trend_gets_minimum_rate(self):
        policy = AdaptiveSamplingPolicy(min_rate_hz=500, max_rate_hz=8000)
        days = np.linspace(0, 30, 20)
        flat = np.full(20, 0.1)
        assert policy.suggest_rate(days, flat) == pytest.approx(500.0, rel=0.05)

    def test_steep_trend_gets_maximum_rate(self):
        policy = AdaptiveSamplingPolicy(min_rate_hz=500, max_rate_hz=8000, slope_scale=0.002)
        days = np.linspace(0, 30, 20)
        steep = 0.01 * days
        assert policy.suggest_rate(days, steep) == pytest.approx(8000.0, rel=0.05)

    def test_intermediate_trend_interpolates(self):
        policy = AdaptiveSamplingPolicy(min_rate_hz=500, max_rate_hz=8000, slope_scale=0.002)
        days = np.linspace(0, 30, 20)
        rate = policy.suggest_rate(days, 0.001 * days)
        assert 500.0 < rate < 8000.0

    def test_insufficient_history_defaults_to_minimum(self):
        policy = AdaptiveSamplingPolicy()
        assert policy.suggest_rate(np.asarray([1.0]), np.asarray([0.1])) == policy.min_rate_hz
        same_day = policy.suggest_rate(np.asarray([1.0, 1.0]), np.asarray([0.1, 0.5]))
        assert same_day == policy.min_rate_hz

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            AdaptiveSamplingPolicy(min_rate_hz=0)
        with pytest.raises(ValueError):
            AdaptiveSamplingPolicy(min_rate_hz=100, max_rate_hz=50)
        with pytest.raises(ValueError):
            AdaptiveSamplingPolicy(slope_scale=0)

    def test_rejects_misaligned_history(self):
        policy = AdaptiveSamplingPolicy()
        with pytest.raises(ValueError):
            policy.suggest_rate(np.ones(3), np.ones(4))
