"""Tests for multihop Flush (multihop.py)."""

import numpy as np
import pytest

from repro.sensornet.multihop import MultihopPath, multihop_flush_transfer
from repro.sensornet.packets import fragment_measurement, reassemble_measurement
from repro.sensornet.radio import LossyLink


def make_packets(k=128, seed=0):
    gen = np.random.default_rng(seed)
    counts = gen.integers(-100, 100, size=(k, 3), dtype=np.int16)
    return counts, fragment_measurement(0, 0, counts)


class TestMultihopPath:
    def test_uniform_factory(self):
        path = MultihopPath.uniform(4, 0.1)
        assert path.hop_count == 4
        assert path.end_to_end_delivery_probability == pytest.approx(0.9**4)

    def test_lossless_path_always_delivers(self):
        path = MultihopPath.uniform(5, 0.0)
        assert all(path.transmit_forward() for _ in range(100))
        assert all(path.transmit_reverse() for _ in range(100))

    def test_end_to_end_loss_compounds(self):
        path = MultihopPath.uniform(3, 0.2, seed=1)
        outcomes = [path.transmit_forward() for _ in range(5000)]
        assert np.mean(outcomes) == pytest.approx(0.8**3, abs=0.03)

    def test_rejects_empty_path(self):
        with pytest.raises(ValueError):
            MultihopPath([])
        with pytest.raises(ValueError):
            MultihopPath.uniform(0, 0.1)


class TestMultihopFlush:
    def test_single_hop_reduces_to_flush(self):
        counts, packets = make_packets()
        path = MultihopPath([LossyLink(0.0, seed=0)])
        stats, received = multihop_flush_transfer(packets, path)
        assert stats.success
        assert stats.rounds == 1
        assert stats.hop_count == 1
        assert np.array_equal(reassemble_measurement(received), counts)

    def test_recovers_over_three_lossy_hops(self):
        counts, packets = make_packets(seed=1)
        path = MultihopPath.uniform(3, 0.15, seed=2)
        stats, received = multihop_flush_transfer(packets, path, max_rounds=100)
        assert stats.success
        assert np.array_equal(reassemble_measurement(received), counts)

    def test_deeper_paths_cost_more_rounds(self):
        """More hops -> lower per-attempt delivery -> more recovery work."""
        def rounds_for(hops, seed):
            _, packets = make_packets(seed=seed)
            path = MultihopPath.uniform(hops, 0.2, seed=seed)
            stats, _ = multihop_flush_transfer(packets, path, max_rounds=200)
            assert stats.success
            return stats.data_transmissions

        shallow = np.mean([rounds_for(1, s) for s in range(5)])
        deep = np.mean([rounds_for(4, s + 50) for s in range(5)])
        assert deep > shallow

    def test_link_transmissions_accounted(self):
        _, packets = make_packets(seed=3)
        path = MultihopPath.uniform(2, 0.0, seed=4)
        stats, _ = multihop_flush_transfer(packets, path)
        # Every end-to-end send touches both links once (lossless).
        assert stats.link_transmissions == 2 * stats.data_transmissions + 0

    def test_dead_path_gives_up(self):
        _, packets = make_packets(seed=5)
        path = MultihopPath.uniform(2, 1.0, seed=6)
        stats, _ = multihop_flush_transfer(packets, path, max_rounds=3)
        assert not stats.success
        assert stats.rounds == 3

    def test_rejects_bad_inputs(self):
        path = MultihopPath.uniform(1, 0.0)
        with pytest.raises(ValueError):
            multihop_flush_transfer([], path)
        _, packets = make_packets()
        with pytest.raises(ValueError):
            multihop_flush_transfer(packets, path, max_rounds=0)
