"""Tests for measurement fragmentation/reassembly (packets.py)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sensornet.packets import (
    BYTES_PER_SAMPLE,
    MEASUREMENT_BYTES,
    PACKETS_PER_MEASUREMENT,
    DataPacket,
    decode_counts,
    encode_counts,
    fragment_measurement,
    reassemble_measurement,
)


def random_counts(k=1024, seed=0):
    gen = np.random.default_rng(seed)
    return gen.integers(-32768, 32767, size=(k, 3), dtype=np.int16)


class TestConstants:
    def test_paper_framing(self):
        """1024 samples x 3 axes x 2 bytes = 6 KB shipped as 120 packets."""
        assert MEASUREMENT_BYTES == 6 * 1024
        assert PACKETS_PER_MEASUREMENT == 120
        assert BYTES_PER_SAMPLE == 6


class TestEncoding:
    def test_roundtrip(self):
        counts = random_counts()
        assert np.array_equal(decode_counts(encode_counts(counts)), counts)

    def test_encoded_size(self):
        assert len(encode_counts(random_counts())) == MEASUREMENT_BYTES

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            encode_counts(np.zeros((4, 2), dtype=np.int16))

    def test_decode_rejects_ragged_blob(self):
        with pytest.raises(ValueError):
            decode_counts(b"12345")


class TestFragmentation:
    def test_default_fragment_count_matches_paper(self):
        packets = fragment_measurement(1, 2, random_counts())
        assert len(packets) == PACKETS_PER_MEASUREMENT

    def test_fragments_carry_identity(self):
        packets = fragment_measurement(3, 7, random_counts())
        assert all(p.sensor_id == 3 and p.measurement_id == 7 for p in packets)
        assert [p.seq for p in packets] == list(range(len(packets)))

    def test_reassembly_roundtrip(self):
        counts = random_counts(seed=1)
        packets = fragment_measurement(0, 0, counts)
        assert np.array_equal(reassemble_measurement(packets), counts)

    def test_reassembly_order_independent(self):
        counts = random_counts(seed=2)
        packets = fragment_measurement(0, 0, counts)
        gen = np.random.default_rng(3)
        shuffled = [packets[i] for i in gen.permutation(len(packets))]
        assert np.array_equal(reassemble_measurement(shuffled), counts)

    def test_reassembly_tolerates_duplicates(self):
        counts = random_counts(seed=4)
        packets = fragment_measurement(0, 0, counts)
        assert np.array_equal(reassemble_measurement(packets + packets[:5]), counts)

    def test_reassembly_detects_missing_fragment(self):
        packets = fragment_measurement(0, 0, random_counts())
        with pytest.raises(ValueError, match="missing"):
            reassemble_measurement(packets[:-1])

    def test_reassembly_rejects_mixed_measurements(self):
        a = fragment_measurement(0, 0, random_counts(seed=5))
        b = fragment_measurement(0, 1, random_counts(seed=6))
        with pytest.raises(ValueError, match="mix"):
            reassemble_measurement(a[:-1] + [b[-1]])

    def test_reassembly_rejects_conflicting_duplicates(self):
        packets = fragment_measurement(0, 0, random_counts(seed=7))
        forged = DataPacket(
            sensor_id=0,
            measurement_id=0,
            seq=0,
            total=packets[0].total,
            payload=b"\xff" * len(packets[0].payload),
        )
        with pytest.raises(ValueError, match="conflicting"):
            reassemble_measurement(packets + [forged])

    def test_empty_reassembly_rejected(self):
        with pytest.raises(ValueError):
            reassemble_measurement([])

    def test_packet_rejects_bad_seq(self):
        with pytest.raises(ValueError):
            DataPacket(sensor_id=0, measurement_id=0, seq=5, total=5, payload=b"")

    @given(st.integers(8, 256), st.integers(8, 128))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_for_any_block_and_payload_size(self, k, payload_bytes):
        counts = random_counts(k=k, seed=k)
        packets = fragment_measurement(0, 0, counts, payload_bytes=payload_bytes)
        assert np.array_equal(reassemble_measurement(packets), counts)
