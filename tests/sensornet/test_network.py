"""Tests for the end-to-end collection simulation (network.py)."""

import numpy as np
import pytest

from repro.sensornet.energy import EnergyConfig
from repro.sensornet.mote import Mote
from repro.sensornet.network import CollectionStats, SensorNetworkSimulator
from repro.sensornet.radio import LossyLink
from repro.sensornet.scheduler import WakeupScheduler


def build_network(num_motes=3, loss=0.0, battery_j=3864.0, k=64, seed=0):
    scheduler = WakeupScheduler(report_period_s=600.0, slot_width_s=30.0)
    simulator = SensorNetworkSimulator(scheduler)
    for sensor_id in range(num_motes):
        gen = np.random.default_rng(seed + sensor_id)

        def source(mid, gen=gen):
            return gen.integers(-100, 100, size=(k, 3), dtype=np.int16)

        mote = Mote(
            sensor_id=sensor_id,
            link=LossyLink(loss, seed=seed + sensor_id),
            measurement_source=source,
            energy=EnergyConfig(battery_joules=battery_j),
        )
        simulator.add_mote(mote)
    return simulator, scheduler


class TestCollection:
    def test_clean_network_delivers_everything(self):
        simulator, _ = build_network(num_motes=3, loss=0.0)
        delivered, stats = simulator.run(num_rounds=5)
        assert stats.attempted == 15
        assert stats.delivered == 15
        assert stats.failed == 0
        assert stats.recovery_rate == 1.0
        assert len(delivered) == 15

    def test_lossy_network_still_recovers_via_flush(self):
        simulator, _ = build_network(num_motes=3, loss=0.25, seed=1)
        delivered, stats = simulator.run(num_rounds=5)
        assert stats.recovery_rate == 1.0
        # Retransmissions show up as extra data packets.
        assert stats.data_transmissions > stats.delivered * 64 * 6 / 52

    def test_measurements_carry_identity_and_order(self):
        simulator, _ = build_network(num_motes=2)
        delivered, _ = simulator.run(num_rounds=3)
        by_sensor = {}
        for record in delivered:
            by_sensor.setdefault(record.sensor_id, []).append(record.measurement_id)
        assert by_sensor[0] == [0, 1, 2]
        assert by_sensor[1] == [0, 1, 2]

    def test_wakeup_times_respect_slots(self):
        simulator, scheduler = build_network(num_motes=2)
        delivered, _ = simulator.run(num_rounds=2)
        for record in delivered:
            entry = scheduler.entry(record.sensor_id)
            rounds = (record.wakeup_time_s - entry.offset_s) / entry.report_period_s
            assert rounds == pytest.approx(round(rounds))

    def test_dead_motes_stop_producing(self):
        # Battery for roughly one measurement only.
        simulator, scheduler = build_network(num_motes=2, battery_j=0.4)
        delivered, stats = simulator.run(num_rounds=4)
        assert stats.dead_motes > 0
        assert len(delivered) < 8
        assert len(scheduler.dead_sensors(now_s=4 * 600.0)) > 0

    def test_heartbeats_keep_liveness_fresh(self):
        simulator, scheduler = build_network(num_motes=2)
        simulator.run(num_rounds=4)
        assert scheduler.dead_sensors(now_s=4 * 600.0) == []

    def test_rejects_bad_round_count(self):
        simulator, _ = build_network()
        with pytest.raises(ValueError):
            simulator.run(0)


class TestCollectionStats:
    def test_recovery_rate_of_empty_run(self):
        assert CollectionStats().recovery_rate == 0.0

    def test_recovery_rate_ratio(self):
        stats = CollectionStats(attempted=10, delivered=7, failed=3)
        assert stats.recovery_rate == pytest.approx(0.7)


class TestSlotContention:
    @staticmethod
    def build(num_motes, period_s, slot_width_s, contention_loss=0.25, seed=0):
        scheduler = WakeupScheduler(report_period_s=period_s, slot_width_s=slot_width_s)
        simulator = SensorNetworkSimulator(scheduler, contention_loss=contention_loss)
        for sensor_id in range(num_motes):
            gen = np.random.default_rng(seed + sensor_id)

            def source(mid, gen=gen):
                return gen.integers(-100, 100, size=(64, 3), dtype=np.int16)

            simulator.add_mote(
                Mote(sensor_id, LossyLink(0.0, seed=seed + sensor_id), source,
                     energy=EnergyConfig(battery_joules=3864.0))
            )
        return simulator

    def test_uncontended_fleet_has_no_penalty(self):
        # 4 motes, 4 distinct slots in the period.
        simulator = self.build(4, period_s=600.0, slot_width_s=30.0)
        delivered, stats = simulator.run(num_rounds=3)
        assert stats.recovery_rate == 1.0
        # Lossless links, no contention: one transmission per packet.
        per_packet = stats.data_transmissions / stats.delivered
        assert per_packet == pytest.approx(64 * 6 / 51.2, rel=0.1)

    def test_slot_collision_costs_retransmissions_not_data(self):
        # 4 motes forced onto 2 slots (period holds only 2 slot widths).
        simulator = self.build(4, period_s=60.0, slot_width_s=30.0, seed=1)
        delivered, stats = simulator.run(num_rounds=3)
        # Flush still recovers everything...
        assert stats.recovery_rate == 1.0
        # ...but contention shows up as retransmission overhead.
        per_packet = stats.data_transmissions / stats.delivered
        assert per_packet > 1.15 * (64 * 6 / 51.2)

    def test_contention_set_detection(self):
        simulator = self.build(4, period_s=60.0, slot_width_s=30.0)
        contended = simulator._contended_sensors()
        assert contended == {0, 1, 2, 3}
        simulator2 = self.build(4, period_s=600.0, slot_width_s=30.0)
        assert simulator2._contended_sensors() == set()

    def test_base_loss_restored_after_round(self):
        simulator = self.build(2, period_s=30.0, slot_width_s=30.0)
        motes = list(simulator._motes.values())
        before = [m.link.loss_probability for m in motes]
        simulator.run(num_rounds=2)
        after = [m.link.loss_probability for m in motes]
        assert before == after

    def test_rejects_bad_contention_loss(self):
        scheduler = WakeupScheduler(report_period_s=600.0)
        with pytest.raises(ValueError):
            SensorNetworkSimulator(scheduler, contention_loss=1.0)
