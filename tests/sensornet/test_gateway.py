"""Tests for the gateway bridge (gateway.py)."""

import numpy as np
import pytest

from repro.sensornet.gateway import SECONDS_PER_DAY, GatewayBridge, SensorCalibration
from repro.sensornet.network import DeliveredMeasurement
from repro.storage.database import VibrationDatabase


def delivered(sensor_id=0, mid=3, wakeup_s=2 * SECONDS_PER_DAY, seed=0):
    gen = np.random.default_rng(seed)
    counts = gen.integers(-1000, 1000, size=(64, 3), dtype=np.int16)
    return DeliveredMeasurement(
        sensor_id=sensor_id,
        measurement_id=mid,
        wakeup_time_s=wakeup_s,
        counts=counts,
    )


@pytest.fixture()
def bridge():
    return GatewayBridge(
        {
            0: SensorCalibration(pump_id=10, scale_g_per_count=0.003, install_day=1.0),
            1: SensorCalibration(pump_id=11, scale_g_per_count=0.003),
        }
    )


class TestCalibration:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            SensorCalibration(pump_id=0, scale_g_per_count=0.0)
        with pytest.raises(ValueError):
            SensorCalibration(pump_id=0, scale_g_per_count=0.1, sampling_rate_hz=0)

    def test_bridge_requires_calibrations(self):
        with pytest.raises(ValueError):
            GatewayBridge({})


class TestConversion:
    def test_counts_converted_to_g(self, bridge):
        record = bridge.to_measurement(delivered())
        raw = delivered().counts
        assert np.allclose(record.samples, raw.astype(float) * 0.003)

    def test_identity_and_timing(self, bridge):
        record = bridge.to_measurement(delivered(sensor_id=0, mid=7))
        assert record.pump_id == 10
        assert record.measurement_id == 7
        assert record.timestamp_day == pytest.approx(2.0)
        # Pump installed at day 1 -> one day of service at day 2.
        assert record.service_day == pytest.approx(1.0)

    def test_service_day_never_negative(self, bridge):
        record = bridge.to_measurement(delivered(wakeup_s=0.0))
        assert record.service_day == 0.0

    def test_unknown_sensor_rejected(self, bridge):
        with pytest.raises(KeyError, match="calibration"):
            bridge.to_measurement(delivered(sensor_id=99))


class TestIngest:
    def test_batch_lands_in_database(self, bridge):
        with VibrationDatabase() as db:
            batch = [delivered(mid=i, wakeup_s=i * 600.0) for i in range(5)]
            stored = bridge.ingest(batch, db)
            assert stored == 5
            assert db.measurements.count() == 5
            records = db.measurements.query()
            assert all(r.pump_id == 10 for r in records)

    def test_bad_batch_rejected_atomically(self, bridge):
        with VibrationDatabase() as db:
            batch = [delivered(mid=0), delivered(sensor_id=99, mid=1)]
            with pytest.raises(KeyError):
                bridge.ingest(batch, db)
            assert db.measurements.count() == 0


class TestEndToEnd:
    def test_network_to_database_to_features(self):
        """Motes -> Flush -> gateway -> SQLite -> PSD features."""
        from repro.core.features import psd_feature
        from repro.sensornet.energy import EnergyConfig
        from repro.sensornet.mote import Mote
        from repro.sensornet.network import SensorNetworkSimulator
        from repro.sensornet.radio import LossyLink
        from repro.sensornet.scheduler import WakeupScheduler

        gen = np.random.default_rng(2)

        def source(mid):
            return gen.integers(-500, 500, size=(128, 3), dtype=np.int16)

        scheduler = WakeupScheduler(report_period_s=600.0)
        simulator = SensorNetworkSimulator(scheduler)
        simulator.add_mote(
            Mote(0, LossyLink(0.1, seed=0), source,
                 energy=EnergyConfig(battery_joules=3864.0))
        )
        delivered_batch, stats = simulator.run(num_rounds=4)
        assert stats.recovery_rate == 1.0

        bridge = GatewayBridge(
            {0: SensorCalibration(pump_id=0, scale_g_per_count=100.0 / 32767)}
        )
        with VibrationDatabase() as db:
            bridge.ingest(delivered_batch, db)
            records = db.measurements.query()
            assert len(records) == 4
            psd = psd_feature(records[0].samples)
            assert np.isfinite(psd).all()
