"""Unit tests for the runtime primitives: executor, caches, profiler."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.peaks import HarmonicPeaks
from repro.runtime import (
    FleetExecutor,
    PeakFeatureCache,
    RuntimeProfile,
    TransformCache,
)
from repro.runtime.cache import array_digest
from repro.runtime.fleet import resolve_workers


class TestFleetExecutor:
    def test_resolve_workers(self):
        assert resolve_workers(0) == 0
        assert resolve_workers(3) == 3
        assert resolve_workers(None) >= 1
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_map_ordered_serial_and_threaded_agree(self):
        items = list(range(37))
        serial = FleetExecutor(max_workers=1).map_ordered(lambda x: x * x, items)
        threaded = FleetExecutor(max_workers=4).map_ordered(lambda x: x * x, items)
        assert serial == threaded == [x * x for x in items]

    def test_map_ordered_empty(self):
        assert FleetExecutor(max_workers=4).map_ordered(lambda x: x, []) == []

    def test_map_ordered_propagates_exceptions(self):
        def boom(x):
            if x == 5:
                raise RuntimeError("pump 5 exploded")
            return x

        with pytest.raises(RuntimeError, match="pump 5"):
            FleetExecutor(max_workers=3, chunk_size=2).map_ordered(boom, range(10))

    def test_chunking_covers_all_items_exactly_once(self):
        executor = FleetExecutor(max_workers=3, chunk_size=4)
        chunks = executor._chunks(11)
        flattened = [i for chunk in chunks for i in chunk]
        assert flattened == list(range(11))

    def test_map_pumps_preserves_insertion_order(self):
        items = [(pump, pump * 10) for pump in (7, 3, 9, 1)]
        result = FleetExecutor(max_workers=4).map_pumps(lambda x: x + 1, items)
        assert list(result.keys()) == [7, 3, 9, 1]
        assert result[9] == 91

    def test_threaded_execution_actually_uses_multiple_threads(self):
        seen: set[str] = set()
        barrier = threading.Barrier(2, timeout=5)

        def record(_):
            seen.add(threading.current_thread().name)
            barrier.wait()
            return None

        FleetExecutor(max_workers=2, chunk_size=1).map_ordered(record, range(2))
        assert len(seen) == 2


class TestPeakFeatureCache:
    def make_peaks(self, seed: int) -> HarmonicPeaks:
        rng = np.random.default_rng(seed)
        freqs = np.sort(rng.uniform(0, 2000, 8))
        return HarmonicPeaks(frequencies=freqs, values=rng.uniform(0, 5, 8))

    def test_distance_memoized(self):
        cache = PeakFeatureCache()
        a, b = self.make_peaks(1), self.make_peaks(2)
        first = cache.distance(a, b, 24.0)
        second = cache.distance(a, b, 24.0)
        assert first == second
        assert cache.hits == 1 and cache.misses == 1

    def test_tolerance_is_part_of_the_key(self):
        cache = PeakFeatureCache()
        a, b = self.make_peaks(1), self.make_peaks(2)
        cache.distance(a, b, 24.0)
        cache.distance(a, b, 48.0)
        assert cache.misses == 2

    def test_eviction_bound(self):
        cache = PeakFeatureCache(max_entries=3)
        for seed in range(6):
            cache.distance(self.make_peaks(seed), self.make_peaks(seed + 100), 24.0)
        assert len(cache) == 3

    def test_clear_resets_counters(self):
        cache = PeakFeatureCache()
        cache.distance(self.make_peaks(1), self.make_peaks(2), 24.0)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            PeakFeatureCache(max_entries=0)


class TestTransformCache:
    def triple(self, seed: int):
        rng = np.random.default_rng(seed)
        return rng.normal(size=(4, 3)), rng.normal(size=4), rng.normal(size=(4, 16))

    def test_roundtrip_and_counters(self):
        cache = TransformCache()
        offsets, rms, psd = self.triple(0)
        key = array_digest(psd)
        assert cache.get(key) is None
        cache.put(key, offsets, rms, psd)
        got = cache.get(key)
        assert got is not None
        for stored, original in zip(got, (offsets, rms, psd)):
            assert np.array_equal(stored, original)
        assert cache.hits == 1 and cache.misses == 1

    def test_hits_return_private_copies(self):
        cache = TransformCache()
        offsets, rms, psd = self.triple(0)
        cache.put(b"k", offsets, rms, psd)
        first = cache.get(b"k")
        first[2][:] = -1.0  # corrupting the returned arrays ...
        again = cache.get(b"k")
        assert np.array_equal(again[2], psd)  # ... never touches the store

    def test_store_is_isolated_from_caller_buffers(self):
        cache = TransformCache()
        offsets, rms, psd = self.triple(0)
        cache.put(b"k", offsets, rms, psd)
        psd[:] = 99.0  # caller reuses its buffer after putting
        assert not np.array_equal(cache.get(b"k")[2], psd)

    def test_fifo_eviction(self):
        cache = TransformCache(max_entries=2)
        for i in range(3):
            cache.put(bytes([i]), *self.triple(i))
        assert len(cache) == 2
        assert cache.get(bytes([0])) is None  # oldest evicted
        assert cache.get(bytes([2])) is not None


class TestArrayDigest:
    def test_content_addressing(self):
        a = np.arange(12, dtype=np.float64)
        assert array_digest(a) == array_digest(a.copy())
        assert array_digest(a) != array_digest(a + 1)

    def test_shape_is_part_of_the_digest(self):
        a = np.zeros(12)
        assert array_digest(a) != array_digest(a.reshape(3, 4))

    def test_non_contiguous_input(self):
        a = np.arange(24, dtype=np.float64).reshape(4, 6)
        strided = a[:, ::2]
        assert array_digest(strided) == array_digest(strided.copy())


class TestRuntimeProfile:
    def test_stage_accumulation(self):
        profile = RuntimeProfile()
        with profile.stage("transform", items=10):
            pass
        with profile.stage("transform", items=5):
            pass
        stats = profile.stages["transform"]
        assert stats.calls == 2 and stats.items == 15
        assert stats.seconds >= 0.0

    def test_counters_and_dict_snapshot(self):
        profile = RuntimeProfile()
        profile.count("cache_hits", 3)
        profile.count("cache_hits")
        profile.add("score", 0.5, items=100)
        snapshot = profile.as_dict()
        assert snapshot["counters"]["cache_hits"] == 4
        assert snapshot["stages"]["score"]["items"] == 100

    def test_report_renders_stages_and_counters(self):
        profile = RuntimeProfile()
        profile.add("transform", 0.25, items=100)
        profile.count("fleet_workers", 4)
        text = profile.report()
        assert "transform" in text
        assert "fleet_workers=4" in text
        assert "total" in text

    def test_ms_per_item(self):
        profile = RuntimeProfile()
        profile.add("score", 1.0, items=500)
        assert profile.stages["score"].ms_per_item == 2.0
        profile.add("no_items", 1.0)
        assert profile.stages["no_items"].ms_per_item == 0.0

    def test_negative_seconds_rejected(self):
        with pytest.raises(ValueError):
            RuntimeProfile().add("x", -0.1)

    def test_thread_safety_of_add(self):
        profile = RuntimeProfile()

        def hammer():
            for _ in range(500):
                profile.add("stage", 0.0, items=1)
                profile.count("n")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert profile.stages["stage"].calls == 2000
        assert profile.counters["n"] == 2000
