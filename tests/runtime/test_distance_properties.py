"""Property-based tests for the peak harmonic distance (Algorithm 1).

Hypothesis generates random harmonic peak features and checks the metric
axioms the analysis layer relies on:

* non-negativity over arbitrary feature pairs;
* exact identity ``D(x, x) == 0.0`` (not merely close to zero);
* symmetry whenever the matching is complete (same peak count, shared
  frequency grid) — the docstring's caveat made precise;
* invariance of extracted peaks — and hence of the distance — under
  zero-padding of the PSD tail.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import (
    pack_peaks,
    packed_harmonic_distances,
    peak_harmonic_distance,
    peak_harmonic_distances,
)
from repro.core.peaks import HarmonicPeaks, extract_harmonic_peaks


def peaks_strategy(min_peaks: int = 0, max_peaks: int = 24):
    """Strategy producing valid HarmonicPeaks features."""

    @st.composite
    def build(draw):
        n = draw(st.integers(min_value=min_peaks, max_value=max_peaks))
        freqs = draw(
            st.lists(
                st.floats(min_value=0.0, max_value=2000.0,
                          allow_nan=False, allow_infinity=False),
                min_size=n, max_size=n, unique=True,
            )
        )
        values = draw(
            st.lists(
                st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False, allow_infinity=False),
                min_size=n, max_size=n,
            )
        )
        order = np.argsort(freqs)
        return HarmonicPeaks(
            frequencies=np.asarray(freqs, dtype=np.float64)[order],
            values=np.asarray(values, dtype=np.float64)[order],
        )

    return build()


tolerances = st.floats(min_value=1e-3, max_value=500.0,
                       allow_nan=False, allow_infinity=False)


class TestMetricAxioms:
    @settings(max_examples=100, deadline=None)
    @given(a=peaks_strategy(), b=peaks_strategy(), tol=tolerances)
    def test_non_negative(self, a, b, tol):
        assert peak_harmonic_distance(a, b, match_tolerance_hz=tol) >= 0.0

    @settings(max_examples=100, deadline=None)
    @given(a=peaks_strategy(), tol=tolerances)
    def test_identity_is_exact_zero(self, a, tol):
        assert peak_harmonic_distance(a, a, match_tolerance_hz=tol) == 0.0

    @settings(max_examples=100, deadline=None)
    @given(data=st.data())
    def test_symmetric_under_complete_matching(self, data):
        """Equal peak counts on a shared frequency grid match completely,
        and then ``D`` is exactly symmetric."""
        a = data.draw(peaks_strategy(min_peaks=1))
        other_values = data.draw(
            st.lists(
                st.floats(min_value=0.0, max_value=100.0,
                          allow_nan=False, allow_infinity=False),
                min_size=len(a), max_size=len(a),
            )
        )
        b = HarmonicPeaks(
            frequencies=a.frequencies.copy(),
            values=np.asarray(other_values, dtype=np.float64),
        )
        forward = peak_harmonic_distance(a, b)
        backward = peak_harmonic_distance(b, a)
        assert forward == backward

    @settings(max_examples=50, deadline=None)
    @given(a=peaks_strategy(), b=peaks_strategy(), tol=tolerances)
    def test_batch_wrapper_matches_scalar(self, a, b, tol):
        batched = peak_harmonic_distances([a, b], b, match_tolerance_hz=tol)
        assert batched[0] == peak_harmonic_distance(a, b, match_tolerance_hz=tol)
        assert batched[1] == 0.0


class TestPackedKernelParity:
    """The vectorized Algorithm 1 kernel is bit-identical to the scalar
    loop for *any* batch: ragged peak counts (including empty features
    and empty batches), any reference, any tolerance."""

    @settings(max_examples=100, deadline=None)
    @given(data=st.data())
    def test_packed_kernel_equals_scalar_loop(self, data):
        n_rows = data.draw(st.integers(min_value=0, max_value=8))
        rows = [data.draw(peaks_strategy()) for _ in range(n_rows)]
        reference = data.draw(peaks_strategy())
        tol = data.draw(tolerances)

        batched = packed_harmonic_distances(
            pack_peaks(rows), reference, match_tolerance_hz=tol
        )
        scalar = np.asarray(
            [
                peak_harmonic_distance(row, reference, match_tolerance_hz=tol)
                for row in rows
            ]
        )
        assert batched.shape == (n_rows,)
        assert np.array_equal(batched, scalar)


class TestZeroPaddingInvariance:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_peaks_and_distance_invariant_to_zero_padded_tail(self, data):
        """Appending zero PSD bins (with their frequency grid extended)
        changes neither the extracted peaks nor the distance."""
        n_bins = data.draw(st.integers(min_value=128, max_value=256))
        seed = data.draw(st.integers(min_value=0, max_value=2**31 - 1))
        pad = data.draw(st.integers(min_value=1, max_value=64))
        window = 16

        rng = np.random.default_rng(seed)
        psd = rng.uniform(0.0, 1.0, n_bins)
        # Quiet tail: the last full smoothing window is already zero, so
        # the Hann convolution sees the same neighbourhood before and
        # after padding.
        psd[-window:] = 0.0
        spacing = 4000.0 / (2 * n_bins)
        freqs = np.arange(n_bins) * spacing

        padded_psd = np.concatenate([psd, np.zeros(pad)])
        padded_freqs = np.arange(n_bins + pad) * spacing

        base = extract_harmonic_peaks(psd, freqs, window_size=window)
        padded = extract_harmonic_peaks(padded_psd, padded_freqs, window_size=window)
        assert np.array_equal(base.frequencies, padded.frequencies)
        assert np.array_equal(base.values, padded.values)

        reference = extract_harmonic_peaks(
            rng.uniform(0.0, 1.0, n_bins), freqs, window_size=window
        )
        assert peak_harmonic_distance(base, reference) == peak_harmonic_distance(
            padded, reference
        )
