"""Batch runtime ↔ scalar reference parity.

The ISSUE contract asks for element-wise agreement within ``atol=1e-9``;
the batch kernels are built to a stronger standard — every float sees the
same operations in the same order as the scalar path — so these tests
assert *bit* equality (``np.array_equal``), which implies the tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.classify import PeakHarmonicFeature
from repro.core.features import psd_frequencies
from repro.core.pipeline import AnalysisPipeline, PipelineConfig
from repro.runtime import (
    BatchPeakHarmonicFeature,
    BatchPipeline,
    FleetExecutor,
    PeakFeatureCache,
    TransformCache,
)

from .conftest import make_workload


def fresh_batch(config: PipelineConfig | None = None, **kwargs) -> BatchPipeline:
    """A BatchPipeline with private caches (no cross-test pollution)."""
    kwargs.setdefault("cache", PeakFeatureCache())
    kwargs.setdefault("transform_cache", TransformCache())
    return BatchPipeline(config, **kwargs)


def assert_results_identical(scalar, batch) -> None:
    for name in ("offsets", "rms", "psd", "da"):
        a, b = getattr(scalar, name), getattr(batch, name)
        assert np.array_equal(a, b, equal_nan=True), f"{name} diverged"
    assert np.array_equal(scalar.valid_mask, batch.valid_mask)
    assert np.array_equal(scalar.zones, batch.zones)
    assert np.array_equal(scalar.zone_thresholds, batch.zone_thresholds)
    assert scalar.zone_d_threshold == batch.zone_d_threshold
    assert list(scalar.rul.keys()) == list(batch.rul.keys())
    for pump in scalar.rul:
        assert scalar.rul[pump] == batch.rul[pump]


class TestTransformParity:
    def test_transform_bit_identical(self, workload):
        _, _, blocks, _ = workload
        s_off, s_rms, s_psd = AnalysisPipeline().transform(blocks)
        b_off, b_rms, b_psd = fresh_batch().transform(blocks)
        assert np.array_equal(s_off, b_off)
        assert np.array_equal(s_rms, b_rms)
        assert np.array_equal(s_psd, b_psd)

    def test_transform_parity_across_chunk_boundaries(self, workload):
        _, _, blocks, _ = workload
        reference = AnalysisPipeline().transform(blocks)
        # Chunk sizes that divide, straddle, and exceed the row count.
        for chunk_rows in (1, 7, blocks.shape[0], blocks.shape[0] + 5):
            chunked = fresh_batch(chunk_rows=chunk_rows).transform(blocks)
            for ref, got in zip(reference, chunked):
                assert np.array_equal(ref, got), f"chunk_rows={chunk_rows}"

    def test_transform_empty_matrix(self):
        # The scalar reference cannot represent an empty result (np.stack
        # needs at least one row); the batch path degrades gracefully.
        b_off, b_rms, b_psd = fresh_batch().transform(np.empty((0, 128, 3)))
        assert b_off.shape == (0, 3)
        assert b_rms.shape == (0,)
        assert b_psd.shape == (0, 128)

    def test_nan_bearing_measurement_raises_in_both_paths(self, workload):
        _, _, blocks, _ = workload
        poisoned = blocks.copy()
        poisoned[5, 100, 1] = np.nan
        with pytest.raises(ValueError, match="non-finite"):
            AnalysisPipeline().transform(poisoned)
        with pytest.raises(ValueError, match="non-finite"):
            fresh_batch().transform(poisoned)

    def test_inf_bearing_measurement_raises_in_both_paths(self, workload):
        _, _, blocks, _ = workload
        poisoned = blocks.copy()
        poisoned[0, 0, 0] = np.inf
        with pytest.raises(ValueError, match="non-finite"):
            AnalysisPipeline().transform(poisoned)
        with pytest.raises(ValueError, match="non-finite"):
            fresh_batch().transform(poisoned)

    def test_bad_shape_raises_in_both_paths(self):
        bad = np.zeros((4, 64, 2))
        with pytest.raises(ValueError):
            AnalysisPipeline().transform(bad)
        with pytest.raises(ValueError):
            fresh_batch().transform(bad)

    def test_too_short_measurement_raises_in_both_paths(self):
        short = np.zeros((2, 1, 3))
        with pytest.raises(ValueError, match="at least 2 samples"):
            AnalysisPipeline().transform(short)
        with pytest.raises(ValueError, match="at least 2 samples"):
            fresh_batch().transform(short)


class TestFeatureParity:
    def test_score_many_bit_identical(self, workload):
        _, _, blocks, _ = workload
        _, _, psd = AnalysisPipeline().transform(blocks)
        freqs = psd_frequencies(psd.shape[1], 4000.0)
        reference_rows = psd[:10]

        scalar = PeakHarmonicFeature().fit(reference_rows, freqs)
        batch = BatchPeakHarmonicFeature(cache=PeakFeatureCache()).fit(
            reference_rows, freqs
        )
        assert np.array_equal(
            scalar.score_many(psd, freqs), batch.score_many(psd, freqs)
        )

    def test_cached_rescore_bit_identical(self, workload):
        _, _, blocks, _ = workload
        _, _, psd = AnalysisPipeline().transform(blocks)
        freqs = psd_frequencies(psd.shape[1], 4000.0)
        batch = BatchPeakHarmonicFeature(cache=PeakFeatureCache()).fit(
            psd[:10], freqs
        )
        first = batch.score_many(psd, freqs)
        second = batch.score_many(psd, freqs)  # now fully cache-served
        assert batch.cache.hits > 0
        assert np.array_equal(first, second)


class TestFullRunParity:
    def test_run_bit_identical_including_outlier_and_unstable_sensor(
        self, workload
    ):
        ids, days, blocks, labels = workload
        scalar = AnalysisPipeline().run(ids, days, blocks, labels)
        batch = fresh_batch().run(ids, days, blocks, labels)
        # The workload really exercised the interesting paths:
        assert not scalar.valid_mask.all()  # the outlier was flagged
        assert np.isnan(scalar.da[~scalar.valid_mask]).all()
        assert_results_identical(scalar, batch)

    def test_run_parity_with_threaded_executor(self, workload):
        ids, days, blocks, labels = workload
        scalar = AnalysisPipeline().run(ids, days, blocks, labels)
        threaded = fresh_batch(executor=FleetExecutor(max_workers=3)).run(
            ids, days, blocks, labels
        )
        assert_results_identical(scalar, threaded)

    def test_run_parity_with_moving_average(self, workload):
        ids, days, blocks, labels = workload
        config = PipelineConfig(moving_average_window=4)
        scalar = AnalysisPipeline(config).run(ids, days, blocks, labels)
        batch = fresh_batch(config).run(ids, days, blocks, labels)
        assert_results_identical(scalar, batch)

    def test_warm_rerun_bit_identical(self, workload):
        ids, days, blocks, labels = workload
        scalar = AnalysisPipeline().run(ids, days, blocks, labels)
        batch = fresh_batch()
        batch.run(ids, days, blocks, labels)
        warm = batch.run(ids, days, blocks, labels)
        assert batch.transform_cache.hits > 0
        assert batch.cache.hits > 0
        assert_results_identical(scalar, warm)

    def test_validation_error_parity(self, workload):
        ids, days, blocks, labels = workload
        for bad_labels, match in (
            ({}, "must not be empty"),
            ({10**6: "A"}, "invalid indices"),
        ):
            with pytest.raises(ValueError, match=match):
                AnalysisPipeline().run(ids, days, blocks, bad_labels)
            with pytest.raises(ValueError, match=match):
                fresh_batch().run(ids, days, blocks, bad_labels)

    def test_parity_on_alternate_seed(self):
        ids, days, blocks, labels = make_workload(
            n_pumps=4, per_pump=32, num_samples=256, seed=99
        )
        scalar = AnalysisPipeline().run(ids, days, blocks, labels)
        batch = fresh_batch().run(ids, days, blocks, labels)
        assert_results_identical(scalar, batch)
