"""Checkpoint journal: crash-safe, bit-identical transform resume.

The manifest is content-addressed (chunks keyed by input digest, payload
verified by output digest on load), so resume can never serve stale or
torn data — worst case it recomputes.  These tests drive the journal
through :class:`BatchPipeline` exactly as the engine does.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.pipeline import PipelineConfig
from repro.runtime.batch import BatchPipeline
from repro.runtime.cache import PeakFeatureCache, TransformCache, array_digest
from repro.runtime.checkpoint import MANIFEST_NAME, CheckpointManager

N, K = 40, 64
CHUNK_ROWS = 16  # 3 chunks over N rows


@pytest.fixture()
def blocks():
    rng = np.random.default_rng(42)
    return rng.normal(size=(N, K, 3))


def make_pipeline(ckpt_dir=None, run_key="test-v1") -> BatchPipeline:
    checkpoint = CheckpointManager(ckpt_dir, run_key=run_key) if ckpt_dir else None
    return BatchPipeline(
        PipelineConfig(),
        cache=PeakFeatureCache(),
        transform_cache=TransformCache(),
        chunk_rows=CHUNK_ROWS,
        checkpoint=checkpoint,
    )


class TestJournalAndResume:
    def test_resume_is_bit_identical_and_all_hits(self, tmp_path, blocks):
        reference = make_pipeline().transform(blocks)
        first = make_pipeline(tmp_path).transform(blocks)
        for ref, got in zip(reference, first):
            assert np.array_equal(ref, got)

        resumed_pipeline = make_pipeline(tmp_path)
        resumed = resumed_pipeline.transform(blocks)
        assert resumed_pipeline.checkpoint.hits == 3
        assert resumed_pipeline.checkpoint.misses == 0
        for ref, got in zip(reference, resumed):
            assert np.array_equal(ref, got)

    def test_manifest_format_is_versioned_and_content_addressed(
        self, tmp_path, blocks
    ):
        make_pipeline(tmp_path).transform(blocks)
        manifest = json.loads((tmp_path / MANIFEST_NAME).read_text())
        assert manifest["version"] == 1
        assert manifest["run_key"] == "test-v1"
        assert sorted(manifest["chunks"]) == ["0", "1", "2"]
        entry = manifest["chunks"]["0"]
        assert entry["lo"] == 0 and entry["hi"] == CHUNK_ROWS
        assert entry["input_digest"] == array_digest(blocks[:CHUNK_ROWS]).hex()
        assert (tmp_path / entry["payload"]).exists()
        assert not list(tmp_path.glob("*.tmp"))

    def test_interrupted_run_resumes_from_completed_chunks(
        self, tmp_path, blocks, monkeypatch
    ):
        """Crash after two chunks: the resumed run recalls them from the
        journal, recomputes the rest, and matches an uninterrupted run."""
        import repro.runtime.batch as batch_mod

        reference = make_pipeline().transform(blocks)
        real_tiled = batch_mod._transform_tiled
        calls = {"n": 0}

        def dying_tiled(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] > 2:
                raise KeyboardInterrupt("simulated crash mid-run")
            return real_tiled(*args, **kwargs)

        monkeypatch.setattr(batch_mod, "_transform_tiled", dying_tiled)
        with pytest.raises(KeyboardInterrupt):
            make_pipeline(tmp_path).transform(blocks)
        monkeypatch.setattr(batch_mod, "_transform_tiled", real_tiled)

        resumed_pipeline = make_pipeline(tmp_path)
        resumed = resumed_pipeline.transform(blocks)
        assert resumed_pipeline.checkpoint.hits == 2
        assert resumed_pipeline.checkpoint.misses == 1
        for ref, got in zip(reference, resumed):
            assert np.array_equal(ref, got)

    def test_torn_payload_self_heals(self, tmp_path, blocks):
        reference = make_pipeline().transform(blocks)
        make_pipeline(tmp_path).transform(blocks)
        (tmp_path / "chunk-00001.npz").write_bytes(b"torn mid-write")

        resumed_pipeline = make_pipeline(tmp_path)
        resumed = resumed_pipeline.transform(blocks)
        assert resumed_pipeline.checkpoint.hits == 2
        assert resumed_pipeline.checkpoint.misses == 1
        for ref, got in zip(reference, resumed):
            assert np.array_equal(ref, got)

    def test_changed_input_bytes_are_not_served(self, tmp_path, blocks):
        make_pipeline(tmp_path).transform(blocks)
        changed = blocks.copy()
        changed[3, 0, 0] += 1.0
        resumed_pipeline = make_pipeline(tmp_path)
        resumed = resumed_pipeline.transform(changed)
        # Chunk 0 holds the changed row: recomputed, chunks 1-2 recalled.
        assert resumed_pipeline.checkpoint.hits == 2
        assert resumed_pipeline.checkpoint.misses == 1
        reference = make_pipeline().transform(changed)
        for ref, got in zip(reference, resumed):
            assert np.array_equal(ref, got)

    def test_run_key_mismatch_starts_fresh(self, tmp_path, blocks):
        make_pipeline(tmp_path, run_key="test-v1").transform(blocks)
        other = make_pipeline(tmp_path, run_key="other-config")
        other.transform(blocks)
        assert other.checkpoint.hits == 0
        assert other.checkpoint.misses == 3


class TestStaleCacheRevalidation:
    def test_warm_hit_cannot_resurrect_superseded_chunk(self, tmp_path, blocks):
        """Satellite contract: a warm :class:`TransformCache` entry whose
        digest the manifest marks superseded is invalidated and
        recomputed, never served."""
        pipeline = make_pipeline(tmp_path)
        pipeline.transform(blocks)

        # A second run over different bytes re-records every chunk slot,
        # superseding the original digests in the shared manifest...
        changed = blocks + 1.0
        other = BatchPipeline(
            PipelineConfig(),
            cache=PeakFeatureCache(),
            transform_cache=TransformCache(),
            chunk_rows=CHUNK_ROWS,
            checkpoint=pipeline.checkpoint,
        )
        other.transform(changed)
        chunk_key = array_digest(blocks[:CHUNK_ROWS])
        assert not pipeline.checkpoint.is_current(chunk_key)

        # ...so the first pipeline's warm entries must recompute, not
        # serve from memory.  Poison the warm entry to prove it: if the
        # revalidation ever served it, the output would be zeros.
        reference = make_pipeline().transform(blocks)
        poison = tuple(np.zeros_like(ref[:CHUNK_ROWS]) for ref in reference)
        pipeline.transform_cache.put(chunk_key, *poison)
        result = pipeline.transform(blocks)
        for ref, got in zip(reference, result):
            assert np.array_equal(ref, got)
        # Re-recording un-supersedes: the digests are current again.
        assert pipeline.checkpoint.is_current(chunk_key)

    def test_is_current_without_history(self, tmp_path):
        ckpt = CheckpointManager(tmp_path)
        assert ckpt.is_current(b"\x01" * 20)


class TestAtomicity:
    def test_partial_manifest_is_ignored(self, tmp_path, blocks):
        make_pipeline(tmp_path).transform(blocks)
        manifest_path = tmp_path / MANIFEST_NAME
        text = manifest_path.read_text()
        manifest_path.write_text(text[: len(text) // 2])
        resumed_pipeline = make_pipeline(tmp_path)
        resumed_pipeline.transform(blocks)
        # Unreadable manifest -> fresh start, re-journaled cleanly.
        assert resumed_pipeline.checkpoint.misses == 3
        assert json.loads(manifest_path.read_text())["version"] == 1

    def test_describe_mentions_directory_and_chunks(self, tmp_path, blocks):
        pipeline = make_pipeline(tmp_path)
        pipeline.transform(blocks)
        text = pipeline.checkpoint.describe()
        assert str(tmp_path) in text
        assert "3 chunk(s)" in text
