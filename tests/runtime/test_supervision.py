"""Fleet supervision: deadlines, restarts, salvage, and parity.

The self-healing execution path must be invisible when nothing goes
wrong (bit-identical output, zero tallied activity) and must recover —
restart with backoff, salvage, or fail loudly per policy — when workers
die or hang.  Faults are drawn parent-side through a scripted duck-typed
injector so every scenario is deterministic.
"""

from __future__ import annotations

from collections import deque

import pytest

from repro.chaos.plan import FaultPlan
from repro.runtime.fleet import (
    ABANDONED,
    FleetExecutor,
    SupervisionExhaustedError,
    SupervisionPolicy,
    SupervisionReport,
)


def double(x):
    return x * 2


#: A fast policy: no real sleeping between restarts.
FAST = SupervisionPolicy(backoff_base_s=0.0, backoff_max_s=0.0)


class ScriptedFaults:
    """Duck-typed injector with a scripted kill/hang stream.

    ``kills`` / ``hangs`` are consumed one entry per chunk submission, in
    submission order; exhausted scripts mean "no fault".  Carries an
    empty :class:`FaultPlan` so the process-backend eligibility probe
    (which inspects ``injector.plan``) sees no ``fleet.task`` specs.
    """

    def __init__(self, kills=(), hangs=()):
        self._kills = deque(kills)
        self._hangs = deque(hangs)
        self.plan = FaultPlan("scripted", seed=0, specs=())

    def kills(self, point):
        return bool(self._kills.popleft()) if self._kills else False

    def delay_s(self, point):
        if point == "fleet.worker_hang" and self._hangs:
            return float(self._hangs.popleft())
        return 0.0

    def maybe_fail(self, point):
        return None


class TestZeroInterventionParity:
    @pytest.mark.parametrize("workers", [0, 3])
    def test_supervised_output_matches_unsupervised(self, workers):
        items = list(range(37))
        plain = FleetExecutor(max_workers=workers, chunk_size=4)
        supervised = FleetExecutor(
            max_workers=workers, chunk_size=4, supervision=FAST
        )
        assert supervised.map_ordered(double, items) == plain.map_ordered(
            double, items
        )
        assert not supervised.supervision_report.has_activity
        assert supervised.supervision_report.chunks == 10

    def test_process_backend_supervised_parity(self):
        items = list(range(20))
        supervised = FleetExecutor(
            max_workers=2, chunk_size=5, backend="process", supervision=FAST
        )
        assert supervised.map_ordered(double, items) == [double(x) for x in items]
        assert supervised.last_backend == "process"
        assert not supervised.supervision_report.has_activity

    def test_unsupervised_executor_has_no_report(self):
        assert FleetExecutor(max_workers=2).supervision_report is None


class TestRestarts:
    def test_serial_restarts_killed_chunks(self):
        ex = FleetExecutor(
            max_workers=0,
            chunk_size=2,
            injector=ScriptedFaults(kills=[1, 0, 1]),
            supervision=FAST,
        )
        assert ex.map_ordered(double, list(range(6))) == [0, 2, 4, 6, 8, 10]
        report = ex.supervision_report
        assert report.worker_deaths == 2
        assert report.restarts == 2
        assert report.abandoned_chunks == 0

    def test_thread_pool_restarts_killed_chunks(self):
        ex = FleetExecutor(
            max_workers=2,
            chunk_size=3,
            injector=ScriptedFaults(kills=[1, 1]),
            supervision=FAST,
        )
        items = list(range(12))
        assert ex.map_ordered(double, items) == [double(x) for x in items]
        assert ex.supervision_report.worker_deaths == 2
        assert ex.supervision_report.restarts == 2

    def test_process_pool_survives_real_worker_death(self):
        """A killed process chunk exits hard (``os._exit``); the broken
        pool is rebuilt and the chunk re-run elsewhere."""
        ex = FleetExecutor(
            max_workers=2,
            chunk_size=5,
            backend="process",
            injector=ScriptedFaults(kills=[1]),
            supervision=FAST,
        )
        items = list(range(20))
        assert ex.map_ordered(double, items) == [double(x) for x in items]
        assert ex.last_backend == "process"
        assert ex.supervision_report.worker_deaths >= 1
        assert ex.supervision_report.restarts >= 1

    def test_hung_chunk_is_deadlined_and_restarted(self):
        policy = SupervisionPolicy(
            chunk_deadline_s=0.15,
            poll_interval_s=0.02,
            backoff_base_s=0.0,
            backoff_max_s=0.0,
        )
        ex = FleetExecutor(
            max_workers=2,
            chunk_size=4,
            injector=ScriptedFaults(hangs=[0.6]),
            supervision=policy,
        )
        items = list(range(8))
        assert ex.map_ordered(double, items) == [double(x) for x in items]
        assert ex.supervision_report.hung_chunks == 1
        assert ex.supervision_report.restarts == 1


class TestExhaustion:
    def test_salvage_returns_abandoned_sentinels(self):
        policy = SupervisionPolicy(
            max_restarts=2, backoff_base_s=0.0, backoff_max_s=0.0, salvage=True
        )
        ex = FleetExecutor(
            max_workers=0,
            chunk_size=2,
            injector=ScriptedFaults(kills=[1] * 100),
            supervision=policy,
        )
        out = ex.map_ordered(double, list(range(4)))
        assert out == [ABANDONED] * 4
        report = ex.supervision_report
        assert report.abandoned_chunks == 2
        assert report.abandoned_items == 4
        assert report.worker_deaths == 6  # 2 chunks x (1 + 2 restarts)

    def test_partial_salvage_keeps_surviving_chunks(self):
        policy = SupervisionPolicy(
            max_restarts=1, backoff_base_s=0.0, backoff_max_s=0.0, salvage=True
        )
        # Chunk 0 dies twice (abandoned); chunks 1 and 2 run clean.
        ex = FleetExecutor(
            max_workers=0,
            chunk_size=2,
            injector=ScriptedFaults(kills=[1, 1]),
            supervision=policy,
        )
        out = ex.map_ordered(double, list(range(6)))
        assert out == [ABANDONED, ABANDONED, 4, 6, 8, 10]
        assert ex.supervision_report.salvaged_chunks == 2

    def test_salvage_false_raises(self):
        policy = SupervisionPolicy(
            max_restarts=1, backoff_base_s=0.0, backoff_max_s=0.0, salvage=False
        )
        ex = FleetExecutor(
            max_workers=0,
            chunk_size=8,
            injector=ScriptedFaults(kills=[1] * 10),
            supervision=policy,
        )
        with pytest.raises(SupervisionExhaustedError, match="chunk 0"):
            ex.map_ordered(double, list(range(4)))

    def test_map_pumps_drops_abandoned_pumps(self):
        policy = SupervisionPolicy(
            max_restarts=0, backoff_base_s=0.0, backoff_max_s=0.0, salvage=True
        )
        ex = FleetExecutor(
            max_workers=0,
            chunk_size=1,
            injector=ScriptedFaults(kills=[0, 1, 0]),
            supervision=policy,
        )
        result = ex.map_pumps(double, [(10, 1), (20, 2), (30, 3)])
        assert result == {10: 2, 30: 6}


class TestPolicyAndReport:
    def test_backoff_doubles_and_caps(self):
        policy = SupervisionPolicy(backoff_base_s=0.01, backoff_max_s=0.05)
        assert policy.backoff_s(0) == 0.01
        assert policy.backoff_s(1) == 0.02
        assert policy.backoff_s(10) == 0.05

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"chunk_deadline_s": 0.0},
            {"chunk_deadline_s": -1.0},
            {"max_restarts": -1},
            {"backoff_base_s": -0.1},
            {"poll_interval_s": 0.0},
        ],
    )
    def test_policy_validation(self, kwargs):
        with pytest.raises(ValueError):
            SupervisionPolicy(**kwargs)

    def test_report_activity_and_dict_roundtrip(self):
        report = SupervisionReport()
        assert not report.has_activity
        report.restarts = 1
        assert report.has_activity
        assert SupervisionReport(**report.as_dict()) == report
