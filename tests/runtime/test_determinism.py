"""Determinism guarantees of the runtime layer.

The fleet executor's contract is that parallel execution is invisible:
for the same seeded database, the batch engine (threaded fan-out
included) must render the *byte-identical* operator report the scalar
reference engine renders, and repeated runs of the same engine must agree
with themselves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.engine import EngineConfig, VibrationAnalysisEngine
from repro.analysis.reporting import render_report
from repro.core.pipeline import PipelineConfig
from repro.runtime import RuntimeProfile
from repro.storage.api import AnalysisPeriod, DataRetrievalAPI
from repro.storage.database import VibrationDatabase


@pytest.fixture(scope="module")
def seeded_api(small_fleet):
    db = VibrationDatabase()
    small_fleet.to_database(db)
    records, _ = small_fleet.expert_labels({"A": 30, "BC": 30, "D": 20})
    db.labels.add_many(records)
    yield DataRetrievalAPI(
        db, AnalysisPeriod(0.0, small_fleet.config.duration_days + 1)
    )
    db.close()


def engine_for(api, *, batch: bool, workers: int | None = None):
    return VibrationAnalysisEngine(
        api,
        EngineConfig(
            pipeline=PipelineConfig(ransac_min_inliers=25),
            rotation_hz=29.0,
            use_batch_runtime=batch,
            max_workers=workers,
        ),
    )


class TestReportDeterminism:
    def test_batch_and_scalar_reports_byte_identical(self, seeded_api):
        scalar_text = render_report(engine_for(seeded_api, batch=False).run())
        batch_text = render_report(engine_for(seeded_api, batch=True).run())
        assert batch_text == scalar_text

    def test_threaded_fanout_report_byte_identical(self, seeded_api):
        serial_text = render_report(
            engine_for(seeded_api, batch=True, workers=1).run()
        )
        threaded_text = render_report(
            engine_for(seeded_api, batch=True, workers=4).run()
        )
        assert threaded_text == serial_text

    def test_same_engine_twice_is_identical(self, seeded_api):
        engine = engine_for(seeded_api, batch=True, workers=4)
        first, second = engine.run(), engine.run()
        assert render_report(first) == render_report(second)
        assert np.array_equal(first.pipeline.da, second.pipeline.da, equal_nan=True)
        assert np.array_equal(first.pipeline.zones, second.pipeline.zones)

    def test_rul_and_diagnosis_key_order_stable(self, seeded_api):
        scalar = engine_for(seeded_api, batch=False).run()
        threaded = engine_for(seeded_api, batch=True, workers=4).run()
        assert list(scalar.rul.keys()) == list(threaded.rul.keys())
        assert list(scalar.diagnoses.keys()) == list(threaded.diagnoses.keys())
        for pump, diagnosis in scalar.diagnoses.items():
            assert threaded.diagnoses[pump] == diagnosis


class TestProfiledRunDeterminism:
    def test_profiling_does_not_change_the_report(self, seeded_api):
        profile = RuntimeProfile()
        profiled = render_report(engine_for(seeded_api, batch=True).run(profile))
        plain = render_report(engine_for(seeded_api, batch=True).run())
        assert profiled == plain
        # All batched stages reported in.
        for stage in ("transform", "preprocess", "score_da", "predict_rul"):
            assert stage in profile.stages
        assert "diagnose" in profile.stages
        assert profile.total_seconds > 0
