"""Tests for the content-addressed lifetime-model fit memo (cache.py)."""

import threading

import numpy as np

from repro.core.ransac import RecursiveRANSAC
from repro.runtime.cache import (
    ModelFitCache,
    default_model_fit_cache,
)


def fleet(seed=0, n=300):
    gen = np.random.default_rng(seed)
    x = gen.uniform(0, 80, n)
    z = 0.05 * x + gen.normal(0, 0.05, n)
    return x, z


class TestModelFitCache:
    def test_miss_computes_then_hit_returns_same_object(self):
        cache = ModelFitCache()
        x, z = fleet()
        engine = RecursiveRANSAC(residual_threshold=0.15, min_inliers=30, seed=0)
        key = ModelFitCache.fit_key(engine.config_key(), x, z)
        calls = []

        def compute():
            calls.append(1)
            return engine.clone().fit(x, z)

        first = cache.models(key, compute)
        second = cache.models(key, compute)
        assert len(calls) == 1
        assert second is first
        assert cache.hits == 1 and cache.misses == 1

    def test_fit_key_is_content_addressed(self):
        x, z = fleet()
        engine = RecursiveRANSAC(seed=0)
        key = ModelFitCache.fit_key(engine.config_key(), x, z)
        assert key == ModelFitCache.fit_key(engine.config_key(), x.copy(), z.copy())
        assert key != ModelFitCache.fit_key(engine.config_key(), x, z + 1e-9)
        other = RecursiveRANSAC(seed=1)
        assert key != ModelFitCache.fit_key(other.config_key(), x, z)

    def test_engine_mode_changes_the_key(self):
        x, z = fleet()
        batched = RecursiveRANSAC(seed=0, engine="batched")
        reference = RecursiveRANSAC(seed=0, engine="reference")
        assert ModelFitCache.fit_key(
            batched.config_key(), x, z
        ) != ModelFitCache.fit_key(reference.config_key(), x, z)

    def test_fifo_eviction(self):
        cache = ModelFitCache(max_entries=2)
        for i in range(3):
            cache.models(("key", i), lambda i=i: [i])
        assert len(cache) == 2
        # Oldest key evicted: probing it recomputes.
        assert cache.models(("key", 0), lambda: ["recomputed"]) == ["recomputed"]

    def test_clear_resets_counters(self):
        cache = ModelFitCache()
        cache.models(("k",), lambda: [])
        cache.models(("k",), lambda: [])
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_thread_safety_under_concurrent_probes(self):
        cache = ModelFitCache()
        x, z = fleet(seed=2)
        engine = RecursiveRANSAC(residual_threshold=0.15, min_inliers=30, seed=0)
        key = ModelFitCache.fit_key(engine.config_key(), x, z)
        results = []

        def worker():
            results.append(cache.models(key, lambda: engine.clone().fit(x, z)))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 8
        first = results[0]
        for models in results[1:]:
            assert len(models) == len(first)
            for a, b in zip(models, first):
                assert a.slope == b.slope and a.intercept == b.intercept

    def test_default_cache_is_process_wide(self):
        assert default_model_fit_cache() is default_model_fit_cache()
