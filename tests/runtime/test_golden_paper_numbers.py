"""Golden regression tests pinning recorded paper-reproduction numbers.

The benchmark suite writes its reproduced figures/tables to
``artifacts/``; these tests recompute two of the headline numbers through
the library entry points and require them to match the recorded artifacts
*exactly* — any drift in the DCT, smoothing, peak extraction, distance or
threshold-learning code shows up here immediately:

* the Fig. 11 Zone BC/D decision boundary (recorded ``0.3978``), and
* the Table III peak-harmonic confusion matrix at 15 training samples.

Both are computed through the scalar reference *and* the batch runtime,
so the goldens double as an end-to-end parity check on real
(synthesizer + MEMS sensor) data rather than toy workloads.
"""

from __future__ import annotations

import csv
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.metrics import evaluate_labels
from repro.core.classify import (
    ZONE_A,
    ZONES,
    OrderedThresholdClassifier,
    PeakHarmonicFeature,
)
from repro.core.distance import peak_harmonic_distance
from repro.core.peaks import extract_harmonic_peaks, extract_harmonic_peaks_batch
from repro.core.rul import learn_zone_d_threshold
from repro.runtime import BatchPeakHarmonicFeature, PeakFeatureCache

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
ARTIFACTS_DIR = REPO_ROOT / "artifacts"

# The benchmark workload generators live in benchmarks/common.py; reuse
# them so the goldens replay the exact recorded recipe.
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from common import PAPER_LABEL_COUNTS, labelled_zone_dataset, stratified_train_test  # noqa: E402


@pytest.fixture(scope="module")
def paper_dataset():
    return labelled_zone_dataset(
        PAPER_LABEL_COUNTS[ZONE_A],
        PAPER_LABEL_COUNTS["BC"],
        PAPER_LABEL_COUNTS["D"],
        seed=0,
    )


class TestFig11BoundaryGolden:
    def test_boundary_matches_recorded_artifact(self, paper_dataset):
        with open(ARTIFACTS_DIR / "fig11_boundary.csv", newline="") as fh:
            recorded = next(csv.DictReader(fh))["boundary"]

        psds, labels, freqs = (
            paper_dataset["psds"],
            paper_dataset["labels"],
            paper_dataset["freqs"],
        )
        # Fig. 11 recipe: Zone A exemplar from 25 healthy samples.
        rng = np.random.default_rng(1)
        a_idx = np.nonzero(labels == ZONE_A)[0]
        train_a = rng.choice(a_idx, size=25, replace=False)

        scalar_feature = PeakHarmonicFeature().fit(psds[train_a], freqs)
        da_scalar = scalar_feature.score_many(psds, freqs)
        boundary = learn_zone_d_threshold(da_scalar, labels)
        assert f"{boundary:.4f}" == recorded

        # The batch feature must land on the identical boundary.
        batch_feature = BatchPeakHarmonicFeature(cache=PeakFeatureCache()).fit(
            psds[train_a], freqs
        )
        da_batch = batch_feature.score_many(psds, freqs)
        assert np.array_equal(da_scalar, da_batch)
        assert learn_zone_d_threshold(da_batch, labels) == boundary


class TestTable3ConfusionGolden:
    def test_peak_harmonic_confusion_matches_recorded_artifact(self, paper_dataset):
        recorded = np.zeros((3, 3), dtype=int)
        with open(ARTIFACTS_DIR / "table3_confusion.csv", newline="") as fh:
            for row in csv.DictReader(fh):
                if row["metric"] != "peak_harmonic":
                    continue
                i = ZONES.index(row["true_zone"])
                j = ZONES.index(row["pred_zone"])
                recorded[i, j] = int(row["count"])
        assert recorded.sum() > 0, "artifact is missing peak_harmonic rows"

        psds, labels, freqs = (
            paper_dataset["psds"],
            paper_dataset["labels"],
            paper_dataset["freqs"],
        )
        # Table III's split comes from the Fig. 12-14 sweep: one rng walks
        # the training sizes (5, 10, 15, ...) and the confusion matrix is
        # captured at 15 total samples, i.e. the third draw.
        rng = np.random.default_rng(42)
        for per_class in (1, 3):  # totals 5 and 10 consume these draws
            stratified_train_test(labels, per_class, rng)
        train_idx, test_idx = stratified_train_test(labels, 5, rng)

        a_train = train_idx[labels[train_idx] == ZONE_A]
        baseline_psd = psds[a_train].mean(axis=0)
        baseline = extract_harmonic_peaks(baseline_psd, freqs)

        peaks = extract_harmonic_peaks_batch(psds, freqs)
        da = np.asarray([peak_harmonic_distance(p, baseline) for p in peaks])

        clf = OrderedThresholdClassifier().fit(da[train_idx], labels[train_idx])
        report = evaluate_labels(labels[test_idx], clf.predict(da[test_idx]))
        assert np.array_equal(report.matrix, recorded)

        # Derived headline number: overall accuracy over the table.
        accuracy = report.matrix.trace() / report.matrix.sum()
        recorded_accuracy = recorded.trace() / recorded.sum()
        assert accuracy == recorded_accuracy
