"""Shared workloads for the runtime test layer.

The parity and determinism tests all need the same thing: a small but
structurally interesting fleet-style workload — several pumps, constant
per-pump sensor offsets (stable sensors), one pump with a mid-life offset
jump (unstable sensor), one gross-offset outlier measurement, and enough
expert labels to train the zone classifier.
"""

from __future__ import annotations

import numpy as np
import pytest


def make_workload(
    n_pumps: int = 6,
    per_pump: int = 40,
    num_samples: int = 512,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, dict[int, str]]:
    """A labelled multi-pump measurement workload.

    Pump 1 is an "unstable sensor": its offset jumps halfway through the
    series (Fig. 8's abrupt-jump case).  Measurement 3 carries a gross
    offset and should be flagged invalid by outlier detection.
    """
    rng = np.random.default_rng(seed)
    ids, days, blocks = [], [], []
    t = np.arange(num_samples) / 2000.0
    for pump in range(n_pumps):
        offset = rng.uniform(-0.5, 0.5, 3)
        for m in range(per_pump):
            base = np.sin(2 * np.pi * 50 * t * (1 + 0.001 * pump))[:, None]
            base = base * rng.uniform(0.5, 1.5)
            noise = rng.normal(0, 0.05 + 0.002 * m, (num_samples, 3))
            block = base + noise + offset
            if pump == 1 and m >= per_pump // 2:
                block = block + np.array([0.8, -0.6, 0.7])  # offset jump
            ids.append(pump)
            days.append(m // 4)
            blocks.append(block)
    blocks[3] = blocks[3] + 5.0  # gross-offset outlier
    ids_arr = np.asarray(ids)
    days_arr = np.asarray(days, dtype=float)
    stacked = np.stack(blocks)

    labels: dict[int, str] = {}
    for pump in range(3):
        base_idx = pump * per_pump
        for m in range(6):
            i = base_idx + m + (1 if pump == 0 and m >= 3 else 0)
            labels[i] = "A"
        labels[base_idx + per_pump - 1] = "D"
        labels[base_idx + per_pump - 2] = "BC"
        labels[base_idx + per_pump - 3] = "BC"
        labels[base_idx + per_pump - 4] = "D"
    return ids_arr, days_arr, stacked, labels


@pytest.fixture(scope="module")
def workload():
    return make_workload()
