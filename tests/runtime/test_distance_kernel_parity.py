"""Bit-for-bit parity: the packed Algorithm 1 kernel vs the scalar path.

The batched distance kernel (:func:`packed_harmonic_distances`) promises
*bit-identical* results to a per-feature loop over
:func:`peak_harmonic_distance` — not merely close ones — because the
analysis layer's parity contract (and the chaos zero-fault suite) compare
pipeline outputs with ``np.array_equal``.  These regression tests pin the
promise down on the shapes where vectorized rewrites typically drift:
empty peak sets, single peaks, duplicated frequencies, ties exactly at
the match-tolerance boundary, and float32 inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.distance import (
    PackedPeaks,
    pack_peaks,
    packed_harmonic_distances,
    peak_harmonic_distance,
    peak_harmonic_distances,
)
from repro.core.peaks import HarmonicPeaks


def scalar_loop(rows, reference, tol):
    return np.asarray(
        [peak_harmonic_distance(r, reference, match_tolerance_hz=tol) for r in rows]
    )


def assert_bit_identical(rows, reference, tol=16.0):
    """Assert kernel == scalar loop, bit for bit, and return the result."""
    batched = packed_harmonic_distances(
        pack_peaks(rows), reference, match_tolerance_hz=tol
    )
    expected = scalar_loop(rows, reference, tol)
    assert batched.dtype == np.float64
    assert batched.shape == expected.shape
    assert np.array_equal(batched, expected)
    return batched


def make_peaks(freqs, vals=None, dtype=np.float64):
    freqs = np.asarray(freqs, dtype=dtype)
    if vals is None:
        vals = np.ones_like(freqs)
    return HarmonicPeaks(freqs, np.asarray(vals, dtype=dtype))


EMPTY = make_peaks([])


class TestEmptyPeakSets:
    def test_no_rows(self):
        out = packed_harmonic_distances(pack_peaks([]), make_peaks([50.0]))
        assert out.shape == (0,)
        assert out.dtype == np.float64

    def test_empty_rows_and_empty_reference(self):
        out = assert_bit_identical([EMPTY, EMPTY], EMPTY)
        assert np.array_equal(out, [0.0, 0.0])

    def test_empty_rows_nonempty_reference(self):
        """Empty features are charged the reference's residual amplitudes."""
        reference = make_peaks([40.0, 80.0], [3.0, 6.0])
        out = assert_bit_identical([EMPTY, EMPTY], reference)
        # Residual only: mean of the normalized exemplar amplitudes.
        assert np.array_equal(out, [(3.0 / 6.0 + 6.0 / 6.0) / 2.0] * 2)

    def test_nonempty_rows_empty_reference(self):
        rows = [make_peaks([10.0, 20.0], [1.0, 2.0]), make_peaks([5.0], [4.0])]
        assert_bit_identical(rows, EMPTY)

    def test_mixed_empty_and_nonempty_rows(self):
        rows = [EMPTY, make_peaks([30.0], [2.0]), EMPTY, make_peaks([10.0, 60.0])]
        assert_bit_identical(rows, make_peaks([30.0, 62.0], [1.0, 5.0]))

    def test_zero_amplitudes_clamp_pmax(self):
        """All-zero amplitudes hit the ``p_max <= 0 → 1.0`` clamp branch."""
        rows = [make_peaks([10.0, 20.0], [0.0, 0.0])]
        assert_bit_identical(rows, make_peaks([10.0], [0.0]))


class TestSinglePeak:
    def test_match_within_tolerance(self):
        out = assert_bit_identical(
            [make_peaks([100.0], [5.0])], make_peaks([104.0], [4.0]), tol=16.0
        )
        assert out[0] > 0.0

    def test_no_match_outside_tolerance(self):
        assert_bit_identical(
            [make_peaks([100.0], [5.0])], make_peaks([400.0], [4.0]), tol=16.0
        )

    def test_exact_frequency_match(self):
        out = assert_bit_identical(
            [make_peaks([100.0], [5.0])], make_peaks([100.0], [5.0])
        )
        assert out[0] == 0.0

    def test_boundary_gap_is_unmatched(self):
        """Algorithm 1 matches on ``gap < tol`` strictly: a physical gap of
        exactly the tolerance stays unmatched on both paths."""
        rows = [make_peaks([116.0], [5.0])]
        reference = make_peaks([100.0], [5.0])
        out = assert_bit_identical(rows, reference, tol=16.0)
        # Unmatched on both sides: own magnitude plus the residual.
        f_max, p_max = 116.0, 5.0
        expected = (np.hypot(116.0 / f_max, 5.0 / p_max) + 5.0 / p_max) / 2.0
        assert out[0] == expected


class TestDuplicateFrequencies:
    def test_rows_duplicate_reference_grid(self):
        """Rows on exactly the reference's frequency grid — every peak is
        an exact-frequency duplicate — still produce identical floats."""
        reference = make_peaks([20.0, 40.0, 60.0], [1.0, 3.0, 2.0])
        rows = [
            make_peaks([20.0, 40.0, 60.0], [1.0, 3.0, 2.0]),
            make_peaks([20.0, 40.0, 60.0], [2.0, 1.0, 5.0]),
            make_peaks([40.0], [3.0]),
        ]
        out = assert_bit_identical(rows, reference)
        assert out[0] == 0.0

    def test_identical_rows_share_result(self):
        rows = [make_peaks([15.0, 33.0], [2.0, 4.0])] * 5
        out = assert_bit_identical(rows, make_peaks([14.0, 35.0], [1.0, 6.0]))
        assert np.all(out == out[0])

    def test_competing_rows_do_not_interact(self):
        """Consumption state is per row: many rows matching the same
        exemplar peak must not consume it for each other."""
        reference = make_peaks([100.0], [4.0])
        rows = [make_peaks([99.0 + 0.1 * i], [3.0]) for i in range(8)]
        assert_bit_identical(rows, reference)


class TestToleranceBoundaryTies:
    def test_equidistant_neighbours_prefer_left(self):
        """A peak exactly midway between two free exemplar peaks takes the
        left one (the scalar scan visits left first and only replaces it
        on a strictly smaller right gap)."""
        reference = make_peaks([90.0, 110.0], [2.0, 8.0])
        rows = [make_peaks([100.0], [5.0])]
        out = assert_bit_identical(rows, reference, tol=50.0)
        f_max, p_max = 110.0, 8.0
        matched_left = np.hypot(100.0 / f_max - 90.0 / f_max, 5.0 / p_max - 2.0 / p_max)
        expected = (matched_left + 8.0 / p_max) / 2.0
        assert out[0] == expected

    def test_tie_then_forced_right(self):
        """After the tie consumes the left peak, the next equidistant peak
        must fall through to the right neighbour on both paths."""
        reference = make_peaks([90.0, 110.0], [2.0, 8.0])
        rows = [make_peaks([100.0, 100.5], [5.0, 1.0])]
        assert_bit_identical(rows, reference, tol=50.0)

    def test_all_consumed_reference(self):
        """More row peaks than exemplar peaks: the surplus must see an
        exhausted consumed mask identically."""
        reference = make_peaks([50.0], [1.0])
        rows = [make_peaks([49.0, 50.0, 51.0], [1.0, 2.0, 3.0])]
        assert_bit_identical(rows, reference, tol=100.0)


class TestDtypes:
    def test_float32_inputs_match_float64_path(self):
        """float32 inputs are promoted to float64 on construction; the
        kernel output is bit-identical to building from the (exactly
        representable) float64 values."""
        freqs32 = np.asarray([10.5, 33.25, 101.125], dtype=np.float32)
        vals32 = np.asarray([1.5, 0.25, 7.0], dtype=np.float32)
        rows32 = [make_peaks(freqs32, vals32, dtype=np.float32)]
        rows64 = [make_peaks(freqs32.astype(np.float64), vals32.astype(np.float64))]
        reference = make_peaks([11.0, 100.0], [2.0, 3.0])
        out32 = assert_bit_identical(rows32, reference)
        out64 = assert_bit_identical(rows64, reference)
        assert np.array_equal(out32, out64)

    def test_packed_storage_is_float64(self):
        packed = pack_peaks([make_peaks([1.0], dtype=np.float32)])
        assert packed.frequencies.dtype == np.float64
        assert packed.values.dtype == np.float64
        assert packed.counts.dtype == np.intp


class TestPackedPeaksValidation:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PackedPeaks(np.zeros((2, 3)), np.zeros((2, 2)), np.zeros(2, dtype=int))

    def test_counts_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            PackedPeaks(np.zeros((1, 2)), np.zeros((1, 2)), np.asarray([3]))

    def test_row_roundtrip(self):
        rows = [make_peaks([5.0, 9.0], [1.0, 2.0]), EMPTY, make_peaks([7.0], [4.0])]
        packed = pack_peaks(rows)
        for i, original in enumerate(rows):
            unpacked = packed.row(i)
            assert np.array_equal(unpacked.frequencies, original.frequencies)
            assert np.array_equal(unpacked.values, original.values)

    def test_tolerance_must_be_positive(self):
        with pytest.raises(ValueError):
            packed_harmonic_distances(pack_peaks([EMPTY]), EMPTY, match_tolerance_hz=0.0)


class TestSeededSweep:
    def test_random_ragged_batches(self):
        """Deterministic wide sweep: ragged widths 0–12, clustered
        frequencies (forcing contested matches), several tolerances."""
        rng = np.random.default_rng(42)
        for tol in (0.5, 4.0, 16.0, 250.0):
            rows = []
            for _ in range(60):
                n = int(rng.integers(0, 13))
                freqs = np.sort(rng.choice(np.arange(1.0, 400.0, 0.5), n, replace=False))
                rows.append(make_peaks(freqs, rng.uniform(0.0, 10.0, n)))
            n_ref = int(rng.integers(0, 9))
            ref_freqs = np.sort(rng.choice(np.arange(1.0, 400.0, 0.5), n_ref, replace=False))
            reference = make_peaks(ref_freqs, rng.uniform(0.0, 10.0, n_ref))
            assert_bit_identical(rows, reference, tol=tol)

    def test_public_wrapper_is_the_kernel(self):
        rng = np.random.default_rng(7)
        rows = [
            make_peaks(np.sort(rng.uniform(1, 200, 5)), rng.uniform(0, 5, 5))
            for _ in range(10)
        ]
        reference = make_peaks(np.sort(rng.uniform(1, 200, 4)), rng.uniform(0, 5, 4))
        via_wrapper = peak_harmonic_distances(rows, reference)
        via_kernel = packed_harmonic_distances(pack_peaks(rows), reference)
        assert np.array_equal(via_wrapper, via_kernel)
