"""Interrupted incremental windows resume bit-identically.

A rolling-window refresh that dies mid-transform (crash, SIGTERM, OOM
kill) must be able to resume from the checkpoint journal and produce the
exact bytes an uninterrupted run would have produced — same feature
matrix, same report-facing arrays.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.runtime.batch as batch_mod
from repro.core.pipeline import PipelineConfig
from repro.runtime.batch import BatchPipeline
from repro.runtime.cache import PeakFeatureCache, TransformCache
from repro.runtime.checkpoint import CheckpointManager
from repro.runtime.incremental import IncrementalPipelineSession

from tests.runtime.conftest import make_workload

CHUNK_ROWS = 64


def make_pipeline(ckpt_dir=None) -> BatchPipeline:
    checkpoint = CheckpointManager(ckpt_dir) if ckpt_dir else None
    return BatchPipeline(
        PipelineConfig(),
        cache=PeakFeatureCache(),
        transform_cache=TransformCache(),
        chunk_rows=CHUNK_ROWS,
        checkpoint=checkpoint,
    )


@pytest.fixture(scope="module")
def window():
    return make_workload(n_pumps=4, per_pump=30, num_samples=256, seed=3)


def test_killed_batch_window_resumes_bit_identical(tmp_path, window, monkeypatch):
    ids, days, blocks, labels = window
    reference = make_pipeline().run(ids, days, blocks, labels)

    real_tiled = batch_mod._transform_tiled
    calls = {"n": 0}

    def dying_tiled(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] > 1:
            raise KeyboardInterrupt("simulated mid-window kill")
        return real_tiled(*args, **kwargs)

    monkeypatch.setattr(batch_mod, "_transform_tiled", dying_tiled)
    with pytest.raises(KeyboardInterrupt):
        make_pipeline(tmp_path).run(ids, days, blocks, labels)
    monkeypatch.setattr(batch_mod, "_transform_tiled", real_tiled)

    resumed_pipeline = make_pipeline(tmp_path)
    resumed = resumed_pipeline.run(ids, days, blocks, labels)
    assert resumed_pipeline.checkpoint.hits == 1
    assert resumed_pipeline.checkpoint.misses >= 1
    np.testing.assert_array_equal(resumed.da, reference.da)
    np.testing.assert_array_equal(resumed.psd, reference.psd)
    np.testing.assert_array_equal(resumed.zones, reference.zones)


def test_killed_incremental_window_resumes_bit_identical(
    tmp_path, window, monkeypatch
):
    """Kill an incremental session mid-window, then resume with a cold
    session over the same checkpoint directory: the merged feature
    matrix — offsets, RMS, PSD — and everything downstream must be
    bit-identical to an uninterrupted incremental run."""
    ids, days, blocks, labels = window
    reference_session = IncrementalPipelineSession(make_pipeline())
    reference = reference_session.run(ids, days, blocks, labels)

    real_tiled = batch_mod._transform_tiled
    calls = {"n": 0}

    def dying_tiled(*args, **kwargs):
        calls["n"] += 1
        if calls["n"] > 1:
            raise KeyboardInterrupt("simulated mid-window kill")
        return real_tiled(*args, **kwargs)

    monkeypatch.setattr(batch_mod, "_transform_tiled", dying_tiled)
    session = IncrementalPipelineSession(make_pipeline(tmp_path))
    with pytest.raises(KeyboardInterrupt):
        session.run(ids, days, blocks, labels)
    monkeypatch.setattr(batch_mod, "_transform_tiled", real_tiled)

    resumed_session = IncrementalPipelineSession(make_pipeline(tmp_path))
    resumed = resumed_session.run(ids, days, blocks, labels)
    assert resumed_session.pipeline.checkpoint.hits >= 1
    np.testing.assert_array_equal(resumed.offsets, reference.offsets)
    np.testing.assert_array_equal(resumed.rms, reference.rms)
    np.testing.assert_array_equal(resumed.psd, reference.psd)
    np.testing.assert_array_equal(resumed.da, reference.da)

    # The resumed session keeps rolling: growing the window transforms
    # only the tail and stays bit-identical to a cold run of the grown
    # window.
    rng = np.random.default_rng(99)
    extra = rng.normal(size=(8, blocks.shape[1], 3)) + 0.1
    grown_blocks = np.concatenate([blocks, extra])
    grown_ids = np.concatenate([ids, np.zeros(8, dtype=ids.dtype)])
    grown_days = np.concatenate([days, np.full(8, days.max() + 1.0)])
    grown = resumed_session.run(grown_ids, grown_days, grown_blocks, labels)
    cold = make_pipeline().run(grown_ids, grown_days, grown_blocks, labels)
    assert resumed_session.row_misses == blocks.shape[0] + 8
    assert resumed_session.row_hits == blocks.shape[0]
    np.testing.assert_array_equal(grown.da, cold.da)
    np.testing.assert_array_equal(grown.psd, cold.psd)
