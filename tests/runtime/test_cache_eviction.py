"""Eviction and collision-adjacent tests for the runtime caches.

The caches are content-addressed: digest equality is the only identity.
These tests pin the two properties that keep that safe — FIFO eviction
under a bounded budget, and *no aliasing* between arrays that share a
shape (or byte length) but differ in content.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.peaks import HarmonicPeaks
from repro.runtime.cache import (
    PeakFeatureCache,
    TransformCache,
    array_digest,
    default_peak_cache,
)


class TestArrayDigest:
    def test_same_content_same_digest(self):
        a = np.arange(12, dtype=np.float64).reshape(4, 3)
        b = np.arange(12, dtype=np.float64).reshape(4, 3)
        assert array_digest(a) == array_digest(b)

    def test_same_shape_different_bytes_differ(self):
        """The collision-adjacent case: equal shape, equal dtype, one
        element different — the digests must never alias."""
        a = np.zeros((8, 3))
        b = np.zeros((8, 3))
        b[7, 2] = np.nextafter(0.0, 1.0)  # smallest possible difference
        assert array_digest(a) != array_digest(b)

    def test_same_bytes_different_shape_differ(self):
        """Shape participates in the digest: a (6,) and a (2, 3) view of
        the same buffer are different work."""
        flat = np.arange(6, dtype=np.float64)
        assert array_digest(flat) != array_digest(flat.reshape(2, 3))
        assert array_digest(flat.reshape(3, 2)) != array_digest(flat.reshape(2, 3))

    def test_non_contiguous_input_matches_contiguous_copy(self):
        base = np.arange(24, dtype=np.float64).reshape(4, 6)
        strided = base[:, ::2]
        assert array_digest(strided) == array_digest(np.ascontiguousarray(strided))

    def test_integer_input_promotes_to_float64(self):
        ints = np.array([1, 2, 3])
        floats = np.array([1.0, 2.0, 3.0])
        assert array_digest(ints) == array_digest(floats)


def make_peaks(seed: int) -> HarmonicPeaks:
    gen = np.random.default_rng(seed)
    return HarmonicPeaks(
        frequencies=np.sort(gen.uniform(10, 2000, size=5)),
        values=gen.uniform(0.1, 1.0, size=5),
    )


class TestPeakFeatureCacheEviction:
    def test_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            PeakFeatureCache(max_entries=0)

    def test_evicts_oldest_beyond_budget(self):
        cache = PeakFeatureCache(max_entries=3)
        for i in range(5):
            cache._put(("peaks", i), f"value-{i}")
        assert len(cache) == 3
        # FIFO: 0 and 1 evicted, 2..4 retained.
        assert cache._get(("peaks", 0)) is None
        assert cache._get(("peaks", 1)) is None
        assert cache._get(("peaks", 4)) == "value-4"

    def test_eviction_is_insertion_ordered_not_access_ordered(self):
        cache = PeakFeatureCache(max_entries=2)
        cache._put(("peaks", "a"), 1)
        cache._put(("peaks", "b"), 2)
        assert cache._get(("peaks", "a")) == 1  # touch the oldest
        cache._put(("peaks", "c"), 3)
        # Plain FIFO evicts "a" despite the recent hit.
        assert cache._get(("peaks", "a")) is None
        assert cache._get(("peaks", "b")) == 2

    def test_distance_namespace_shares_the_budget(self):
        cache = PeakFeatureCache(max_entries=2)
        a, b = make_peaks(1), make_peaks(2)
        cache.distance(a, b, match_tolerance_hz=5.0)
        cache._put(("peaks", "x"), 1)
        cache._put(("peaks", "y"), 2)
        # The distance entry was first in, so it was evicted.
        assert len(cache) == 2
        before = cache.misses
        cache.distance(a, b, match_tolerance_hz=5.0)
        assert cache.misses == before + 1

    def test_peaks_for_rows_no_aliasing_between_same_shape_rows(self):
        """Two PSD rows with identical shape but different bytes must be
        computed independently — a shape-only key would alias them."""
        cache = PeakFeatureCache(max_entries=100)
        freqs = np.linspace(0, 2000, 64)
        row_a = np.zeros((1, 64))
        row_a[0, 10] = 1.0
        row_b = np.zeros((1, 64))
        row_b[0, 20] = 1.0

        def compute_batch(rows):
            return [("computed", array_digest(row)) for row in rows]

        params = PeakFeatureCache.peak_params_key(3, 5, 2, 0.0)
        (out_a,) = cache.peaks_for_rows(row_a, freqs, params, compute_batch)
        (out_b,) = cache.peaks_for_rows(row_b, freqs, params, compute_batch)
        assert out_a != out_b
        # And both are now warm, byte-addressed.
        (again_a,) = cache.peaks_for_rows(row_a, freqs, params, compute_batch)
        assert again_a == out_a
        assert cache.hits == 1

    def test_distance_tolerance_is_part_of_the_key(self):
        cache = PeakFeatureCache(max_entries=100)
        a, b = make_peaks(3), make_peaks(4)
        cache.distance(a, b, match_tolerance_hz=5.0)
        misses_before = cache.misses
        cache.distance(a, b, match_tolerance_hz=10.0)
        assert cache.misses == misses_before + 1

    def test_clear_resets_contents_and_counters(self):
        cache = PeakFeatureCache(max_entries=10)
        cache._put(("peaks", 1), "v")
        cache._get(("peaks", 1))
        cache._get(("peaks", 2))
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 0
        assert cache.misses == 0


class TestTransformCacheEviction:
    def entry(self, seed: int):
        gen = np.random.default_rng(seed)
        return gen.random(4), gen.random(4), gen.random((4, 8))

    def test_bounded_fifo(self):
        cache = TransformCache(max_entries=2)
        for i in range(4):
            cache.put(bytes([i]), *self.entry(i))
        assert len(cache) == 2
        assert cache.get(bytes([0])) is None
        assert cache.get(bytes([1])) is None
        assert cache.get(bytes([3])) is not None

    def test_hits_return_copies_not_views(self):
        """Mutating a hit must never corrupt the stored entry."""
        cache = TransformCache(max_entries=2)
        offsets, rms, psd = self.entry(5)
        cache.put(b"k", offsets, rms, psd)
        got_offsets, got_rms, got_psd = cache.get(b"k")
        got_offsets[:] = -1
        got_psd[:] = -1
        clean_offsets, _, clean_psd = cache.get(b"k")
        np.testing.assert_array_equal(clean_offsets, offsets)
        np.testing.assert_array_equal(clean_psd, psd)

    def test_put_copies_caller_buffers(self):
        cache = TransformCache(max_entries=2)
        offsets, rms, psd = self.entry(6)
        cache.put(b"k", offsets, rms, psd)
        psd[:] = 0  # caller reuses its buffer
        _, _, cached_psd = cache.get(b"k")
        assert not np.array_equal(cached_psd, psd)

    def test_same_length_different_bytes_do_not_alias(self):
        cache = TransformCache(max_entries=4)
        block_a = np.zeros((16, 3))
        block_b = np.zeros((16, 3))
        block_b[0, 0] = 1e-300  # same shape and byte length, one bit of difference
        key_a, key_b = array_digest(block_a), array_digest(block_b)
        assert key_a != key_b
        cache.put(key_a, *self.entry(7))
        assert cache.get(key_b) is None

    def test_counters(self):
        cache = TransformCache(max_entries=2)
        cache.get(b"missing")
        cache.put(b"k", *self.entry(8))
        cache.get(b"k")
        assert cache.misses == 1
        assert cache.hits == 1


def test_default_peak_cache_is_process_wide_singleton():
    assert default_peak_cache() is default_peak_cache()
