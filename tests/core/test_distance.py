"""Tests for the peak harmonic distance and baseline metrics (distance.py)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import (
    MahalanobisMetric,
    euclidean_distance,
    mahalanobis_distance,
    peak_harmonic_distance,
)
from repro.core.peaks import HarmonicPeaks


def peaks_of(pairs):
    pairs = sorted(pairs)
    freqs = np.asarray([p[0] for p in pairs], dtype=float)
    vals = np.asarray([p[1] for p in pairs], dtype=float)
    return HarmonicPeaks(freqs, vals)


peak_features = st.lists(
    st.tuples(st.floats(1.0, 2000.0), st.floats(0.01, 10.0)),
    min_size=1,
    max_size=20,
    unique_by=lambda p: round(p[0], 3),
).map(peaks_of)


class TestPeakHarmonicDistance:
    def test_identity_is_zero(self):
        peaks = peaks_of([(100, 1.0), (300, 0.5), (900, 0.2)])
        assert peak_harmonic_distance(peaks, peaks) == pytest.approx(0.0, abs=1e-12)

    def test_both_empty_is_zero(self):
        empty = HarmonicPeaks(np.empty(0), np.empty(0))
        assert peak_harmonic_distance(empty, empty) == 0.0

    def test_extra_peak_increases_distance(self):
        base = peaks_of([(100, 1.0), (300, 0.5)])
        extra = peaks_of([(100, 1.0), (300, 0.5), (1500, 0.8)])
        assert peak_harmonic_distance(extra, base) > 0.0

    def test_matched_amplitude_shift_smaller_than_unmatched_peak(self):
        base = peaks_of([(100, 1.0), (300, 0.5)])
        shifted = peaks_of([(100, 1.1), (300, 0.5)])  # small amplitude change
        disjoint = peaks_of([(900, 1.0), (1500, 0.5)])  # nothing matches
        assert peak_harmonic_distance(shifted, base) < peak_harmonic_distance(
            disjoint, base
        )

    def test_high_frequency_disagreement_penalized_more(self):
        """The paper's deliberate property: disagreement at high frequency
        costs more, because f is normalized by f_max before the norm."""
        base = peaks_of([(100, 1.0), (2000, 1.0)])
        low_extra = peaks_of([(100, 1.0), (2000, 1.0), (200, 0.5)])
        high_extra = peaks_of([(100, 1.0), (2000, 1.0), (1900, 0.5)])
        d_low = peak_harmonic_distance(low_extra, base)
        d_high = peak_harmonic_distance(high_extra, base)
        assert d_high > d_low

    def test_scale_invariance_in_amplitude(self):
        """Normalization by p_max makes the metric amplitude-scale free."""
        a = peaks_of([(100, 1.0), (500, 0.4)])
        b = peaks_of([(120, 0.8), (700, 0.6)])
        a10 = peaks_of([(100, 10.0), (500, 4.0)])
        b10 = peaks_of([(120, 8.0), (700, 6.0)])
        assert peak_harmonic_distance(a, b) == pytest.approx(
            peak_harmonic_distance(a10, b10), rel=1e-9
        )

    def test_match_tolerance_controls_pairing(self):
        base = peaks_of([(100, 1.0)])
        near = peaks_of([(110, 1.0)])
        # Tolerant matching pairs them -> small distance (frequency gap only).
        tolerant = peak_harmonic_distance(near, base, match_tolerance_hz=24)
        # Strict matching leaves both unmatched -> both magnitudes charged.
        strict = peak_harmonic_distance(near, base, match_tolerance_hz=5)
        assert tolerant < strict

    def test_rejects_bad_tolerance(self):
        peaks = peaks_of([(100, 1.0)])
        with pytest.raises(ValueError):
            peak_harmonic_distance(peaks, peaks, match_tolerance_hz=0)

    def test_one_empty_side_charges_other_side(self):
        empty = HarmonicPeaks(np.empty(0), np.empty(0))
        peaks = peaks_of([(100, 1.0), (200, 0.5)])
        assert peak_harmonic_distance(peaks, empty) > 0
        assert peak_harmonic_distance(empty, peaks) > 0

    @given(peak_features, peak_features)
    @settings(max_examples=60, deadline=None)
    def test_non_negative(self, a, b):
        assert peak_harmonic_distance(a, b) >= 0.0

    @given(peak_features)
    @settings(max_examples=40, deadline=None)
    def test_self_distance_zero(self, a):
        assert peak_harmonic_distance(a, a) == pytest.approx(0.0, abs=1e-9)

    @given(peak_features, peak_features)
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_normalized_magnitudes(self, a, b):
        """Each per-peak contribution is at most sqrt(2) after
        normalization, so the mean is bounded too."""
        assert peak_harmonic_distance(a, b) <= np.sqrt(2.0) + 1e-9


class TestEuclidean:
    def test_zero_for_identical(self):
        v = np.asarray([1.0, 2.0, 3.0])
        assert euclidean_distance(v, v) == 0.0

    def test_matches_norm(self):
        a = np.asarray([0.0, 3.0])
        b = np.asarray([4.0, 0.0])
        assert euclidean_distance(a, b) == pytest.approx(5.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            euclidean_distance(np.ones(3), np.ones(4))


class TestMahalanobis:
    def test_zero_at_reference_mean(self):
        gen = np.random.default_rng(0)
        ref = gen.normal(size=(50, 4))
        metric = MahalanobisMetric(ref)
        assert metric.distance(ref.mean(axis=0)) == pytest.approx(0.0, abs=1e-9)

    def test_whitens_anisotropic_data(self):
        gen = np.random.default_rng(1)
        ref = gen.normal(size=(500, 2)) * np.asarray([10.0, 0.1])
        metric = MahalanobisMetric(ref, shrinkage=0.0)
        mean = ref.mean(axis=0)
        # One sigma along each axis should be comparable after whitening.
        d_wide = metric.distance(mean + np.asarray([10.0, 0.0]))
        d_narrow = metric.distance(mean + np.asarray([0.0, 0.1]))
        assert d_wide == pytest.approx(d_narrow, rel=0.3)

    def test_singular_covariance_survives_via_regularization(self):
        ref = np.ones((3, 10))  # rank-0 covariance
        metric = MahalanobisMetric(ref, shrinkage=0.5)
        assert np.isfinite(metric.distance(np.zeros(10)))

    def test_single_reference_sample(self):
        metric = MahalanobisMetric(np.ones((1, 4)))
        assert metric.distance(np.ones(4)) == pytest.approx(0.0, abs=1e-9)

    def test_one_shot_helper(self):
        gen = np.random.default_rng(2)
        ref = gen.normal(size=(30, 3))
        v = gen.normal(size=3)
        assert mahalanobis_distance(v, ref) == pytest.approx(
            MahalanobisMetric(ref).distance(v)
        )

    def test_rejects_bad_shrinkage(self):
        with pytest.raises(ValueError):
            MahalanobisMetric(np.ones((5, 2)), shrinkage=1.5)

    def test_shape_mismatch(self):
        metric = MahalanobisMetric(np.ones((5, 3)))
        with pytest.raises(ValueError):
            metric.distance(np.ones(4))
