"""Batched-vs-scalar parity for the RANSAC model layer (ransac.py).

The batched :meth:`RANSACLineFitter.fit` must be *bit-identical* to the
scalar :meth:`~RANSACLineFitter.fit_reference`: same model floats, same
inlier indices, and the same consumed RNG stream (both draw through
:func:`draw_trial_pairs`).  These tests drive that contract across
random fleets, slope constraints, and degenerate inputs.
"""

import contextlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.ransac as ransac_module
from repro.core import _native
from repro.core.ransac import (
    RANSACLineFitter,
    RANSACRegressor,
    RecursiveRANSAC,
    draw_trial_pairs,
)


class _NativeDisabled:
    @staticmethod
    def consensus_counts(*args, **kwargs):
        return None


@contextlib.contextmanager
def numpy_kernel_only():
    """Force the tiled-numpy consensus kernel for the enclosed block."""
    original = ransac_module._native
    ransac_module._native = _NativeDisabled
    try:
        yield
    finally:
        ransac_module._native = original


def assert_same_fit(model_a, model_b):
    if model_a is None or model_b is None:
        assert model_a is None and model_b is None
        return
    assert model_a.slope == model_b.slope
    assert model_a.intercept == model_b.intercept
    assert model_a.residual_threshold == model_b.residual_threshold
    assert np.array_equal(model_a.inlier_indices, model_b.inlier_indices)


class TestDrawTrialPairs:
    def test_pairs_are_distinct_and_in_range(self):
        rng = np.random.default_rng(0)
        pairs = draw_trial_pairs(rng, 17, 5000)
        assert pairs.shape == (5000, 2)
        assert (pairs >= 0).all() and (pairs < 17).all()
        assert (pairs[:, 0] != pairs[:, 1]).all()

    def test_contract_is_two_bulk_draws(self):
        """The documented stream: first = integers(0, n, T); second =
        integers(0, n-1, T) shifted past first."""
        rng_a = np.random.default_rng(42)
        rng_b = np.random.default_rng(42)
        pairs = draw_trial_pairs(rng_a, 10, 64)
        first = rng_b.integers(0, 10, size=64)
        second = rng_b.integers(0, 9, size=64)
        second = second + (second >= first)
        assert np.array_equal(pairs[:, 0], first)
        assert np.array_equal(pairs[:, 1], second)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_rejects_degenerate_population(self):
        with pytest.raises(ValueError):
            draw_trial_pairs(np.random.default_rng(0), 1, 4)

    def test_pair_distribution_is_uniform(self):
        rng = np.random.default_rng(7)
        pairs = draw_trial_pairs(rng, 5, 40000)
        # 20 ordered pairs, ~2000 each.
        codes = pairs[:, 0] * 5 + pairs[:, 1]
        counts = np.bincount(codes, minlength=25).reshape(5, 5)
        assert np.diag(counts).sum() == 0
        off_diag = counts[~np.eye(5, dtype=bool)]
        assert off_diag.min() > 1600 and off_diag.max() < 2400

    def test_backward_compat_alias(self):
        assert RANSACRegressor is RANSACLineFitter


@st.composite
def fleet_case(draw):
    n = draw(st.integers(2, 120))
    seed = draw(st.integers(0, 2**31 - 1))
    gen = np.random.default_rng(seed)
    kind = draw(st.sampled_from(["noisy-line", "two-lines", "duplicate-x", "collinear"]))
    if kind == "collinear":
        x = np.linspace(0.0, 50.0, n)
        z = 0.03 * x + 0.1
    elif kind == "duplicate-x":
        x = np.repeat(gen.uniform(0, 50, max(1, n // 3 + 1)), 3)[:n]
        z = 0.05 * x + gen.normal(0, 0.2, n)
    elif kind == "two-lines":
        x = gen.uniform(0, 80, n)
        rate = np.where(gen.random(n) < 0.5, 0.02, 0.09)
        z = rate * x + gen.normal(0, 0.05, n)
    else:
        x = gen.uniform(0, 80, n)
        z = 0.05 * x + gen.normal(0, 0.3, n)
    params = {
        "residual_threshold": draw(
            st.sampled_from([None, 0.05, 0.2, 1.0])
        ),
        "max_trials": draw(st.integers(1, 300)),
        "min_slope": draw(st.sampled_from([None, 1e-12, 0.04])),
        "max_slope": draw(st.sampled_from([None, 0.06, 10.0])),
        "seed": draw(st.integers(0, 2**31 - 1)),
    }
    return x, z, params


class TestBatchedScalarParity:
    @given(fleet_case())
    @settings(max_examples=120, deadline=None)
    def test_fit_bit_identical_to_reference(self, case):
        x, z, params = case
        batched = RANSACLineFitter(**params)
        scalar = RANSACLineFitter(**params)
        assert_same_fit(batched.fit(x, z), scalar.fit_reference(x, z))
        # Both paths consumed the identical RNG stream.
        assert batched._rng.bit_generator.state == scalar._rng.bit_generator.state

    @given(fleet_case())
    @settings(max_examples=40, deadline=None)
    def test_parity_survives_tiny_tiles(self, case):
        x, z, params = case
        batched = RANSACLineFitter(**params)
        scalar = RANSACLineFitter(**params)
        original = ransac_module.RANSAC_TILE_ELEMENTS
        ransac_module.RANSAC_TILE_ELEMENTS = 7
        try:
            with numpy_kernel_only():
                assert_same_fit(batched.fit(x, z), scalar.fit_reference(x, z))
        finally:
            ransac_module.RANSAC_TILE_ELEMENTS = original

    @given(fleet_case())
    @settings(max_examples=40, deadline=None)
    def test_numpy_fallback_matches_reference(self, case):
        """The tiled-numpy kernel must stay correct on machines where
        the fused C kernel never compiles."""
        x, z, params = case
        batched = RANSACLineFitter(**params)
        scalar = RANSACLineFitter(**params)
        with numpy_kernel_only():
            assert_same_fit(batched.fit(x, z), scalar.fit_reference(x, z))

    def test_n_equals_two(self):
        batched = RANSACLineFitter(seed=0, max_trials=16)
        scalar = RANSACLineFitter(seed=0, max_trials=16)
        x = np.asarray([1.0, 2.0])
        z = np.asarray([0.5, 0.7])
        assert_same_fit(batched.fit(x, z), scalar.fit_reference(x, z))

    def test_all_duplicate_x_yields_none_on_both(self):
        x = np.full(20, 3.0)
        z = np.linspace(0, 1, 20)
        assert RANSACLineFitter(seed=1).fit(x, z) is None
        assert RANSACLineFitter(seed=1).fit_reference(x, z) is None

    def test_undersized_input_consumes_no_rng(self):
        fitter = RANSACLineFitter(seed=5)
        state = fitter._rng.bit_generator.state
        assert fitter.fit(np.asarray([1.0]), np.asarray([2.0])) is None
        assert fitter._rng.bit_generator.state == state

    def test_scratch_reuse_across_fits(self):
        """Repeated fits reuse the tiled scratch without cross-talk."""
        fitter = RANSACLineFitter(seed=3, max_trials=64)
        gen = np.random.default_rng(4)
        reference = RANSACLineFitter(seed=3, max_trials=64)
        with numpy_kernel_only():
            for n in (50, 200, 50, 128):
                x = gen.uniform(0, 10, n)
                z = 0.4 * x + gen.normal(0, 0.1, n)
                assert_same_fit(fitter.fit(x, z), reference.fit_reference(x, z))


@pytest.mark.skipif(
    not _native.available(), reason="fused C kernel unavailable on this host"
)
class TestNativeKernel:
    """The fused C kernel must count bit-identically to the numpy tiles."""

    @staticmethod
    def random_trials(seed, n=700, trials=400):
        gen = np.random.default_rng(seed)
        xs = gen.uniform(0, 100, n)
        zs = 0.05 * xs + gen.normal(0, 0.3, n)
        pairs = draw_trial_pairs(gen, n, trials)
        dx = xs[pairs[:, 1]] - xs[pairs[:, 0]]
        dz = zs[pairs[:, 1]] - zs[pairs[:, 0]]
        admissible = dx != 0.0
        slopes = np.zeros(trials)
        np.divide(dz, dx, out=slopes, where=admissible)
        intercepts = zs[pairs[:, 0]] - slopes * xs[pairs[:, 0]]
        return xs, zs, slopes, intercepts, admissible

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_counts_match_numpy_tiles(self, seed):
        xs, zs, slopes, intercepts, admissible = self.random_trials(seed)
        thr = 0.25
        native = _native.consensus_counts(
            xs, zs, slopes, intercepts, admissible, thr
        )
        assert native is not None
        fitter = RANSACLineFitter(seed=0)
        with numpy_kernel_only():
            tiled = fitter._consensus_counts(
                xs, zs, slopes, intercepts, admissible, thr
            )
        assert np.array_equal(native, tiled)

    def test_inadmissible_trials_count_zero(self):
        xs, zs, slopes, intercepts, admissible = self.random_trials(5)
        admissible[::3] = False
        counts = _native.consensus_counts(
            xs, zs, slopes, intercepts, admissible, 0.25
        )
        assert (counts[::3] == 0).all()
        assert counts[admissible].min() >= 2  # each trial supports its pair

    def test_nan_features_never_count_as_inliers(self):
        """NaN residuals fail <= in C exactly as in numpy."""
        xs, zs, slopes, intercepts, admissible = self.random_trials(6, n=64)
        zs = zs.copy()
        zs[::4] = np.nan
        native = _native.consensus_counts(
            xs, zs, slopes, intercepts, admissible, 0.25
        )
        fitter = RANSACLineFitter(seed=0)
        with numpy_kernel_only():
            tiled = fitter._consensus_counts(
                xs, zs, slopes, intercepts, admissible, 0.25
            )
        assert np.array_equal(native, tiled)

    def test_boundary_residuals_decide_identically(self):
        """Points engineered to land near the band edge must resolve to
        the same side in both kernels (the FMA-contraction hazard)."""
        gen = np.random.default_rng(7)
        xs = gen.uniform(0, 100, 2000)
        slopes = gen.uniform(0.01, 0.1, 300)
        intercepts = gen.uniform(-1, 1, 300)
        thr = 0.1
        # Place every point exactly thr away from trial 0's line, up to
        # float rounding; many residuals then sit on the boundary.
        zs = slopes[0] * xs + intercepts[0] + thr * gen.choice([-1.0, 1.0], 2000)
        admissible = np.ones(300, dtype=bool)
        native = _native.consensus_counts(
            xs, zs, slopes, intercepts, admissible, thr
        )
        fitter = RANSACLineFitter(seed=0)
        with numpy_kernel_only():
            tiled = fitter._consensus_counts(
                xs, zs, slopes, intercepts, admissible, thr
            )
        assert np.array_equal(native, tiled)


class TestRecursiveEngineParity:
    @staticmethod
    def _two_population_fleet(seed=0, n=400):
        gen = np.random.default_rng(seed)
        half = n // 2
        x = np.concatenate([gen.uniform(0, 90, half), gen.uniform(0, 60, n - half)])
        z = np.concatenate(
            [0.02 * x[:half], 0.08 * x[half:]]
        ) + gen.normal(0, 0.04, n)
        return x, z

    def test_batched_and_reference_engines_agree(self):
        x, z = self._two_population_fleet()
        kwargs = dict(residual_threshold=0.12, min_inliers=40, seed=0)
        batched = RecursiveRANSAC(engine="batched", **kwargs).fit(x, z)
        reference = RecursiveRANSAC(engine="reference", **kwargs).fit(x, z)
        assert len(batched) == len(reference) >= 2
        for a, b in zip(batched, reference):
            assert_same_fit(a, b)

    def test_invalid_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            RecursiveRANSAC(engine="turbo")

    def test_clone_replays_from_pristine_state(self):
        x, z = self._two_population_fleet(seed=2)
        engine = RecursiveRANSAC(residual_threshold=0.12, min_inliers=40, seed=9)
        first = engine.fit(x, z)
        # The engine's stream advanced; a clone starts over.
        clone = engine.clone()
        replay = clone.fit(x, z)
        for a, b in zip(first, replay):
            assert_same_fit(a, b)
        assert engine.config_key() == clone.config_key()

    def test_config_key_distinguishes_configs(self):
        base = RecursiveRANSAC(seed=0)
        assert base.config_key() == RecursiveRANSAC(seed=0).config_key()
        assert base.config_key() != RecursiveRANSAC(seed=1).config_key()
        assert base.config_key() != RecursiveRANSAC(seed=0, max_trials=77).config_key()
        assert (
            base.config_key()
            != RecursiveRANSAC(seed=0, engine="reference").config_key()
        )

    def test_pair_reuse_matches_engine_restart_support(self):
        """Peeling reuses surviving pairs; the discovered populations
        must still cover both planted lines with dominant support."""
        x, z = self._two_population_fleet(seed=5, n=600)
        models = RecursiveRANSAC(
            residual_threshold=0.12, min_inliers=50, seed=1
        ).fit(x, z)
        slopes = sorted(m.slope for m in models[:2])
        assert slopes[0] == pytest.approx(0.02, abs=0.02)
        assert slopes[1] == pytest.approx(0.08, abs=0.03)
